file(REMOVE_RECURSE
  "../bench/fig1b_split_sweep"
  "../bench/fig1b_split_sweep.pdb"
  "CMakeFiles/fig1b_split_sweep.dir/fig1b_split_sweep.cc.o"
  "CMakeFiles/fig1b_split_sweep.dir/fig1b_split_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_split_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
