# Empty dependencies file for fig1b_split_sweep.
# This may be replaced when dependencies are built.
