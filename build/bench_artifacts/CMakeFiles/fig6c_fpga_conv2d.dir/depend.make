# Empty dependencies file for fig6c_fpga_conv2d.
# This may be replaced when dependencies are built.
