file(REMOVE_RECURSE
  "../bench/fig6c_fpga_conv2d"
  "../bench/fig6c_fpga_conv2d.pdb"
  "CMakeFiles/fig6c_fpga_conv2d.dir/fig6c_fpga_conv2d.cc.o"
  "CMakeFiles/fig6c_fpga_conv2d.dir/fig6c_fpga_conv2d.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_fpga_conv2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
