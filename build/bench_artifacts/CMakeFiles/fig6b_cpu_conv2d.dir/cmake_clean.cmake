file(REMOVE_RECURSE
  "../bench/fig6b_cpu_conv2d"
  "../bench/fig6b_cpu_conv2d.pdb"
  "CMakeFiles/fig6b_cpu_conv2d.dir/fig6b_cpu_conv2d.cc.o"
  "CMakeFiles/fig6b_cpu_conv2d.dir/fig6b_cpu_conv2d.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_cpu_conv2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
