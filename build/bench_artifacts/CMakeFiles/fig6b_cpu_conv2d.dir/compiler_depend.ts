# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6b_cpu_conv2d.
