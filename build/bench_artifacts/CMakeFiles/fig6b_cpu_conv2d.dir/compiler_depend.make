# Empty compiler generated dependencies file for fig6b_cpu_conv2d.
# This may be replaced when dependencies are built.
