# Empty compiler generated dependencies file for fig5_gpu_overall.
# This may be replaced when dependencies are built.
