file(REMOVE_RECURSE
  "../bench/fig5_gpu_overall"
  "../bench/fig5_gpu_overall.pdb"
  "CMakeFiles/fig5_gpu_overall.dir/fig5_gpu_overall.cc.o"
  "CMakeFiles/fig5_gpu_overall.dir/fig5_gpu_overall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gpu_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
