file(REMOVE_RECURSE
  "../bench/fig6d_exploration_time"
  "../bench/fig6d_exploration_time.pdb"
  "CMakeFiles/fig6d_exploration_time.dir/fig6d_exploration_time.cc.o"
  "CMakeFiles/fig6d_exploration_time.dir/fig6d_exploration_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_exploration_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
