# Empty dependencies file for fig6d_exploration_time.
# This may be replaced when dependencies are built.
