# Empty dependencies file for ablation_search.
# This may be replaced when dependencies are built.
