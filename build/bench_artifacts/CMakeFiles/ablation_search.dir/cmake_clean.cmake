file(REMOVE_RECURSE
  "../bench/ablation_search"
  "../bench/ablation_search.pdb"
  "CMakeFiles/ablation_search.dir/ablation_search.cc.o"
  "CMakeFiles/ablation_search.dir/ablation_search.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
