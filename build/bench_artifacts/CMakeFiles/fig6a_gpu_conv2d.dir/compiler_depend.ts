# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6a_gpu_conv2d.
