# Empty dependencies file for fig6a_gpu_conv2d.
# This may be replaced when dependencies are built.
