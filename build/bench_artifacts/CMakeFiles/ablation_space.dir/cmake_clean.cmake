file(REMOVE_RECURSE
  "../bench/ablation_space"
  "../bench/ablation_space.pdb"
  "CMakeFiles/ablation_space.dir/ablation_space.cc.o"
  "CMakeFiles/ablation_space.dir/ablation_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
