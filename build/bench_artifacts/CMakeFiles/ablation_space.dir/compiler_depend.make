# Empty compiler generated dependencies file for ablation_space.
# This may be replaced when dependencies are built.
