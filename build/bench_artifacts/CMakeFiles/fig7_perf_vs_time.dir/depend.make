# Empty dependencies file for fig7_perf_vs_time.
# This may be replaced when dependencies are built.
