file(REMOVE_RECURSE
  "../bench/fig7_perf_vs_time"
  "../bench/fig7_perf_vs_time.pdb"
  "CMakeFiles/fig7_perf_vs_time.dir/fig7_perf_vs_time.cc.o"
  "CMakeFiles/fig7_perf_vs_time.dir/fig7_perf_vs_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_perf_vs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
