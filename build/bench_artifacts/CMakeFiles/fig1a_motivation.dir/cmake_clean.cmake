file(REMOVE_RECURSE
  "../bench/fig1a_motivation"
  "../bench/fig1a_motivation.pdb"
  "CMakeFiles/fig1a_motivation.dir/fig1a_motivation.cc.o"
  "CMakeFiles/fig1a_motivation.dir/fig1a_motivation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
