# Empty compiler generated dependencies file for sec64_new_ops.
# This may be replaced when dependencies are built.
