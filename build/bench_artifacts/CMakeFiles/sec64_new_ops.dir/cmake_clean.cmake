file(REMOVE_RECURSE
  "../bench/sec64_new_ops"
  "../bench/sec64_new_ops.pdb"
  "CMakeFiles/sec64_new_ops.dir/sec64_new_ops.cc.o"
  "CMakeFiles/sec64_new_ops.dir/sec64_new_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_new_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
