file(REMOVE_RECURSE
  "../bench/table_space_size"
  "../bench/table_space_size.pdb"
  "CMakeFiles/table_space_size.dir/table_space_size.cc.o"
  "CMakeFiles/table_space_size.dir/table_space_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_space_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
