# Empty dependencies file for table_space_size.
# This may be replaced when dependencies are built.
