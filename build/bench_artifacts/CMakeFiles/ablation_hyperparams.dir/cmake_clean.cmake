file(REMOVE_RECURSE
  "../bench/ablation_hyperparams"
  "../bench/ablation_hyperparams.pdb"
  "CMakeFiles/ablation_hyperparams.dir/ablation_hyperparams.cc.o"
  "CMakeFiles/ablation_hyperparams.dir/ablation_hyperparams.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
