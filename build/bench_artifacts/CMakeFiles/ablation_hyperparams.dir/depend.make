# Empty dependencies file for ablation_hyperparams.
# This may be replaced when dependencies are built.
