# Empty compiler generated dependencies file for sec66_dnn_e2e.
# This may be replaced when dependencies are built.
