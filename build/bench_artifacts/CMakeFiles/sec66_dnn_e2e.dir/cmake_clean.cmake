file(REMOVE_RECURSE
  "../bench/sec66_dnn_e2e"
  "../bench/sec66_dnn_e2e.pdb"
  "CMakeFiles/sec66_dnn_e2e.dir/sec66_dnn_e2e.cc.o"
  "CMakeFiles/sec66_dnn_e2e.dir/sec66_dnn_e2e.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec66_dnn_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
