# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec66_dnn_e2e.
