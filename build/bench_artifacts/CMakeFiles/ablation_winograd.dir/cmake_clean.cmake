file(REMOVE_RECURSE
  "../bench/ablation_winograd"
  "../bench/ablation_winograd.pdb"
  "CMakeFiles/ablation_winograd.dir/ablation_winograd.cc.o"
  "CMakeFiles/ablation_winograd.dir/ablation_winograd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
