# Empty compiler generated dependencies file for ablation_winograd.
# This may be replaced when dependencies are built.
