
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bounds.cc" "src/CMakeFiles/flextensor.dir/analysis/bounds.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/analysis/bounds.cc.o.d"
  "/root/repo/src/analysis/flops.cc" "src/CMakeFiles/flextensor.dir/analysis/flops.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/analysis/flops.cc.o.d"
  "/root/repo/src/analysis/static_analyzer.cc" "src/CMakeFiles/flextensor.dir/analysis/static_analyzer.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/analysis/static_analyzer.cc.o.d"
  "/root/repo/src/codegen/codegen.cc" "src/CMakeFiles/flextensor.dir/codegen/codegen.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/codegen/codegen.cc.o.d"
  "/root/repo/src/core/flextensor.cc" "src/CMakeFiles/flextensor.dir/core/flextensor.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/core/flextensor.cc.o.d"
  "/root/repo/src/dnn/e2e.cc" "src/CMakeFiles/flextensor.dir/dnn/e2e.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/dnn/e2e.cc.o.d"
  "/root/repo/src/dnn/models.cc" "src/CMakeFiles/flextensor.dir/dnn/models.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/dnn/models.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/CMakeFiles/flextensor.dir/dnn/network.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/dnn/network.cc.o.d"
  "/root/repo/src/exec/buffer.cc" "src/CMakeFiles/flextensor.dir/exec/buffer.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/exec/buffer.cc.o.d"
  "/root/repo/src/exec/interpreter.cc" "src/CMakeFiles/flextensor.dir/exec/interpreter.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/exec/interpreter.cc.o.d"
  "/root/repo/src/exec/reference.cc" "src/CMakeFiles/flextensor.dir/exec/reference.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/exec/reference.cc.o.d"
  "/root/repo/src/explore/autotvm.cc" "src/CMakeFiles/flextensor.dir/explore/autotvm.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/explore/autotvm.cc.o.d"
  "/root/repo/src/explore/evaluator.cc" "src/CMakeFiles/flextensor.dir/explore/evaluator.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/explore/evaluator.cc.o.d"
  "/root/repo/src/explore/qlearn.cc" "src/CMakeFiles/flextensor.dir/explore/qlearn.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/explore/qlearn.cc.o.d"
  "/root/repo/src/explore/sa.cc" "src/CMakeFiles/flextensor.dir/explore/sa.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/explore/sa.cc.o.d"
  "/root/repo/src/explore/tuner.cc" "src/CMakeFiles/flextensor.dir/explore/tuner.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/explore/tuner.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/CMakeFiles/flextensor.dir/ir/expr.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ir/expr.cc.o.d"
  "/root/repo/src/ir/graph.cc" "src/CMakeFiles/flextensor.dir/ir/graph.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ir/graph.cc.o.d"
  "/root/repo/src/ir/inline.cc" "src/CMakeFiles/flextensor.dir/ir/inline.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ir/inline.cc.o.d"
  "/root/repo/src/ir/operation.cc" "src/CMakeFiles/flextensor.dir/ir/operation.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ir/operation.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/flextensor.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ir/printer.cc.o.d"
  "/root/repo/src/ml/gbt.cc" "src/CMakeFiles/flextensor.dir/ml/gbt.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ml/gbt.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/flextensor.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/nn/mlp.cc.o.d"
  "/root/repo/src/ops/conv.cc" "src/CMakeFiles/flextensor.dir/ops/conv.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ops/conv.cc.o.d"
  "/root/repo/src/ops/linalg.cc" "src/CMakeFiles/flextensor.dir/ops/linalg.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ops/linalg.cc.o.d"
  "/root/repo/src/ops/shapes.cc" "src/CMakeFiles/flextensor.dir/ops/shapes.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ops/shapes.cc.o.d"
  "/root/repo/src/ops/special.cc" "src/CMakeFiles/flextensor.dir/ops/special.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ops/special.cc.o.d"
  "/root/repo/src/ops/winograd.cc" "src/CMakeFiles/flextensor.dir/ops/winograd.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/ops/winograd.cc.o.d"
  "/root/repo/src/schedule/config.cc" "src/CMakeFiles/flextensor.dir/schedule/config.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/config.cc.o.d"
  "/root/repo/src/schedule/encoder.cc" "src/CMakeFiles/flextensor.dir/schedule/encoder.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/encoder.cc.o.d"
  "/root/repo/src/schedule/generator.cc" "src/CMakeFiles/flextensor.dir/schedule/generator.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/generator.cc.o.d"
  "/root/repo/src/schedule/generator_cpu.cc" "src/CMakeFiles/flextensor.dir/schedule/generator_cpu.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/generator_cpu.cc.o.d"
  "/root/repo/src/schedule/generator_fpga.cc" "src/CMakeFiles/flextensor.dir/schedule/generator_fpga.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/generator_fpga.cc.o.d"
  "/root/repo/src/schedule/generator_gpu.cc" "src/CMakeFiles/flextensor.dir/schedule/generator_gpu.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/generator_gpu.cc.o.d"
  "/root/repo/src/schedule/generator_util.cc" "src/CMakeFiles/flextensor.dir/schedule/generator_util.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/generator_util.cc.o.d"
  "/root/repo/src/schedule/loop_nest.cc" "src/CMakeFiles/flextensor.dir/schedule/loop_nest.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/loop_nest.cc.o.d"
  "/root/repo/src/schedule/serialize.cc" "src/CMakeFiles/flextensor.dir/schedule/serialize.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/schedule/serialize.cc.o.d"
  "/root/repo/src/sim/cpu_model.cc" "src/CMakeFiles/flextensor.dir/sim/cpu_model.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/sim/cpu_model.cc.o.d"
  "/root/repo/src/sim/fpga_model.cc" "src/CMakeFiles/flextensor.dir/sim/fpga_model.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/sim/fpga_model.cc.o.d"
  "/root/repo/src/sim/gpu_model.cc" "src/CMakeFiles/flextensor.dir/sim/gpu_model.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/sim/gpu_model.cc.o.d"
  "/root/repo/src/sim/hw_spec.cc" "src/CMakeFiles/flextensor.dir/sim/hw_spec.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/sim/hw_spec.cc.o.d"
  "/root/repo/src/sim/library_model.cc" "src/CMakeFiles/flextensor.dir/sim/library_model.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/sim/library_model.cc.o.d"
  "/root/repo/src/space/builder.cc" "src/CMakeFiles/flextensor.dir/space/builder.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/space/builder.cc.o.d"
  "/root/repo/src/space/space.cc" "src/CMakeFiles/flextensor.dir/space/space.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/space/space.cc.o.d"
  "/root/repo/src/space/subspace.cc" "src/CMakeFiles/flextensor.dir/space/subspace.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/space/subspace.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/flextensor.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/support/logging.cc.o.d"
  "/root/repo/src/support/math_util.cc" "src/CMakeFiles/flextensor.dir/support/math_util.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/support/math_util.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/flextensor.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/flextensor.dir/support/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
