file(REMOVE_RECURSE
  "libflextensor.a"
)
