# Empty dependencies file for flextensor.
# This may be replaced when dependencies are built.
