file(REMOVE_RECURSE
  "CMakeFiles/conv2d_heterogeneous.dir/conv2d_heterogeneous.cpp.o"
  "CMakeFiles/conv2d_heterogeneous.dir/conv2d_heterogeneous.cpp.o.d"
  "conv2d_heterogeneous"
  "conv2d_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv2d_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
