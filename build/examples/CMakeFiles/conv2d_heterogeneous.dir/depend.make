# Empty dependencies file for conv2d_heterogeneous.
# This may be replaced when dependencies are built.
