file(REMOVE_RECURSE
  "CMakeFiles/dnn_scheduling.dir/dnn_scheduling.cpp.o"
  "CMakeFiles/dnn_scheduling.dir/dnn_scheduling.cpp.o.d"
  "dnn_scheduling"
  "dnn_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
