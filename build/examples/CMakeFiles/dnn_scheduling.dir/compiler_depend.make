# Empty compiler generated dependencies file for dnn_scheduling.
# This may be replaced when dependencies are built.
