# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_dnn[1]_include.cmake")
include("/root/repo/build/tests/test_inline[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_winograd[1]_include.cmake")
include("/root/repo/build/tests/test_models_property[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter_edge[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
