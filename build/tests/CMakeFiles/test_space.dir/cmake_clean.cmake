file(REMOVE_RECURSE
  "CMakeFiles/test_space.dir/test_space.cc.o"
  "CMakeFiles/test_space.dir/test_space.cc.o.d"
  "test_space"
  "test_space.pdb"
  "test_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
