# Empty dependencies file for test_space.
# This may be replaced when dependencies are built.
