# Empty dependencies file for test_inline.
# This may be replaced when dependencies are built.
