file(REMOVE_RECURSE
  "CMakeFiles/test_inline.dir/test_inline.cc.o"
  "CMakeFiles/test_inline.dir/test_inline.cc.o.d"
  "test_inline"
  "test_inline.pdb"
  "test_inline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
