file(REMOVE_RECURSE
  "CMakeFiles/test_printer.dir/test_printer.cc.o"
  "CMakeFiles/test_printer.dir/test_printer.cc.o.d"
  "test_printer"
  "test_printer.pdb"
  "test_printer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
