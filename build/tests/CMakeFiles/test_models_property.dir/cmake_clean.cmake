file(REMOVE_RECURSE
  "CMakeFiles/test_models_property.dir/test_models_property.cc.o"
  "CMakeFiles/test_models_property.dir/test_models_property.cc.o.d"
  "test_models_property"
  "test_models_property.pdb"
  "test_models_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
