file(REMOVE_RECURSE
  "CMakeFiles/test_winograd.dir/test_winograd.cc.o"
  "CMakeFiles/test_winograd.dir/test_winograd.cc.o.d"
  "test_winograd"
  "test_winograd.pdb"
  "test_winograd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
