file(REMOVE_RECURSE
  "CMakeFiles/test_schedule.dir/test_schedule.cc.o"
  "CMakeFiles/test_schedule.dir/test_schedule.cc.o.d"
  "test_schedule"
  "test_schedule.pdb"
  "test_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
