file(REMOVE_RECURSE
  "CMakeFiles/test_interpreter_edge.dir/test_interpreter_edge.cc.o"
  "CMakeFiles/test_interpreter_edge.dir/test_interpreter_edge.cc.o.d"
  "test_interpreter_edge"
  "test_interpreter_edge.pdb"
  "test_interpreter_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpreter_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
