# Empty dependencies file for test_interpreter_edge.
# This may be replaced when dependencies are built.
