file(REMOVE_RECURSE
  "CMakeFiles/flextensor-cli.dir/flextensor_cli.cc.o"
  "CMakeFiles/flextensor-cli.dir/flextensor_cli.cc.o.d"
  "flextensor-cli"
  "flextensor-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flextensor-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
