# Empty dependencies file for flextensor-cli.
# This may be replaced when dependencies are built.
