/**
 * @file
 * Hand-computed validation of the static features the generators extract
 * (shared-memory tiles, DRAM traffic, cache tiles) — these numbers are
 * the models' inputs, so they must be exactly right — plus the
 * compute_at staging knob's footprint/traffic trade-off.
 */
#include <gtest/gtest.h>

#include "exec/interpreter.h"
#include "exec/reference.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "schedule/serialize.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

/** 256x256x256 GEMM with a clean 2-level block/thread decomposition. */
Tensor
gemm256()
{
    Tensor a = placeholder("A", {256, 256});
    Tensor b = placeholder("B", {256, 256});
    return ops::gemm(a, b);
}

TEST(Features, GemmSharedTileIsHandComputable)
{
    // Blocks: 8x8 tiles of 32x32 outputs; reduce split 16 x 1 x 16.
    // Tile staged at reduce level 0: per ko iteration the block needs
    // A[32 rows x 16 ks] and B[16 ks x 32 cols] = 2 * 32*16 floats.
    Tensor c = gemm256();
    OpConfig cfg;
    cfg.spatialSplits = {{8, 1, 16, 2}, {8, 1, 16, 2}};
    cfg.reduceSplits = {{16, 1, 16}};
    Scheduled s = generateGpu(c.op(), cfg, v100());
    ASSERT_TRUE(s.features.valid) << s.features.invalidReason;
    EXPECT_EQ(s.features.grid, 64);
    EXPECT_EQ(s.features.threadsPerBlock, 256);
    EXPECT_EQ(s.features.sharedBytesPerBlock, 2 * 32 * 16 * 4);
}

TEST(Features, CacheAtDeeperShrinksSharedTile)
{
    Tensor c = gemm256();
    OpConfig cfg;
    cfg.spatialSplits = {{8, 1, 16, 2}, {8, 1, 16, 2}};
    cfg.reduceSplits = {{4, 4, 16}};
    cfg.cacheAtReduceLevel = 0;
    int64_t smem0 =
        generateGpu(c.op(), cfg, v100()).features.sharedBytesPerBlock;
    cfg.cacheAtReduceLevel = 1;
    int64_t smem1 =
        generateGpu(c.op(), cfg, v100()).features.sharedBytesPerBlock;
    // Level 0 stages km*ki = 64 reduce steps; level 1 stages ki = 16.
    EXPECT_EQ(smem0, 2 * 32 * 64 * 4);
    EXPECT_EQ(smem1, 2 * 32 * 16 * 4);
}

TEST(Features, CacheAtDeeperRaisesDramTraffic)
{
    Tensor c = gemm256();
    OpConfig cfg;
    cfg.spatialSplits = {{8, 1, 16, 2}, {8, 1, 16, 2}};
    cfg.reduceSplits = {{4, 4, 16}};
    cfg.cacheAtReduceLevel = 0;
    int64_t dram0 = generateGpu(c.op(), cfg, v100()).features.dramBytes;
    cfg.cacheAtReduceLevel = 1;
    int64_t dram1 = generateGpu(c.op(), cfg, v100()).features.dramBytes;
    EXPECT_GE(dram1, dram0);
}

TEST(Features, CacheAtPreservesSemantics)
{
    // The knob only moves the modeled staging point; results must match.
    Tensor a = placeholder("A", {12, 16});
    Tensor b = placeholder("B", {16, 8});
    Tensor c = ops::gemm(a, b);
    MiniGraph g(c);
    Rng rng(3);
    BufferMap inputs = makeRandomInputs(g, rng);
    runGraphReference(g, inputs);
    Buffer gold = inputs.at(c.op().get());
    inputs.erase(c.op().get());

    for (int level : {0, 1}) {
        OpConfig cfg;
        cfg.spatialSplits = {{2, 1, 3, 2}, {2, 2, 2, 1}};
        cfg.reduceSplits = {{2, 4, 2}};
        cfg.cacheAtReduceLevel = level;
        Scheduled s = generateGpu(c.op(), cfg, v100());
        BufferMap run = inputs;
        runScheduled(s.nest, run);
        const Buffer &got = run.at(c.op().get());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3) << "level " << level;
    }
}

TEST(Features, GpuSpaceExploresCacheAtWhenEnabled)
{
    Tensor c = gemm256();
    SpaceOptions options;
    options.exploreCacheAt = true;
    ScheduleSpace space =
        buildSpace(c.op(), Target::forGpu(v100()), options);
    bool saw[2] = {false, false};
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        OpConfig cfg = space.decode(space.randomPoint(rng));
        saw[cfg.cacheAtReduceLevel] = true;
    }
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

TEST(Features, CacheAtKnobIsOffByDefault)
{
    Tensor c = gemm256();
    for (const Target &t :
         {Target::forGpu(v100()), Target::forCpu(xeonE5())}) {
        ScheduleSpace space = buildSpace(c.op(), t);
        for (int i = 0; i < space.numSubSpaces(); ++i)
            EXPECT_NE(space.sub(i).role(), KnobRole::CacheAt);
    }
}

TEST(Features, ConvSharedTileCoversHalo)
{
    // 3x3 conv: a block computing an 8x16 output tile with all reduce
    // levels free needs a (8+2)x(16+2) input patch per channel chunk.
    Tensor input = placeholder("I", {1, 16, 32, 32});
    Tensor weight = placeholder("W", {16, 16, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    MiniGraph g(out);
    Operation anchor;
    for (const auto &op : g.computeOps()) {
        if (op->name() == "conv2d")
            anchor = op;
    }
    OpConfig cfg;
    cfg.spatialSplits = {{1, 1, 1, 1},
                         {16, 1, 1, 1},
                         {4, 1, 8, 1},
                         {2, 1, 16, 1}};
    cfg.reduceSplits = {{1, 1, 16}, {1, 1, 3}, {1, 1, 3}};
    Scheduled s = generateGpu(anchor, cfg, v100());
    // Input tile: 16 channels x 10 x 18; weight tile: 1 k x 16 c x 3 x 3.
    int64_t expected = (16 * 10 * 18 + 1 * 16 * 3 * 3) * 4;
    EXPECT_EQ(s.features.sharedBytesPerBlock, expected);
}

TEST(Features, CpuL1TileIsHandComputable)
{
    Tensor c = gemm256();
    OpConfig cfg;
    cfg.spatialSplits = {{16, 2, 8}, {16, 2, 8}};
    cfg.reduceSplits = {{64, 4}};
    Scheduled s = generateCpu(c.op(), cfg, xeonE5());
    // Inner tile: 8x8 outputs over 4 reduce steps:
    // A 8x4 + B 4x8 elements.
    EXPECT_EQ(s.features.l1TileBytes, (8 * 4 + 4 * 8) * 4);
}

TEST(Features, SerializationRoundTripsCacheAt)
{
    OpConfig cfg;
    cfg.spatialSplits = {{4, 4}};
    cfg.reduceSplits = {{2, 2}};
    cfg.cacheAtReduceLevel = 1;
    auto parsed = parseConfig(serializeConfig(cfg));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cacheAtReduceLevel, 1);
}

} // namespace
} // namespace ft
