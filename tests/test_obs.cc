/**
 * @file
 * Tests for the observability layer: the metrics registry (atomicity,
 * snapshot consistency, null-registry tolerance), the trace recorder
 * (serialization round-trip, deterministic byte-identical timelines),
 * the trace_report fold (per-phase breakdown + Fig. 7 curve), the
 * purity invariant (observation never changes exploration results), and
 * the serving layer's snapshot-consistent stats.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "explore/tuner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"
#include "ops/ops.h"
#include "serve/service.h"
#include "space/builder.h"

namespace ft {
namespace {

Tensor
obsGemm()
{
    Tensor a = placeholder("A", {64, 64});
    Tensor b = placeholder("B", {64, 64});
    return ops::gemm(a, b);
}

TEST(Metrics, CounterGaugeHistogramBasics)
{
    MetricsRegistry reg;
    reg.counter("c").add();
    reg.counter("c").add(4);
    reg.gauge("g").set(2.5);
    Histogram &h = reg.histogram("h", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);

    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("c"), 5u);
    EXPECT_DOUBLE_EQ(snap.gauge("g"), 2.5);
    EXPECT_EQ(snap.counter("absent"), 0u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].counts,
              (std::vector<uint64_t>{1, 1, 1}));
    EXPECT_EQ(snap.histograms[0].total, 3u);
    EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 55.5);
    // Same name returns the same instrument.
    EXPECT_EQ(&reg.counter("c"), &reg.counter("c"));
}

TEST(Metrics, ConcurrentAddsAllLand)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("hits");
    Histogram &h = reg.histogram("obs", {10.0, 100.0});
    constexpr int kThreads = 8, kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.observe(static_cast<double>(t));
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(h.total(), uint64_t(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(), 10000.0 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(Metrics, NullRegistryIsTolerated)
{
    EXPECT_EQ(maybeCounter(nullptr, "x"), nullptr);
    EXPECT_EQ(maybeGauge(nullptr, "x"), nullptr);
    EXPECT_EQ(maybeHistogram(nullptr, "x", {1.0}), nullptr);
    ObsContext obs;
    EXPECT_FALSE(obs.enabled());
}

TEST(Trace, EventsRoundTripThroughParser)
{
    TraceRecorder rec;
    rec.meta("run", {tstr("op", "gemm"), tint("seed", 7)});
    rec.begin("step", 1.5, {tint("trial", 0)});
    rec.point("eval", 2.25,
              {tstr("key", "1;2;3"), treal("gflops", 123.456),
               tbool("ok", true)});
    rec.end("step", 3.0);

    ASSERT_EQ(rec.eventCount(), 4u);
    auto lines = rec.lines();
    auto meta = parseTraceLine(lines[0]);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->type, 'M');
    EXPECT_EQ(meta->str("op"), "gemm");
    EXPECT_EQ(meta->integer("seed"), 7);

    auto point = parseTraceLine(lines[2]);
    ASSERT_TRUE(point.has_value());
    EXPECT_EQ(point->index, 2u);
    EXPECT_EQ(point->type, 'P');
    EXPECT_EQ(point->name, "eval");
    EXPECT_DOUBLE_EQ(point->sim, 2.25);
    EXPECT_EQ(point->str("key"), "1;2;3");
    EXPECT_DOUBLE_EQ(point->real("gflops"), 123.456);
    EXPECT_EQ(point->str("ok"), "true");

    EXPECT_FALSE(parseTraceLine("not json").has_value());
}

TEST(Trace, DoubleFormattingRoundTrips)
{
    for (double v : {0.0, 1.0, 0.1, 123.456, 1e-9, 6.02e23, 257.0,
                     1.0 / 3.0}) {
        const std::string s = formatTraceDouble(v);
        EXPECT_DOUBLE_EQ(std::stod(s), v) << s;
    }
}

TEST(Trace, SameSeedRunsProduceByteIdenticalTimelines)
{
    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());
    auto run = [&](TraceRecorder &rec) {
        TuneOptions options;
        options.explore.trials = 12;
        options.explore.warmupPoints = 8;
        options.explore.seed = 0xabc;
        options.explore.obs.trace = &rec;
        return tuneOp(out.op(), target, options);
    };
    TraceRecorder a, b;
    run(a);
    run(b);
    EXPECT_GT(a.eventCount(), 0u);
    EXPECT_EQ(a.toJsonl(), b.toJsonl());
}

TEST(Trace, ObservationDoesNotChangeResults)
{
    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());
    auto run = [&](ObsContext obs) {
        ScheduleSpace space = buildSpace(out.op(), target);
        Evaluator eval(out.op(), space, target);
        ExploreOptions options;
        options.trials = 12;
        options.warmupPoints = 8;
        options.seed = 0xabc;
        options.obs = obs;
        return exploreQMethod(eval, options);
    };
    TraceRecorder rec;
    MetricsRegistry reg;
    ObsContext on;
    on.trace = &rec;
    on.metrics = &reg;
    ExploreResult with = run(on);
    ExploreResult without = run(ObsContext{});

    // Bit-identical: observation is pure.
    EXPECT_EQ(with.bestPoint.key(), without.bestPoint.key());
    EXPECT_EQ(with.bestGflops, without.bestGflops);
    EXPECT_EQ(with.simSeconds, without.simSeconds);
    EXPECT_EQ(with.trialsUsed, without.trialsUsed);
    ASSERT_EQ(with.curve.size(), without.curve.size());
    for (size_t i = 0; i < with.curve.size(); ++i) {
        EXPECT_EQ(with.curve[i].first, without.curve[i].first);
        EXPECT_EQ(with.curve[i].second, without.curve[i].second);
    }
    // And the sinks did observe the run.
    EXPECT_GT(rec.eventCount(), 0u);
    EXPECT_EQ(reg.snapshot().counter("explore.evals"),
              uint64_t(with.trialsUsed));
}

TEST(TraceReport, FoldsPhasesAndCurve)
{
    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());
    TraceRecorder rec;
    TuneOptions options;
    options.explore.trials = 12;
    options.explore.warmupPoints = 8;
    options.explore.seed = 0xabc;
    options.explore.obs.trace = &rec;
    TuneReport tuned = tuneOp(out.op(), target, options);

    std::vector<ParsedTraceEvent> events;
    for (const auto &line : rec.lines()) {
        auto e = parseTraceLine(line);
        ASSERT_TRUE(e.has_value()) << line;
        events.push_back(*e);
    }
    TraceReport report = foldTrace(events);
    EXPECT_EQ(report.op, "gemm");
    EXPECT_EQ(report.method, "Q-method");
    EXPECT_EQ(report.seed, 0xabcu);
    EXPECT_EQ(report.events, rec.eventCount());
    EXPECT_EQ(report.trials, tuned.trials);

    // The curve is the Fig. 7 series: monotone best-so-far, ending at
    // the tuned report's best value.
    ASSERT_FALSE(report.curve.empty());
    for (size_t i = 1; i < report.curve.size(); ++i)
        EXPECT_GE(report.curve[i].second, report.curve[i - 1].second);
    EXPECT_DOUBLE_EQ(report.curve.back().second, tuned.gflops);
    EXPECT_DOUBLE_EQ(report.bestGflops, tuned.gflops);

    // Expected phases appear with completed spans.
    auto phase = [&](const std::string &name) -> const PhaseBreakdown * {
        for (const auto &p : report.phases)
            if (p.name == name)
                return &p;
        return nullptr;
    };
    ASSERT_NE(phase("space_build"), nullptr);
    ASSERT_NE(phase("warmup"), nullptr);
    ASSERT_NE(phase("step"), nullptr);
    EXPECT_EQ(phase("step")->spans, 12u);
    EXPECT_GT(phase("warmup")->simSeconds, 0.0);

    // Rendering and JSON both mention the best value.
    EXPECT_NE(renderTraceReport(report).find("Fig. 7"), std::string::npos);
    EXPECT_NE(traceReportJson(report).find("\"curve\""),
              std::string::npos);
}

TEST(TraceReport, JsonOmitsEmptySections)
{
    // Schema contract: a pure exploration trace (no admission control,
    // no graph scheduling, no verifier rejects, no cost model) must not
    // emit those keys at all — consumers key off presence, not
    // zero-filled placeholder objects.
    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());
    TraceRecorder rec;
    TuneOptions options;
    options.explore.trials = 8;
    options.explore.warmupPoints = 4;
    options.explore.seed = 0xabc;
    options.explore.obs.trace = &rec;
    tuneOp(out.op(), target, options);

    std::vector<ParsedTraceEvent> events;
    for (const auto &line : rec.lines()) {
        auto e = parseTraceLine(line);
        ASSERT_TRUE(e.has_value()) << line;
        events.push_back(*e);
    }
    const std::string json = traceReportJson(foldTrace(events));
    EXPECT_EQ(json.find("\"serve\""), std::string::npos);
    EXPECT_EQ(json.find("\"graph\""), std::string::npos);
    EXPECT_EQ(json.find("\"verifyRejects\""), std::string::npos);
    EXPECT_EQ(json.find("\"costmodel\""), std::string::npos);
    EXPECT_EQ(json.find("\"certificates\""), std::string::npos);
    // The always-on keys are still there.
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    EXPECT_NE(json.find("\"curve\""), std::string::npos);
}

TEST(TraceReport, FoldsCertificateEvents)
{
    // A certified tuning run emits one "certificate" trace point for
    // the winning schedule; the report folds it into a verdict tally
    // plus a per-op entry in text and JSON.
    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());
    TraceRecorder rec;
    TuneOptions options;
    options.explore.trials = 8;
    options.explore.warmupPoints = 4;
    options.explore.seed = 0xabc;
    options.explore.obs.trace = &rec;
    options.certify = true;
    TuneReport tune = tuneOp(out.op(), target, options);
    ASSERT_NE(tune.certificate, nullptr);

    std::vector<ParsedTraceEvent> events;
    for (const auto &line : rec.lines()) {
        auto e = parseTraceLine(line);
        ASSERT_TRUE(e.has_value()) << line;
        events.push_back(*e);
    }
    TraceReport report = foldTrace(events);
    ASSERT_TRUE(report.certificates.any());
    EXPECT_EQ(report.certificates.proven, 1u);
    EXPECT_EQ(report.certificates.refuted, 0u);
    ASSERT_EQ(report.certificates.entries.size(), 1u);
    EXPECT_EQ(report.certificates.entries[0].verdict, "proven");
    EXPECT_GT(report.certificates.entries[0].obligations, 0);
    EXPECT_NE(renderTraceReport(report).find("legality certificates"),
              std::string::npos);
    EXPECT_NE(traceReportJson(report).find("\"certificates\""),
              std::string::npos);
}

TEST(TraceReport, FoldsCostModelEvents)
{
    // A cost-model-assisted run emits warm-start and prune events; the
    // report folds them into the costmodel section of text and JSON.
    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());

    CostModelOptions model_options;
    model_options.syncRefit = true;
    model_options.refitEvery = 16;
    CostModel model(model_options);

    TuneOptions train;
    train.explore.trials = 12;
    train.explore.warmupPoints = 6;
    train.explore.seed = 0xabc;
    train.explore.costModel = &model;
    tuneOp(out.op(), target, train);
    ASSERT_TRUE(model.ready());

    TraceRecorder rec;
    TuneOptions assisted = train;
    assisted.explore.prunerKeep = 0.5;
    assisted.explore.obs.trace = &rec;
    tuneOp(out.op(), target, assisted);

    std::vector<ParsedTraceEvent> events;
    for (const auto &line : rec.lines()) {
        auto e = parseTraceLine(line);
        ASSERT_TRUE(e.has_value()) << line;
        events.push_back(*e);
    }
    TraceReport report = foldTrace(events);
    ASSERT_TRUE(report.costModel.any());
    EXPECT_EQ(report.costModel.warmStarts, 1u);
    EXPECT_GT(report.costModel.pruneEvents, 0u);
    EXPECT_GT(report.costModel.kept, 0u);
    EXPECT_NE(renderTraceReport(report).find("learned cost model"),
              std::string::npos);
    EXPECT_NE(traceReportJson(report).find("\"costmodel\""),
              std::string::npos);
}

TEST(ServiceMetrics, StatsComeFromOneSnapshot)
{
    ServiceOptions service_options;
    service_options.evalThreads = 2;
    service_options.requestThreads = 2;
    TuningService service(service_options);

    Tensor out = obsGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.explore.trials = 8;
    options.explore.warmupPoints = 6;
    service.tune(out, target, options);
    service.tune(out, target, options); // LRU hit

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.tuningRuns, 1u);
    EXPECT_EQ(stats.resultCacheHits, 1u);
    // The scalar fields mirror the registry snapshot they were read
    // from; the per-method mix rides along in the same snapshot.
    EXPECT_EQ(stats.metrics.counter("service.requests"), stats.requests);
    EXPECT_EQ(stats.metrics.counter("service.method.Q-method"), 2u);
    // Exploration metrics aggregate into the service registry.
    EXPECT_EQ(stats.metrics.counter("tuner.runs"), 1u);
    EXPECT_GT(stats.metrics.counter("explore.evals"), 0u);
    EXPECT_EQ(stats.evaluations,
              stats.metrics.counter("service.evaluations"));
}

} // namespace
} // namespace ft
