/**
 * @file
 * Property tests of the analytical device models over synthetic feature
 * vectors: the models must respond to each knob in the physically
 * sensible direction, stay under peak, and degrade gracefully at the
 * resource boundaries. These properties are what make the search
 * landscape meaningful.
 */
#include <gtest/gtest.h>

#include "sim/perf_model.h"

namespace ft {
namespace {

/** A comfortable, valid GPU workload. */
NestFeatures
baseGpu()
{
    NestFeatures f;
    f.totalFlops = 2e9;
    f.outputElems = 1 << 20;
    f.grid = 4096;
    f.threadsPerBlock = 256;
    f.vthreads = 2;
    f.workPerThread = 512;
    f.regsPerThread = 64;
    f.sharedBytesPerBlock = 8 * 1024;
    f.dramBytes = 64ll << 20;
    f.unrollSteps = 8;
    return f;
}

TEST(GpuModelProperty, UnderPeakAcrossThreadSweep)
{
    for (int64_t threads = 32; threads <= 1024; threads *= 2) {
        NestFeatures f = baseGpu();
        f.threadsPerBlock = threads;
        PerfResult p = gpuModelPerf(f, v100());
        ASSERT_TRUE(p.valid) << threads;
        EXPECT_GT(p.gflops, 0.0);
        EXPECT_LT(p.gflops, v100().peakGflops());
    }
}

TEST(GpuModelProperty, TimeScalesWithFlops)
{
    NestFeatures f = baseGpu();
    double t1 = gpuModelPerf(f, v100()).seconds;
    f.totalFlops *= 4;
    double t4 = gpuModelPerf(f, v100()).seconds;
    EXPECT_GT(t4, 2.0 * t1);
}

TEST(GpuModelProperty, BankConflictsSlowDown)
{
    NestFeatures f = baseGpu();
    double clean = gpuModelPerf(f, v100()).gflops;
    f.bankConflictPenalty = 1.25;
    double conflicted = gpuModelPerf(f, v100()).gflops;
    EXPECT_GT(clean, conflicted);
}

TEST(GpuModelProperty, PartialWarpsWasteLanes)
{
    NestFeatures full = baseGpu();
    full.threadsPerBlock = 256;
    NestFeatures partial = baseGpu();
    partial.threadsPerBlock = 250; // same warps, 6 idle lanes
    EXPECT_GT(gpuModelPerf(full, v100()).gflops,
              gpuModelPerf(partial, v100()).gflops);
}

TEST(GpuModelProperty, UncoalescedMemoryBoundKernelsSlowDown)
{
    NestFeatures f = baseGpu();
    f.totalFlops = 1e8;          // memory bound
    f.dramBytes = 512ll << 20;
    double coalesced = gpuModelPerf(f, v100()).seconds;
    f.coalesceFactor = 0.4;
    double scattered = gpuModelPerf(f, v100()).seconds;
    EXPECT_GT(scattered, 2.0 * coalesced);
}

TEST(GpuModelProperty, RegisterPressureKillsOccupancy)
{
    NestFeatures f = baseGpu();
    f.threadsPerBlock = 1024;
    f.regsPerThread = 250; // 1024*250 >> 65536: no block fits
    PerfResult p = gpuModelPerf(f, v100());
    EXPECT_FALSE(p.valid);
    EXPECT_NE(p.reason.find("occupancy"), std::string::npos);
}

TEST(GpuModelProperty, SharedMemoryLimitsBlocksPerSm)
{
    NestFeatures light = baseGpu();
    light.sharedBytesPerBlock = 2 * 1024;
    NestFeatures heavy = baseGpu();
    heavy.sharedBytesPerBlock = 48 * 1024; // one block per SM region
    EXPECT_GE(gpuModelPerf(light, v100()).gflops,
              gpuModelPerf(heavy, v100()).gflops);
}

TEST(GpuModelProperty, TinyGridsUnderutilize)
{
    NestFeatures big = baseGpu();
    NestFeatures tiny = baseGpu();
    tiny.grid = 8; // fewer blocks than SMs
    tiny.totalFlops = big.totalFlops;
    EXPECT_GT(gpuModelPerf(big, v100()).gflops,
              gpuModelPerf(tiny, v100()).gflops);
}

TEST(GpuModelProperty, LaunchOverheadDominatesTinyKernels)
{
    NestFeatures f = baseGpu();
    f.totalFlops = 1e3;
    f.dramBytes = 1024;
    PerfResult p = gpuModelPerf(f, v100());
    ASSERT_TRUE(p.valid);
    EXPECT_GE(p.seconds, v100().launchOverheadUs * 1e-6);
}

/** A comfortable CPU workload. */
NestFeatures
baseCpu()
{
    NestFeatures f;
    f.totalFlops = 1e9;
    f.outputElems = 1 << 18;
    f.parallelExtent = 88;
    f.vecLen = 8;
    f.l1TileBytes = 16 * 1024;
    f.l2TileBytes = 128 * 1024;
    f.cpuDramBytes = 16ll << 20;
    f.unrollSteps = 8;
    return f;
}

TEST(CpuModelProperty, UnderPeakAndPositive)
{
    PerfResult p = cpuModelPerf(baseCpu(), xeonE5());
    ASSERT_TRUE(p.valid);
    EXPECT_GT(p.gflops, 0.0);
    EXPECT_LT(p.gflops, xeonE5().peakGflops());
}

TEST(CpuModelProperty, MoreParallelismIsMonotone)
{
    double prev = 0.0;
    for (int64_t par : {1, 2, 4, 11, 22, 44, 88}) {
        NestFeatures f = baseCpu();
        f.parallelExtent = par;
        double g = cpuModelPerf(f, xeonE5()).gflops;
        EXPECT_GE(g, prev * 0.999) << par;
        prev = g;
    }
}

TEST(CpuModelProperty, LoadImbalancePenalized)
{
    NestFeatures balanced = baseCpu();
    balanced.parallelExtent = 44; // 2 waves of 22
    NestFeatures imbalanced = baseCpu();
    imbalanced.parallelExtent = 23; // 2 waves, second nearly idle
    EXPECT_GT(cpuModelPerf(balanced, xeonE5()).gflops,
              cpuModelPerf(imbalanced, xeonE5()).gflops);
}

TEST(CpuModelProperty, WiderVectorsAreFaster)
{
    double prev = 0.0;
    for (int lanes : {1, 2, 4, 8}) {
        NestFeatures f = baseCpu();
        f.vecLen = lanes;
        double g = cpuModelPerf(f, xeonE5()).gflops;
        EXPECT_GT(g, prev) << lanes;
        prev = g;
    }
}

TEST(CpuModelProperty, CacheSpillsCost)
{
    NestFeatures fits = baseCpu();
    fits.l1TileBytes = 24 * 1024;
    NestFeatures spills = baseCpu();
    spills.l1TileBytes = 2ll << 20; // deep into L3
    EXPECT_GT(cpuModelPerf(fits, xeonE5()).gflops,
              cpuModelPerf(spills, xeonE5()).gflops);
}

TEST(CpuModelProperty, BandwidthRoofline)
{
    NestFeatures f = baseCpu();
    f.totalFlops = 1e7;            // trivial compute
    f.cpuDramBytes = 8ll << 30;    // 8 GB of traffic
    PerfResult p = cpuModelPerf(f, xeonE5());
    ASSERT_TRUE(p.valid);
    double min_time = 8.0 / xeonE5().memBwGBs; // bytes / bandwidth
    EXPECT_GE(p.seconds, min_time * 0.99);
}

/** A comfortable FPGA workload. */
NestFeatures
baseFpga()
{
    NestFeatures f;
    f.totalFlops = 1e9;
    f.outputElems = 1 << 18;
    f.pe = 512;
    f.rounds = 1000;
    f.flopsPerRound = 1e6;
    f.readBytesPerRound = 1e5;
    f.writeBytesPerRound = 1e4;
    f.partition = 8;
    f.bufferBytes = 1 << 20;
    return f;
}

TEST(FpgaModelProperty, TimeScalesWithRounds)
{
    NestFeatures f = baseFpga();
    double t1 = fpgaModelPerf(f, vu9p()).seconds;
    f.rounds *= 3;
    double t3 = fpgaModelPerf(f, vu9p()).seconds;
    EXPECT_NEAR(t3 / t1, 3.0, 0.05);
}

TEST(FpgaModelProperty, ComputeBoundImprovesWithPes)
{
    NestFeatures f = baseFpga();
    f.readBytesPerRound = 10; // compute bound
    double slow = fpgaModelPerf(f, vu9p()).seconds;
    f.pe *= 2;
    double fast = fpgaModelPerf(f, vu9p()).seconds;
    EXPECT_LT(fast, slow);
}

TEST(FpgaModelProperty, ReadBoundIgnoresExtraPes)
{
    NestFeatures f = baseFpga();
    f.readBytesPerRound = 1e7; // read bound
    f.partition = 1;
    double before = fpgaModelPerf(f, vu9p()).seconds;
    f.pe *= 2;
    double after = fpgaModelPerf(f, vu9p()).seconds;
    EXPECT_NEAR(before, after, before * 0.01);
}

TEST(FpgaModelProperty, PartitionSaturatesAtDdrBandwidth)
{
    NestFeatures f = baseFpga();
    f.readBytesPerRound = 1e7;
    f.partition = 8; // 8 * 8 GB/s = DDR limit
    double at_limit = fpgaModelPerf(f, vu9p()).seconds;
    f.partition = 16; // cannot exceed DDR
    double beyond = fpgaModelPerf(f, vu9p()).seconds;
    EXPECT_NEAR(at_limit, beyond, at_limit * 0.01);
}

TEST(ModelProperty, InvalidFeaturesPropagateEverywhere)
{
    NestFeatures f;
    f.valid = false;
    f.invalidReason = "synthetic failure";
    EXPECT_FALSE(gpuModelPerf(f, v100()).valid);
    EXPECT_FALSE(cpuModelPerf(f, xeonE5()).valid);
    EXPECT_FALSE(fpgaModelPerf(f, vu9p()).valid);
    EXPECT_EQ(fpgaModelPerf(f, vu9p()).reason, "synthetic failure");
}

TEST(ModelProperty, DispatchMatchesDirectCalls)
{
    NestFeatures g = baseGpu();
    EXPECT_DOUBLE_EQ(modelPerf(g, Target::forGpu(v100())).seconds,
                     gpuModelPerf(g, v100()).seconds);
    NestFeatures c = baseCpu();
    EXPECT_DOUBLE_EQ(modelPerf(c, Target::forCpu(xeonE5())).seconds,
                     cpuModelPerf(c, xeonE5()).seconds);
    NestFeatures f = baseFpga();
    EXPECT_DOUBLE_EQ(modelPerf(f, Target::forFpga(vu9p())).seconds,
                     fpgaModelPerf(f, vu9p()).seconds);
}

} // namespace
} // namespace ft
