/**
 * @file
 * Tests for the IR printers (every expression kind) and the paper's
 * Figure 3 schedule-encoding example.
 */
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "ops/ops.h"
#include "schedule/encoder.h"

namespace ft {
namespace {

TEST(Printer, ArithmeticKinds)
{
    IterVar i = makeIterVar("i", 8);
    IterVar j = makeIterVar("j", 8);
    Expr vi = varRef(i), vj = varRef(j);
    EXPECT_EQ(toString(add(vi, vj)), "(i + j)");
    EXPECT_EQ(toString(sub(vi, vj)), "(i - j)");
    EXPECT_EQ(toString(mul(vi, intImm(3))), "(i * 3)");
    EXPECT_EQ(toString(floordiv(vi, intImm(2))), "(i / 2)");
    EXPECT_EQ(toString(mod(vi, intImm(4))), "(i % 4)");
}

TEST(Printer, MinMaxSelect)
{
    IterVar i = makeIterVar("i", 8);
    Expr vi = varRef(i);
    EXPECT_EQ(toString(minExpr(vi, intImm(0))), "min(i, 0)");
    EXPECT_EQ(toString(maxExpr(vi, floatImm(0.0))), "max(i, 0f)");
    std::string sel =
        toString(select(lt(vi, intImm(4)), floatImm(1.0), floatImm(2.0)));
    EXPECT_EQ(sel, "select((i < 4), 1f, 2f)");
}

TEST(Printer, ComparisonsAndLogic)
{
    IterVar i = makeIterVar("i", 8);
    Expr vi = varRef(i);
    EXPECT_EQ(toString(le(vi, intImm(5))), "(i <= 5)");
    EXPECT_EQ(toString(eq(vi, intImm(5))), "(i == 5)");
    EXPECT_EQ(toString(logicalAnd(lt(vi, intImm(4)), le(intImm(0), vi))),
              "((i < 4) && (0 <= i))");
    EXPECT_EQ(toString(logicalOr(lt(vi, intImm(1)), eq(vi, intImm(7)))),
              "((i < 1) || (i == 7))");
}

TEST(Printer, AccessWithIndices)
{
    Tensor t = placeholder("T", {4, 4});
    IterVar i = makeIterVar("i", 4);
    Expr e = t({varRef(i), add(varRef(i), intImm(1))});
    EXPECT_EQ(toString(e), "T[i, (i + 1)]");
}

TEST(Printer, PlaceholderSignature)
{
    Tensor t = placeholder("X", {2, 3, 4});
    EXPECT_EQ(toString(t.op()), "placeholder X(2, 3, 4)");
}

TEST(Printer, GraphListsNodesInPostOrder)
{
    Tensor a = placeholder("A", {4, 4});
    Tensor b = placeholder("B", {4, 4});
    Tensor c = ops::gemm(a, b);
    std::string text = toString(MiniGraph(c));
    auto pos_a = text.find("placeholder A");
    auto pos_b = text.find("placeholder B");
    auto pos_g = text.find("gemm[");
    EXPECT_NE(pos_a, std::string::npos);
    EXPECT_NE(pos_b, std::string::npos);
    EXPECT_NE(pos_g, std::string::npos);
    EXPECT_LT(pos_a, pos_g);
    EXPECT_LT(pos_b, pos_g);
}

TEST(Encoder, Figure3ExampleEncodesAsInThePaper)
{
    // Figure 3(d)/(e): GEMM 1024^3 split into [4,4,8,8] / [4,4,8,8] /
    // [8,4,8,4] with a reorder, fuse, and unroll choice. Our encoding
    // keeps the same nested-vector structure: split rows first, then the
    // scalar primitive choices.
    OpConfig cfg;
    cfg.spatialSplits = {{4, 4, 8, 8}, {4, 4, 8, 8}};
    cfg.reduceSplits = {{8, 4, 8, 4}};
    cfg.reorderChoice = 1;
    cfg.unrollDepth = 1;
    auto enc = encodeConfig(cfg);
    ASSERT_EQ(enc.size(), 9u); // 3 split rows + 6 primitive rows
    EXPECT_EQ(enc[0], (std::vector<int64_t>{4, 4, 8, 8}));
    EXPECT_EQ(enc[1], (std::vector<int64_t>{4, 4, 8, 8}));
    EXPECT_EQ(enc[2], (std::vector<int64_t>{8, 4, 8, 4}));
    EXPECT_EQ(enc[3], (std::vector<int64_t>{1})); // reorder
    EXPECT_EQ(enc[5], (std::vector<int64_t>{1})); // unroll
    // Every split row multiplies back to 1024, as in the paper's GEMM.
    for (int row = 0; row < 3; ++row) {
        int64_t prod = 1;
        for (int64_t f : enc[row])
            prod *= f;
        EXPECT_EQ(prod, 1024);
    }
}

TEST(Printer, ConfigToStringIsReadable)
{
    OpConfig cfg;
    cfg.spatialSplits = {{2, 8}};
    cfg.reduceSplits = {{4, 4}};
    cfg.fpgaBufferRows = 3;
    cfg.fpgaPartition = 4;
    std::string text = cfg.toString();
    EXPECT_NE(text.find("[2, 8]"), std::string::npos);
    EXPECT_NE(text.find("buffer 3"), std::string::npos);
    EXPECT_NE(text.find("partition 4"), std::string::npos);
}

} // namespace
} // namespace ft
