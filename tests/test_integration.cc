/**
 * @file
 * Integration tests: whole-graph scheduling (Algorithm 1), the NCHWc CPU
 * layout, and cross-module pipelines that exercise the public API the way
 * the examples and benches do.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/flextensor.h"
#include "dnn/models.h"
#include "ir/inline.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(TuneGraph, SchedulesEveryReductionNode)
{
    // relu(gemm(A, B)) @ C : two reduction nodes after inlining (the two
    // gemms), with the elementwise relu folded away.
    Tensor a = placeholder("A", {32, 24});
    Tensor b = placeholder("B", {24, 16});
    Tensor c = placeholder("C", {16, 8});
    Tensor first = ops::relu(ops::gemm(a, b));
    Tensor second = ops::gemm(first, c);

    TuneOptions options;
    options.explore.trials = 15;
    GraphTuneReport report =
        tuneGraph(second, Target::forGpu(v100()), options);
    ASSERT_EQ(report.nodes.size(), 2u);
    EXPECT_EQ(report.nodes[0].first, "gemm");
    EXPECT_EQ(report.nodes[1].first, "gemm");
    EXPECT_GT(report.totalKernelSeconds, 0.0);
    EXPECT_GT(report.simExploreSeconds, 0.0);
    for (const auto &[name, node] : report.nodes)
        EXPECT_GT(node.gflops, kInvalidGflops) << name;
}

TEST(TuneGraph, ConvGraphCollapsesToSingleNode)
{
    Tensor input = placeholder("I", {1, 8, 10, 10});
    Tensor weight = placeholder("W", {8, 8, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::relu(ops::conv2d(input, weight, p));

    TuneOptions options;
    options.explore.trials = 10;
    GraphTuneReport report =
        tuneGraph(out, Target::forCpu(xeonE5()), options);
    // pad and relu both inline; only the convolution is scheduled. The
    // root relu becomes the schedulable node wrapping the conv? No: relu
    // is the root, so it is kept and the conv stays a reduction node.
    ASSERT_EQ(report.nodes.size(), 2u);
    EXPECT_EQ(report.nodes[0].first, "conv2d");
}

TEST(Nchwc, ShapeAndGraph)
{
    // 32 channels blocked by 8; 64 output channels blocked by 8.
    Tensor input = placeholder("I", {1, 4, 14, 14, 8});
    Tensor weight = placeholder("W", {8, 4, 3, 3, 8, 8});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2dNchwc(input, weight, p);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 8, 14, 14, 8}));
    const auto *op = static_cast<const ComputeOp *>(out.op().get());
    EXPECT_EQ(op->reduceAxis().size(), 4u); // rco, rci, rx, ry
}

TEST(Nchwc, MatchesNchwNumerically)
{
    // Same convolution in both layouts must produce the same numbers
    // (after layout transformation of inputs and outputs).
    const int64_t C = 8, K = 8, HW = 6, cb = 4, kb = 4;
    Rng rng(5);

    // NCHW reference.
    Tensor input = placeholder("I", {1, C, HW, HW});
    Tensor weight = placeholder("W", {K, C, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor ref = ops::conv2d(input, weight, p);
    MiniGraph ref_graph(ref);
    BufferMap ref_buffers = makeRandomInputs(ref_graph, rng);
    runGraphReference(ref_graph, ref_buffers);
    const Buffer &I = ref_buffers.at(input.op().get());
    const Buffer &W = ref_buffers.at(weight.op().get());
    const Buffer &O = ref_buffers.at(ref.op().get());

    // Blocked layout with repacked data.
    Tensor input_b = placeholder("Ib", {1, C / cb, HW, HW, cb});
    Tensor weight_b = placeholder("Wb", {K / kb, C / cb, 3, 3, cb, kb});
    Tensor out_b = ops::conv2dNchwc(input_b, weight_b, p);
    MiniGraph blocked_graph(out_b);
    BufferMap blocked;
    Buffer ib(input_b.op());
    for (int64_t c = 0; c < C; ++c)
        for (int64_t y = 0; y < HW; ++y)
            for (int64_t x = 0; x < HW; ++x)
                ib.at({0, c / cb, y, x, c % cb}) = I.at({0, c, y, x});
    Buffer wb(weight_b.op());
    for (int64_t k = 0; k < K; ++k)
        for (int64_t c = 0; c < C; ++c)
            for (int64_t r = 0; r < 3; ++r)
                for (int64_t s = 0; s < 3; ++s)
                    wb.at({k / kb, c / cb, r, s, c % cb, k % kb}) =
                        W.at({k, c, r, s});
    blocked.emplace(input_b.op().get(), std::move(ib));
    blocked.emplace(weight_b.op().get(), std::move(wb));
    runGraphReference(blocked_graph, blocked);
    const Buffer &Ob = blocked.at(out_b.op().get());

    for (int64_t k = 0; k < K; ++k)
        for (int64_t y = 0; y < HW; ++y)
            for (int64_t x = 0; x < HW; ++x)
                ASSERT_NEAR(Ob.at({0, k / kb, y, x, k % kb}),
                            O.at({0, k, y, x}), 1e-3)
                    << "k=" << k << " y=" << y << " x=" << x;
}

TEST(Nchwc, SchedulesPreserveSemantics)
{
    Tensor input = placeholder("I", {1, 2, 6, 6, 4});
    Tensor weight = placeholder("W", {2, 2, 3, 3, 4, 4});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2dNchwc(input, weight, p);

    MiniGraph g(out);
    Operation anchor = anchorOp(g);
    Rng rng(9);
    BufferMap base = makeRandomInputs(g, rng);
    runGraphReference(g, base);
    Buffer gold = base.at(anchor.get());
    base.erase(anchor.get());

    Target target = Target::forCpu(xeonE5());
    ScheduleSpace space = buildSpace(anchor, target);
    for (int trial = 0; trial < 5; ++trial) {
        Scheduled s =
            generate(anchor, space.decode(space.randomPoint(rng)), target);
        BufferMap run = base;
        runScheduled(s.nest, run, 2);
        const Buffer &got = run.at(anchor.get());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3);
    }
}

TEST(Nchwc, BlockedLayoutTunesFasterOnCpu)
{
    // The paper's §6.3: FlexTensor uses NCHWc on CPU to exploit
    // vectorization. The blocked layout's innermost axis is a perfect
    // SIMD lane dimension, so the tuned result should beat plain NCHW.
    const int64_t C = 64, K = 64, HW = 28;
    Tensor input = placeholder("I", {1, C, HW, HW});
    Tensor weight = placeholder("W", {K, C, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor nchw = ops::conv2d(input, weight, p);

    Tensor input_b = placeholder("Ib", {1, C / 8, HW, HW, 8});
    Tensor weight_b = placeholder("Wb", {K / 8, C / 8, 3, 3, 8, 8});
    Tensor nchwc = ops::conv2dNchwc(input_b, weight_b, p);

    TuneOptions options;
    options.explore.trials = 60;
    Target target = Target::forCpu(xeonE5());
    TuneReport plain = tune(nchw, target, options);
    TuneReport blocked = tune(nchwc, target, options);
    EXPECT_GT(blocked.gflops, plain.gflops * 0.9)
        << "blocked layout should be at least competitive";
}

TEST(Integration, VersionIsSet)
{
    EXPECT_STREQ(version(), "1.0.0");
}

TEST(Integration, YoloNetworkContainsAllTable4Layers)
{
    // Every distinctive layer of Table 4 appears in the YOLO-v1 graph.
    Network net = yoloV1();
    std::vector<int64_t> cur = net.inputShape;
    std::set<std::string> found;
    for (const auto &l : net.layers) {
        if (l.kind == LayerSpec::Kind::Conv) {
            for (const auto &t4 : ops::yoloLayers()) {
                if (t4.inChannels == cur[1] &&
                    t4.outChannels == l.outChannels &&
                    t4.imageSize == cur[2] && t4.kernel == l.kernel &&
                    t4.stride == l.stride) {
                    found.insert(t4.name);
                }
            }
        }
        // Propagate the shape.
        auto shapes = layerShapes(net);
        (void)shapes;
        if (l.kind == LayerSpec::Kind::Conv) {
            int64_t oh = (cur[2] + 2 * l.padding - l.kernel) / l.stride + 1;
            cur = {cur[0], l.outChannels, oh, oh};
        } else if (l.kind == LayerSpec::Kind::MaxPool) {
            int64_t oh = (cur[2] - l.kernel) / l.stride + 1;
            cur = {cur[0], cur[1], oh, oh};
        } else {
            break;
        }
    }
    EXPECT_EQ(found.size(), ops::yoloLayers().size())
        << "all 15 distinctive layers should appear";
}

} // namespace
} // namespace ft
