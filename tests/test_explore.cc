/**
 * @file
 * Tests for the back-end exploration: evaluator caching and clock, SA
 * selection probabilities, and the search methods' behaviour (all methods
 * beat random init; Q-method reaches a target faster than exhaustive
 * P-method on the simulated clock, as in Section 6.5).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "explore/sa.h"
#include "explore/tuner.h"
#include "ops/ops.h"
#include "support/rng.h"

namespace ft {
namespace {

Tensor
tuneGemm()
{
    Tensor a = placeholder("A", {256, 256});
    Tensor b = placeholder("B", {256, 256});
    return ops::gemm(a, b);
}

class EvaluatorTest : public ::testing::Test
{
  protected:
    EvaluatorTest()
        : out_(tuneGemm()),
          target_(Target::forGpu(v100())),
          space_(buildSpace(out_.op(), target_)),
          eval_(out_.op(), space_, target_)
    {}

    Tensor out_;
    Target target_;
    ScheduleSpace space_;
    Evaluator eval_;
};

TEST_F(EvaluatorTest, CachesRepeatEvaluations)
{
    Rng rng(1);
    Point p = space_.randomPoint(rng);
    double first = eval_.evaluate(p);
    int trials = eval_.numTrials();
    double clock = eval_.simulatedSeconds();
    double second = eval_.evaluate(p);
    EXPECT_DOUBLE_EQ(first, second);
    EXPECT_EQ(eval_.numTrials(), trials);
    EXPECT_DOUBLE_EQ(eval_.simulatedSeconds(), clock);
}

TEST_F(EvaluatorTest, ChargesMeasureCostPerNewPoint)
{
    eval_.setMeasureCost(0.5);
    Rng rng(2);
    for (int i = 0; i < 5; ++i)
        eval_.evaluate(space_.randomPoint(rng));
    EXPECT_NEAR(eval_.simulatedSeconds(), 0.5 * eval_.numTrials(), 1e-9);
}

TEST_F(EvaluatorTest, TracksBest)
{
    Rng rng(3);
    double best = 0;
    for (int i = 0; i < 20; ++i)
        best = std::max(best, eval_.evaluate(space_.randomPoint(rng)));
    EXPECT_DOUBLE_EQ(eval_.best(), best);
    EXPECT_DOUBLE_EQ(eval_.evaluate(eval_.bestPoint()), best);
}

TEST_F(EvaluatorTest, CurveIsMonotone)
{
    Rng rng(4);
    for (int i = 0; i < 30; ++i)
        eval_.evaluate(space_.randomPoint(rng));
    const auto &curve = eval_.curve();
    ASSERT_EQ(curve.size(), 30u);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].first, curve[i - 1].first);   // time advances
        EXPECT_GE(curve[i].second, curve[i - 1].second); // best grows
    }
}

TEST(SaChooser, WeightFollowsPaperFormula)
{
    SaChooser chooser(2.0);
    // exp(-gamma * (E* - Ep) / E*)
    EXPECT_NEAR(chooser.weight(100.0, 100.0), 1.0, 1e-12);
    EXPECT_NEAR(chooser.weight(50.0, 100.0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(chooser.weight(0.0, 100.0), std::exp(-2.0), 1e-12);
}

TEST_F(EvaluatorTest, SaPrefersBetterPoints)
{
    Rng rng(5);
    for (int i = 0; i < 40; ++i)
        eval_.evaluate(space_.randomPoint(rng));

    SaChooser chooser(2.0);
    const double best = eval_.best();
    // Fraction of H that is "good" (upper half of the value range).
    int good_in_h = 0;
    for (const auto &e : eval_.history())
        good_in_h += e.gflops >= 0.5 * best;
    const double uniform_frac =
        static_cast<double>(good_in_h) / eval_.history().size();

    int good = 0;
    const int draws = 400;
    for (int i = 0; i < draws; ++i) {
        const Point &p = chooser.choose(eval_, rng);
        if (eval_.evaluate(p) >= 0.5 * best)
            ++good;
    }
    // SA must select good points clearly more often than uniform choice.
    EXPECT_GT(static_cast<double>(good) / draws, 1.5 * uniform_frac);
}

TEST(Explore, QMethodImprovesOverWarmup)
{
    Tensor out = tuneGemm();
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);

    // Baseline: only the warmup randoms.
    Evaluator warm(out.op(), space, target);
    ExploreOptions warm_opts;
    warm_opts.trials = 8;
    exploreRandom(warm, warm_opts);

    Evaluator eval(out.op(), space, target);
    ExploreOptions opts;
    opts.trials = 60;
    opts.seed = warm_opts.seed;
    ExploreResult r = exploreQMethod(eval, opts);
    EXPECT_GT(r.bestGflops, warm.best());
    EXPECT_GT(r.trialsUsed, 8);
}

TEST(Explore, PMethodEvaluatesNeighborhoods)
{
    Tensor out = tuneGemm();
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    Evaluator eval(out.op(), space, target);
    ExploreOptions opts;
    opts.trials = 3;
    opts.startingPoints = 1;
    ExploreResult r = explorePMethod(eval, opts);
    // Each step measures up to numDirections neighbors.
    EXPECT_GT(r.trialsUsed, 20);
    EXPECT_GT(r.bestGflops, kInvalidGflops);
}

TEST(Explore, TargetGflopsStopsEarly)
{
    Tensor out = tuneGemm();
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    Evaluator eval(out.op(), space, target);
    ExploreOptions opts;
    opts.trials = 1000;
    opts.targetGflops = 1.0; // trivially reachable
    ExploreResult r = exploreQMethod(eval, opts);
    EXPECT_LT(r.trialsUsed, 100);
}

TEST(Explore, AutoTvmRunsOnTemplateSpace)
{
    Tensor out = tuneGemm();
    Target target = Target::forGpu(v100());
    SpaceOptions so;
    so.templateRestricted = true;
    ScheduleSpace space = buildSpace(out.op(), target, so);
    Evaluator eval(out.op(), space, target);
    ExploreOptions opts;
    opts.trials = 48;
    ExploreResult r = exploreAutoTvm(eval, opts);
    EXPECT_GE(r.trialsUsed, 40);
    EXPECT_GT(r.bestGflops, kInvalidGflops);
    EXPECT_GT(r.simSeconds, 0.0);
}

TEST(Explore, DeterministicForFixedSeed)
{
    Tensor out = tuneGemm();
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    ExploreOptions opts;
    opts.trials = 25;
    Evaluator e1(out.op(), space, target);
    Evaluator e2(out.op(), space, target);
    ExploreResult r1 = exploreQMethod(e1, opts);
    ExploreResult r2 = exploreQMethod(e2, opts);
    EXPECT_DOUBLE_EQ(r1.bestGflops, r2.bestGflops);
    EXPECT_EQ(r1.trialsUsed, r2.trialsUsed);
}

TEST(Tuner, EndToEndGpuGemm)
{
    TuneOptions opts;
    opts.explore.trials = 40;
    TuneReport report = tune(tuneGemm(), Target::forGpu(v100()), opts);
    EXPECT_GT(report.gflops, 100.0); // far better than naive
    EXPECT_GT(report.spaceSize, 1e6);
    EXPECT_EQ(report.device, "V100");
    EXPECT_FALSE(report.curve.empty());
    EXPECT_GT(report.kernelSeconds, 0.0);
}

TEST(Tuner, EndToEndCpuAndFpga)
{
    TuneOptions opts;
    opts.explore.trials = 30;
    TuneReport cpu = tune(tuneGemm(), Target::forCpu(xeonE5()), opts);
    EXPECT_GT(cpu.gflops, 5.0);
    TuneReport fpga = tune(tuneGemm(), Target::forFpga(vu9p()), opts);
    EXPECT_GT(fpga.gflops, 1.0);
}

TEST(Tuner, MethodNamesAreStable)
{
    EXPECT_EQ(methodName(Method::QMethod), "Q-method");
    EXPECT_EQ(methodName(Method::PMethod), "P-method");
    EXPECT_EQ(methodName(Method::AutoTvm), "AutoTVM");
    EXPECT_EQ(methodName(Method::Random), "random");
}

} // namespace
} // namespace ft
