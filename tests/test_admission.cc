/**
 * @file
 * Tests for admission control and graceful degradation: the virtual
 * worker timeline, deadline-aware shedding, priority headroom, brownout
 * mode, the per-op circuit breaker, end-to-end deadline propagation into
 * the explorer, and dispatch-table persistence across service restarts.
 *
 * The controller never reads a clock itself — every test drives time as
 * plain doubles (and the service tests inject a manual clock via
 * ServiceOptions::clock), so all decisions here are deterministic.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "family/tune_family.h"
#include "obs/trace_report.h"
#include "ops/ops.h"
#include "serve/admission.h"
#include "serve/service.h"

namespace ft {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

AdmissionOptions
plainOptions()
{
    AdmissionOptions options;
    options.workers = 1;
    options.maxQueueDepth = 32;
    options.brownoutDepth = 32; // never triggers unless a test lowers it
    options.interactiveReserve = 0;
    options.defaultCostSeconds = 1.0;
    options.safetyFactor = 1.0; // clean arithmetic in timeline tests
    return options;
}

TEST(AdmissionController, ReservesVirtualWorkerTimeline)
{
    AdmissionController ctrl(plainOptions());

    AdmissionDecision first = ctrl.admit("gemm", RequestPriority::Batch,
                                         /*now=*/0.0, /*deadline=*/kInf);
    ASSERT_TRUE(first.admitted());
    EXPECT_DOUBLE_EQ(first.predictedStart, 0.0);
    EXPECT_DOUBLE_EQ(first.predictedFinish, 1.0);

    // The single worker is busy until t=1, so the next request queues
    // behind it on the virtual timeline.
    AdmissionDecision second = ctrl.admit("gemm", RequestPriority::Batch,
                                          0.0, kInf);
    ASSERT_TRUE(second.admitted());
    EXPECT_DOUBLE_EQ(second.predictedStart, 1.0);
    EXPECT_DOUBLE_EQ(second.predictedFinish, 2.0);
    EXPECT_NE(second.ticket, first.ticket);

    AdmissionStats stats = ctrl.stats();
    EXPECT_EQ(stats.admitted, 2u);
    EXPECT_EQ(stats.queueDepth, 2u);

    ctrl.onComplete("gemm", first.ticket, 1.0, true);
    ctrl.onComplete("gemm", second.ticket, 2.0, true);
    EXPECT_EQ(ctrl.stats().queueDepth, 0u);
}

TEST(AdmissionController, ShedsWhenPredictedFinishMissesDeadline)
{
    AdmissionOptions options = plainOptions();
    options.defaultCostSeconds = 2.0;
    AdmissionController ctrl(options);

    // Cost 2s against a 1s deadline: infeasible, shed immediately.
    AdmissionDecision shed = ctrl.admit("gemm", RequestPriority::Batch,
                                        /*now=*/10.0, /*deadline=*/11.0);
    EXPECT_EQ(shed.outcome, AdmissionOutcome::Shed);
    EXPECT_NE(shed.reason.find("code=FT-ADM-DEADLINE"), std::string::npos);
    EXPECT_EQ(ctrl.stats().shedDeadline, 1u);
    // The shed request reserved nothing.
    EXPECT_EQ(ctrl.stats().queueDepth, 0u);

    // The same request with a feasible deadline is admitted and carries
    // its remaining wall budget for propagation down the stack.
    AdmissionDecision ok = ctrl.admit("gemm", RequestPriority::Batch,
                                      10.0, 13.0);
    ASSERT_TRUE(ok.admitted());
    EXPECT_DOUBLE_EQ(ok.budgetSeconds, 3.0);
}

TEST(AdmissionController, QueueBoundWithInteractiveHeadroom)
{
    AdmissionOptions options = plainOptions();
    options.maxQueueDepth = 4;
    options.interactiveReserve = 2;
    options.brownoutDepth = 100; // out of the way
    AdmissionController ctrl(options);

    // Batch fills only up to maxQueueDepth - reserve = 2 slots.
    EXPECT_TRUE(
        ctrl.admit("a", RequestPriority::Batch, 0.0, kInf).admitted());
    EXPECT_TRUE(
        ctrl.admit("b", RequestPriority::Batch, 0.0, kInf).admitted());
    AdmissionDecision shed =
        ctrl.admit("c", RequestPriority::Batch, 0.0, kInf);
    EXPECT_EQ(shed.outcome, AdmissionOutcome::Shed);
    EXPECT_NE(shed.reason.find("code=FT-ADM-QUEUE-FULL"),
              std::string::npos);

    // Interactive traffic still has the reserved headroom...
    EXPECT_TRUE(
        ctrl.admit("d", RequestPriority::Interactive, 0.0, kInf)
            .admitted());
    EXPECT_TRUE(
        ctrl.admit("e", RequestPriority::Interactive, 0.0, kInf)
            .admitted());
    // ...and only sheds once the whole queue is full.
    EXPECT_EQ(ctrl.admit("f", RequestPriority::Interactive, 0.0, kInf)
                  .outcome,
              AdmissionOutcome::Shed);
    EXPECT_EQ(ctrl.stats().shedQueueFull, 2u);
}

TEST(AdmissionController, BrownoutPastSaturationDepth)
{
    AdmissionOptions options = plainOptions();
    options.maxQueueDepth = 8;
    options.brownoutDepth = 2;
    AdmissionController ctrl(options);

    EXPECT_TRUE(
        ctrl.admit("a", RequestPriority::Batch, 0.0, kInf).admitted());
    EXPECT_TRUE(
        ctrl.admit("b", RequestPriority::Batch, 0.0, kInf).admitted());
    AdmissionDecision brown =
        ctrl.admit("c", RequestPriority::Batch, 0.0, kInf);
    EXPECT_EQ(brown.outcome, AdmissionOutcome::Brownout);
    EXPECT_NE(brown.reason.find("code=FT-ADM-BROWNOUT"),
              std::string::npos);
    EXPECT_EQ(ctrl.stats().brownouts, 1u);
}

TEST(AdmissionController, BreakerOpensCoolsDownAndProbes)
{
    AdmissionOptions options = plainOptions();
    options.maxQueueDepth = 8;
    options.breakerFailureThreshold = 2;
    options.breakerCooldownSeconds = 10.0;
    AdmissionController ctrl(options);

    // Two consecutive failures open the breaker.
    for (int i = 0; i < 2; ++i) {
        AdmissionDecision d =
            ctrl.admit("bad", RequestPriority::Batch, 0.0, kInf);
        ASSERT_TRUE(d.admitted());
        ctrl.onComplete("bad", d.ticket, 1.0, /*success=*/false);
    }
    EXPECT_TRUE(ctrl.breakerOpen("bad", 5.0));
    EXPECT_EQ(ctrl.stats().breakersOpened, 1u);
    EXPECT_EQ(ctrl.stats().openBreakers, 1u);
    // Other op keys are unaffected.
    EXPECT_FALSE(ctrl.breakerOpen("good", 5.0));

    // During the cooldown the key is rejected outright.
    AdmissionDecision rejected =
        ctrl.admit("bad", RequestPriority::Batch, 5.0, kInf);
    EXPECT_EQ(rejected.outcome, AdmissionOutcome::BreakerOpen);
    EXPECT_NE(rejected.reason.find("code=FT-ADM-BREAKER"),
              std::string::npos);

    // After the cooldown exactly one probe passes (half-open) while a
    // second concurrent request is still rejected.
    AdmissionDecision probe =
        ctrl.admit("bad", RequestPriority::Batch, 12.0, kInf);
    ASSERT_TRUE(probe.admitted());
    EXPECT_EQ(ctrl.admit("bad", RequestPriority::Batch, 12.0, kInf)
                  .outcome,
              AdmissionOutcome::BreakerOpen);

    // A successful probe closes the breaker for good.
    ctrl.onComplete("bad", probe.ticket, 13.0, /*success=*/true);
    EXPECT_FALSE(ctrl.breakerOpen("bad", 13.0));
    EXPECT_TRUE(
        ctrl.admit("bad", RequestPriority::Batch, 13.0, kInf).admitted());
}

TEST(AdmissionController, FailedProbeReopensBreaker)
{
    AdmissionOptions options = plainOptions();
    options.maxQueueDepth = 8;
    options.breakerFailureThreshold = 1;
    options.breakerCooldownSeconds = 10.0;
    AdmissionController ctrl(options);

    AdmissionDecision d =
        ctrl.admit("bad", RequestPriority::Batch, 0.0, kInf);
    ASSERT_TRUE(d.admitted());
    ctrl.onComplete("bad", d.ticket, 1.0, false);
    EXPECT_TRUE(ctrl.breakerOpen("bad", 1.0));

    AdmissionDecision probe =
        ctrl.admit("bad", RequestPriority::Batch, 12.0, kInf);
    ASSERT_TRUE(probe.admitted());
    ctrl.onComplete("bad", probe.ticket, 13.0, false);
    // Re-opened: rejects for another full cooldown from the failure.
    EXPECT_TRUE(ctrl.breakerOpen("bad", 20.0));
    EXPECT_EQ(ctrl.admit("bad", RequestPriority::Batch, 20.0, kInf)
                  .outcome,
              AdmissionOutcome::BreakerOpen);
    // The breaker never closed in between, so this is still ONE open
    // episode, not two.
    EXPECT_EQ(ctrl.stats().breakersOpened, 1u);
    EXPECT_EQ(ctrl.stats().openBreakers, 1u);
}

TEST(AdmissionController, ProbeShedByQueueDoesNotWedgeBreaker)
{
    AdmissionOptions options = plainOptions();
    options.maxQueueDepth = 1;
    options.breakerFailureThreshold = 1;
    options.breakerCooldownSeconds = 1.0;
    AdmissionController ctrl(options);

    AdmissionDecision d =
        ctrl.admit("bad", RequestPriority::Batch, 0.0, kInf);
    ASSERT_TRUE(d.admitted());
    ctrl.onComplete("bad", d.ticket, 0.5, false);

    // Fill the single queue slot with another key, then probe: the
    // probe is shed by the queue bound, which must NOT consume the
    // half-open slot.
    AdmissionDecision filler =
        ctrl.admit("other", RequestPriority::Batch, 2.0, kInf);
    ASSERT_TRUE(filler.admitted());
    EXPECT_EQ(ctrl.admit("bad", RequestPriority::Batch, 2.0, kInf).outcome,
              AdmissionOutcome::Shed);

    // Once the queue drains, the probe goes through.
    ctrl.onComplete("other", filler.ticket, 3.0, true);
    EXPECT_TRUE(
        ctrl.admit("bad", RequestPriority::Batch, 3.0, kInf).admitted());
}

TEST(AdmissionController, EarlyCompletionReleasesReservationAndFeedsEwma)
{
    AdmissionOptions options = plainOptions();
    options.defaultCostSeconds = 10.0;
    options.costEwmaAlpha = 0.5;
    AdmissionController ctrl(options);

    AdmissionDecision d =
        ctrl.admit("gemm", RequestPriority::Batch, 0.0, kInf);
    ASSERT_TRUE(d.admitted());
    EXPECT_DOUBLE_EQ(d.predictedFinish, 10.0);

    // Finishing at t=2 releases the pessimistic reservation, and the
    // first observation replaces the default cost outright.
    ctrl.onComplete("gemm", d.ticket, 2.0, true);
    EXPECT_DOUBLE_EQ(ctrl.stats().costEstimate, 2.0);
    AdmissionDecision next =
        ctrl.admit("gemm", RequestPriority::Batch, 2.0, /*deadline=*/5.0);
    ASSERT_TRUE(next.admitted());
    EXPECT_DOUBLE_EQ(next.predictedStart, 2.0);
    EXPECT_DOUBLE_EQ(next.predictedFinish, 4.0);

    // Subsequent observations blend by the EWMA weight: 0.5*4 + 0.5*2.
    ctrl.onComplete("gemm", next.ticket, 6.0, true);
    EXPECT_DOUBLE_EQ(ctrl.stats().costEstimate, 3.0);
}

TEST(AdmissionController, EmitsCountersHistogramAndTracePoints)
{
    const std::string trace_path =
        ::testing::TempDir() + "ft_admission_trace.jsonl";
    MetricsRegistry metrics;
    TraceRecorder trace;

    AdmissionOptions options = plainOptions();
    options.maxQueueDepth = 2;
    options.brownoutDepth = 1;
    options.breakerFailureThreshold = 1;
    options.breakerCooldownSeconds = 100.0;
    options.metrics = &metrics;
    options.trace = &trace;
    AdmissionController ctrl(options);

    AdmissionDecision a =
        ctrl.admit("op", RequestPriority::Batch, 0.0, kInf);
    ASSERT_TRUE(a.admitted());
    EXPECT_EQ(ctrl.admit("op", RequestPriority::Batch, 0.0, kInf).outcome,
              AdmissionOutcome::Brownout); // depth 1 >= brownoutDepth
    ctrl.onComplete("op", a.ticket, 1.0, false); // opens the breaker
    EXPECT_EQ(ctrl.admit("op", RequestPriority::Batch, 2.0, kInf).outcome,
              AdmissionOutcome::BreakerOpen);

    MetricsSnapshot snap = metrics.snapshot();
    EXPECT_EQ(snap.counter("admission.admitted"), 1u);
    EXPECT_EQ(snap.counter("admission.brownouts"), 1u);
    EXPECT_EQ(snap.counter("admission.breaker_rejects"), 1u);
    EXPECT_EQ(snap.counter("admission.breakers_opened"), 1u);
    bool saw_hist = false;
    for (const auto &h : snap.histograms)
        saw_hist = saw_hist || (h.name == "admission.queue_depth" &&
                                h.total == 3);
    EXPECT_TRUE(saw_hist);

    // The trace timeline folds into the trace-report serve section.
    ASSERT_TRUE(trace.writeFile(trace_path));
    auto report = loadTraceReport(trace_path);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->serve.admitted, 1u);
    EXPECT_EQ(report->serve.brownouts, 1u);
    EXPECT_EQ(report->serve.breakerRejects, 1u);
    EXPECT_EQ(report->serve.breakerOpens, 1u);
    bool saw_brownout_reason = false;
    for (const auto &[code, count] : report->serve.reasons)
        saw_brownout_reason =
            saw_brownout_reason || (code == "FT-ADM-BROWNOUT" && count == 1);
    EXPECT_TRUE(saw_brownout_reason);
    EXPECT_FALSE(report->serve.queueDepths.empty());
    // And the JSON rendering carries the serve object.
    EXPECT_NE(traceReportJson(*report).find("\"serve\""),
              std::string::npos);
    std::remove(trace_path.c_str());
}

// ---------------------------------------------------------------------
// Service-level integration: admitted request paths.

Tensor
admissionGemm(int64_t n = 64)
{
    Tensor a = placeholder("A", {n, n});
    Tensor b = placeholder("B", {n, n});
    return ops::gemm(a, b);
}

TEST(ServiceAdmission, ShedRequestIsRejectedImmediatelyWithReason)
{
    double now = 0.0;
    ServiceOptions service_options;
    service_options.requestThreads = 1;
    service_options.clock = [&now] { return now; };
    service_options.admission.maxQueueDepth = 1;
    service_options.admission.interactiveReserve = 0;
    service_options.admission.brownoutDepth = 1;
    TuningService service(service_options);

    // Occupy the only queue slot directly (never completed), so the
    // next submission is decided synchronously without racing a run.
    ASSERT_TRUE(service.admission()
                    .admit("occupier", RequestPriority::Interactive, now,
                           kInf)
                    .admitted());

    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 4;
    auto future = service.submitAdmitted(admissionGemm(), Target::forGpu(v100()),
                                         options,
                                         {RequestPriority::Batch, kInf});
    // A shed request resolves without ever occupying a pool slot.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    AdmittedReport report = future.get();
    EXPECT_EQ(report.outcome, AdmissionOutcome::Shed);
    EXPECT_FALSE(report.served());
    EXPECT_NE(report.reason.find("code=FT-ADM-QUEUE-FULL"),
              std::string::npos);
    EXPECT_EQ(service.stats().admission.shedQueueFull, 1u);
}

TEST(ServiceAdmission, BrownoutAnswersFromReportCacheOnly)
{
    double now = 0.0;
    ServiceOptions service_options;
    service_options.clock = [&now] { return now; };
    service_options.admission.maxQueueDepth = 8;
    service_options.admission.brownoutDepth = 2;
    TuningService service(service_options);

    Tensor out = admissionGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 6;

    // Warm the LRU report cache while the queue is empty.
    AdmittedReport warm = service.tuneAdmitted(out, target, options);
    ASSERT_EQ(warm.outcome, AdmissionOutcome::Admitted);
    ASSERT_TRUE(warm.served());

    // Saturate the controller past the brownout depth.
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(service.admission()
                        .admit("occupier", RequestPriority::Interactive,
                               now, kInf)
                        .admitted());

    // The cached request is answered degraded, from the cache...
    AdmittedReport cached = service.tuneAdmitted(out, target, options);
    EXPECT_EQ(cached.outcome, AdmissionOutcome::Brownout);
    ASSERT_TRUE(cached.served());
    EXPECT_TRUE(cached.degradedAnswer);
    EXPECT_TRUE(cached.report->fromCache);
    EXPECT_DOUBLE_EQ(cached.report->gflops, warm.report->gflops);

    // ...while an uncached request is refused rather than tuned.
    TuneOptions uncached = options;
    uncached.explore.seed += 99;
    AdmittedReport refused = service.tuneAdmitted(out, target, uncached);
    EXPECT_EQ(refused.outcome, AdmissionOutcome::Brownout);
    EXPECT_FALSE(refused.served());
    EXPECT_NE(refused.reason.find("code=FT-ADM-BROWNOUT"),
              std::string::npos);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.brownoutServed, 1u);
    EXPECT_EQ(stats.admission.brownouts, 2u);
    // Brownout never started fresh tuning work.
    EXPECT_EQ(stats.tuningRuns, 1u);
}

TEST(ServiceAdmission, DeadlinePropagatesIntoExploreBudget)
{
    double now = 100.0;
    ServiceOptions service_options;
    service_options.clock = [&now] { return now; };
    service_options.simBudgetPerSecond = 5.0; // 2s wall -> 10 sim seconds
    service_options.admission.defaultCostSeconds = 0.1;
    TuningService service(service_options);

    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 200; // far more than 10 sim seconds allow
    AdmittedReport report =
        service.tuneAdmitted(admissionGemm(), Target::forGpu(v100()),
                             options, {RequestPriority::Batch, 2.0});
    ASSERT_EQ(report.outcome, AdmissionOutcome::Admitted);
    ASSERT_TRUE(report.served());
    // The run was cut at the propagated simulated deadline and returned
    // its best-so-far instead of blowing the request deadline. The cut
    // lands at trial granularity: the in-flight measurement may finish
    // just past the line, but nothing new starts after it.
    EXPECT_TRUE(report.report->degraded);
    EXPECT_LT(report.report->simExploreSeconds, 2.0 * 10.0);
    EXPECT_LT(report.report->trials, 200);
    EXPECT_GT(report.report->gflops, 0.0);
}

TEST(ServiceAdmission, DeadlineShedHappensBeforeAnyWork)
{
    double now = 0.0;
    ServiceOptions service_options;
    service_options.clock = [&now] { return now; };
    service_options.admission.defaultCostSeconds = 60.0;
    service_options.admission.safetyFactor = 1.0;
    TuningService service(service_options);

    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 4;
    AdmittedReport report =
        service.tuneAdmitted(admissionGemm(), Target::forGpu(v100()),
                             options, {RequestPriority::Batch, 1.0});
    EXPECT_EQ(report.outcome, AdmissionOutcome::Shed);
    EXPECT_FALSE(report.served());
    EXPECT_NE(report.reason.find("code=FT-ADM-DEADLINE"),
              std::string::npos);
    EXPECT_EQ(service.stats().tuningRuns, 0u);
}

TEST(ServiceAdmission, ServeShapeBrownoutAnswersFromDispatchTableOnly)
{
    double now = 0.0;
    ServiceOptions service_options;
    service_options.clock = [&now] { return now; };
    service_options.admission.maxQueueDepth = 8;
    service_options.admission.brownoutDepth = 1;
    TuningService service(service_options);

    ShapeVar var;
    var.name = "m";
    var.lo = 1;
    var.hi = 16;
    ShapeFamily family = gemmOverM(/*n=*/64, /*k=*/64, var);
    Target target = Target::forGpu(v100());
    FamilyTuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 6;
    options.explore.warmupPoints = 4;
    options.samplesPerBucket = 1;

    // Publish the family's dispatch table while unloaded.
    service.tuneFamily(family, target, options);

    // Saturate into brownout.
    ASSERT_TRUE(service.admission()
                    .admit("occupier", RequestPriority::Batch, now, kInf)
                    .admitted());

    AdmittedServeResult hit =
        service.serveShapeAdmitted(family, 7, target, options);
    EXPECT_EQ(hit.outcome, AdmissionOutcome::Brownout);
    ASSERT_TRUE(hit.served());
    EXPECT_TRUE(hit.degradedAnswer);
    EXPECT_TRUE(hit.result->fromDispatch);

    // A family with no published table is refused in brownout.
    ShapeVar var2 = var;
    var2.hi = 8;
    ShapeFamily other = gemmOverM(/*n=*/32, /*k=*/32, var2);
    AdmittedServeResult miss =
        service.serveShapeAdmitted(other, 3, target, options);
    EXPECT_EQ(miss.outcome, AdmissionOutcome::Brownout);
    EXPECT_FALSE(miss.served());
    EXPECT_NE(miss.reason.find("code=FT-ADM-BROWNOUT"),
              std::string::npos);
}

TEST(ServiceAdmission, DispatchTablesPersistAcrossServiceRestart)
{
    const std::string dir =
        ::testing::TempDir() + "ft_dispatch_reload_test";
    std::filesystem::remove_all(dir);

    ShapeVar var;
    var.name = "m";
    var.lo = 1;
    var.hi = 16;
    ShapeFamily family = gemmOverM(/*n=*/64, /*k=*/64, var);
    Target target = Target::forGpu(v100());
    FamilyTuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 6;
    options.explore.warmupPoints = 4;
    options.samplesPerBucket = 1;

    ServiceOptions service_options;
    service_options.dispatchDir = dir;

    FamilyServeResult fresh;
    {
        TuningService first(service_options);
        fresh = first.serveShape(family, 5, target, options);
        EXPECT_FALSE(fresh.fromDispatch);
    }
    // The table was persisted as a journal file.
    size_t files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        files += entry.path().extension() == ".dispatch" ? 1 : 0;
    EXPECT_EQ(files, 1u);

    // A fresh service reloads it at startup and serves without tuning.
    TuningService second(service_options);
    FamilyServeResult reloaded = second.serveShape(family, 5, target, options);
    EXPECT_TRUE(reloaded.fromDispatch);
    EXPECT_DOUBLE_EQ(reloaded.gflops, fresh.gflops);
    EXPECT_EQ(serializeConfig(reloaded.config),
              serializeConfig(fresh.config));
    EXPECT_EQ(second.stats().tuningRuns, 0u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ft
