/**
 * @file
 * Edge-case tests for the scheduled-nest interpreter: degenerate extents,
 * reduce-heavy reorders, thread oversubscription, annotation neutrality
 * (annotations change performance modeling, never results), and
 * cross-target nest execution.
 */
#include <gtest/gtest.h>

#include "analysis/static_analyzer.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "sim/library_model.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

struct Fixture
{
    Tensor out;
    MiniGraph graph;
    Operation anchor;
    BufferMap inputs;
    Buffer gold;

    explicit Fixture(Tensor t, uint64_t seed = 7)
        : out(std::move(t)), graph(out), anchor(anchorOp(graph))
    {
        Rng rng(seed);
        inputs = makeRandomInputs(graph, rng);
        runGraphReference(graph, inputs);
        gold = inputs.at(anchor.get());
        inputs.erase(anchor.get());
    }

    void
    expectMatches(const LoopNest &nest, int threads = 1)
    {
        BufferMap run = inputs;
        runScheduled(nest, run, threads);
        const Buffer &got = run.at(anchor.get());
        ASSERT_EQ(got.numel(), gold.numel());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3) << "element " << i;
    }
};

Tensor
tinyGemm()
{
    Tensor a = placeholder("A", {6, 10});
    Tensor b = placeholder("B", {10, 4});
    return ops::gemm(a, b);
}

TEST(InterpreterEdge, AllExtentOneSplits)
{
    Fixture fx(tinyGemm());
    OpConfig cfg = defaultConfig(fx.anchor, Target::forGpu(v100()));
    Scheduled s = generateGpu(fx.anchor, cfg, v100());
    fx.expectMatches(s.nest);
}

TEST(InterpreterEdge, ReduceOutsideSpatial)
{
    // Reorder choice 0 puts reduce taps around the spatial register tile.
    Fixture fx(tinyGemm());
    OpConfig cfg;
    cfg.spatialSplits = {{1, 1, 1, 6}, {1, 1, 1, 4}};
    cfg.reduceSplits = {{1, 1, 10}};
    cfg.reorderChoice = 0;
    Scheduled s = generateGpu(fx.anchor, cfg, v100());
    fx.expectMatches(s.nest);
}

TEST(InterpreterEdge, EveryReorderChoiceAgrees)
{
    Fixture fx(tinyGemm());
    for (int choice = 0; choice < kNumReorderChoices; ++choice) {
        OpConfig cfg;
        cfg.spatialSplits = {{3, 1, 2, 1}, {2, 1, 2, 1}};
        cfg.reduceSplits = {{2, 5, 1}};
        cfg.reorderChoice = choice;
        Scheduled s = generateGpu(fx.anchor, cfg, v100());
        fx.expectMatches(s.nest);
    }
}

TEST(InterpreterEdge, MoreThreadsThanWork)
{
    Fixture fx(tinyGemm());
    OpConfig cfg;
    cfg.spatialSplits = {{2, 3, 1}, {1, 4, 1}};
    cfg.reduceSplits = {{10, 1}};
    cfg.fuseCount = 1; // parallel extent 2, workers 8
    Scheduled s = generateCpu(fx.anchor, cfg, xeonE5());
    fx.expectMatches(s.nest, 8);
}

TEST(InterpreterEdge, UnrollAnnotationIsFunctionallyNeutral)
{
    Fixture fx(tinyGemm());
    OpConfig plain;
    plain.spatialSplits = {{1, 2, 3}, {1, 2, 2}};
    plain.reduceSplits = {{2, 5}};
    plain.unrollDepth = 0;
    OpConfig unrolled = plain;
    unrolled.unrollDepth = 3;
    Scheduled a = generateCpu(fx.anchor, plain, xeonE5());
    Scheduled b = generateCpu(fx.anchor, unrolled, xeonE5());
    fx.expectMatches(a.nest);
    fx.expectMatches(b.nest);
}

TEST(InterpreterEdge, FpgaNestExecutes)
{
    Fixture fx(tinyGemm());
    OpConfig cfg;
    cfg.spatialSplits = {{3, 2}, {2, 2}};
    cfg.reduceSplits = {{5, 2}};
    Scheduled s = generateFpga(fx.anchor, cfg, vu9p());
    EXPECT_EQ(s.nest.extentOf(LoopAnno::PE), 4);
    fx.expectMatches(s.nest, 2);
}

TEST(InterpreterEdge, VthreadHeavyGpuNest)
{
    Fixture fx(tinyGemm());
    OpConfig cfg;
    cfg.spatialSplits = {{1, 6, 1, 1}, {1, 4, 1, 1}}; // all vthreads
    cfg.reduceSplits = {{10, 1, 1}};
    Scheduled s = generateGpu(fx.anchor, cfg, v100());
    EXPECT_EQ(s.features.vthreads, 24);
    fx.expectMatches(s.nest);
}

TEST(InterpreterEdge, RepeatedRunsAreDeterministic)
{
    Fixture fx(tinyGemm());
    OpConfig cfg = expertConfig(fx.anchor, Target::forCpu(xeonE5()));
    Scheduled s = generateCpu(fx.anchor, cfg, xeonE5());
    BufferMap run1 = fx.inputs, run2 = fx.inputs;
    runScheduled(s.nest, run1, 3);
    runScheduled(s.nest, run2, 3);
    const Buffer &a = run1.at(fx.anchor.get());
    const Buffer &b = run2.at(fx.anchor.get());
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_FLOAT_EQ(a[i], b[i]);
}

TEST(InterpreterEdge, SingleElementOutput)
{
    // A 1x1 output GEMV: every loop is a reduce except two unit spatial.
    Tensor a = placeholder("A", {1, 64});
    Tensor b = placeholder("B", {64, 1});
    Fixture fx(ops::gemm(a, b));
    OpConfig cfg;
    cfg.spatialSplits = {{1, 1, 1, 1}, {1, 1, 1, 1}};
    cfg.reduceSplits = {{4, 4, 4}};
    Scheduled s = generateGpu(fx.anchor, cfg, v100());
    fx.expectMatches(s.nest);
}

TEST(InterpreterEdge, PrimeExtentsSurviveScheduling)
{
    // 7, 11, 13: only trivial factorizations exist.
    Tensor a = placeholder("A", {7, 13});
    Tensor b = placeholder("B", {13, 11});
    Fixture fx(ops::gemm(a, b));
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(fx.anchor, target);
    Rng rng(77);
    for (int trial = 0; trial < 8; ++trial) {
        Scheduled s = generate(
            fx.anchor, space.decode(space.randomPoint(rng)), target);
        fx.expectMatches(s.nest, 1 + trial % 2);
    }
}

TEST(InterpreterEdge, MissingInputBufferPanics)
{
    Tensor a = placeholder("A", {4, 4});
    Tensor b = placeholder("B", {4, 4});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg = defaultConfig(c.op(), Target::forCpu(xeonE5()));
    Scheduled s = generateCpu(c.op(), cfg, xeonE5());
    BufferMap empty;
    EXPECT_DEATH(runScheduled(s.nest, empty), "not materialized");
}

} // namespace
} // namespace ft
