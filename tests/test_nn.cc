/**
 * @file
 * Tests for the Q-network building blocks: AdaDelta, Linear gradients
 * (finite-difference check), and MLP training on synthetic problems.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(Param, AdaDeltaStepDescendsGradient)
{
    Param p;
    p.resize(1);
    p.value[0] = 1.0f;
    AdaDeltaOptions opt;
    // Repeated positive gradient must decrease the value.
    float before = p.value[0];
    for (int i = 0; i < 50; ++i) {
        p.grad[0] = 2.0f * p.value[0]; // d/dx of x^2
        p.step(opt);
    }
    EXPECT_LT(std::fabs(p.value[0]), std::fabs(before));
}

TEST(Param, StepClearsGradient)
{
    Param p;
    p.resize(4);
    for (auto &g : p.grad)
        g = 1.0f;
    p.step({});
    for (auto g : p.grad)
        EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(Linear, ForwardComputesAffineMap)
{
    Rng rng(1);
    Linear l(2, 1, rng);
    // Overwrite weights deterministically through training is awkward;
    // instead verify the map is linear: f(ax) - f(0) == a (f(x) - f(0)).
    std::vector<float> zero{0.0f, 0.0f}, x{1.0f, 2.0f}, x2{2.0f, 4.0f};
    float f0 = l.forward(zero)[0];
    float f1 = l.forward(x)[0];
    float f2 = l.forward(x2)[0];
    EXPECT_NEAR(f2 - f0, 2.0f * (f1 - f0), 1e-4);
}

TEST(Linear, BackwardMatchesFiniteDifference)
{
    Rng rng(2);
    Linear l(3, 2, rng);
    std::vector<float> x{0.5f, -1.0f, 2.0f};
    std::vector<float> dy{1.0f, 0.0f}; // dL/dy0 = 1

    std::vector<float> dx = l.backward(dy, x);
    // Finite difference on the input.
    const float h = 1e-3f;
    for (int i = 0; i < 3; ++i) {
        auto xp = x, xm = x;
        xp[i] += h;
        xm[i] -= h;
        float fd = (l.forward(xp)[0] - l.forward(xm)[0]) / (2 * h);
        EXPECT_NEAR(dx[i], fd, 1e-2) << "input " << i;
    }
}

TEST(Mlp, OutputDimsMatch)
{
    Rng rng(3);
    Mlp net({5, 8, 8, 8, 3}, rng);
    EXPECT_EQ(net.inputDim(), 5);
    EXPECT_EQ(net.outputDim(), 3);
    EXPECT_EQ(net.forward({1, 2, 3, 4, 5}).size(), 3u);
}

TEST(Mlp, TrainsSingleOutputToTarget)
{
    Rng rng(4);
    Mlp net({2, 16, 16, 16, 3}, rng);
    std::vector<float> x{0.3f, -0.7f};
    AdaDeltaOptions opt;
    for (int iter = 0; iter < 800; ++iter) {
        net.zeroGrad();
        net.accumulateGrad(x, 1, 5.0f);
        net.step(opt);
    }
    EXPECT_NEAR(net.forward(x)[1], 5.0f, 0.5f);
}

TEST(Mlp, LearnsToRankTwoActions)
{
    // Q(x)[0] should learn value 1 and Q(x)[1] value -1 for the same
    // state; afterwards action 0 must be preferred.
    Rng rng(5);
    Mlp net({3, 16, 16, 16, 2}, rng);
    std::vector<float> x{1.0f, 0.5f, -0.5f};
    AdaDeltaOptions opt;
    for (int iter = 0; iter < 600; ++iter) {
        net.zeroGrad();
        net.accumulateGrad(x, 0, 1.0f);
        net.accumulateGrad(x, 1, -1.0f);
        net.step(opt);
    }
    auto q = net.forward(x);
    EXPECT_GT(q[0], q[1]);
}

TEST(Mlp, CopyValuesMakesNetworksAgree)
{
    Rng rng(6);
    Mlp a({4, 8, 8, 8, 2}, rng);
    Mlp b({4, 8, 8, 8, 2}, rng);
    std::vector<float> x{1, -2, 3, 0.5};
    auto qa = a.forward(x);
    auto qb = b.forward(x);
    // Different random init: outputs differ.
    EXPECT_NE(qa[0], qb[0]);
    b.copyValuesFrom(a);
    auto qb2 = b.forward(x);
    EXPECT_FLOAT_EQ(qa[0], qb2[0]);
    EXPECT_FLOAT_EQ(qa[1], qb2[1]);
}

TEST(Mlp, ReluBlocksNegativePreactivations)
{
    // A single-sample training loop on a loss reachable only through
    // active units still converges (smoke test that dead units do not
    // break backprop).
    Rng rng(7);
    Mlp net({1, 8, 8, 8, 1}, rng);
    AdaDeltaOptions opt;
    double last_loss = 1e9;
    for (int iter = 0; iter < 600; ++iter) {
        net.zeroGrad();
        last_loss = net.accumulateGrad({1.0f}, 0, 5.0f);
        net.step(opt);
    }
    EXPECT_LT(last_loss, 1.0);
}

} // namespace
} // namespace ft
