/**
 * @file
 * Tests for the gradient-boosted-trees cost model: the per-run GBT, the
 * rank-loss objective, hexfloat serialization, and the persistent
 * service-wide CostModel built on top of them.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "explore/tuner.h"
#include "ml/costmodel.h"
#include "ml/features.h"
#include "ml/gbt.h"
#include "ops/ops.h"
#include "space/builder.h"
#include "support/journal.h"
#include "support/rng.h"

namespace ft {
namespace {

double
mse(const GbtModel &model, const std::vector<std::vector<double>> &x,
    const std::vector<double> &y)
{
    double s = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        double d = model.predict(x[i]) - y[i];
        s += d * d;
    }
    return s / static_cast<double>(x.size());
}

TEST(Gbt, UntrainedPredictsZero)
{
    GbtModel model;
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predict({1.0, 2.0}), 0.0);
}

TEST(Gbt, FitsConstantExactly)
{
    GbtModel model;
    Rng rng(1);
    std::vector<std::vector<double>> x{{0}, {1}, {2}, {3}};
    std::vector<double> y{7, 7, 7, 7};
    model.fit(x, y, {}, rng);
    EXPECT_TRUE(model.trained());
    EXPECT_NEAR(model.predict({5}), 7.0, 1e-9);
}

TEST(Gbt, ReducesErrorOnStepFunction)
{
    GbtModel model;
    Rng rng(2);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        double v = i / 100.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 3.0);
    }
    model.fit(x, y, {}, rng);
    EXPECT_LT(mse(model, x, y), 0.1);
    EXPECT_LT(model.predict({0.1}), 2.0);
    EXPECT_GT(model.predict({0.9}), 2.0);
}

TEST(Gbt, LearnsAdditiveTwoFeatureFunction)
{
    GbtModel model;
    Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    Rng data(4);
    for (int i = 0; i < 300; ++i) {
        double a = data.uniform(), b = data.uniform();
        x.push_back({a, b});
        y.push_back(2.0 * a - 3.0 * b);
    }
    GbtOptions opt;
    opt.trees = 80;
    model.fit(x, y, opt, rng);
    EXPECT_LT(mse(model, x, y), 0.15);
}

TEST(Gbt, RankingQualityOnSyntheticCostSurface)
{
    // What AutoTVM actually needs: good ordering, not exact regression.
    GbtModel model;
    Rng rng(5);
    Rng data(6);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    auto cost = [](double a, double b) {
        // Peak at (0.5, 0.25), non-convex elsewhere.
        return std::exp(-8 * ((a - 0.5) * (a - 0.5) +
                              (b - 0.25) * (b - 0.25)));
    };
    for (int i = 0; i < 200; ++i) {
        double a = data.uniform(), b = data.uniform();
        x.push_back({a, b});
        y.push_back(cost(a, b));
    }
    GbtOptions opt;
    opt.trees = 60;
    model.fit(x, y, opt, rng);

    // Count concordant pairs on fresh data.
    int concordant = 0, total = 0;
    for (int i = 0; i < 100; ++i) {
        double a1 = data.uniform(), b1 = data.uniform();
        double a2 = data.uniform(), b2 = data.uniform();
        double t1 = cost(a1, b1), t2 = cost(a2, b2);
        if (std::fabs(t1 - t2) < 0.05)
            continue;
        double p1 = model.predict({a1, b1}), p2 = model.predict({a2, b2});
        ++total;
        concordant += (t1 > t2) == (p1 > p2);
    }
    ASSERT_GT(total, 20);
    EXPECT_GT(static_cast<double>(concordant) / total, 0.7);
}

TEST(Gbt, RefitReplacesModel)
{
    GbtModel model;
    Rng rng(7);
    model.fit({{0.0}, {1.0}}, {0.0, 0.0}, {}, rng);
    EXPECT_NEAR(model.predict({0.5}), 0.0, 1e-9);
    model.fit({{0.0}, {1.0}}, {10.0, 10.0}, {}, rng);
    EXPECT_NEAR(model.predict({0.5}), 10.0, 1e-9);
}

TEST(Gbt, HandlesEmptyFit)
{
    GbtModel model;
    Rng rng(8);
    model.fit({}, {}, {}, rng);
    EXPECT_FALSE(model.trained());
}

TEST(Gbt, ConstantFeatureIsNeverSplitOn)
{
    // Regression test for the zero-variance split-search skip: column 0
    // is constant, so no tree may branch on it — predictions must be
    // invariant to its value — while column 1 still carries the signal.
    GbtModel model;
    Rng rng(9);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        double v = i / 100.0;
        x.push_back({42.0, v});
        y.push_back(v < 0.5 ? 1.0 : 3.0);
    }
    model.fit(x, y, {}, rng);
    EXPECT_LT(mse(model, x, y), 0.1);
    EXPECT_EQ(model.predict({42.0, 0.9}), model.predict({-1e9, 0.9}));
    EXPECT_EQ(model.predict({42.0, 0.1}), model.predict({1e9, 0.1}));
}

TEST(Gbt, AllConstantFeaturesFitToLabelMean)
{
    GbtModel model;
    Rng rng(10);
    std::vector<std::vector<double>> x{{1.0}, {1.0}, {1.0}, {1.0}};
    std::vector<double> y{2.0, 4.0, 6.0, 8.0};
    model.fit(x, y, {}, rng);
    EXPECT_TRUE(model.trained());
    EXPECT_NEAR(model.predict({1.0}), 5.0, 1e-9);
    EXPECT_NEAR(model.predict({77.0}), 5.0, 1e-9);
}

TEST(Gbt, FitRankOrdersWithinGroups)
{
    // Two workload groups whose label scales differ by 100x: the
    // pairwise objective only compares within a group, so the model
    // must still order both groups' members correctly.
    GbtModel model;
    Rng rng(11);
    Rng data(12);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    std::vector<uint64_t> group;
    auto cost = [](double a) { return std::exp(-8.0 * (a - 0.5) * (a - 0.5)); };
    for (int g = 0; g < 2; ++g) {
        for (int i = 0; i < 120; ++i) {
            double a = data.uniform();
            x.push_back({a, static_cast<double>(g)});
            y.push_back(cost(a) * (g == 0 ? 1.0 : 100.0));
            group.push_back(static_cast<uint64_t>(g));
        }
    }
    GbtOptions opt;
    opt.trees = 60;
    model.fitRank(x, y, group, opt, rng);
    ASSERT_TRUE(model.trained());

    int concordant = 0, total = 0;
    for (int i = 0; i < 200; ++i) {
        double a1 = data.uniform(), a2 = data.uniform();
        double g = i % 2;
        if (std::fabs(cost(a1) - cost(a2)) < 0.05)
            continue;
        double p1 = model.predict({a1, g}), p2 = model.predict({a2, g});
        ++total;
        concordant += (cost(a1) > cost(a2)) == (p1 > p2);
    }
    ASSERT_GT(total, 50);
    EXPECT_GT(static_cast<double>(concordant) / total, 0.7);
}

TEST(Gbt, SerializeRoundTripsThroughJournalBitIdentically)
{
    GbtModel model;
    Rng rng(13);
    Rng data(14);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 150; ++i) {
        double a = data.uniform(), b = data.uniform();
        x.push_back({a, b});
        y.push_back(2.0 * a - 3.0 * b);
    }
    model.fit(x, y, {}, rng);

    // Through a CRC32 journal frame, as CostModel persists it.
    const std::string path =
        ::testing::TempDir() + "ft_gbt_roundtrip.j";
    std::remove(path.c_str());
    ASSERT_TRUE(journalAppend(path, "gbttest", model.serialize()));
    JournalContents contents = readJournal(path);
    ASSERT_TRUE(contents.valid);
    ASSERT_EQ(contents.records.size(), 1u);

    GbtModel restored;
    ASSERT_TRUE(restored.deserialize(contents.records[0]));
    ASSERT_TRUE(restored.trained());
    for (int i = 0; i < 50; ++i) {
        std::vector<double> probe{data.uniform() * 4.0 - 2.0,
                                  data.uniform() * 4.0 - 2.0};
        // Bit-identical, not approximately equal: hexfloat
        // serialization must lose nothing.
        EXPECT_EQ(model.predict(probe), restored.predict(probe));
    }
    EXPECT_EQ(model.serialize(), restored.serialize());
    std::remove(path.c_str());
}

TEST(Gbt, DeserializeRejectsMalformedInput)
{
    GbtModel model;
    EXPECT_FALSE(model.deserialize("not a model"));
    EXPECT_FALSE(model.trained());

    // A truncated but otherwise valid prefix must also fail cleanly.
    GbtModel trained;
    Rng rng(15);
    trained.fit({{0.0}, {1.0}, {2.0}}, {0.0, 1.0, 2.0}, {}, rng);
    std::string bytes = trained.serialize();
    EXPECT_FALSE(model.deserialize(
        std::string_view(bytes).substr(0, bytes.size() / 2)));
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predict({1.0}), 0.0);
}

TEST(Gbt, FixedSeedTrainingIsDeterministic)
{
    // Same data + same seed must produce a byte-identical model. The
    // serialized form is the digest: any nondeterministic tie-break or
    // RNG-order change shows up as a string mismatch.
    Rng data(16);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    std::vector<uint64_t> group;
    for (int i = 0; i < 100; ++i) {
        double a = data.uniform(), b = data.uniform();
        x.push_back({a, b});
        y.push_back(a * b);
        group.push_back(i % 3);
    }
    GbtModel m1, m2;
    Rng r1(0xd5eed), r2(0xd5eed);
    m1.fitRank(x, y, group, {}, r1);
    m2.fitRank(x, y, group, {}, r2);
    EXPECT_EQ(m1.serialize(), m2.serialize());
}

TEST(CostFeatures, FixedDimDeterministicAndFinite)
{
    Tensor a = placeholder("A", {128, 128});
    Tensor b = placeholder("B", {128, 128});
    Tensor out = ops::gemm(a, b);
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    Evaluator eval(out.op(), space, target);

    Rng rng(17);
    for (int i = 0; i < 16; ++i) {
        Point p = space.randomPoint(rng);
        std::vector<double> f1, f2;
        eval.costFeaturesFor(p, f1);
        eval.costFeaturesFor(p, f2);
        ASSERT_EQ(static_cast<int>(f1.size()), kCostFeatureDim);
        EXPECT_EQ(f1, f2);
        for (double v : f1)
            EXPECT_TRUE(std::isfinite(v)) << "feature " << v;
    }
}

TEST(CostModel, SyncRefitTrainsOnSchedule)
{
    CostModelOptions options;
    options.syncRefit = true;
    options.refitEvery = 8;
    CostModel model(options);
    EXPECT_FALSE(model.ready());

    Rng data(18);
    for (int i = 0; i < 16; ++i) {
        double a = data.uniform();
        model.recordTrial({a, 1.0 - a}, a * 100.0, /*group=*/7);
    }
    EXPECT_EQ(model.numTrials(), 16u);
    EXPECT_GE(model.refits(), 2u);
    ASSERT_TRUE(model.ready());
    EXPECT_TRUE(std::isfinite(model.predict({0.5, 0.5})));
    // Rank-trained on "higher a is faster": the ordering must hold.
    EXPECT_GT(model.predict({0.9, 0.1}), model.predict({0.1, 0.9}));
}

TEST(CostModel, SlidingWindowBoundsTrials)
{
    CostModelOptions options;
    options.maxTrials = 8;
    options.refitEvery = 1000; // never auto-refit
    CostModel model(options);
    for (int i = 0; i < 30; ++i)
        model.recordTrial({static_cast<double>(i)}, 1.0, 0);
    EXPECT_EQ(model.numTrials(), 8u);
}

TEST(CostModel, PersistsAndReloadsBitIdentically)
{
    const std::string path = ::testing::TempDir() + "ft_costmodel.j";
    std::remove(path.c_str());

    std::vector<std::vector<double>> probes;
    Rng data(19);
    for (int i = 0; i < 20; ++i)
        probes.push_back({data.uniform(), data.uniform()});

    std::vector<double> before;
    {
        CostModelOptions options;
        options.syncRefit = true;
        options.refitEvery = 16;
        options.persistPath = path;
        CostModel model(options);
        for (int i = 0; i < 32; ++i) {
            double a = data.uniform();
            model.recordTrial({a, 1.0 - a}, a * 10.0, 3);
        }
        ASSERT_TRUE(model.ready());
        for (const auto &p : probes)
            before.push_back(model.predict(p));
    } // model destroyed; only the journal survives

    CostModelOptions options;
    options.persistPath = path;
    CostModel reloaded(options);
    ASSERT_TRUE(reloaded.load());
    ASSERT_TRUE(reloaded.ready());
    EXPECT_EQ(reloaded.numTrials(), 32u);
    for (size_t i = 0; i < probes.size(); ++i)
        EXPECT_EQ(reloaded.predict(probes[i]), before[i]);
    std::remove(path.c_str());
}

TEST(CostModel, ExplorerRecordsTrialsAndWarmStartsWhenReady)
{
    Tensor a = placeholder("A", {128, 128});
    Tensor b = placeholder("B", {128, 128});
    Tensor out = ops::gemm(a, b);
    Target target = Target::forGpu(v100());

    CostModelOptions model_options;
    model_options.syncRefit = true;
    model_options.refitEvery = 16;
    CostModel model(model_options);

    // First run trains the model from its own committed trials.
    ScheduleSpace space1 = buildSpace(out.op(), target);
    Evaluator eval1(out.op(), space1, target);
    ExploreOptions options;
    options.trials = 12;
    options.warmupPoints = 6;
    options.seed = 0xd5eed;
    options.costModel = &model;
    ExploreResult first = exploreQMethod(eval1, options);
    EXPECT_GT(first.bestGflops, 0.0);
    EXPECT_GT(model.numTrials(), 0u);
    ASSERT_TRUE(model.ready());

    // Second run takes the warm-start + pruned path end to end.
    ScheduleSpace space2 = buildSpace(out.op(), target);
    Evaluator eval2(out.op(), space2, target);
    options.prunerKeep = 0.5;
    ExploreResult second = exploreQMethod(eval2, options);
    EXPECT_GT(second.bestGflops, 0.0);
    EXPECT_GT(second.trialsUsed, 0);
}

TEST(CostModel, BackgroundRefitTrainsEventually)
{
    CostModelOptions options;
    options.refitEvery = 8;
    CostModel model(options);
    model.startBackgroundRefit();
    Rng data(20);
    for (int i = 0; i < 64; ++i) {
        double a = data.uniform();
        model.recordTrial({a}, a, 1);
    }
    model.refitNow(); // synchronous flush: deterministic end state
    model.stopBackgroundRefit();
    EXPECT_TRUE(model.ready());
    EXPECT_GE(model.refits(), 1u);
}

} // namespace
} // namespace ft
