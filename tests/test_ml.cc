/**
 * @file
 * Tests for the gradient-boosted-trees cost model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ml/gbt.h"
#include "support/rng.h"

namespace ft {
namespace {

double
mse(const GbtModel &model, const std::vector<std::vector<double>> &x,
    const std::vector<double> &y)
{
    double s = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        double d = model.predict(x[i]) - y[i];
        s += d * d;
    }
    return s / static_cast<double>(x.size());
}

TEST(Gbt, UntrainedPredictsZero)
{
    GbtModel model;
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predict({1.0, 2.0}), 0.0);
}

TEST(Gbt, FitsConstantExactly)
{
    GbtModel model;
    Rng rng(1);
    std::vector<std::vector<double>> x{{0}, {1}, {2}, {3}};
    std::vector<double> y{7, 7, 7, 7};
    model.fit(x, y, {}, rng);
    EXPECT_TRUE(model.trained());
    EXPECT_NEAR(model.predict({5}), 7.0, 1e-9);
}

TEST(Gbt, ReducesErrorOnStepFunction)
{
    GbtModel model;
    Rng rng(2);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        double v = i / 100.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 3.0);
    }
    model.fit(x, y, {}, rng);
    EXPECT_LT(mse(model, x, y), 0.1);
    EXPECT_LT(model.predict({0.1}), 2.0);
    EXPECT_GT(model.predict({0.9}), 2.0);
}

TEST(Gbt, LearnsAdditiveTwoFeatureFunction)
{
    GbtModel model;
    Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    Rng data(4);
    for (int i = 0; i < 300; ++i) {
        double a = data.uniform(), b = data.uniform();
        x.push_back({a, b});
        y.push_back(2.0 * a - 3.0 * b);
    }
    GbtOptions opt;
    opt.trees = 80;
    model.fit(x, y, opt, rng);
    EXPECT_LT(mse(model, x, y), 0.15);
}

TEST(Gbt, RankingQualityOnSyntheticCostSurface)
{
    // What AutoTVM actually needs: good ordering, not exact regression.
    GbtModel model;
    Rng rng(5);
    Rng data(6);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    auto cost = [](double a, double b) {
        // Peak at (0.5, 0.25), non-convex elsewhere.
        return std::exp(-8 * ((a - 0.5) * (a - 0.5) +
                              (b - 0.25) * (b - 0.25)));
    };
    for (int i = 0; i < 200; ++i) {
        double a = data.uniform(), b = data.uniform();
        x.push_back({a, b});
        y.push_back(cost(a, b));
    }
    GbtOptions opt;
    opt.trees = 60;
    model.fit(x, y, opt, rng);

    // Count concordant pairs on fresh data.
    int concordant = 0, total = 0;
    for (int i = 0; i < 100; ++i) {
        double a1 = data.uniform(), b1 = data.uniform();
        double a2 = data.uniform(), b2 = data.uniform();
        double t1 = cost(a1, b1), t2 = cost(a2, b2);
        if (std::fabs(t1 - t2) < 0.05)
            continue;
        double p1 = model.predict({a1, b1}), p2 = model.predict({a2, b2});
        ++total;
        concordant += (t1 > t2) == (p1 > p2);
    }
    ASSERT_GT(total, 20);
    EXPECT_GT(static_cast<double>(concordant) / total, 0.7);
}

TEST(Gbt, RefitReplacesModel)
{
    GbtModel model;
    Rng rng(7);
    model.fit({{0.0}, {1.0}}, {0.0, 0.0}, {}, rng);
    EXPECT_NEAR(model.predict({0.5}), 0.0, 1e-9);
    model.fit({{0.0}, {1.0}}, {10.0, 10.0}, {}, rng);
    EXPECT_NEAR(model.predict({0.5}), 10.0, 1e-9);
}

TEST(Gbt, HandlesEmptyFit)
{
    GbtModel model;
    Rng rng(8);
    model.fit({}, {}, {}, rng);
    EXPECT_FALSE(model.trained());
}

} // namespace
} // namespace ft
