/**
 * @file
 * Crash-safety tests for the durable stores: the CRC32-framed record
 * journal itself, plus the three adopters (explore checkpoints, the
 * persistent TuningCache, and DispatchTable files) against a corruption
 * corpus — torn tails at seeded crash offsets, bit flips, and blunt
 * truncation. The marquee test kills a tuning run, tears its checkpoint
 * journal mid-frame as a crashing writer would, and proves the resumed
 * run is still bit-identical to one that was never interrupted.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "explore/checkpoint.h"
#include "explore/tuner.h"
#include "family/dispatch.h"
#include "ml/costmodel.h"
#include "ops/ops.h"
#include "schedule/serialize.h"
#include "support/fault_injector.h"
#include "support/journal.h"

namespace ft {
namespace {

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// The journal layer itself.

TEST(Journal, FramesRoundTripThroughWriterAndParser)
{
    JournalWriter writer("test");
    writer.append("alpha");
    writer.append(""); // empty payloads are legal frames
    writer.append("gamma\twith\ttabs\nand a newline");

    JournalContents parsed = parseJournal(writer.bytes());
    EXPECT_TRUE(parsed.valid);
    EXPECT_FALSE(parsed.torn);
    EXPECT_EQ(parsed.kind, "test");
    ASSERT_EQ(parsed.records.size(), 3u);
    EXPECT_EQ(parsed.records[0], "alpha");
    EXPECT_EQ(parsed.records[1], "");
    EXPECT_EQ(parsed.records[2], "gamma\twith\ttabs\nand a newline");
}

TEST(Journal, TornTailKeepsEveryIntactFrameAndRepairs)
{
    const std::string path = ::testing::TempDir() + "ft_journal_torn.j";
    JournalWriter writer("test");
    writer.append("one");
    writer.append("two");
    const size_t intact_bytes = writer.bytes().size();
    writer.append("three");

    // A crash mid-append leaves the last frame torn on disk.
    ASSERT_TRUE(FaultInjector::writeTorn(path, writer.bytes(),
                                         intact_bytes + 7));
    JournalContents torn = readJournal(path);
    EXPECT_TRUE(torn.valid);
    EXPECT_TRUE(torn.torn);
    ASSERT_EQ(torn.records.size(), 2u);
    EXPECT_EQ(torn.records[1], "two");
    EXPECT_EQ(torn.validBytes, intact_bytes);
    EXPECT_NE(torn.diag.find("code=FT-JRNL-"), std::string::npos);
    EXPECT_NE(torn.diag.find("offset="), std::string::npos);

    // truncateToValid repairs the file in place (atomically).
    ASSERT_TRUE(truncateToValid(path, torn));
    JournalContents repaired = readJournal(path);
    EXPECT_FALSE(repaired.torn);
    EXPECT_EQ(repaired.records.size(), 2u);
    EXPECT_EQ(readBytes(path).size(), intact_bytes);
    std::remove(path.c_str());
}

TEST(Journal, BitFlipIsCaughtByTheFrameChecksum)
{
    const std::string path = ::testing::TempDir() + "ft_journal_flip.j";
    JournalWriter writer("test");
    writer.append("aaaaaaaaaa");
    const size_t first_end = writer.bytes().size();
    writer.append("bbbbbbbbbb");
    writeBytes(path, writer.bytes());

    // Flip one payload bit of the second frame: its CRC must reject it
    // while the first frame survives.
    const uint64_t bit = (first_end + 20) * 8 + 2;
    ASSERT_TRUE(FaultInjector::flipBit(path, bit));
    JournalContents parsed = readJournal(path);
    EXPECT_TRUE(parsed.valid);
    EXPECT_TRUE(parsed.torn);
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0], "aaaaaaaaaa");
    EXPECT_NE(parsed.diag.find("FT-JRNL-"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Journal, EverySeededCrashOffsetRecoversCommittedFrames)
{
    const std::string path = ::testing::TempDir() + "ft_journal_crash.j";
    JournalWriter committed("test");
    committed.append("committed-record");
    const std::string base = committed.bytes();
    JournalWriter full("test");
    full.append("committed-record");
    full.append("in-flight-record");
    const std::string bytes = full.bytes();

    // Crash at every seeded offset *during the append* of frame two:
    // frame one was durably committed and must never be lost.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        FaultProfile profile;
        profile.seed = seed;
        FaultInjector injector(profile);
        for (uint64_t schedule = 0; schedule < 8; ++schedule) {
            const size_t tail = bytes.size() - base.size();
            const size_t crash_at =
                base.size() +
                injector.crashOffsetFor(path, tail, schedule) % tail;
            ASSERT_TRUE(FaultInjector::writeTorn(path, bytes, crash_at));
            JournalContents parsed = readJournal(path);
            ASSERT_TRUE(parsed.valid)
                << "seed " << seed << " schedule " << schedule;
            ASSERT_GE(parsed.records.size(), 1u)
                << "seed " << seed << " schedule " << schedule
                << " crash_at " << crash_at;
            EXPECT_EQ(parsed.records[0], "committed-record");
        }
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Checkpoint journal adopters.

Tensor
durabilityGemm(int64_t n = 256)
{
    Tensor a = placeholder("A", {n, n});
    Tensor b = placeholder("B", {n, n});
    return ops::gemm(a, b);
}

class CheckpointDurability : public ::testing::Test
{
  protected:
    CheckpointDurability()
        : out_(durabilityGemm()),
          target_(Target::forGpu(v100())),
          space_(buildSpace(out_.op(), target_))
    {}

    Tensor out_;
    Target target_;
    ScheduleSpace space_;
};

/** Kill the run, tear its checkpoint journal as a crashing writer
 *  would, and the resumed run must STILL be bit-identical: the torn
 *  frame is dropped, the previous snapshot replays the missing trials
 *  deterministically. */
TEST_F(CheckpointDurability, KillThenTornResumeIsBitIdentical)
{
    const std::string path =
        ::testing::TempDir() + "ft_ckpt_torn_resume.ftc";
    std::remove(path.c_str());

    ExploreOptions options;
    options.trials = 12;
    options.warmupPoints = 8;
    options.startingPoints = 2;
    options.seed = 0xd00dfeed;

    Evaluator ref(out_.op(), space_, target_);
    ExploreResult uninterrupted = exploreQMethod(ref, options);

    // "Crashed" run: half the trials, snapshotting every 3 — the
    // journal holds snapshots at trials 3 and 6.
    ExploreOptions partial = options;
    partial.trials = 6;
    partial.checkpointPath = path;
    partial.checkpointEveryTrials = 3;
    Evaluator killed(out_.op(), space_, target_);
    exploreQMethod(killed, partial);

    // Tear the newest frame mid-payload, as a crash during the final
    // snapshot append would.
    const std::string bytes = readBytes(path);
    auto full = loadCheckpoint(path);
    ASSERT_TRUE(full.has_value());
    const int newest_trial = full->trial;
    ASSERT_TRUE(
        FaultInjector::writeTorn(path, bytes, bytes.size() - 40));
    auto recovered = loadCheckpoint(path);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_LT(recovered->trial, newest_trial);

    // Resume over the torn journal: the older snapshot replays the
    // lost trials and the full run stays bit-identical.
    ExploreOptions resume = partial;
    resume.trials = options.trials;
    Evaluator second(out_.op(), space_, target_);
    ExploreResult resumed = exploreQMethod(second, resume);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.bestPoint.key(), uninterrupted.bestPoint.key());
    EXPECT_DOUBLE_EQ(resumed.bestGflops, uninterrupted.bestGflops);
    EXPECT_DOUBLE_EQ(resumed.simSeconds, uninterrupted.simSeconds);
    ASSERT_EQ(second.history().size(), ref.history().size());
    for (size_t i = 0; i < ref.history().size(); ++i) {
        EXPECT_EQ(second.history()[i].point.key(),
                  ref.history()[i].point.key());
        EXPECT_DOUBLE_EQ(second.history()[i].gflops,
                         ref.history()[i].gflops);
    }
    std::remove(path.c_str());
}

TEST_F(CheckpointDurability, SeededCrashScheduleNeverLosesOlderSnapshot)
{
    const std::string path =
        ::testing::TempDir() + "ft_ckpt_crash_sched.ftc";
    std::remove(path.c_str());

    ExploreOptions options;
    options.trials = 8;
    options.seed = 0xcafe;
    options.checkpointPath = path;
    options.checkpointEveryTrials = 4;
    Evaluator eval(out_.op(), space_, target_);
    exploreRandom(eval, options);

    const std::string bytes = readBytes(path);
    JournalContents journal = parseJournal(bytes);
    ASSERT_TRUE(journal.valid);
    ASSERT_GE(journal.records.size(), 2u);
    // Byte size of the journal up to (and including) the first frame.
    JournalWriter first_only("ckpt");
    first_only.append(journal.records[0]);
    const size_t base = first_only.bytes().size();
    ASSERT_LT(base, bytes.size());

    // The environment-seeded crash schedule: tear during the append of
    // the newest frame, at injector-chosen offsets.
    uint64_t profile_seed = 0x5eed;
    if (const char *env = std::getenv("FT_CRASH_SEED"))
        profile_seed = std::strtoull(env, nullptr, 0);
    FaultProfile profile;
    profile.seed = profile_seed;
    FaultInjector injector(profile);
    for (uint64_t schedule = 0; schedule < 12; ++schedule) {
        const size_t tail = bytes.size() - base;
        const size_t crash_at =
            base + injector.crashOffsetFor(path, tail, schedule) % tail;
        ASSERT_TRUE(FaultInjector::writeTorn(path, bytes, crash_at));
        auto state = loadCheckpoint(path);
        ASSERT_TRUE(state.has_value())
            << "crash seed " << profile_seed << " schedule " << schedule
            << " offset " << crash_at;
        // Whatever snapshot survives must be internally consistent.
        EXPECT_EQ(state->seed, options.seed);
        EXPECT_TRUE(checkpointCompatible(*state, "random", options.seed,
                                         space_));
    }
    std::remove(path.c_str());
}

TEST_F(CheckpointDurability, LegacyTextCheckpointIsStillRead)
{
    const std::string journal_path =
        ::testing::TempDir() + "ft_ckpt_legacy_a.ftc";
    const std::string legacy_path =
        ::testing::TempDir() + "ft_ckpt_legacy_b.ftc";
    std::remove(journal_path.c_str());

    ExploreOptions options;
    options.trials = 6;
    options.seed = 0xfade;
    options.checkpointPath = journal_path;
    options.checkpointEveryTrials = 3;
    Evaluator eval(out_.op(), space_, target_);
    exploreRandom(eval, options);

    // Rewrite the newest snapshot as a legacy (pre-journal) whole-file
    // text checkpoint; the loader must still understand it.
    JournalContents journal = parseJournal(readBytes(journal_path));
    ASSERT_TRUE(journal.valid);
    ASSERT_FALSE(journal.records.empty());
    writeBytes(legacy_path, journal.records.back());

    auto from_journal = loadCheckpoint(journal_path);
    auto from_legacy = loadCheckpoint(legacy_path);
    ASSERT_TRUE(from_journal.has_value());
    ASSERT_TRUE(from_legacy.has_value());
    EXPECT_EQ(from_legacy->trial, from_journal->trial);
    EXPECT_EQ(from_legacy->history.size(), from_journal->history.size());
    EXPECT_DOUBLE_EQ(from_legacy->simSeconds, from_journal->simSeconds);
    std::remove(journal_path.c_str());
    std::remove(legacy_path.c_str());
}

// ---------------------------------------------------------------------
// TuningCache corruption corpus.

void
fillThreeRecords(TuningCache &cache)
{
    for (int i = 1; i <= 3; ++i) {
        TuningRecord record;
        record.key = "op" + std::to_string(i);
        record.gflops = 100.0 * i;
        cache.put(record);
    }
}

TEST(TuningCacheDurability, TornTailRecoversEveryIntactRecord)
{
    const std::string path = ::testing::TempDir() + "ft_cache_torn.j";
    TuningCache cache;
    fillThreeRecords(cache);
    ASSERT_TRUE(cache.save(path));
    const std::string bytes = readBytes(path);

    // Tear inside the last frame: the first two records are intact data
    // and must survive (the v2 format would have discarded everything).
    ASSERT_TRUE(FaultInjector::writeTorn(path, bytes, bytes.size() - 6));
    TuningCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(loaded.lookup("op1").has_value());
    EXPECT_TRUE(loaded.lookup("op2").has_value());
    EXPECT_FALSE(loaded.lookup("op3").has_value());

    // load() repaired the file: a second reader sees a clean journal.
    JournalContents repaired = readJournal(path);
    EXPECT_TRUE(repaired.valid);
    EXPECT_FALSE(repaired.torn);
    EXPECT_EQ(repaired.records.size(), 2u);
    std::remove(path.c_str());
}

TEST(TuningCacheDurability, BitFlipDropsFromTheCorruptFrameOn)
{
    const std::string path = ::testing::TempDir() + "ft_cache_flip.j";
    TuningCache cache;
    fillThreeRecords(cache);
    ASSERT_TRUE(cache.save(path));
    const std::string bytes = readBytes(path);

    // Flip a payload bit of the second record's frame.
    const size_t pos = bytes.find("op2");
    ASSERT_NE(pos, std::string::npos);
    ASSERT_TRUE(FaultInjector::flipBit(path, pos * 8 + 1));
    TuningCache loaded;
    ASSERT_TRUE(loaded.load(path));
    // The valid prefix survives; the corrupt frame and everything after
    // it (unreliable framing) are dropped.
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup("op1").has_value());
    std::remove(path.c_str());
}

TEST(TuningCacheDurability, TruncationToHeaderStartsEmpty)
{
    const std::string path = ::testing::TempDir() + "ft_cache_trunc.j";
    TuningCache cache;
    fillThreeRecords(cache);
    ASSERT_TRUE(cache.save(path));
    const std::string bytes = readBytes(path);

    // Truncate just past the header: zero records, but not an error.
    const size_t header_end = bytes.find('\n') + 1;
    ASSERT_TRUE(FaultInjector::writeTorn(path, bytes, header_end));
    TuningCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(TuningCacheDurability, SaveLoadRoundTripStaysLossless)
{
    const std::string path = ::testing::TempDir() + "ft_cache_rt.j";
    TuningCache cache;
    fillThreeRecords(cache);
    ASSERT_TRUE(cache.save(path));
    // The file is a kind-tagged journal now (format v3).
    EXPECT_TRUE(looksLikeJournal(readBytes(path)));
    TuningCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 3u);
    for (int i = 1; i <= 3; ++i) {
        auto hit = loaded.lookup("op" + std::to_string(i));
        ASSERT_TRUE(hit.has_value());
        EXPECT_DOUBLE_EQ(hit->gflops, 100.0 * i);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// DispatchTable corruption corpus.

DispatchTable
smallTable()
{
    ShapeVar var;
    var.name = "m";
    var.lo = 1;
    var.hi = 8;
    DispatchTable table("gemm_m", "V100", var);
    DispatchEntry a;
    a.lo = 1;
    a.hi = 4;
    a.gflops = 123.5;
    a.trials = 9;
    table.addEntry(a);
    DispatchEntry b;
    b.lo = 5;
    b.hi = 8;
    b.gflops = 456.25;
    b.trials = 9;
    table.addEntry(b);
    return table;
}

TEST(DispatchDurability, SaveLoadRoundTripIsByteExact)
{
    const std::string path = ::testing::TempDir() + "ft_dispatch_rt.j";
    DispatchTable table = smallTable();
    ASSERT_TRUE(table.saveToFile(path));
    EXPECT_TRUE(looksLikeJournal(readBytes(path)));
    auto loaded = DispatchTable::loadFromFile(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->serialize(), table.serialize());
    std::remove(path.c_str());
}

TEST(DispatchDurability, LegacyBareTextFileIsStillRead)
{
    const std::string path = ::testing::TempDir() + "ft_dispatch_legacy.j";
    DispatchTable table = smallTable();
    writeBytes(path, table.serialize());
    auto loaded = DispatchTable::loadFromFile(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->serialize(), table.serialize());
    std::remove(path.c_str());
}

TEST(DispatchDurability, TornAndBitFlippedFilesFailCleanly)
{
    const std::string path = ::testing::TempDir() + "ft_dispatch_bad.j";
    DispatchTable table = smallTable();
    ASSERT_TRUE(table.saveToFile(path));
    const std::string bytes = readBytes(path);

    // The single frame torn mid-payload: no intact snapshot remains.
    ASSERT_TRUE(FaultInjector::writeTorn(path, bytes, bytes.size() / 2));
    EXPECT_FALSE(DispatchTable::loadFromFile(path).has_value());

    // A flipped payload bit fails the CRC, not the parser.
    writeBytes(path, bytes);
    const size_t pos = bytes.find("entry");
    ASSERT_NE(pos, std::string::npos);
    ASSERT_TRUE(FaultInjector::flipBit(path, pos * 8 + 4));
    EXPECT_FALSE(DispatchTable::loadFromFile(path).has_value());

    // Missing file: quiet nullopt.
    std::remove(path.c_str());
    EXPECT_FALSE(DispatchTable::loadFromFile(path).has_value());
}

// ---------------------------------------------------------------------
// Cost-model journal adopter.

/** Build a persisted cost model: N trials plus one model snapshot. */
void
writeCostModelJournal(const std::string &path, int trials)
{
    CostModelOptions options;
    options.syncRefit = true;
    options.refitEvery = trials; // exactly one refit, at the end
    options.persistPath = path;
    CostModel model(options);
    for (int i = 0; i < trials; ++i) {
        double a = static_cast<double>(i) / trials;
        model.recordTrial({a, 1.0 - a}, a * 100.0, 11);
    }
}

TEST(CostModelDurability, SurvivesEverySeededCrashOffset)
{
    const std::string path = ::testing::TempDir() + "ft_costmodel_crash.j";
    std::remove(path.c_str());
    const int trials = 24;
    writeCostModelJournal(path, trials);
    const std::string bytes = readBytes(path);
    JournalContents intact = readJournal(path);
    ASSERT_TRUE(intact.valid);
    ASSERT_EQ(intact.kind, kCostModelJournalKind);
    // trials + the model snapshot frame
    ASSERT_EQ(intact.records.size(), static_cast<size_t>(trials) + 1);

    // Tear the file at seeded crash offsets across its whole length: a
    // reload must never fail, never see a phantom trial, and repair the
    // tail so a subsequent recordTrial lands on a clean boundary.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        FaultProfile profile;
        profile.seed = seed;
        FaultInjector injector(profile);
        for (uint64_t schedule = 0; schedule < 8; ++schedule) {
            const size_t crash_at =
                injector.crashOffsetFor(path, bytes.size(), schedule) %
                bytes.size();
            ASSERT_TRUE(FaultInjector::writeTorn(path, bytes, crash_at));

            CostModelOptions options;
            options.persistPath = path;
            CostModel reloaded(options);
            reloaded.load(); // false is fine (header torn); no crash
            EXPECT_LE(reloaded.numTrials(),
                      static_cast<size_t>(trials))
                << "seed " << seed << " schedule " << schedule
                << " crash_at " << crash_at;
            if (reloaded.ready())
                EXPECT_TRUE(std::isfinite(reloaded.predict({0.5, 0.5})));

            // The append-after-recovery contract: the repaired file
            // accepts a new trial and stays a valid journal.
            reloaded.recordTrial({0.5, 0.5}, 1.0, 11);
            JournalContents after = readJournal(path);
            if (crash_at > 0) {
                EXPECT_TRUE(after.valid)
                    << "seed " << seed << " schedule " << schedule;
                EXPECT_FALSE(after.torn)
                    << "seed " << seed << " schedule " << schedule;
            }
        }
    }
    std::remove(path.c_str());
}

TEST(CostModelDurability, ModelSnapshotSurvivesTornTrialTail)
{
    // Tear INSIDE the last trial frame appended after the model
    // snapshot: the reloaded model must still be ready with the exact
    // snapshot predictions.
    const std::string path = ::testing::TempDir() + "ft_costmodel_tail.j";
    std::remove(path.c_str());
    writeCostModelJournal(path, 16);

    std::vector<double> before;
    {
        CostModelOptions options;
        options.persistPath = path;
        CostModel model(options);
        ASSERT_TRUE(model.load());
        ASSERT_TRUE(model.ready());
        for (int i = 0; i < 8; ++i)
            before.push_back(
                model.predict({i / 8.0, 1.0 - i / 8.0}));
        model.recordTrial({0.25, 0.75}, 5.0, 11); // post-snapshot trial
    }
    const std::string bytes = readBytes(path);
    ASSERT_TRUE(
        FaultInjector::writeTorn(path, bytes, bytes.size() - 10));

    CostModelOptions options;
    options.persistPath = path;
    CostModel reloaded(options);
    ASSERT_TRUE(reloaded.load());
    ASSERT_TRUE(reloaded.ready());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(reloaded.predict({i / 8.0, 1.0 - i / 8.0}),
                  before[i]);
    std::remove(path.c_str());
}

} // namespace
} // namespace ft
