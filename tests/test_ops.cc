/**
 * @file
 * Tests for the operator library: output shapes, mini-graph structure, and
 * numerical correctness of the reference executor against hand-computed
 * results on tiny inputs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/flops.h"
#include "exec/reference.h"
#include "ir/graph.h"
#include "ops/ops.h"
#include "ops/shapes.h"
#include "support/rng.h"

namespace ft {
namespace {

/** Materialize the whole graph with fixed input data supplied per name. */
BufferMap
runWithInputs(const Tensor &out,
              const std::unordered_map<std::string, std::vector<float>>
                  &inputs)
{
    MiniGraph g(out);
    BufferMap buffers;
    for (const auto &op : g.postOrder()) {
        if (!op->isPlaceholder())
            continue;
        Buffer buf(op);
        auto it = inputs.find(op->name());
        EXPECT_NE(it, inputs.end()) << "missing data for " << op->name();
        EXPECT_EQ(static_cast<int64_t>(it->second.size()), buf.numel());
        buf.data() = it->second;
        buffers.emplace(op.get(), std::move(buf));
    }
    runGraphReference(g, buffers);
    return buffers;
}

TEST(Gemv, TinyHandComputed)
{
    Tensor a = placeholder("A", {2, 3});
    Tensor x = placeholder("x", {3});
    Tensor y = ops::gemv(a, x);
    EXPECT_EQ(y.shape(), (std::vector<int64_t>{2}));

    auto buffers = runWithInputs(
        y, {{"A", {1, 2, 3, 4, 5, 6}}, {"x", {1, 0, -1}}});
    const Buffer &out = buffers.at(y.op().get());
    EXPECT_FLOAT_EQ(out.at({0}), 1 - 3);
    EXPECT_FLOAT_EQ(out.at({1}), 4 - 6);
}

TEST(Gemm, TinyHandComputed)
{
    Tensor a = placeholder("A", {2, 2});
    Tensor b = placeholder("B", {2, 2});
    Tensor c = ops::gemm(a, b);
    EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 2}));

    auto buffers =
        runWithInputs(c, {{"A", {1, 2, 3, 4}}, {"B", {5, 6, 7, 8}}});
    const Buffer &out = buffers.at(c.op().get());
    EXPECT_FLOAT_EQ(out.at({0, 0}), 19);
    EXPECT_FLOAT_EQ(out.at({0, 1}), 22);
    EXPECT_FLOAT_EQ(out.at({1, 0}), 43);
    EXPECT_FLOAT_EQ(out.at({1, 1}), 50);
}

TEST(Gemm, MiniGraphStructureMatchesPaper)
{
    // Figure 3: GEMM mini-graph has 3 nodes (op A, op B, GEMM).
    Tensor a = placeholder("A", {8, 8});
    Tensor b = placeholder("B", {8, 8});
    Tensor c = ops::gemm(a, b);
    MiniGraph g(c);
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.computeOps().size(), 1u);
}

TEST(Bilinear, MatchesNaiveTripleLoop)
{
    const int64_t n = 2, m = 3, kk = 2, ll = 2;
    Tensor a = placeholder("A", {n, kk});
    Tensor w = placeholder("W", {m, kk, ll});
    Tensor c = placeholder("C", {n, ll});
    Tensor out = ops::bilinear(a, w, c);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{n, m}));

    Rng rng(17);
    MiniGraph g(out);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &A = buffers.at(a.op().get());
    const Buffer &W = buffers.at(w.op().get());
    const Buffer &C = buffers.at(c.op().get());
    const Buffer &O = buffers.at(out.op().get());
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < m; ++j) {
            float acc = 0;
            for (int64_t k = 0; k < kk; ++k)
                for (int64_t l = 0; l < ll; ++l)
                    acc += A.at({i, k}) * W.at({j, k, l}) * C.at({i, l});
            EXPECT_NEAR(O.at({i, j}), acc, 1e-4);
        }
    }
}

TEST(Conv1d, IdentityKernel)
{
    Tensor input = placeholder("I", {1, 1, 5});
    Tensor weight = placeholder("W", {1, 1, 1});
    Tensor out = ops::conv1d(input, weight);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 5}));
    auto buffers = runWithInputs(
        out, {{"I", {1, 2, 3, 4, 5}}, {"W", {2}}});
    const Buffer &o = buffers.at(out.op().get());
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_FLOAT_EQ(o.at({0, 0, i}), 2.0f * (i + 1));
}

TEST(Conv1d, PaddedBoxFilter)
{
    Tensor input = placeholder("I", {1, 1, 4});
    Tensor weight = placeholder("W", {1, 1, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv1d(input, weight, p);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 4}));
    auto buffers =
        runWithInputs(out, {{"I", {1, 2, 3, 4}}, {"W", {1, 1, 1}}});
    const Buffer &o = buffers.at(out.op().get());
    EXPECT_FLOAT_EQ(o.at({0, 0, 0}), 3);  // 0+1+2
    EXPECT_FLOAT_EQ(o.at({0, 0, 1}), 6);  // 1+2+3
    EXPECT_FLOAT_EQ(o.at({0, 0, 2}), 9);  // 2+3+4
    EXPECT_FLOAT_EQ(o.at({0, 0, 3}), 7);  // 3+4+0
}

TEST(Conv1d, StrideTwoHalvesOutput)
{
    Tensor input = placeholder("I", {1, 2, 8});
    Tensor weight = placeholder("W", {3, 2, 3});
    ops::ConvParams p;
    p.stride = 2;
    p.padding = 1;
    Tensor out = ops::conv1d(input, weight, p);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 3, 4}));
}

TEST(Conv1dTransposed, InvertsStrideTwoShapes)
{
    Tensor input = placeholder("I", {1, 2, 4});
    Tensor weight = placeholder("W", {2, 3, 3});
    Tensor out = ops::conv1dTransposed(input, weight, 2, 1);
    // (L-1)*s - 2p + R = 3*2 - 2 + 3 = 7
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 3, 7}));
    // Mini-graph: dilate + pad + conv = 3 compute nodes (Table 3: T1D).
    MiniGraph g(out);
    EXPECT_EQ(g.computeOps().size(), 3u);
}

TEST(Conv1dTransposed, MatchesScatterSemantics)
{
    // Transposed conv == scatter of input * kernel into the output.
    const int64_t l = 3, r = 3, stride = 2;
    Tensor input = placeholder("I", {1, 1, l});
    Tensor weight = placeholder("W", {1, 1, r});
    Tensor out = ops::conv1dTransposed(input, weight, stride, 0);
    const int64_t ol = (l - 1) * stride + r;
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, ol}));

    std::vector<float> in_data = {1, 2, 3};
    std::vector<float> w_data = {10, 20, 30};
    auto buffers = runWithInputs(out, {{"I", in_data}, {"W", w_data}});
    std::vector<float> expect(ol, 0.0f);
    for (int64_t i = 0; i < l; ++i)
        for (int64_t k = 0; k < r; ++k)
            expect[i * stride + k] += in_data[i] * w_data[k];
    const Buffer &o = buffers.at(out.op().get());
    for (int64_t i = 0; i < ol; ++i)
        EXPECT_NEAR(o.at({0, 0, i}), expect[i], 1e-4) << "at " << i;
}

TEST(Conv2d, ShapeWithPadStride)
{
    Tensor input = placeholder("I", {1, 3, 8, 8});
    Tensor weight = placeholder("W", {4, 3, 3, 3});
    ops::ConvParams p;
    p.stride = 2;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 4, 4, 4}));
    // Pad + conv: two compute nodes (Table 3: C2D).
    MiniGraph g(out);
    EXPECT_EQ(g.computeOps().size(), 2u);
}

TEST(Conv2d, SumFilterEqualsWindowSum)
{
    Tensor input = placeholder("I", {1, 1, 4, 4});
    Tensor weight = placeholder("W", {1, 1, 2, 2});
    Tensor out = ops::conv2d(input, weight);
    std::vector<float> in_data(16);
    for (int i = 0; i < 16; ++i)
        in_data[i] = static_cast<float>(i);
    auto buffers =
        runWithInputs(out, {{"I", in_data}, {"W", {1, 1, 1, 1}}});
    const Buffer &o = buffers.at(out.op().get());
    EXPECT_FLOAT_EQ(o.at({0, 0, 0, 0}), 0 + 1 + 4 + 5);
    EXPECT_FLOAT_EQ(o.at({0, 0, 2, 2}), 10 + 11 + 14 + 15);
}

TEST(Conv2dGroup, TwoGroupsDoNotMix)
{
    // Group conv with 2 groups: output channel 0 must ignore channel 1.
    Tensor input = placeholder("I", {1, 2, 3, 3});
    Tensor weight = placeholder("W", {2, 1, 1, 1});
    ops::ConvParams p;
    p.groups = 2;
    Tensor out = ops::conv2d(input, weight, p);
    std::vector<float> in_data(18, 0.0f);
    for (int i = 0; i < 9; ++i)
        in_data[i] = 1.0f; // channel 0 all ones, channel 1 zero
    auto buffers = runWithInputs(out, {{"I", in_data}, {"W", {3, 5}}});
    const Buffer &o = buffers.at(out.op().get());
    EXPECT_FLOAT_EQ(o.at({0, 0, 1, 1}), 3.0f);
    EXPECT_FLOAT_EQ(o.at({0, 1, 1, 1}), 0.0f);
}

TEST(Conv2dDilated, ReachesSpacedTaps)
{
    Tensor input = placeholder("I", {1, 1, 5, 5});
    Tensor weight = placeholder("W", {1, 1, 2, 2});
    ops::ConvParams p;
    p.dilation = 2;
    Tensor out = ops::conv2d(input, weight, p);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, 3, 3}));
    std::vector<float> in_data(25, 0.0f);
    in_data[0] = 1.0f;  // (0,0)
    in_data[12] = 7.0f; // (2,2)
    auto buffers = runWithInputs(out, {{"I", in_data}, {"W", {1, 0, 0, 1}}});
    const Buffer &o = buffers.at(out.op().get());
    // Output (0,0) = I(0,0)*W(0,0) + I(2,2)*W(1,1) = 1 + 7.
    EXPECT_FLOAT_EQ(o.at({0, 0, 0, 0}), 8.0f);
}

TEST(DepthwiseConv2d, PerChannelFilters)
{
    Tensor input = placeholder("I", {1, 2, 3, 3});
    Tensor weight = placeholder("W", {2, 1, 1, 1});
    Tensor out = ops::depthwiseConv2d(input, weight);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 2, 3, 3}));
    std::vector<float> in_data(18, 1.0f);
    auto buffers = runWithInputs(out, {{"I", in_data}, {"W", {2, 5}}});
    const Buffer &o = buffers.at(out.op().get());
    EXPECT_FLOAT_EQ(o.at({0, 0, 1, 1}), 2.0f);
    EXPECT_FLOAT_EQ(o.at({0, 1, 1, 1}), 5.0f);
}

TEST(DepthwiseConv2d, ChannelMultiplierExpandsOutput)
{
    Tensor input = placeholder("I", {1, 2, 4, 4});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    Tensor out = ops::depthwiseConv2d(input, weight, 1, 1);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 6, 4, 4}));
}

TEST(Conv3d, ShapeAndNodeCount)
{
    Tensor input = placeholder("I", {1, 2, 4, 6, 6});
    Tensor weight = placeholder("W", {3, 2, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv3d(input, weight, p);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 3, 4, 6, 6}));
    MiniGraph g(out);
    EXPECT_EQ(g.computeOps().size(), 2u);
}

TEST(Conv3dTransposed, ShapeAndNodeCount)
{
    Tensor input = placeholder("I", {1, 2, 3, 4, 4});
    Tensor weight = placeholder("W", {2, 3, 3, 3, 3});
    Tensor out = ops::conv3dTransposed(input, weight, 2, 1);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 3, 5, 7, 7}));
    MiniGraph g(out);
    EXPECT_EQ(g.computeOps().size(), 3u);
}

TEST(Conv2dTransposed, MatchesScatterSemantics)
{
    const int64_t h = 2, w = 2, r = 3, stride = 2;
    Tensor input = placeholder("I", {1, 1, h, w});
    Tensor weight = placeholder("W", {1, 1, r, r});
    Tensor out = ops::conv2dTransposed(input, weight, stride, 0);
    const int64_t oh = (h - 1) * stride + r;
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 1, oh, oh}));

    Rng rng(23);
    MiniGraph g(out);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &I = buffers.at(input.op().get());
    const Buffer &W = buffers.at(weight.op().get());
    const Buffer &O = buffers.at(out.op().get());
    std::vector<float> expect(oh * oh, 0.0f);
    for (int64_t i = 0; i < h; ++i)
        for (int64_t j = 0; j < w; ++j)
            for (int64_t a = 0; a < r; ++a)
                for (int64_t b = 0; b < r; ++b)
                    expect[(i * stride + a) * oh + j * stride + b] +=
                        I.at({0, 0, i, j}) * W.at({0, 0, a, b});
    for (int64_t i = 0; i < oh; ++i)
        for (int64_t j = 0; j < oh; ++j)
            EXPECT_NEAR(O.at({0, 0, i, j}), expect[i * oh + j], 1e-4);
}

TEST(BlockCirculant, MatchesExpandedMatrix)
{
    const int64_t n = 2, m = 4, kk = 4, block = 2;
    Tensor a = placeholder("A", {n, kk});
    Tensor w = placeholder("W", {m / block, kk / block, block});
    Tensor out = ops::blockCirculantMatmul(a, w, block);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{n, m}));

    Rng rng(31);
    MiniGraph g(out);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &A = buffers.at(a.op().get());
    const Buffer &W = buffers.at(w.op().get());
    const Buffer &O = buffers.at(out.op().get());

    // Expand the circulant blocks into a dense K x M matrix and compare.
    // Block (p, q) has entries B[u][v] = w[p, q, (u - v) mod block] where u
    // indexes the output within block p and v the input within block q.
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < m; ++j) {
            int64_t p = j / block, u = j % block;
            float acc = 0;
            for (int64_t col = 0; col < kk; ++col) {
                int64_t q = col / block, v = col % block;
                int64_t rot = ((u - v) % block + block) % block;
                acc += A.at({i, col}) * W.at({p, q, rot});
            }
            EXPECT_NEAR(O.at({i, j}), acc, 1e-4);
        }
    }
}

TEST(Shift2d, ShiftsPerChannel)
{
    Tensor input = placeholder("I", {1, 9, 4, 4});
    Tensor out = ops::shift2d(input);
    EXPECT_EQ(out.shape(), input.shape());

    Rng rng(37);
    MiniGraph g(out);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &I = buffers.at(input.op().get());
    const Buffer &O = buffers.at(out.op().get());
    for (int64_t c = 0; c < 9; ++c) {
        int64_t dx = c % 3 - 1, dy = (c / 3) % 3 - 1;
        for (int64_t x = 0; x < 4; ++x) {
            for (int64_t y = 0; y < 4; ++y) {
                int64_t sx = x + dx, sy = y + dy;
                float expect = (sx >= 0 && sx < 4 && sy >= 0 && sy < 4)
                                   ? I.at({0, c, sx, sy})
                                   : 0.0f;
                EXPECT_FLOAT_EQ(O.at({0, c, x, y}), expect)
                    << "c=" << c << " x=" << x << " y=" << y;
            }
        }
    }
}

TEST(Relu, ClampsNegatives)
{
    Tensor a = placeholder("A", {4});
    Tensor r = ops::relu(a);
    auto buffers = runWithInputs(r, {{"A", {-1, 0, 2, -3}}});
    const Buffer &o = buffers.at(r.op().get());
    EXPECT_FLOAT_EQ(o.at({0}), 0);
    EXPECT_FLOAT_EQ(o.at({1}), 0);
    EXPECT_FLOAT_EQ(o.at({2}), 2);
    EXPECT_FLOAT_EQ(o.at({3}), 0);
}

TEST(BiasAdd, PerChannel)
{
    Tensor a = placeholder("A", {1, 2, 2, 2});
    Tensor b = placeholder("b", {2});
    Tensor r = ops::biasAdd(a, b);
    auto buffers = runWithInputs(
        r, {{"A", {0, 0, 0, 0, 0, 0, 0, 0}}, {"b", {1, 2}}});
    const Buffer &o = buffers.at(r.op().get());
    EXPECT_FLOAT_EQ(o.at({0, 0, 1, 1}), 1);
    EXPECT_FLOAT_EQ(o.at({0, 1, 0, 0}), 2);
}

TEST(MaxPool2d, TwoByTwo)
{
    Tensor a = placeholder("A", {1, 1, 4, 4});
    Tensor r = ops::maxPool2d(a, 2, 2);
    EXPECT_EQ(r.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
    std::vector<float> data(16);
    for (int i = 0; i < 16; ++i)
        data[i] = static_cast<float>(i);
    auto buffers = runWithInputs(r, {{"A", data}});
    const Buffer &o = buffers.at(r.op().get());
    EXPECT_FLOAT_EQ(o.at({0, 0, 0, 0}), 5);
    EXPECT_FLOAT_EQ(o.at({0, 0, 1, 1}), 15);
}

TEST(Dense, MatchesGemmTransposed)
{
    Tensor a = placeholder("A", {2, 3});
    Tensor w = placeholder("W", {4, 3});
    Tensor r = ops::dense(a, w);
    EXPECT_EQ(r.shape(), (std::vector<int64_t>{2, 4}));
}

TEST(Shapes, YoloTableHasFifteenLayers)
{
    const auto &layers = ops::yoloLayers();
    ASSERT_EQ(layers.size(), 15u);
    EXPECT_EQ(layers[0].inChannels, 3);
    EXPECT_EQ(layers[0].kernel, 7);
    EXPECT_EQ(layers[0].stride, 2);
    EXPECT_EQ(layers[14].imageSize, 7);
    // Stride-1 same-padded layers preserve the spatial size.
    Tensor c2 = layers[1].build(1);
    EXPECT_EQ(c2.shape(), (std::vector<int64_t>{1, 192, 112, 112}));
    // C1: 448x448 stride 2 kernel 7 pad 3 -> 224.
    Tensor c1 = layers[0].build(1);
    EXPECT_EQ(c1.shape(), (std::vector<int64_t>{1, 64, 224, 224}));
}

TEST(Shapes, AllTable3SuitesBuild)
{
    for (const auto &op : ops::table3Operators()) {
        auto cases = ops::table3Cases(op);
        EXPECT_FALSE(cases.empty()) << op;
        for (const auto &tc : cases) {
            Tensor t = tc.build();
            EXPECT_TRUE(t.defined()) << op << "/" << tc.id;
            MiniGraph g(t);
            EXPECT_GT(anchorFlops(g), 0.0) << op << "/" << tc.id;
        }
    }
}

TEST(Shapes, Table3FlopRangesRoughlyMatchPaper)
{
    // Spot-check the FLOP envelopes reported in Table 3.
    auto check_range = [](const std::string &op, double lo, double hi) {
        for (const auto &tc : ops::table3Cases(op)) {
            double f = anchorFlops(MiniGraph(tc.build()));
            EXPECT_GE(f, lo) << op << "/" << tc.id;
            EXPECT_LE(f, hi) << op << "/" << tc.id;
        }
    };
    check_range("GMV", 8e3, 2e6);
    check_range("GMM", 2e4, 2e10);
    check_range("C1D", 2e7, 2e9);
    check_range("DEP", 1e5, 3e7);
}

} // namespace
} // namespace ft
