/**
 * @file
 * Soundness oracle for the transformation-legality certificates.
 *
 * The certificate layer claims a machine-checkable equivalence between
 * a lowered schedule and the reference program. This suite enforces the
 * two halves of that claim differentially:
 *
 *   1. Completeness half (fuzz): every generator-produced point over
 *      gemm/conv2d x GPU/CPU certifies without refutation, and every
 *      *Proven* certificate's schedule matches the reference executor
 *      bit-for-bit on integer-valued inputs (integer sums in fp32 are
 *      exact and order-independent, so "equivalent" really means
 *      equality, not tolerance).
 *
 *   2. Soundness half (adversarial): for every FT-DEP code a hand-built
 *      nest realizes the illegal transformation; the certificate must
 *      refute it under that exact code, and the schedule must either
 *      miscompute against the reference (executed fixtures) or be
 *      conservatively rejected by the structural verifier (fixtures the
 *      interpreter cannot safely run).
 *
 * Sample count per space honors FLEXTENSOR_FUZZ_SAMPLES (default 200),
 * matching tests/test_fuzz_schedule.cc.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/static_analyzer.h"
#include "analysis/verify/certificate.h"
#include "analysis/verify/deps.h"
#include "analysis/verify/verify.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "graph/dag.h"
#include "graph/partition.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

using verify::Obligation;
using verify::PartitionCertificate;
using verify::ScheduleCertificate;
using verify::Verdict;

int
fuzzSamples()
{
    if (const char *env = std::getenv("FLEXTENSOR_FUZZ_SAMPLES")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 200;
}

Tensor
certGemm()
{
    Tensor a = placeholder("A", {12, 18});
    Tensor b = placeholder("B", {18, 8});
    return ops::gemm(a, b);
}

Tensor
certConv2d()
{
    Tensor input = placeholder("I", {1, 4, 8, 8});
    Tensor weight = placeholder("W", {6, 4, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    return ops::conv2d(input, weight, p);
}

/**
 * Inputs whose every element is a small integer. Products stay <= 9 and
 * the longest reduction here sums 36 of them, far below 2^24, so every
 * partial sum is exactly representable in fp32 and addition is
 * associative on the realized values: any legal schedule must reproduce
 * the reference output bit-for-bit, no tolerance needed.
 */
BufferMap
integerInputs(const MiniGraph &graph)
{
    BufferMap buffers;
    uint64_t c = 0x9e3779b9u;
    for (const auto &op : graph.postOrder()) {
        if (!op->isPlaceholder())
            continue;
        Buffer buf(op);
        for (int64_t i = 0; i < buf.numel(); ++i) {
            c = c * 6364136223846793005ULL + 1442695040888963407ULL;
            buf[i] = static_cast<float>(
                static_cast<int64_t>((c >> 33) % 7) - 3);
        }
        buffers.emplace(op.get(), std::move(buf));
    }
    return buffers;
}

/** First obligation of the certificate refuted under `code`, or null. */
const Obligation *
refutedUnder(const ScheduleCertificate &cert, const char *code)
{
    for (const Obligation &o : cert.obligations)
        if (o.verdict == Verdict::Refuted && o.code == code)
            return &o;
    return nullptr;
}

struct CertifyCase
{
    const char *name;
    Tensor (*build)();
    int target; ///< 0 = GPU (V100), 1 = CPU (Xeon)
};

class CertifyFuzzTest : public ::testing::TestWithParam<CertifyCase>
{};

/**
 * Differential completeness + soundness over the real schedule space:
 * no generator point is ever refuted, and every Proven point computes
 * the reference tensor exactly.
 */
TEST_P(CertifyFuzzTest, ProvenPointsMatchReferenceBitForBit)
{
    const CertifyCase &cc = GetParam();
    Tensor out = cc.build();
    Target target = cc.target == 0 ? Target::forGpu(v100())
                                   : Target::forCpu(xeonE5());
    MiniGraph g(out);
    Operation anchor = anchorOp(g);
    ScheduleSpace space = buildSpace(anchor, target);

    BufferMap reference = integerInputs(g);
    runGraphReference(g, reference);
    const Buffer &gold = reference.at(anchor.get());

    Rng rng(0xceef1u + static_cast<uint64_t>(cc.target));
    const int samples = fuzzSamples();
    int proven = 0, refuted = 0, unknown = 0;
    for (int trial = 0; trial < samples; ++trial) {
        Point p = space.randomPoint(rng);
        OpConfig cfg = space.decode(p);
        Scheduled s = generate(anchor, cfg, target);

        ScheduleCertificate cert = verify::certifySchedule(s, target, &cfg);
        ASSERT_FALSE(cert.obligations.empty()) << cfg.toString();
        switch (cert.verdict) {
        case Verdict::Proven:
            ++proven;
            break;
        case Verdict::Refuted:
            ++refuted;
            break;
        case Verdict::Unknown:
            ++unknown;
            break;
        }
        // The generator only emits exact mixed-radix splits and legal
        // bindings; a refutation here is a certificate-engine bug.
        ASSERT_NE(cert.verdict, Verdict::Refuted)
            << cfg.toString() << "\n"
            << cert.toJson();

        if (cert.verdict != Verdict::Proven)
            continue;
        BufferMap buffers = reference;
        buffers.erase(anchor.get());
        runScheduled(s.nest, buffers, 1 + trial % 3);
        const Buffer &got = buffers.at(anchor.get());
        ASSERT_EQ(got.numel(), gold.numel());
        for (int64_t i = 0; i < gold.numel(); ++i) {
            ASSERT_EQ(got[i], gold[i])
                << "certified-equivalent schedule diverged from the "
                   "reference at element "
                << i << "\nconfig " << cfg.toString() << "\n"
                << cert.toJson();
        }
    }
    EXPECT_EQ(refuted, 0);
    EXPECT_GT(proven, 0) << "no point certified: " << unknown
                         << " unknown of " << samples;
}

constexpr CertifyCase kCertifyCases[] = {
    {"gemm", certGemm, 0},
    {"gemm", certGemm, 1},
    {"conv2d", certConv2d, 0},
    {"conv2d", certConv2d, 1},
};

std::string
certifyName(const ::testing::TestParamInfo<CertifyCase> &info)
{
    return std::string(info.param.name) +
           (info.param.target == 0 ? "_gpu" : "_cpu");
}

// Named "Fuzz" so the sanitizer/soundness CI jobs can select the whole
// differential family with `ctest -R '^Fuzz'`.
INSTANTIATE_TEST_SUITE_P(Fuzz, CertifyFuzzTest,
                         ::testing::ValuesIn(kCertifyCases), certifyName);

/* ------------------------------------------------------------------ */
/* Hand-built adversarial fixtures: one per FT-DEP code.               */
/* ------------------------------------------------------------------ */

/** A gemm MiniGraph with anchor and axis handles for nest surgery. */
struct GemmRig
{
    MiniGraph g;
    Operation anchor;
    const IterVarNode *i;
    const IterVarNode *j;
    const IterVarNode *k;

    explicit GemmRig(int64_t m, int64_t n, int64_t kk)
        : g(ops::gemm(placeholder("A", {m, kk}),
                      placeholder("B", {kk, n})))
    {
        anchor = anchorOp(g);
        const auto *op = static_cast<const ComputeOp *>(anchor.get());
        i = op->axis()[0].get();
        j = op->axis()[1].get();
        k = op->reduceAxis()[0].get();
    }
};

SubLoop
sub(const IterVarNode *origin, int64_t extent, int64_t stride, int level,
    LoopAnno anno = LoopAnno::Serial)
{
    SubLoop l;
    l.name = origin->name + "." + std::to_string(level);
    l.extent = extent;
    l.anno = anno;
    l.origin = origin;
    l.stride = stride;
    l.level = level;
    return l;
}

/** All-ones inputs: reference output is exactly K everywhere, so any
 *  dropped, duplicated, or re-accumulated iteration shows immediately. */
BufferMap
onesInputs(const MiniGraph &graph)
{
    BufferMap buffers;
    for (const auto &op : graph.postOrder()) {
        if (!op->isPlaceholder())
            continue;
        Buffer buf(op);
        buf.fill(1.0f);
        buffers.emplace(op.get(), std::move(buf));
    }
    return buffers;
}

/** Run `nest` and its reference on all-ones inputs; true iff they
 *  disagree on some element (the refuted schedule miscomputed). */
bool
mismatchesReference(const GemmRig &rig, const LoopNest &nest)
{
    BufferMap reference = onesInputs(rig.g);
    runGraphReference(rig.g, reference);
    const Buffer &gold = reference.at(rig.anchor.get());

    BufferMap buffers = onesInputs(rig.g);
    runScheduled(nest, buffers, 1);
    const Buffer &got = buffers.at(rig.anchor.get());
    EXPECT_EQ(got.numel(), gold.numel());
    for (int64_t idx = 0; idx < gold.numel(); ++idx)
        if (got[idx] != gold[idx])
            return true;
    return false;
}

/**
 * FT-DEP-002: a reduce axis of extent 4 realized by three (extent 2,
 * stride 1) sub-loops. The mixed-radix map a+b+c hits 1 and 2 three
 * times each — duplicated reduction terms. The certificate must refute
 * the split, and the interpreter must overshoot the reference sum.
 */
TEST(CertifyRefutedTest, ReduceDuplicateIsRefutedAndMiscomputes)
{
    GemmRig rig(4, 4, 4);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 4, 1, 0), sub(rig.j, 4, 1, 0),
                  sub(rig.k, 2, 1, 0), sub(rig.k, 2, 1, 1),
                  sub(rig.k, 2, 1, 2)};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forCpu(xeonE5());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    ASSERT_NE(refutedUnder(cert, verify::kDepReduceDuplicate), nullptr)
        << cert.toJson();
    EXPECT_TRUE(mismatchesReference(rig, nest))
        << "refuted schedule still matched the reference";
}

/**
 * FT-DEP-004: the same duplication on a *spatial* axis. Each revisit of
 * an output row re-runs the whole reduction, so rows accumulate a
 * multiple of the true value.
 */
TEST(CertifyRefutedTest, SpatialDuplicateIsRefutedAndMiscomputes)
{
    GemmRig rig(4, 4, 4);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 2, 1, 0), sub(rig.i, 2, 1, 1),
                  sub(rig.i, 2, 1, 2), sub(rig.j, 4, 1, 0),
                  sub(rig.k, 4, 1, 0)};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forCpu(xeonE5());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    ASSERT_NE(refutedUnder(cert, verify::kDepSpatialDuplicate), nullptr)
        << cert.toJson();
    EXPECT_TRUE(mismatchesReference(rig, nest));
}

/**
 * FT-DEP-003 (hole): spatial extent 6 realized by (2,stride 4) x
 * (2,stride 1) — image {0,1,4,5}, rows 2 and 3 are never written. The
 * certificate refutes the domain obligation and the untouched rows
 * stay zero against a nonzero reference.
 */
TEST(CertifyRefutedTest, DomainHoleIsRefutedAndMiscomputes)
{
    GemmRig rig(6, 4, 4);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 2, 4, 0), sub(rig.i, 2, 1, 1),
                  sub(rig.j, 4, 1, 0), sub(rig.k, 4, 1, 0)};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forCpu(xeonE5());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    ASSERT_NE(refutedUnder(cert, verify::kDepDomainMismatch), nullptr)
        << cert.toJson();
    EXPECT_TRUE(mismatchesReference(rig, nest));
}

/**
 * FT-DEP-003 (unguarded overshoot): (2,stride 4) x (4,stride 1) maps
 * onto 0..7 but the axis extent is 6 and no guard is declared. The
 * certificate refutes the domain obligation; execution would write out
 * of bounds, so soundness here means the structural verifier also
 * rejects the nest conservatively (the bounds prover fails).
 */
TEST(CertifyRefutedTest, UnguardedOvershootIsRefutedAndDiagnosed)
{
    GemmRig rig(6, 4, 4);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 2, 4, 0), sub(rig.i, 4, 1, 1),
                  sub(rig.j, 4, 1, 0), sub(rig.k, 4, 1, 0)};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forCpu(xeonE5());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    ASSERT_NE(refutedUnder(cert, verify::kDepDomainMismatch), nullptr)
        << cert.toJson();
    verify::DiagReport report = verify::verifySchedule(s, target);
    EXPECT_TRUE(report.hasError())
        << "overshooting nest passed the structural verifier:\n"
        << report.toJson();
}

/**
 * FT-DEP-005: a *guarded* reduce axis of extent 5 realized by (3,
 * stride 2) x (3, stride 1). The guard clips the overshoot (indices 5
 * and 6), but 2 and 4 are still produced twice *below* the guard, so
 * guarding is not enough — the live portion must also be injective.
 */
TEST(CertifyRefutedTest, InexactGuardIsRefutedAndMiscomputes)
{
    GemmRig rig(4, 4, 5);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 4, 1, 0), sub(rig.j, 4, 1, 0),
                  sub(rig.k, 3, 2, 0), sub(rig.k, 3, 1, 1)};
    nest.guardedAxes = {rig.k};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forCpu(xeonE5());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    ASSERT_NE(refutedUnder(cert, verify::kDepGuardInexact), nullptr)
        << cert.toJson();
    EXPECT_TRUE(mismatchesReference(rig, nest));
}

/**
 * FT-DEP-001: a reduction sub-loop bound to a concurrent dimension.
 * The carried dependence (every k iteration accumulates into the same
 * output element) makes the binding a race. The interpreter refuses to
 * run such nests, so soundness here is conservative diagnosis: the
 * exact dependence checker emits FT-DEP-001 as an error.
 */
TEST(CertifyRefutedTest, ConcurrentCarriedDependenceIsRefutedAndDiagnosed)
{
    GemmRig rig(4, 4, 4);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 4, 1, 0, LoopAnno::BlockX),
                  sub(rig.j, 4, 1, 0, LoopAnno::ThreadX),
                  sub(rig.k, 4, 1, 0, LoopAnno::ThreadX)};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forGpu(v100());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    ASSERT_NE(refutedUnder(cert, verify::kDepConcurrentCarried), nullptr)
        << cert.toJson();

    verify::DiagReport report;
    verify::checkDependences(nest, report);
    EXPECT_TRUE(report.hasError()) << report.toJson();
    bool sawDep001 = false;
    for (const auto &d : report.diags())
        sawDep001 |= d.code == verify::kDepConcurrentCarried;
    EXPECT_TRUE(sawDep001) << report.toJson();
}

/**
 * Positive control for the guard contract: a guarded axis whose live
 * portion is exactly covered certifies Proven, and the guarded
 * schedule still matches the reference bit-for-bit.
 */
TEST(CertifyRefutedTest, ExactGuardIsProvenAndExact)
{
    GemmRig rig(4, 4, 5);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 4, 1, 0), sub(rig.j, 4, 1, 0),
                  sub(rig.k, 2, 4, 0), sub(rig.k, 4, 1, 1)};
    nest.guardedAxes = {rig.k};

    Scheduled s;
    s.nest = nest;
    Target target = Target::forCpu(xeonE5());
    ScheduleCertificate cert = verify::certifySchedule(s, target);
    EXPECT_EQ(cert.verdict, Verdict::Proven) << cert.toJson();
    EXPECT_FALSE(mismatchesReference(rig, nest));
}

/** Certificate JSON carries the lower-case schema the report folds on. */
TEST(CertifyJsonTest, CertificateJsonSchema)
{
    GemmRig rig(4, 4, 4);
    LoopNest nest;
    nest.op = rig.anchor;
    nest.loops = {sub(rig.i, 4, 1, 0), sub(rig.j, 4, 1, 0),
                  sub(rig.k, 4, 1, 0)};
    Scheduled s;
    s.nest = nest;
    ScheduleCertificate cert =
        verify::certifySchedule(s, Target::forCpu(xeonE5()));
    EXPECT_EQ(cert.verdict, Verdict::Proven);
    const std::string json = cert.toJson();
    EXPECT_NE(json.find("\"verdict\":\"proven\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"obligations\":["), std::string::npos) << json;
    EXPECT_NE(json.find("\"transform\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"code\""), std::string::npos) << json;
    EXPECT_EQ(std::string(verify::verdictName(Verdict::Refuted)),
              "refuted");
    EXPECT_EQ(std::string(verify::verdictName(Verdict::Unknown)),
              "unknown");
}

/* ------------------------------------------------------------------ */
/* FT-DEP-006: fusion-partition certification.                         */
/* ------------------------------------------------------------------ */

int
pushInput(graph::ComputeDag &dag, const std::string &name,
          std::vector<int64_t> shape)
{
    graph::DagNode n;
    n.kind = graph::NodeKind::Input;
    n.name = name;
    n.shape = std::move(shape);
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

int
pushConv(graph::ComputeDag &dag, const std::string &name, int data,
         int64_t outc, int64_t kernel, int64_t stride, int64_t pad)
{
    const auto &in = dag.nodes[static_cast<size_t>(data)].shape;
    graph::DagNode w;
    w.kind = graph::NodeKind::Input;
    w.name = name + ".w";
    w.shape = {outc, in[1], kernel, kernel};
    dag.nodes.push_back(std::move(w));
    const int wid = static_cast<int>(dag.nodes.size()) - 1;

    graph::DagNode n;
    n.kind = graph::NodeKind::Conv;
    n.name = name;
    n.inputs = {data, wid};
    n.kernel = kernel;
    n.stride = stride;
    n.outChannels = outc;
    n.padding = pad;
    n.shape = {in[0], outc, (in[2] + 2 * pad - kernel) / stride + 1,
               (in[3] + 2 * pad - kernel) / stride + 1};
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

int
pushRelu(graph::ComputeDag &dag, const std::string &name, int data)
{
    graph::DagNode n;
    n.kind = graph::NodeKind::Relu;
    n.name = name;
    n.inputs = {data};
    n.shape = dag.nodes[static_cast<size_t>(data)].shape;
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

int
pushPool(graph::ComputeDag &dag, const std::string &name, int data,
         int64_t kernel, int64_t stride)
{
    const auto &in = dag.nodes[static_cast<size_t>(data)].shape;
    graph::DagNode n;
    n.kind = graph::NodeKind::Pool;
    n.name = name;
    n.inputs = {data};
    n.kernel = kernel;
    n.stride = stride;
    n.shape = {in[0], in[1], (in[2] - kernel) / stride + 1,
               (in[3] - kernel) / stride + 1};
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

/** conv(3x3, pad 1) -> relu -> pool(2x2) chain. */
graph::ComputeDag
certChainDag()
{
    graph::ComputeDag dag;
    dag.name = "certify-chain";
    int data = pushInput(dag, "data", {1, 4, 10, 10});
    int conv = pushConv(dag, "conv", data, 6, 3, 1, 1);
    int relu = pushRelu(dag, "relu", conv);
    pushPool(dag, "pool", relu, 2, 2);
    std::string why;
    EXPECT_TRUE(dag.validate(&why)) << why;
    return dag;
}

const Obligation *
refutedFusion(const PartitionCertificate &cert)
{
    for (const Obligation &o : cert.obligations)
        if (o.verdict == Verdict::Refuted)
            return &o;
    for (const auto &g : cert.groups)
        for (const Obligation &o : g.obligations)
            if (o.verdict == Verdict::Refuted)
                return &o;
    return nullptr;
}

/** Every partition mode the search can emit certifies Proven. */
TEST(CertifyPartitionTest, SearchPartitionsAreCertified)
{
    graph::ComputeDag dag = certChainDag();
    Target target = Target::forGpu(v100());
    for (const graph::Partition &p :
         {graph::partitionDag(dag, target),
          graph::epiloguePartition(dag, target),
          graph::nonePartition(dag, target)}) {
        PartitionCertificate cert =
            verify::certifyPartition(dag, p, target);
        EXPECT_TRUE(cert.equivalent()) << cert.toJson();
        EXPECT_EQ(refutedFusion(cert), nullptr) << cert.toJson();
    }
}

/** Dropping a member breaks assignment coverage (FT-DEP-006). */
TEST(CertifyPartitionTest, MissingMemberRefutesCoverage)
{
    graph::ComputeDag dag = certChainDag();
    Target target = Target::forGpu(v100());
    graph::Partition p = graph::partitionDag(dag, target);
    ASSERT_FALSE(p.groups.empty());
    ASSERT_FALSE(p.groups.back().members.empty());
    p.groups.back().members.pop_back();
    p.groups.back().ephemeral.pop_back();

    PartitionCertificate cert = verify::certifyPartition(dag, p, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    const Obligation *o = refutedFusion(cert);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->code, verify::kDepFusionIllegal);
    EXPECT_EQ(o->id, "fusion/cover");
}

/** Reversing a group's members breaks the streaming order. */
TEST(CertifyPartitionTest, DescendingMembersRefuteStreamingOrder)
{
    graph::ComputeDag dag = certChainDag();
    Target target = Target::forGpu(v100());
    graph::Partition p = graph::partitionDag(dag, target);
    graph::FusionGroup *multi = nullptr;
    for (auto &g : p.groups)
        if (g.members.size() > 1)
            multi = &g;
    if (multi == nullptr)
        GTEST_SKIP() << "beam produced no multi-member group";
    std::reverse(multi->members.begin(), multi->members.end());
    std::reverse(multi->ephemeral.begin(), multi->ephemeral.end());

    PartitionCertificate cert = verify::certifyPartition(dag, p, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    const Obligation *o = refutedFusion(cert);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->code, verify::kDepFusionIllegal);
}

/** Marking an escaping tensor ephemeral is refuted: a consumer outside
 *  the group would read a buffer that never reaches DRAM. */
TEST(CertifyPartitionTest, EscapingEphemeralIsRefuted)
{
    graph::ComputeDag dag = certChainDag();
    Target target = Target::forGpu(v100());
    graph::Partition p = graph::nonePartition(dag, target);
    // Every group is a singleton; its member feeds the next group (or
    // is the graph output), so flagging it ephemeral must refute.
    ASSERT_FALSE(p.groups.empty());
    ASSERT_FALSE(p.groups.front().ephemeral.empty());
    p.groups.front().ephemeral[0] = true;

    PartitionCertificate cert = verify::certifyPartition(dag, p, target);
    EXPECT_EQ(cert.verdict, Verdict::Refuted) << cert.toJson();
    const Obligation *o = refutedFusion(cert);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->code, verify::kDepFusionIllegal);
    EXPECT_NE(o->id.find("fusion/escape/"), std::string::npos) << o->id;
}

} // namespace
} // namespace ft
