/**
 * @file
 * Tests for the concurrent serving layer: thread-pool correctness under
 * stress, deterministic parallel batch evaluation (same best schedule as
 * a sequential run for a fixed seed), request coalescing in the
 * TuningService, and thread-safe/crash-safe TuningCache round-trips.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "dnn/models.h"
#include "explore/tuner.h"
#include "graph/dag.h"
#include "ops/ops.h"
#include "serve/batch_eval.h"
#include "serve/service.h"
#include "serve/thread_pool.h"
#include "support/rng.h"

namespace ft {
namespace {

Tensor
serveGemm(int64_t n = 256)
{
    Tensor a = placeholder("A", {n, n});
    Tensor b = placeholder("B", {n, n});
    return ops::gemm(a, b);
}

TEST(ThreadPool, StressManySmallJobs)
{
    ThreadPool pool(8, /*queue_capacity=*/64);
    std::atomic<int> counter{0};
    const int jobs = 10000;
    for (int i = 0; i < jobs; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), jobs);
    EXPECT_EQ(pool.completedJobs(), static_cast<uint64_t>(jobs));
    EXPECT_EQ(pool.queueDepth(), 0u);
}

TEST(ThreadPool, BoundedQueueBackpressure)
{
    // A tiny queue with slow jobs forces submit() to block; everything
    // must still run exactly once.
    ThreadPool pool(2, /*queue_capacity=*/2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&counter] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            counter.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // Concurrent parallelFor calls from different threads share the pool.
    std::atomic<long> sum{0};
    std::thread other([&] {
        pool.parallelFor(500, [&](size_t i) {
            sum.fetch_add(static_cast<long>(i));
        });
    });
    pool.parallelFor(500,
                     [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
    other.join();
    EXPECT_EQ(sum.load(), 2L * (499L * 500L / 2));
}

class BatchEvalTest : public ::testing::Test
{
  protected:
    BatchEvalTest()
        : out_(serveGemm()),
          target_(Target::forGpu(v100())),
          space_(buildSpace(out_.op(), target_))
    {}

    std::vector<Point> randomPoints(int n, uint64_t seed)
    {
        Rng rng(seed);
        std::vector<Point> points;
        for (int i = 0; i < n; ++i)
            points.push_back(space_.randomPoint(rng));
        return points;
    }

    Tensor out_;
    Target target_;
    ScheduleSpace space_;
};

TEST_F(BatchEvalTest, MatchesSequentialEvaluation)
{
    auto points = randomPoints(40, 7);

    Evaluator seq(out_.op(), space_, target_);
    for (const Point &p : points)
        seq.evaluate(p);

    ThreadPool pool(4);
    Evaluator par(out_.op(), space_, target_);
    BatchEvaluator batch(par, &pool);
    std::vector<double> values = batch.evaluate(points);

    ASSERT_EQ(par.history().size(), seq.history().size());
    for (size_t i = 0; i < seq.history().size(); ++i) {
        EXPECT_EQ(par.history()[i].point.key(), seq.history()[i].point.key());
        EXPECT_DOUBLE_EQ(par.history()[i].gflops, seq.history()[i].gflops);
    }
    EXPECT_DOUBLE_EQ(par.best(), seq.best());
    EXPECT_EQ(par.bestPoint().key(), seq.bestPoint().key());
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_DOUBLE_EQ(values[i], seq.evaluate(points[i]));
}

TEST_F(BatchEvalTest, ParallelismOneReproducesSequentialClock)
{
    auto points = randomPoints(20, 11);
    Evaluator seq(out_.op(), space_, target_);
    for (const Point &p : points)
        seq.evaluate(p);

    Evaluator one(out_.op(), space_, target_);
    BatchEvaluator batch(one, nullptr, /*parallelism=*/1);
    batch.evaluate(points);
    EXPECT_DOUBLE_EQ(one.simulatedSeconds(), seq.simulatedSeconds());
    ASSERT_EQ(one.curve().size(), seq.curve().size());
    for (size_t i = 0; i < seq.curve().size(); ++i) {
        EXPECT_DOUBLE_EQ(one.curve()[i].first, seq.curve()[i].first);
        EXPECT_DOUBLE_EQ(one.curve()[i].second, seq.curve()[i].second);
    }
}

TEST_F(BatchEvalTest, ChargesCeilBatchOverParallelismRounds)
{
    auto points = randomPoints(64, 13);
    Evaluator eval(out_.op(), space_, target_);
    eval.setMeasureCost(1.0);
    ThreadPool pool(4);
    BatchEvaluator batch(eval, &pool, /*parallelism=*/4);
    batch.evaluate(points);
    const int fresh = eval.numTrials(); // random duplicates are possible
    // ceil(fresh / 4) rounds of one second each.
    EXPECT_NEAR(eval.simulatedSeconds(), std::ceil(fresh / 4.0), 1e-9);
    // Re-evaluating the same batch is free.
    batch.evaluate(points);
    EXPECT_EQ(eval.numTrials(), fresh);
    EXPECT_NEAR(eval.simulatedSeconds(), std::ceil(fresh / 4.0), 1e-9);
}

/** Parallel exploration must find the same schedule as sequential. */
TEST(ServeDeterminism, PMethodParallelEqualsSequential)
{
    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);

    ExploreOptions seq_opts;
    seq_opts.trials = 4;
    seq_opts.startingPoints = 2;
    seq_opts.seed = 0xbeef;
    Evaluator seq(out.op(), space, target);
    ExploreResult rs = explorePMethod(seq, seq_opts);

    ThreadPool pool(4);
    ExploreOptions par_opts = seq_opts;
    par_opts.evalPool = &pool;
    Evaluator par(out.op(), space, target);
    ExploreResult rp = explorePMethod(par, par_opts);

    EXPECT_EQ(rp.bestPoint.key(), rs.bestPoint.key());
    EXPECT_DOUBLE_EQ(rp.bestGflops, rs.bestGflops);
    EXPECT_EQ(rp.trialsUsed, rs.trialsUsed);
    ASSERT_EQ(par.history().size(), seq.history().size());
    for (size_t i = 0; i < seq.history().size(); ++i)
        EXPECT_EQ(par.history()[i].point.key(), seq.history()[i].point.key());
    // Parallel measurement compresses the simulated clock.
    EXPECT_LT(rp.simSeconds, rs.simSeconds);

    // And a parallel run is reproducible, clock included.
    Evaluator par2(out.op(), space, target);
    ExploreResult rp2 = explorePMethod(par2, par_opts);
    EXPECT_EQ(rp2.bestPoint.key(), rp.bestPoint.key());
    EXPECT_DOUBLE_EQ(rp2.bestGflops, rp.bestGflops);
    EXPECT_DOUBLE_EQ(rp2.simSeconds, rp.simSeconds);
}

TEST(ServeDeterminism, AutoTvmParallelEqualsSequential)
{
    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    SpaceOptions so;
    so.templateRestricted = true;
    ScheduleSpace space = buildSpace(out.op(), target, so);

    ExploreOptions seq_opts;
    seq_opts.trials = 32;
    seq_opts.seed = 0xfeed;
    Evaluator seq(out.op(), space, target);
    ExploreResult rs = exploreAutoTvm(seq, seq_opts);

    ThreadPool pool(4);
    ExploreOptions par_opts = seq_opts;
    par_opts.evalPool = &pool;
    Evaluator par(out.op(), space, target);
    ExploreResult rp = exploreAutoTvm(par, par_opts);

    EXPECT_EQ(rp.bestPoint.key(), rs.bestPoint.key());
    EXPECT_DOUBLE_EQ(rp.bestGflops, rs.bestGflops);
    EXPECT_EQ(rp.trialsUsed, rs.trialsUsed);
    ASSERT_EQ(par.history().size(), seq.history().size());
    for (size_t i = 0; i < seq.history().size(); ++i)
        EXPECT_EQ(par.history()[i].point.key(), seq.history()[i].point.key());
}

TEST(TuningService, CoalescesConcurrentIdenticalRequests)
{
    TuningService service({/*evalThreads=*/4, /*requestThreads=*/2});
    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::PMethod;
    options.explore.trials = 6;

    const int callers = 8;
    std::vector<TuneReport> reports(callers);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < callers; ++i) {
        threads.emplace_back([&, i] {
            ready.fetch_add(1);
            while (ready.load() < callers) // start together
                std::this_thread::yield();
            reports[i] = service.tune(out, target, options);
        });
    }
    for (auto &t : threads)
        t.join();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(callers));
    EXPECT_EQ(stats.tuningRuns, 1u);
    // Everyone who didn't own the run either joined it in flight or (in
    // rare schedules) arrived after completion and hit the result cache.
    EXPECT_EQ(stats.coalescedJoins + stats.resultCacheHits,
              static_cast<uint64_t>(callers - 1));
    EXPECT_GE(stats.coalescedJoins, 1u);
    for (int i = 1; i < callers; ++i) {
        EXPECT_DOUBLE_EQ(reports[i].gflops, reports[0].gflops);
        EXPECT_EQ(serializeConfig(reports[i].config),
                  serializeConfig(reports[0].config));
    }
    EXPECT_EQ(stats.inflight, 0u);
}

TEST(TuningService, ResultCacheServesRepeatedRequests)
{
    TuningService service;
    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 10;

    TuneReport first = service.tune(out, target, options);
    EXPECT_FALSE(first.fromCache);
    TuneReport second = service.tune(out, target, options);
    EXPECT_TRUE(second.fromCache);
    EXPECT_DOUBLE_EQ(second.gflops, first.gflops);

    // A different seed is a different request identity.
    options.explore.seed += 1;
    TuneReport third = service.tune(out, target, options);
    EXPECT_FALSE(third.fromCache);

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_EQ(stats.tuningRuns, 2u);
    EXPECT_EQ(stats.resultCacheHits, 1u);
    EXPECT_GT(stats.evaluations, 0u);
}

TEST(TuningService, CostModelLifecycleAndStats)
{
    const std::string path =
        ::testing::TempDir() + "ft_serve_costmodel.j";
    std::remove(path.c_str());

    ServiceOptions service_options;
    service_options.enableCostModel = true;
    service_options.costModel.persistPath = path;
    service_options.costModel.refitEvery = 16;

    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 24;

    size_t first_trials = 0;
    {
        TuningService service(service_options);
        TuneReport report = service.tune(out, target, options);
        EXPECT_FALSE(report.fromCache);
        ServiceStats stats = service.stats();
        EXPECT_GT(stats.costModelTrials, 0u);
        first_trials = stats.costModelTrials;
    } // shutdown stops the trainer and leaves the journal behind

    // A new service restores the model from the journal at startup and
    // keeps training it.
    {
        TuningService service(service_options);
        ServiceStats cold = service.stats();
        EXPECT_EQ(cold.costModelTrials, first_trials);
        options.explore.seed += 1;
        service.tune(out, target, options);
        ServiceStats warm = service.stats();
        EXPECT_GT(warm.costModelTrials, first_trials);
        // The service refits on a background thread; give it a bounded
        // window to publish the first snapshot before asserting.
        for (int i = 0; i < 400 && !warm.costModelReady; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            warm = service.stats();
        }
        EXPECT_TRUE(warm.costModelReady);
    }
    std::remove(path.c_str());
}

TEST(TuningService, PruneKnobChangesRequestIdentity)
{
    // Same workload, same seed: model-on + prune must NOT coalesce
    // with a model-off request — the fingerprint folds both knobs.
    ServiceOptions service_options;
    service_options.enableCostModel = true;
    service_options.costModel.refitEvery = 16;
    TuningService service(service_options);

    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 24;

    service.tune(out, target, options); // trains the service model
    options.explore.prunerKeep = 0.5;
    TuneReport pruned = service.tune(out, target, options);
    EXPECT_FALSE(pruned.fromCache)
        << "a pruned request must not be served from the unpruned "
        << "request's cache entry";
    EXPECT_GT(pruned.gflops, 0.0);
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tuningRuns, 2u);
}

TEST(TuningService, GraphRequestsAreKeyedByFingerprint)
{
    TuningService service;
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 6;

    graph::ComputeDag dag = graph::dagFromNetwork(yoloV1(1));
    graph::ComputeDag same = graph::dagFromNetwork(yoloV1(1));
    ASSERT_EQ(dag.fingerprint(), same.fingerprint());

    graph::DagTuneReport first = service.tuneDag(dag, target, options);
    ASSERT_FALSE(first.groups.empty());
    // A structurally identical DAG is the same request: served from the
    // graph report cache without re-partitioning or re-tuning.
    graph::DagTuneReport second = service.tuneDag(same, target, options);
    EXPECT_EQ(second.fingerprint, first.fingerprint);
    EXPECT_EQ(second.partition.groups.size(),
              first.partition.groups.size());
    EXPECT_DOUBLE_EQ(second.totalSeconds, first.totalSeconds);
    EXPECT_EQ(second.trafficBytes, first.trafficBytes);

    ServiceStats after_hit = service.stats();
    EXPECT_EQ(after_hit.graphRequests, 2u);
    EXPECT_EQ(after_hit.graphCacheHits, 1u);

    // A different batch is a different fingerprint, so it tunes anew.
    graph::ComputeDag bigger = graph::dagFromNetwork(yoloV1(2));
    EXPECT_NE(bigger.fingerprint(), dag.fingerprint());
    service.tuneDag(bigger, target, options);
    ServiceStats after_miss = service.stats();
    EXPECT_EQ(after_miss.graphRequests, 3u);
    EXPECT_EQ(after_miss.graphCacheHits, 1u);
}

TEST(TuningService, LruEvictsBeyondCapacity)
{
    ServiceOptions service_options;
    service_options.resultCacheCapacity = 1;
    TuningService service(service_options);
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 4;

    Tensor small = serveGemm(64);
    Tensor large = serveGemm(128);
    service.tune(small, target, options);
    service.tune(large, target, options); // evicts `small`
    TuneReport again = service.tune(small, target, options);
    EXPECT_FALSE(again.fromCache);
    EXPECT_EQ(service.stats().resultCacheSize, 1u);
}

TEST(TuningService, SubmitRunsRequestsConcurrently)
{
    TuningService service({/*evalThreads=*/2, /*requestThreads=*/4});
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 6;

    std::vector<Tensor> outs = {serveGemm(64), serveGemm(128),
                                serveGemm(192), serveGemm(256)};
    std::vector<std::future<TuneReport>> futures;
    for (const Tensor &out : outs)
        futures.push_back(service.submit(out, target, options));
    for (auto &f : futures) {
        TuneReport report = f.get();
        EXPECT_GT(report.gflops, 0.0);
    }
    EXPECT_EQ(service.stats().tuningRuns, 4u);
}

TEST(TuningService, SharesPersistentCacheAcrossServices)
{
    TuningCache cache;
    ServiceOptions service_options;
    service_options.persistentCache = &cache;
    Tensor out = serveGemm();
    Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 10;

    TuningService first(service_options);
    first.tune(out, target, options);
    EXPECT_EQ(cache.size(), 1u);

    // A fresh service (cold LRU) is short-circuited by the shared store.
    TuningService second(service_options);
    TuneReport report = second.tune(out, target, options);
    EXPECT_TRUE(report.fromCache);
    EXPECT_EQ(second.stats().persistentCacheHits, 1u);
}

TEST(TuningCacheConcurrent, PutAndLookupFromManyThreads)
{
    TuningCache cache;
    const int writers = 8, per_thread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < per_thread; ++i) {
                TuningRecord record;
                record.key = "op" + std::to_string(i % 50);
                record.gflops = t * 1000.0 + i;
                cache.put(record);
                auto hit = cache.lookup(record.key);
                ASSERT_TRUE(hit.has_value());
                EXPECT_GE(hit->gflops, record.gflops);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(cache.size(), 50u);
    // put() keeps the best value per key.
    auto best = cache.lookup("op49");
    ASSERT_TRUE(best.has_value());
    EXPECT_DOUBLE_EQ(best->gflops, (writers - 1) * 1000.0 + 199);
}

TEST(TuningCacheConcurrent, SaveIsAtomicViaTempFileRename)
{
    const std::string path = ::testing::TempDir() + "ft_serve_cache.txt";
    TuningCache cache;
    TuningRecord record;
    record.key = "gemm:256,256,r:256,@V100";
    record.gflops = 123.0;
    cache.put(record);
    ASSERT_TRUE(cache.save(path));
    // No temp file is left behind and the real file is complete.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    TuningCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.lookup(record.key)->gflops, 123.0);
    // Saving into a missing directory fails cleanly without touching
    // the destination.
    EXPECT_FALSE(cache.save("/nonexistent-dir/cache.txt"));
    std::remove(path.c_str());
}

} // namespace
} // namespace ft
