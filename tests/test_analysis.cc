/**
 * @file
 * Tests for front-end static analysis, interval bounds, and FLOP counting.
 */
#include <gtest/gtest.h>

#include "analysis/bounds.h"
#include "analysis/flops.h"
#include "analysis/static_analyzer.h"
#include "ops/ops.h"
#include "ops/shapes.h"

namespace ft {
namespace {

TEST(StaticAnalyzer, GemmMatchesFigure3)
{
    Tensor a = placeholder("A", {1024, 1024});
    Tensor b = placeholder("B", {1024, 1024});
    Tensor c = ops::gemm(a, b);
    MiniGraph g(c);
    GraphAnalysis ga = analyzeGraph(g);

    EXPECT_EQ(ga.numNodes, 3); // op A, op B, GEMM (Figure 3c: #node 3)
    ASSERT_EQ(ga.nodes.size(), 1u);
    const NodeAnalysis &n = ga.nodes[0];
    EXPECT_EQ(n.stats.numSpatialLoops, 2);  // #sl 2
    EXPECT_EQ(n.stats.numReduceLoops, 1);   // #rl 1
    EXPECT_EQ(n.stats.spatialTripCounts,
              (std::vector<int64_t>{1024, 1024}));
    EXPECT_EQ(n.stats.reduceTripCounts, (std::vector<int64_t>{1024}));
    EXPECT_EQ(n.structure.numInputs, 2);  // #in 2
    EXPECT_EQ(n.structure.numOutputs, 1); // #out 1
    EXPECT_EQ(n.structure.numConsumers, 0); // #cs 0
}

/** Sum of a stat across compute nodes (the paper reports per-graph sums). */
struct OpLoopCounts
{
    std::string op;
    int spatial;
    int reduce;
};

class LoopCountTest : public ::testing::TestWithParam<OpLoopCounts>
{};

TEST_P(LoopCountTest, GraphLoopTotalsMatchTable3)
{
    const auto &param = GetParam();
    auto cases = ops::table3Cases(param.op);
    ASSERT_FALSE(cases.empty());
    MiniGraph g(cases.front().build());
    GraphAnalysis ga = analyzeGraph(g);
    int sl = 0, rl = 0;
    for (const auto &n : ga.nodes) {
        sl += n.stats.numSpatialLoops;
        rl += n.stats.numReduceLoops;
    }
    EXPECT_EQ(sl, param.spatial) << param.op;
    EXPECT_EQ(rl, param.reduce) << param.op;
}

// Table 3 "Analysis Results": #sl/#rl summed over the mini-graph. (The
// paper lists GRP/DEP/DIL with the anchor node only; we count the padding
// node too, hence 8/3 and 8/2 for the padded 2D variants.)
INSTANTIATE_TEST_SUITE_P(
    Table3, LoopCountTest,
    ::testing::Values(OpLoopCounts{"GMV", 1, 1}, OpLoopCounts{"GMM", 2, 1},
                      OpLoopCounts{"BIL", 2, 2}, OpLoopCounts{"C1D", 6, 2},
                      OpLoopCounts{"T1D", 9, 2}, OpLoopCounts{"C2D", 8, 3},
                      OpLoopCounts{"T2D", 12, 3},
                      OpLoopCounts{"C3D", 10, 4},
                      OpLoopCounts{"T3D", 15, 4},
                      OpLoopCounts{"GRP", 8, 3}, OpLoopCounts{"DEP", 8, 2},
                      OpLoopCounts{"DIL", 8, 3}));

TEST(StaticAnalyzer, NodeCountsMatchTable3)
{
    // Compute-node counts from Table 3: C2D has 2, T2D has 3 etc.
    auto count = [](const std::string &op) {
        auto cases = ops::table3Cases(op);
        return MiniGraph(cases.front().build()).computeOps().size();
    };
    EXPECT_EQ(count("GMM"), 1u);
    EXPECT_EQ(count("C1D"), 2u);
    EXPECT_EQ(count("T1D"), 3u);
    EXPECT_EQ(count("C2D"), 2u);
    EXPECT_EQ(count("T2D"), 3u);
    EXPECT_EQ(count("C3D"), 2u);
    EXPECT_EQ(count("T3D"), 3u);
}

TEST(StaticAnalyzer, AnchorIsTheConvolution)
{
    auto cases = ops::table3Cases("C2D");
    MiniGraph g(cases.front().build());
    Operation anchor = anchorOp(g);
    EXPECT_EQ(anchor->name(), "conv2d");
}

TEST(Flops, GemmCountsMulAndAdd)
{
    Tensor a = placeholder("A", {16, 32});
    Tensor b = placeholder("B", {32, 8});
    Tensor c = ops::gemm(a, b);
    // 16*8 outputs x 32 reduce iterations x (1 mul + 1 acc) = 8192.
    EXPECT_DOUBLE_EQ(flopsOf(c.op()), 16.0 * 8 * 32 * 2);
}

TEST(Flops, Conv2dMatchesClosedForm)
{
    Tensor input = placeholder("I", {1, 8, 16, 16});
    Tensor weight = placeholder("W", {4, 8, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    MiniGraph g(out);
    // Anchor: 1*4*16*16 outputs x (8*3*3) x 2 flops.
    EXPECT_DOUBLE_EQ(anchorFlops(g), 4.0 * 16 * 16 * 8 * 9 * 2);
}

TEST(Flops, PlaceholderIsFree)
{
    Tensor a = placeholder("A", {128});
    EXPECT_DOUBLE_EQ(flopsOf(a.op()), 0.0);
}

TEST(Bounds, VarDefaultsToFullExtent)
{
    IterVar i = makeIterVar("i", 10);
    Interval b = boundsOf(varRef(i), {});
    EXPECT_EQ(b.lo, 0);
    EXPECT_EQ(b.hi, 9);
}

TEST(Bounds, AffineCombination)
{
    IterVar i = makeIterVar("i", 4);
    IterVar j = makeIterVar("j", 3);
    // 2*i + j - 1 over [0,3]x[0,2] = [-1, 7]
    Expr e = sub(add(mul(intImm(2), varRef(i)), varRef(j)), intImm(1));
    Interval b = boundsOf(e, {});
    EXPECT_EQ(b.lo, -1);
    EXPECT_EQ(b.hi, 7);
}

TEST(Bounds, RespectsProvidedRanges)
{
    IterVar i = makeIterVar("i", 100);
    VarRanges r;
    r[i.get()] = {10, 19};
    Interval b = boundsOf(add(varRef(i), intImm(5)), r);
    EXPECT_EQ(b.lo, 15);
    EXPECT_EQ(b.hi, 24);
}

TEST(Bounds, ModIsBoundedByDivisor)
{
    IterVar i = makeIterVar("i", 100);
    Interval b = boundsOf(mod(varRef(i), intImm(8)), {});
    EXPECT_EQ(b.lo, 0);
    EXPECT_EQ(b.hi, 7);
}

TEST(Bounds, DivScalesRange)
{
    IterVar i = makeIterVar("i", 64);
    Interval b = boundsOf(floordiv(varRef(i), intImm(8)), {});
    EXPECT_EQ(b.lo, 0);
    EXPECT_EQ(b.hi, 7);
}

TEST(Bounds, AccessFootprintOfConvWindow)
{
    // I[i + r] with i in [0, 7] and r in [0, 2] touches 10 elements.
    Tensor t = placeholder("T", {32});
    IterVar i = makeIterVar("i", 8);
    IterVar r = makeIterVar("r", 3, IterKind::Reduce);
    Expr acc = t({add(varRef(i), varRef(r))});
    EXPECT_EQ(accessFootprint(*acc, {}), 10);
}

TEST(Bounds, AccessFootprintClampsToTensorShape)
{
    Tensor t = placeholder("T", {4});
    IterVar i = makeIterVar("i", 100);
    Expr acc = t({varRef(i)});
    EXPECT_EQ(accessFootprint(*acc, {}), 4);
}

TEST(Bounds, FootprintShrinksWithPinnedRanges)
{
    Tensor t = placeholder("T", {64, 64});
    IterVar i = makeIterVar("i", 64);
    IterVar j = makeIterVar("j", 64);
    Expr acc = t({varRef(i), varRef(j)});
    VarRanges r;
    r[i.get()] = {0, 7};
    r[j.get()] = {0, 15};
    EXPECT_EQ(accessFootprint(*acc, r), 8 * 16);
}

} // namespace
} // namespace ft
