/**
 * @file
 * Tests for the code generators. The C backend is validated end-to-end:
 * the emitted kernel is compiled with the system C compiler, loaded with
 * dlopen, executed on random data, and compared against the reference
 * executor. CUDA/HLS backends are validated structurally.
 */
#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/static_analyzer.h"
#include "codegen/codegen.h"
#include "exec/reference.h"
#include "ir/inline.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "sim/library_model.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

/** Compile C source into a shared object; returns the dlopen handle. */
void *
compileAndLoad(const std::string &source, const std::string &tag)
{
    const std::string base = "/tmp/ft_codegen_" + tag;
    const std::string src_path = base + ".c";
    const std::string lib_path = base + ".so";
    {
        std::ofstream out(src_path);
        out << source;
    }
    std::string cmd = "cc -std=c99 -O2 -shared -fPIC -o " + lib_path +
                      " " + src_path + " 2> " + base + ".log";
    if (std::system(cmd.c_str()) != 0)
        return nullptr;
    return dlopen(lib_path.c_str(), RTLD_NOW);
}

using KernelFn2 = void (*)(const float *, const float *, float *);

/**
 * Full pipeline: schedule -> emitC -> cc -> dlopen -> run -> compare.
 * The operator must have exactly two inputs after inlining.
 */
void
checkCompiledKernel(const Tensor &out, const OpConfig &config,
                    const std::string &tag, uint64_t seed)
{
    Tensor fused = inlineGraph(out);
    MiniGraph graph(fused);
    Operation anchor = anchorOp(graph);
    Scheduled s = generateCpu(anchor, config, xeonE5());

    std::string source = emitC(s.nest, "kernel_" + tag);
    void *lib = compileAndLoad(source, tag);
    ASSERT_NE(lib, nullptr) << "emitted source failed to compile:\n"
                            << source;
    auto fn = reinterpret_cast<KernelFn2>(
        dlsym(lib, ("kernel_" + tag).c_str()));
    ASSERT_NE(fn, nullptr);

    Rng rng(seed);
    BufferMap buffers = makeRandomInputs(graph, rng);
    runGraphReference(graph, buffers);
    const Buffer &gold = buffers.at(anchor.get());

    auto inputs = kernelInputs(s.nest);
    ASSERT_EQ(inputs.size(), 2u);
    const Buffer &in0 = buffers.at(inputs[0].op().get());
    const Buffer &in1 = buffers.at(inputs[1].op().get());
    std::vector<float> got(gold.numel(), -1.0f);
    fn(in0.data().data(), in1.data().data(), got.data());

    for (int64_t i = 0; i < gold.numel(); ++i)
        ASSERT_NEAR(got[i], gold[i], 1e-3) << "element " << i;
    dlclose(lib);
}

TEST(CodegenC, GemmKernelCompilesAndMatches)
{
    Tensor a = placeholder("A", {12, 20});
    Tensor b = placeholder("B", {20, 16});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{3, 2, 2}, {2, 4, 2}};
    cfg.reduceSplits = {{5, 4}};
    cfg.fuseCount = 2;
    cfg.unrollDepth = 1;
    checkCompiledKernel(c, cfg, "gemm", 101);
}

TEST(CodegenC, PaddedConvKernelCompilesAndMatches)
{
    // Inlined pad => the emitted kernel contains the select predicate.
    Tensor input = placeholder("I", {1, 3, 8, 8});
    Tensor weight = placeholder("W", {4, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    MiniGraph g(inlineGraph(out));
    Operation anchor = anchorOp(g);
    OpConfig cfg = expertConfig(anchor, Target::forCpu(xeonE5()));
    checkCompiledKernel(out, cfg, "conv", 103);
}

TEST(CodegenC, TransposedConvWithDilationCompilesAndMatches)
{
    // Exercises FT_MOD and floordiv in the emitted index math.
    Tensor input = placeholder("I", {1, 2, 5, 5});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    Tensor out = ops::conv2dTransposed(input, weight, 2, 1);
    MiniGraph g(inlineGraph(out));
    Operation anchor = anchorOp(g);
    OpConfig cfg = defaultConfig(anchor, Target::forCpu(xeonE5()));
    checkCompiledKernel(out, cfg, "t2d", 107);
}

TEST(CodegenC, RandomSchedulesAllCompileAndMatch)
{
    Tensor input = placeholder("I", {1, 4, 6, 6});
    Tensor weight = placeholder("W", {4, 4, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    Tensor fused = inlineGraph(out);
    MiniGraph g(fused);
    Operation anchor = anchorOp(g);
    Target target = Target::forCpu(xeonE5());
    ScheduleSpace space = buildSpace(anchor, target);
    Rng rng(109);
    for (int trial = 0; trial < 3; ++trial) {
        OpConfig cfg = space.decode(space.randomPoint(rng));
        checkCompiledKernel(out, cfg,
                            "rand" + std::to_string(trial),
                            211 + trial);
    }
}

TEST(CodegenC, EmitsOpenMpAnnotations)
{
    Tensor a = placeholder("A", {16, 16});
    Tensor b = placeholder("B", {16, 16});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{4, 2, 2}, {1, 2, 8}};
    cfg.reduceSplits = {{4, 4}};
    cfg.fuseCount = 2;
    cfg.unrollDepth = 1;
    Scheduled s = generateCpu(c.op(), cfg, xeonE5());
    std::string code = emitC(s.nest, "annotated");
    EXPECT_NE(code.find("#pragma omp parallel for collapse(2)"),
              std::string::npos);
    EXPECT_NE(code.find("#pragma omp simd"), std::string::npos);
    EXPECT_NE(code.find("restrict"), std::string::npos);
}

TEST(CodegenCuda, BindsBlocksAndThreads)
{
    Tensor a = placeholder("A", {64, 64});
    Tensor b = placeholder("B", {64, 64});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{4, 2, 8, 1}, {4, 1, 16, 1}};
    cfg.reduceSplits = {{16, 2, 2}};
    cfg.unrollDepth = 1;
    Scheduled s = generateGpu(c.op(), cfg, v100());
    std::string code = emitCuda(s.nest, "gemm_cuda");
    EXPECT_NE(code.find("__global__ void gemm_cuda"), std::string::npos);
    EXPECT_NE(code.find("blockIdx.x"), std::string::npos);
    EXPECT_NE(code.find("threadIdx.x"), std::string::npos);
    EXPECT_NE(code.find("#pragma unroll"), std::string::npos);
    // Every block/thread extent appears in the decomposition.
    EXPECT_NE(code.find("% 8"), std::string::npos);  // thread factor
    EXPECT_NE(code.find("% 4"), std::string::npos);  // block factor
}

TEST(CodegenHls, EmitsPipelineAndUnroll)
{
    Tensor a = placeholder("A", {128, 64});
    Tensor b = placeholder("B", {64, 128});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{8, 16}, {8, 16}};
    cfg.reduceSplits = {{4, 16}};
    Scheduled s = generateFpga(c.op(), cfg, vu9p());
    std::string code = emitHls(s.nest, "gemm_hls");
    EXPECT_NE(code.find("#pragma HLS dataflow"), std::string::npos);
    EXPECT_NE(code.find("#pragma HLS unroll"), std::string::npos);
    EXPECT_NE(code.find("#pragma HLS pipeline II=1"), std::string::npos);
}

TEST(Codegen, KernelInputOrderIsStable)
{
    Tensor a = placeholder("A", {8, 8});
    Tensor b = placeholder("B", {8, 8});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg = defaultConfig(c.op(), Target::forCpu(xeonE5()));
    Scheduled s = generateCpu(c.op(), cfg, xeonE5());
    auto inputs = kernelInputs(s.nest);
    ASSERT_EQ(inputs.size(), 2u);
    EXPECT_EQ(inputs[0].name(), "A");
    EXPECT_EQ(inputs[1].name(), "B");
}

} // namespace
} // namespace ft
