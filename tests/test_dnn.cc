/**
 * @file
 * Tests for the DNN layer: network definitions, shape propagation,
 * partition/fusion, and end-to-end scheduling.
 */
#include <gtest/gtest.h>

#include "dnn/e2e.h"

namespace ft {
namespace {

TEST(Models, YoloV1Structure)
{
    Network net = yoloV1();
    // Section 6.6: 24 conv layers, ~30 layers total.
    EXPECT_EQ(net.numConvLayers(), 24);
    EXPECT_EQ(net.inputShape, (std::vector<int64_t>{1, 3, 448, 448}));
    EXPECT_EQ(static_cast<int>(net.layers.size()), 30);
}

TEST(Models, OverFeatStructure)
{
    Network net = overFeat();
    // Section 6.6: 5 conv layers, 8 weight layers total.
    EXPECT_EQ(net.numConvLayers(), 5);
    int weight_layers = 0;
    for (const auto &l : net.layers)
        weight_layers += l.kind != LayerSpec::Kind::MaxPool;
    EXPECT_EQ(weight_layers, 8);
}

TEST(Models, YoloShapesPropagate)
{
    Network net = yoloV1();
    auto shapes = layerShapes(net);
    ASSERT_EQ(shapes.size(), net.layers.size());
    // conv1 (7x7, s2, pad 3): 448 -> 224.
    EXPECT_EQ(shapes[0], (std::vector<int64_t>{1, 64, 224, 224}));
    // pool1: 224 -> 112.
    EXPECT_EQ(shapes[1], (std::vector<int64_t>{1, 64, 112, 112}));
    // Final dense layer: 7x7x1024 -> 4096 -> 1470.
    EXPECT_EQ(shapes.back(), (std::vector<int64_t>{1, 1470}));
    // The layer before the head is 7x7 spatial.
    EXPECT_EQ(shapes[shapes.size() - 3],
              (std::vector<int64_t>{1, 1024, 7, 7}));
}

TEST(Models, OverFeatShapesPropagate)
{
    Network net = overFeat();
    auto shapes = layerShapes(net);
    // conv1: (231 - 11)/4 + 1 = 56.
    EXPECT_EQ(shapes[0], (std::vector<int64_t>{1, 96, 56, 56}));
    EXPECT_EQ(shapes.back(), (std::vector<int64_t>{1, 1000}));
}

TEST(Fusion, EpiloguesAreFolded)
{
    Network net = overFeat();
    auto fused = partitionAndFuse(net);
    ASSERT_EQ(fused.size(), net.layers.size());
    // Conv layers absorb bias + relu.
    EXPECT_EQ(fused[0].fusedElementwise, 2);
    EXPECT_TRUE(fused[0].schedulable);
    // Pool layers are pure data movement.
    EXPECT_FALSE(fused[1].schedulable);
    // Final dense has bias but no relu.
    EXPECT_EQ(fused.back().fusedElementwise, 1);
}

TEST(Fusion, FusedOpShapesChainCorrectly)
{
    Network net = yoloV1();
    auto fused = partitionAndFuse(net);
    auto shapes = layerShapes(net);
    for (size_t i = 0; i < fused.size(); ++i)
        EXPECT_EQ(fused[i].output.shape(), shapes[i]) << fused[i].name;
}

TEST(E2e, SchedulesOverFeatOnGpu)
{
    Network net = overFeat();
    E2eOptions options;
    options.explore.trials = 12;
    options.explore.warmupPoints = 4;
    NetworkReport report =
        scheduleNetwork(net, Target::forGpu(v100()), options);
    EXPECT_EQ(report.layers.size(), net.layers.size());
    EXPECT_GT(report.totalSeconds, 0.0);
    // Every conv/dense layer is tuned, pools are not.
    int tuned = 0;
    for (const auto &l : report.layers)
        tuned += l.tuned;
    EXPECT_EQ(tuned, 8);
}

TEST(E2e, FusionSavesTime)
{
    Network net = overFeat();
    E2eOptions fused_options;
    fused_options.explore.trials = 8;
    fused_options.explore.warmupPoints = 4;
    E2eOptions unfused_options = fused_options;
    unfused_options.fuseElementwise = false;
    Target target = Target::forGpu(v100());
    NetworkReport fused = scheduleNetwork(net, target, fused_options);
    NetworkReport unfused = scheduleNetwork(net, target, unfused_options);
    EXPECT_LT(fused.totalSeconds, unfused.totalSeconds);
}

TEST(E2e, SchedulesOnCpuAndFpgaTargets)
{
    Network net = overFeat();
    E2eOptions options;
    options.explore.trials = 8;
    options.explore.warmupPoints = 4;
    for (const Target &t :
         {Target::forCpu(xeonE5()), Target::forFpga(vu9p())}) {
        NetworkReport report = scheduleNetwork(net, t, options);
        EXPECT_EQ(report.layers.size(), net.layers.size());
        EXPECT_GT(report.totalSeconds, 0.0) << t.deviceName();
        EXPECT_EQ(report.device, t.deviceName());
    }
}

TEST(E2e, TuningCacheDeduplicatesRepeatedLayers)
{
    // YOLO-v1 repeats conv shapes (four identical 1x1/3x3 pairs in block
    // 4); with a shared cache those layers are served without exploring.
    Network net = yoloV1();
    E2eOptions options;
    options.explore.trials = 6;
    options.explore.warmupPoints = 4;

    NetworkReport uncached =
        scheduleNetwork(net, Target::forGpu(v100()), options);

    TuningCache cache;
    options.cache = &cache;
    NetworkReport cached =
        scheduleNetwork(net, Target::forGpu(v100()), options);

    // 24 conv layers but far fewer distinct shapes.
    EXPECT_LT(cache.size(), 24u);
    EXPECT_GT(cache.size(), 5u);
    // Cache hits skip exploration entirely.
    EXPECT_LT(cached.simExploreSeconds,
              0.8 * uncached.simExploreSeconds);
}

TEST(E2e, SecondPassWithWarmCacheExploresNothing)
{
    Network net = overFeat();
    TuningCache cache;
    E2eOptions options;
    options.explore.trials = 6;
    options.explore.warmupPoints = 4;
    options.cache = &cache;
    Target target = Target::forGpu(v100());
    scheduleNetwork(net, target, options);
    NetworkReport second = scheduleNetwork(net, target, options);
    EXPECT_DOUBLE_EQ(second.simExploreSeconds, 0.0);
}

} // namespace
} // namespace ft
