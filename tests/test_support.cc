/**
 * @file
 * Tests for support utilities: RNG determinism and distribution sanity,
 * divisor/factorization enumeration, and small math helpers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/math_util.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(MathUtil, DivisorsOfTwelve)
{
    EXPECT_EQ(divisorsOf(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
}

TEST(MathUtil, DivisorsOfPrime)
{
    EXPECT_EQ(divisorsOf(13), (std::vector<int64_t>{1, 13}));
}

TEST(MathUtil, DivisorsOfOne)
{
    EXPECT_EQ(divisorsOf(1), (std::vector<int64_t>{1}));
}

class FactorizationTest : public ::testing::TestWithParam<
                              std::tuple<int64_t, int>>
{};

TEST_P(FactorizationTest, EveryTupleMultipliesToN)
{
    auto [n, parts] = GetParam();
    auto fs = factorizations(n, parts);
    ASSERT_FALSE(fs.empty());
    std::set<std::vector<int64_t>> unique;
    for (const auto &f : fs) {
        ASSERT_EQ(static_cast<int>(f.size()), parts);
        EXPECT_EQ(product(f), n);
        unique.insert(f);
    }
    EXPECT_EQ(unique.size(), fs.size()) << "duplicate factorizations";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FactorizationTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 4),
                      std::make_tuple(7, 3), std::make_tuple(12, 2),
                      std::make_tuple(64, 4), std::make_tuple(96, 3),
                      std::make_tuple(1024, 4), std::make_tuple(448, 4),
                      std::make_tuple(100, 3)));

TEST(MathUtil, FactorizationCountsMatchFormulaForPowersOfTwo)
{
    // Ordered 4-factorizations of 2^k = C(k+3, 3).
    EXPECT_EQ(factorizations(1024, 4).size(), 286u); // k=10
    EXPECT_EQ(factorizations(16, 4).size(), 35u);    // k=4
}

TEST(MathUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(MathUtil, LargestPowerOfTwoDivisor)
{
    EXPECT_EQ(largestPowerOfTwoDivisor(96), 32);
    EXPECT_EQ(largestPowerOfTwoDivisor(7), 1);
    EXPECT_EQ(largestPowerOfTwoDivisor(1024), 1024);
}

TEST(MathUtil, IsPowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(MathUtil, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace ft
