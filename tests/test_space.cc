/**
 * @file
 * Tests for schedule-space construction and the direction/neighbor algebra
 * of Section 4.2.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/static_analyzer.h"
#include "ops/ops.h"
#include "ops/shapes.h"
#include "space/builder.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace ft {
namespace {

Tensor
smallGemm()
{
    Tensor a = placeholder("A", {64, 32});
    Tensor b = placeholder("B", {32, 48});
    return ops::gemm(a, b);
}

TEST(SplitSubSpace, EnumeratesAllDivisibleSplits)
{
    SplitSubSpace s(KnobRole::SpatialSplit, 0, 12, 2);
    // 12 = 1*12, 2*6, 3*4, 4*3, 6*2, 12*1.
    EXPECT_EQ(s.size(), 6);
    for (int64_t i = 0; i < s.size(); ++i)
        EXPECT_EQ(product(s.entry(i)), 12);
}

TEST(SplitSubSpace, DirectionsCountIsNTimesNMinusOne)
{
    SplitSubSpace s(KnobRole::SpatialSplit, 0, 64, 4);
    EXPECT_EQ(s.numDirections(), 12); // paper: N(N-1)/2 unordered pairs,
                                      // doubled for signed movement
}

TEST(SplitSubSpace, MovePreservesProductAndChangesOnePair)
{
    SplitSubSpace s(KnobRole::SpatialSplit, 0, 96, 3);
    Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        int64_t idx = static_cast<int64_t>(rng.below(s.size()));
        int dir = static_cast<int>(rng.below(s.numDirections()));
        int64_t next = s.move(idx, dir);
        if (next < 0)
            continue;
        const auto &f = s.entry(idx);
        const auto &g = s.entry(next);
        EXPECT_EQ(product(f), product(g));
        int changed = 0, increased = 0, decreased = 0;
        for (size_t d = 0; d < f.size(); ++d) {
            if (f[d] != g[d]) {
                ++changed;
                increased += g[d] > f[d];
                decreased += g[d] < f[d];
            }
        }
        EXPECT_EQ(changed, 2);
        EXPECT_EQ(increased, 1);
        EXPECT_EQ(decreased, 1);
    }
}

TEST(SplitSubSpace, MoveFromExhaustedPartIsBoundary)
{
    SplitSubSpace s(KnobRole::SpatialSplit, 0, 8, 2);
    int64_t idx = s.indexOf({8, 1});
    ASSERT_GE(idx, 0);
    // Direction moving mass from part 1 (already 1) must be a boundary.
    // Direction encoding: dir = i*(parts-1) + j', pair (i=0, j=1) is dir 0.
    EXPECT_EQ(s.move(idx, 0), -1);
}

TEST(SplitSubSpace, TrivialIndexRoundTrips)
{
    SplitSubSpace s(KnobRole::SpatialSplit, 0, 36, 4);
    int64_t idx = s.indexOfTrivial(2);
    EXPECT_EQ(s.entry(idx), (std::vector<int64_t>{1, 1, 36, 1}));
}

TEST(SplitSubSpace, Pow2RestrictionFiltersEntries)
{
    SplitSubSpace full(KnobRole::SpatialSplit, 0, 24, 3, false);
    SplitSubSpace pow2(KnobRole::SpatialSplit, 0, 24, 3, true);
    EXPECT_LT(pow2.size(), full.size());
    for (int64_t i = 0; i < pow2.size(); ++i) {
        const auto &f = pow2.entry(i);
        for (size_t d = 1; d < f.size(); ++d)
            EXPECT_TRUE(isPowerOfTwo(f[d]));
    }
}

TEST(ChoiceSubSpace, MovesAreAdjacent)
{
    ChoiceSubSpace c(KnobRole::Unroll, "unroll", {0, 1, 2, 3});
    EXPECT_EQ(c.size(), 4);
    EXPECT_EQ(c.move(1, 0), 2);
    EXPECT_EQ(c.move(1, 1), 0);
    EXPECT_EQ(c.move(3, 0), -1);
    EXPECT_EQ(c.move(0, 1), -1);
}

TEST(ScheduleSpace, GpuGemmSpaceShape)
{
    Tensor c = smallGemm();
    ScheduleSpace space = buildSpace(c.op(), Target::forGpu(v100()));
    // 2 spatial splits + 1 reduce split + reorder + unroll.
    EXPECT_EQ(space.numSubSpaces(), 5);
    EXPECT_GT(space.size(), 1e4);
    EXPECT_GT(space.numDirections(), 20);
}

TEST(ScheduleSpace, CpuSpaceHasFuseAndVectorize)
{
    Tensor c = smallGemm();
    ScheduleSpace space = buildSpace(c.op(), Target::forCpu(xeonE5()));
    EXPECT_EQ(space.numSubSpaces(), 7);
}

TEST(ScheduleSpace, FpgaSpaceHasBufferAndPartition)
{
    Tensor c = smallGemm();
    ScheduleSpace space = buildSpace(c.op(), Target::forFpga(vu9p()));
    EXPECT_EQ(space.numSubSpaces(), 7);
}

TEST(ScheduleSpace, DecodeProducesLegalSplits)
{
    Tensor c = smallGemm();
    const auto *op = static_cast<const ComputeOp *>(c.op().get());
    ScheduleSpace space = buildSpace(c.op(), Target::forGpu(v100()));
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        Point p = space.randomPoint(rng);
        OpConfig cfg = space.decode(p);
        ASSERT_EQ(cfg.spatialSplits.size(), 2u);
        ASSERT_EQ(cfg.reduceSplits.size(), 1u);
        for (size_t i = 0; i < cfg.spatialSplits.size(); ++i)
            EXPECT_EQ(product(cfg.spatialSplits[i]),
                      op->axis()[i]->extent);
        EXPECT_EQ(product(cfg.reduceSplits[0]),
                  op->reduceAxis()[0]->extent);
    }
}

TEST(ScheduleSpace, MoveChangesExactlyOneKnob)
{
    Tensor c = smallGemm();
    ScheduleSpace space = buildSpace(c.op(), Target::forGpu(v100()));
    Rng rng(9);
    int moved = 0;
    for (int trial = 0; trial < 300; ++trial) {
        Point p = space.randomPoint(rng);
        int dir = static_cast<int>(rng.below(space.numDirections()));
        auto next = space.move(p, dir);
        if (!next)
            continue;
        ++moved;
        int diffs = 0;
        for (size_t s = 0; s < p.idx.size(); ++s)
            diffs += p.idx[s] != next->idx[s];
        EXPECT_EQ(diffs, 1);
    }
    EXPECT_GT(moved, 100); // most moves should be interior
}

TEST(ScheduleSpace, NeighborhoodIsSymmetricForSplits)
{
    // Moving along (i, j) then (j, i) with the same transfer factor returns
    // to the start whenever both moves use the same prime.
    SplitSubSpace s(KnobRole::SpatialSplit, 0, 64, 3);
    // All factors powers of two: every move transfers a factor of 2, so
    // the reverse direction must undo it.
    for (int64_t idx = 0; idx < s.size(); ++idx) {
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j) {
                if (i == j)
                    continue;
                int dir_ij = i * 2 + (j > i ? j - 1 : j);
                int dir_ji = j * 2 + (i > j ? i - 1 : i);
                int64_t there = s.move(idx, dir_ij);
                if (there < 0)
                    continue;
                EXPECT_EQ(s.move(there, dir_ji), idx);
            }
        }
    }
}

TEST(ScheduleSpace, PointKeyDistinguishesPoints)
{
    Tensor c = smallGemm();
    ScheduleSpace space = buildSpace(c.op(), Target::forGpu(v100()));
    Rng rng(21);
    std::set<std::string> keys;
    std::set<std::vector<int64_t>> points;
    for (int trial = 0; trial < 200; ++trial) {
        Point p = space.randomPoint(rng);
        keys.insert(p.key());
        points.insert(p.idx);
    }
    EXPECT_EQ(keys.size(), points.size());
}

TEST(ScheduleSpace, FeaturesAreFiniteAndFixedDim)
{
    Tensor c = smallGemm();
    ScheduleSpace space = buildSpace(c.op(), Target::forGpu(v100()));
    int dim = space.featureDim();
    Rng rng(33);
    for (int trial = 0; trial < 50; ++trial) {
        auto f = space.features(space.randomPoint(rng));
        ASSERT_EQ(static_cast<int>(f.size()), dim);
        for (double v : f) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, -1.0);
            EXPECT_LE(v, 2.0);
        }
    }
}

TEST(ScheduleSpace, TemplateSpaceIsMuchSmaller)
{
    // The paper reports FlexTensor's space is ~2027x larger than
    // AutoTVM's template space for C2D.
    auto cases = ops::table3Cases("C2D");
    Tensor t = cases[5].build(); // C6: 256 -> 512, 56x56
    MiniGraph g(t);
    Operation anchor;
    for (const auto &op : g.computeOps()) {
        if (op->name() == "conv2d")
            anchor = op;
    }
    ASSERT_TRUE(anchor != nullptr);
    Target target = Target::forGpu(v100());
    ScheduleSpace full = buildSpace(anchor, target);
    SpaceOptions opt;
    opt.templateRestricted = true;
    ScheduleSpace tmpl = buildSpace(anchor, target, opt);
    EXPECT_GT(full.size() / tmpl.size(), 100.0);
}

TEST(ScheduleSpace, C2dSpaceSizeIsAstronomical)
{
    // Section 6.2: schedule-space sizes range from 3.9e9 to 2.4e12.
    auto cases = ops::table3Cases("C2D");
    Tensor t = cases[9].build(); // C10: 512 -> 1024, 28x28
    MiniGraph g(t);
    Operation anchor = anchorOp(g);
    ScheduleSpace space = buildSpace(anchor, Target::forGpu(v100()));
    EXPECT_GT(space.size(), 1e9);
}

} // namespace
} // namespace ft
