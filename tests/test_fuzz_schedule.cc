/**
 * @file
 * Schedule-space fuzzing: draw many random points per operator/target
 * space and check the invariants every point must satisfy —
 *
 *   1. decoding and lowering never throw (no point of the space is
 *      un-schedulable, even model-invalid ones),
 *   2. the point -> config -> serialized-line pipeline round-trips
 *      (decode/encode and serialize/parse are inverses on the space),
 *   3. for a sampled subset, the interpreted schedule computes the same
 *      tensor as the reference executor (with a float tolerance, since
 *      reduction order differs between schedules),
 *   4. the static verifier agrees with the legacy validity heuristics
 *      on every generator-produced nest (structural passes never fire;
 *      the gating verdict and first message match NestFeatures), and
 *      verified emission refuses exactly the rejected points,
 *   5. imperfect tiles (splits that multiply past a non-divisible
 *      extent, drawn from a shape-generic padded space) are accepted
 *      exactly when the bounds prover succeeds: with the guard contract
 *      declared the prover clamps the overshooting axes and the
 *      interpreter matches the reference; with the declaration stripped
 *      the same nest must fail the proof.
 *
 * The sample count per space defaults to 200 and can be reduced via the
 * FLEXTENSOR_FUZZ_SAMPLES environment variable (the sanitizer CI job
 * sets it low to keep the job fast).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/verify/verify.h"
#include "codegen/codegen.h"
#include "family/shape_var.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "schedule/serialize.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

int
fuzzSamples()
{
    if (const char *env = std::getenv("FLEXTENSOR_FUZZ_SAMPLES")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 200;
}

Tensor
fuzzGemm()
{
    Tensor a = placeholder("A", {12, 18});
    Tensor b = placeholder("B", {18, 8});
    return ops::gemm(a, b);
}

Tensor
fuzzConv2d()
{
    Tensor input = placeholder("I", {1, 4, 8, 8});
    Tensor weight = placeholder("W", {6, 4, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    return ops::conv2d(input, weight, p);
}

struct FuzzCase
{
    const char *name;
    Tensor (*build)();
    int target; ///< 0 = GPU (V100), 1 = CPU (Xeon)
};

/**
 * Committed regression corpus for one fuzz case: serialized config
 * lines from tests/corpus/<op>_<target>.point ('#' starts a comment).
 * Replayed deterministically before any random sampling, so a point
 * that once exposed a bug keeps guarding against its recurrence no
 * matter what the sampler draws (see CONTRIBUTING.md).
 */
std::vector<std::string>
corpusLines(const FuzzCase &fc)
{
    const std::string path = std::string(FT_TEST_CORPUS_DIR) + "/" +
                             fc.name +
                             (fc.target == 0 ? "_gpu" : "_cpu") +
                             ".point";
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        lines.push_back(line);
    }
    return lines;
}

class ScheduleFuzzTest : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(ScheduleFuzzTest, RandomPointsSatisfyInvariants)
{
    const FuzzCase &fc = GetParam();
    Tensor out = fc.build();
    Target target = fc.target == 0 ? Target::forGpu(v100())
                                   : Target::forCpu(xeonE5());
    MiniGraph g(out);
    Operation anchor = anchorOp(g);
    ScheduleSpace space = buildSpace(anchor, target);

    Rng rng(0xf022u + static_cast<uint64_t>(fc.target));
    BufferMap reference = makeRandomInputs(g, rng);
    runGraphReference(g, reference);
    const Buffer &gold = reference.at(anchor.get());

    // Replay the committed corpus first: every line must parse, encode
    // back into the space, lower, and execute against the reference.
    const std::vector<std::string> corpus = corpusLines(fc);
    ASSERT_FALSE(corpus.empty())
        << "missing or empty corpus file for " << fc.name;
    for (const std::string &line : corpus) {
        auto cfg = parseConfig(line);
        ASSERT_TRUE(cfg.has_value()) << "unparseable corpus line: "
                                     << line;
        auto p = space.pointOf(*cfg);
        ASSERT_TRUE(p.has_value())
            << "corpus line no longer encodes into the space: " << line;
        Scheduled s = generate(anchor, *cfg, target);
        ASSERT_FALSE(s.nest.loops.empty()) << line;
        verify::DiagReport report =
            verify::verifySchedule(s, target, &*cfg);
        EXPECT_EQ(report.hasError(), !s.features.valid)
            << line << "\n" << report.toJson();
        BufferMap buffers = reference;
        buffers.erase(anchor.get());
        runScheduled(s.nest, buffers, 1);
        const Buffer &got = buffers.at(anchor.get());
        ASSERT_EQ(got.numel(), gold.numel());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3)
                << "corpus " << line << " element " << i;
    }

    const int samples = fuzzSamples();
    // Execution is the expensive invariant: spread ~8 executed samples
    // evenly over the run instead of checking every point.
    const int exec_stride = samples > 8 ? samples / 8 : 1;
    for (int trial = 0; trial < samples; ++trial) {
        Point p = space.randomPoint(rng);

        // (1) Decode and lower without throwing; lowering yields a nest.
        OpConfig cfg;
        Scheduled s;
        ASSERT_NO_THROW({
            cfg = space.decode(p);
            s = generate(anchor, cfg, target);
        }) << "point " << p.key();
        ASSERT_FALSE(s.nest.loops.empty()) << cfg.toString();

        // (4) The verifier's verdict matches the legacy heuristics:
        // on generator-produced nests only resource diagnostics can
        // gate, and the first one carries the legacy reason verbatim.
        verify::DiagReport report =
            verify::verifySchedule(s, target, &cfg);
        EXPECT_EQ(report.hasError(), !s.features.valid)
            << cfg.toString() << "\n" << report.toJson();
        if (const verify::Diag *e = report.firstError()) {
            EXPECT_EQ(e->message, s.features.invalidReason);
            for (const auto &d : report.diags()) {
                if (d.severity == verify::Severity::Error)
                    EXPECT_EQ(d.code.rfind("FT-RES-", 0), 0u) << d.code;
            }
        }

        // (2a) The serialized line parses back to the same config.
        const std::string line = serializeConfig(cfg);
        auto parsed = parseConfig(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        EXPECT_EQ(serializeConfig(*parsed), line);

        // (2b) The config encodes back into the space, onto a point
        // that decodes to the same config.
        auto p2 = space.pointOf(cfg);
        ASSERT_TRUE(p2.has_value()) << line;
        EXPECT_EQ(serializeConfig(space.decode(*p2)), line);

        // (3) Interpreted execution matches the reference; rejected
        // points must be refused by verified emission instead.
        if (trial % exec_stride == 0) {
            if (report.hasError()) {
                EXPECT_THROW(emitVerified(s, target, "fuzz_kernel"),
                             verify::VerifyError);
            }
            BufferMap buffers = reference;
            buffers.erase(anchor.get());
            runScheduled(s.nest, buffers, 1 + trial % 3);
            const Buffer &got = buffers.at(anchor.get());
            ASSERT_EQ(got.numel(), gold.numel());
            for (int64_t i = 0; i < gold.numel(); ++i) {
                ASSERT_NEAR(got[i], gold[i], 1e-3)
                    << "config " << cfg.toString() << " element " << i;
            }
        }
    }
}

constexpr FuzzCase kFuzzCases[] = {
    {"gemm", fuzzGemm, 0},
    {"gemm", fuzzGemm, 1},
    {"conv2d", fuzzConv2d, 0},
    {"conv2d", fuzzConv2d, 1},
};

std::string
fuzzName(const ::testing::TestParamInfo<FuzzCase> &info)
{
    return std::string(info.param.name) +
           (info.param.target == 0 ? "_gpu" : "_cpu");
}

// The instantiation is named "Fuzz" so the sanitizer CI job can select
// these tests with `ctest -R '^(Fuzz|Determinism)'`.
INSTANTIATE_TEST_SUITE_P(Fuzz, ScheduleFuzzTest,
                         ::testing::ValuesIn(kFuzzCases), fuzzName);

/**
 * Imperfect-tile fuzzing over a shape-generic padded space: every axis
 * extent is overridden to its next power of two, so random points
 * routinely pick splits whose product overshoots the true extent —
 * exactly the regime the family layer tunes in.
 */
class ImperfectTileFuzzTest : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(ImperfectTileFuzzTest, GuardedOvershootIsProvenAndExact)
{
    const FuzzCase &fc = GetParam();
    Tensor out = fc.build();
    Target target = fc.target == 0 ? Target::forGpu(v100())
                                   : Target::forCpu(xeonE5());
    MiniGraph g(out);
    Operation anchor = anchorOp(g);

    // Pad every non-divisible extent up to a power of two; split factor
    // enumeration then ignores true-extent divisibility, the same way
    // the family layer's dynamic-axis override does.
    SpaceOptions space_options;
    const auto *compute = static_cast<const ComputeOp *>(anchor.get());
    for (const auto &iv : compute->axis())
        space_options.spatialExtentOverride.push_back(nextPow2(iv->extent));
    for (const auto &iv : compute->reduceAxis())
        space_options.reduceExtentOverride.push_back(nextPow2(iv->extent));
    ScheduleSpace space = buildSpace(anchor, target, space_options);

    Rng rng(0x1f22u + static_cast<uint64_t>(fc.target));
    BufferMap reference = makeRandomInputs(g, rng);
    runGraphReference(g, reference);
    const Buffer &gold = reference.at(anchor.get());

    const int samples = fuzzSamples();
    const int exec_stride = samples > 8 ? samples / 8 : 1;
    int guarded_points = 0;
    for (int trial = 0; trial < samples; ++trial) {
        Point p = space.randomPoint(rng);
        OpConfig cfg;
        Scheduled s;
        ASSERT_NO_THROW({
            cfg = space.decode(p);
            s = generate(anchor, cfg, target);
        }) << "point " << p.key();
        if (s.nest.guardedAxes.empty())
            continue; // divisible draw; nothing imperfect to check
        ++guarded_points;

        // (5a) With the guard contract declared the bounds prover clamps
        // the overshooting axes: the proof must go through — any gating
        // diagnostic left is a resource limit, never an access bound.
        verify::DiagReport report =
            verify::verifySchedule(s, target, &cfg);
        for (const auto &d : report.diags()) {
            if (d.severity == verify::Severity::Error) {
                EXPECT_EQ(d.code.rfind("FT-OOB-", 0), std::string::npos)
                    << d.code << ": " << d.message << "\n"
                    << cfg.toString();
            }
        }

        // (5b) Strip the declaration: the identical nest with undeclared
        // overshoot keeps its raw spans and must FAIL the proof. The
        // verifier accepts imperfect tiles only because the guard is
        // part of the schedule's contract.
        Scheduled stripped = s;
        stripped.nest.guardedAxes.clear();
        verify::DiagReport undeclared;
        verify::checkAccessBounds(stripped.nest, undeclared);
        EXPECT_TRUE(undeclared.hasError())
            << "undeclared overshoot passed the bounds prover: "
            << cfg.toString();

        // (5c) Guarded execution skips the overshot iterations: the
        // interpreted result matches the reference exactly where the
        // proof succeeded. Points the verifier rejects (on resource
        // grounds) must still be refused by verified emission.
        if (trial % exec_stride == 0) {
            if (report.hasError()) {
                EXPECT_THROW(emitVerified(s, target, "fuzz_kernel"),
                             verify::VerifyError);
            }
            BufferMap buffers = reference;
            buffers.erase(anchor.get());
            runScheduled(s.nest, buffers, 1 + trial % 3);
            const Buffer &got = buffers.at(anchor.get());
            ASSERT_EQ(got.numel(), gold.numel());
            for (int64_t i = 0; i < gold.numel(); ++i) {
                ASSERT_NEAR(got[i], gold[i], 1e-3)
                    << "config " << cfg.toString() << " element " << i;
            }
        }
    }
    // The padded space must actually exercise the imperfect-tile
    // regime, or every check above was vacuous.
    EXPECT_GT(guarded_points, 0);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ImperfectTileFuzzTest,
                         ::testing::ValuesIn(kFuzzCases), fuzzName);

} // namespace
} // namespace ft
