/**
 * @file
 * Tests for the tensor-expression IR: construction, traversal, printing,
 * graph structure, and the pad/dilate helper nodes (checked semantically
 * through the reference executor).
 */
#include <gtest/gtest.h>

#include "exec/reference.h"
#include "ir/graph.h"
#include "ir/printer.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(Expr, ImmediateValues)
{
    Expr i = intImm(42);
    EXPECT_EQ(i->kind, ExprKind::IntImm);
    EXPECT_EQ(i->intValue, 42);
    Expr f = floatImm(1.5);
    EXPECT_EQ(f->kind, ExprKind::FloatImm);
    EXPECT_DOUBLE_EQ(f->floatValue, 1.5);
}

TEST(Expr, CollectVarsDeduplicates)
{
    IterVar i = makeIterVar("i", 8);
    IterVar j = makeIterVar("j", 8);
    Expr e = add(mul(varRef(i), varRef(j)), varRef(i));
    auto vars = collectVars(e);
    EXPECT_EQ(vars.size(), 2u);
}

TEST(Expr, OperatorSugarBuildsNodes)
{
    IterVar i = makeIterVar("i", 4);
    Expr e = varRef(i) + intImm(1);
    EXPECT_EQ(e->kind, ExprKind::Add);
    e = varRef(i) * intImm(3);
    EXPECT_EQ(e->kind, ExprKind::Mul);
}

TEST(Tensor, PlaceholderShape)
{
    Tensor t = placeholder("A", {3, 4, 5});
    EXPECT_EQ(t.ndim(), 3);
    EXPECT_EQ(t.numel(), 60);
    EXPECT_TRUE(t.op()->isPlaceholder());
    EXPECT_EQ(t.name(), "A");
}

TEST(Compute, SimpleElementwise)
{
    Tensor a = placeholder("A", {4, 4});
    Tensor b = compute("B", {4, 4}, [&](const std::vector<Expr> &iv) {
        return a(std::vector<Expr>{iv[0], iv[1]}) * floatImm(2.0);
    });
    const auto *op = static_cast<const ComputeOp *>(b.op().get());
    EXPECT_EQ(op->axis().size(), 2u);
    EXPECT_TRUE(op->reduceAxis().empty());
    ASSERT_EQ(op->inputs().size(), 1u);
    EXPECT_EQ(op->inputs()[0].name(), "A");
}

TEST(Compute, ReduceAxisRecorded)
{
    Tensor a = placeholder("A", {4, 8});
    IterVar k = makeIterVar("k", 8, IterKind::Reduce);
    Tensor s = compute("S", {4},
                       [&](const std::vector<Expr> &iv) {
                           return a({iv[0], varRef(k)});
                       },
                       {k});
    const auto *op = static_cast<const ComputeOp *>(s.op().get());
    ASSERT_EQ(op->reduceAxis().size(), 1u);
    EXPECT_EQ(op->reduceAxis()[0]->extent, 8);
}

TEST(Graph, PostOrderVisitsProducersFirst)
{
    Tensor a = placeholder("A", {4});
    Tensor b = compute("B", {4}, [&](const std::vector<Expr> &iv) {
        return a({iv[0]}) + floatImm(1.0);
    });
    Tensor c = compute("C", {4}, [&](const std::vector<Expr> &iv) {
        return b({iv[0]}) * floatImm(2.0);
    });
    MiniGraph g(c);
    ASSERT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.postOrder()[0]->name(), "A");
    EXPECT_EQ(g.postOrder()[1]->name(), "B");
    EXPECT_EQ(g.postOrder()[2]->name(), "C");
}

TEST(Graph, SharedInputVisitedOnce)
{
    Tensor a = placeholder("A", {4});
    Tensor b = compute("B", {4}, [&](const std::vector<Expr> &iv) {
        return a({iv[0]}) + a({iv[0]});
    });
    MiniGraph g(b);
    EXPECT_EQ(g.numNodes(), 2);
}

TEST(Graph, ConsumerCount)
{
    Tensor a = placeholder("A", {4});
    Tensor b = compute("B", {4}, [&](const std::vector<Expr> &iv) {
        return a({iv[0]}) + floatImm(1.0);
    });
    Tensor c = compute("C", {4}, [&](const std::vector<Expr> &iv) {
        return a({iv[0]}) + b({iv[0]});
    });
    MiniGraph g(c);
    EXPECT_EQ(g.numConsumers(a.op()), 2);
    EXPECT_EQ(g.numConsumers(b.op()), 1);
    EXPECT_EQ(g.numConsumers(c.op()), 0);
}

TEST(Printer, GemmLikeBody)
{
    Tensor a = placeholder("A", {2, 3});
    IterVar k = makeIterVar("k", 3, IterKind::Reduce);
    Tensor s = compute("S", {2},
                       [&](const std::vector<Expr> &iv) {
                           return a({iv[0], varRef(k)});
                       },
                       {k});
    std::string text = toString(s.op());
    EXPECT_NE(text.find("S["), std::string::npos);
    EXPECT_NE(text.find("sum{"), std::string::npos);
    EXPECT_NE(text.find("A["), std::string::npos);
}

TEST(Pad, ShapeAndZeroBorder)
{
    Tensor a = placeholder("A", {2, 3, 3});
    Tensor p = pad(a, {1, 1, 1, 1});
    EXPECT_EQ(p.shape(), (std::vector<int64_t>{2, 5, 5}));

    Rng rng(1);
    MiniGraph g(p);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &out = buffers.at(p.op().get());
    const Buffer &in = buffers.at(a.op().get());
    // Borders are zero, interior matches.
    EXPECT_FLOAT_EQ(out.at({0, 0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({1, 4, 2}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({0, 2, 3}), in.at({0, 1, 2}));
    EXPECT_FLOAT_EQ(out.at({1, 1, 1}), in.at({1, 0, 0}));
}

TEST(Pad, AsymmetricPads)
{
    Tensor a = placeholder("A", {4});
    Tensor p = pad(a, {2, 1});
    EXPECT_EQ(p.shape(), (std::vector<int64_t>{7}));

    Rng rng(2);
    MiniGraph g(p);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &out = buffers.at(p.op().get());
    const Buffer &in = buffers.at(a.op().get());
    EXPECT_FLOAT_EQ(out.at({0}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({1}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({2}), in.at({0}));
    EXPECT_FLOAT_EQ(out.at({5}), in.at({3}));
    EXPECT_FLOAT_EQ(out.at({6}), 0.0f);
}

TEST(Dilate, InsertsZeros)
{
    Tensor a = placeholder("A", {1, 3});
    Tensor d = dilate(a, {2});
    EXPECT_EQ(d.shape(), (std::vector<int64_t>{1, 5}));

    Rng rng(3);
    MiniGraph g(d);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &out = buffers.at(d.op().get());
    const Buffer &in = buffers.at(a.op().get());
    EXPECT_FLOAT_EQ(out.at({0, 0}), in.at({0, 0}));
    EXPECT_FLOAT_EQ(out.at({0, 1}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({0, 2}), in.at({0, 1}));
    EXPECT_FLOAT_EQ(out.at({0, 3}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({0, 4}), in.at({0, 2}));
}

TEST(Dilate, StrideOneIsIdentity)
{
    Tensor a = placeholder("A", {2, 3});
    Tensor d = dilate(a, {1});
    EXPECT_EQ(d.shape(), a.shape());

    Rng rng(4);
    MiniGraph g(d);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    EXPECT_EQ(buffers.at(d.op().get()).data(),
              buffers.at(a.op().get()).data());
}

TEST(Buffer, OffsetRowMajor)
{
    Tensor t = placeholder("T", {2, 3, 4});
    Buffer b(t.op());
    EXPECT_EQ(b.numel(), 24);
    EXPECT_EQ(b.offsetOf({0, 0, 0}), 0);
    EXPECT_EQ(b.offsetOf({0, 0, 3}), 3);
    EXPECT_EQ(b.offsetOf({0, 1, 0}), 4);
    EXPECT_EQ(b.offsetOf({1, 0, 0}), 12);
    EXPECT_EQ(b.offsetOf({1, 2, 3}), 23);
}

TEST(Eval, SelectShortCircuitsOutOfRangeAccess)
{
    Tensor a = placeholder("A", {2});
    Tensor s = compute("S", {4}, [&](const std::vector<Expr> &iv) {
        // Out-of-range reads only occur in the untaken branch.
        return select(lt(iv[0], intImm(2)), a({iv[0]}), floatImm(-1.0));
    });
    Rng rng(5);
    MiniGraph g(s);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    const Buffer &out = buffers.at(s.op().get());
    EXPECT_FLOAT_EQ(out.at({3}), -1.0f);
}

} // namespace
} // namespace ft
