/**
 * @file
 * Tests for the shape-family subsystem: bucket partitions, per-instance
 * split adaptation, dispatch-table totality/serialization/range checks,
 * joint tuning over a family, and serve-time dispatch in the service.
 */
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "family/tune_family.h"
#include "ops/ops.h"
#include "serve/service.h"
#include "sim/hw_spec.h"
#include "support/math_util.h"

namespace ft {
namespace {

ShapeVar
batchVar(int64_t lo, int64_t hi, Bucketing bucketing = Bucketing::Pow2,
         int64_t width = 8)
{
    ShapeVar var;
    var.name = "batch";
    var.lo = lo;
    var.hi = hi;
    var.bucketing = bucketing;
    var.bucketWidth = width;
    return var;
}

ShapeFamily
smallGemmFamily(int64_t lo = 1, int64_t hi = 16)
{
    return gemmOverM(/*n=*/64, /*k=*/64, batchVar(lo, hi));
}

FamilyTuneOptions
quickOptions(uint64_t seed = 0xfa417)
{
    FamilyTuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 8;
    options.explore.warmupPoints = 4;
    options.explore.seed = seed;
    options.samplesPerBucket = 2;
    return options;
}

TEST(ShapeVarTest, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1);
    EXPECT_EQ(nextPow2(2), 2);
    EXPECT_EQ(nextPow2(3), 4);
    EXPECT_EQ(nextPow2(63), 64);
    EXPECT_EQ(nextPow2(64), 64);
    EXPECT_EQ(nextPow2(65), 128);
}

TEST(ShapeVarTest, Pow2BucketsPartitionTheRange)
{
    ShapeVar var = batchVar(1, 64);
    std::vector<ShapeBucket> buckets = bucketsOf(var);
    ASSERT_FALSE(buckets.empty());
    // Contiguous ascending partition covering exactly [lo, hi].
    EXPECT_EQ(buckets.front().lo, var.lo);
    EXPECT_EQ(buckets.back().hi, var.hi);
    for (size_t i = 1; i < buckets.size(); ++i)
        EXPECT_EQ(buckets[i].lo, buckets[i - 1].hi + 1);
    // Every in-range value falls into exactly one bucket, and
    // bucketIndexOf agrees with the partition.
    for (int64_t v = var.lo; v <= var.hi; ++v) {
        int hits = 0;
        for (size_t i = 0; i < buckets.size(); ++i) {
            if (buckets[i].contains(v)) {
                ++hits;
                EXPECT_EQ(bucketIndexOf(var, v), static_cast<int>(i));
            }
        }
        EXPECT_EQ(hits, 1) << "value " << v;
    }
    EXPECT_EQ(bucketIndexOf(var, 0), -1);
    EXPECT_EQ(bucketIndexOf(var, 65), -1);
}

TEST(ShapeVarTest, FixedWidthBucketsPartitionTheRange)
{
    ShapeVar var = batchVar(3, 41, Bucketing::FixedWidth, 7);
    std::vector<ShapeBucket> buckets = bucketsOf(var);
    EXPECT_EQ(buckets.front().lo, var.lo);
    EXPECT_EQ(buckets.back().hi, var.hi);
    for (size_t i = 1; i < buckets.size(); ++i) {
        EXPECT_EQ(buckets[i].lo, buckets[i - 1].hi + 1);
        EXPECT_LE(buckets[i].hi - buckets[i].lo + 1, 7);
    }
    for (int64_t v = var.lo; v <= var.hi; ++v)
        EXPECT_NE(bucketIndexOf(var, v), -1) << "value " << v;
}

TEST(ShapeVarTest, SampleBucketIsDeterministicAndInRange)
{
    ShapeBucket bucket{9, 16};
    std::vector<int64_t> samples = sampleBucket(bucket, 3);
    EXPECT_EQ(samples, sampleBucket(bucket, 3));
    EXPECT_LE(samples.size(), 3u);
    EXPECT_FALSE(samples.empty());
    // The padded worst case (upper bound) is always scored.
    EXPECT_EQ(samples.back(), bucket.hi);
    std::set<int64_t> unique(samples.begin(), samples.end());
    EXPECT_EQ(unique.size(), samples.size());
    for (int64_t v : samples)
        EXPECT_TRUE(bucket.contains(v));
    // Degenerate bucket: every value, no duplicates.
    EXPECT_EQ(sampleBucket({4, 4}, 3), (std::vector<int64_t>{4}));
    EXPECT_EQ(sampleBucket({5, 6}, 4), (std::vector<int64_t>{5, 6}));
}

TEST(FamilyTest, AdaptSplitCoversExtentKeepingInnerTiles)
{
    OpConfig config;
    config.spatialSplits = {{8, 1, 2, 4}, {2, 2}};
    adaptSplitToExtent(config, 0, 37);
    // Inner factors survive; the outer factor becomes ceil(37 / 8) = 5.
    EXPECT_EQ(config.spatialSplits[0],
              (std::vector<int64_t>{5, 1, 2, 4}));
    EXPECT_GE(product(config.spatialSplits[0]), 37);
    // Overshoot stays under one inner tile.
    EXPECT_LT(product(config.spatialSplits[0]) - 37, 8);
    // The other axis is untouched.
    EXPECT_EQ(config.spatialSplits[1], (std::vector<int64_t>{2, 2}));
}

TEST(FamilyTest, InstanceAnchorsTrackTheShapeVar)
{
    ShapeFamily family = smallGemmFamily(1, 16);
    Operation anchor = family.instanceAnchor(7);
    const auto *c = static_cast<const ComputeOp *>(anchor.get());
    EXPECT_EQ(c->axis()[0]->extent, 7);
    EXPECT_EQ(c->axis()[1]->extent, 64);
}

DispatchTable
tableOverRange(int64_t lo, int64_t hi)
{
    ShapeVar var = batchVar(lo, hi);
    DispatchTable table("gemm_test", "V100", var);
    for (const ShapeBucket &bucket : bucketsOf(var)) {
        DispatchEntry entry;
        entry.lo = bucket.lo;
        entry.hi = bucket.hi;
        entry.config.spatialSplits = {{bucket.hi, 1, 1, 1}, {8, 2, 2, 2}};
        entry.config.reduceSplits = {{16, 2, 2}};
        entry.gflops = 100.0 + static_cast<double>(bucket.hi) / 3.0;
        entry.trials = 8;
        table.addEntry(entry);
    }
    return table;
}

TEST(DispatchTableTest, LookupIsTotalOverDeclaredRange)
{
    DispatchTable table = tableOverRange(1, 64);
    ASSERT_TRUE(table.total());
    // Every in-range shape resolves to exactly one entry, and it is the
    // entry whose bucket contains the shape.
    for (int64_t v = 1; v <= 64; ++v) {
        const DispatchEntry &entry = table.lookup(v);
        EXPECT_TRUE(entry.contains(v)) << "shape " << v;
        EXPECT_EQ(bucketIndexOf(table.var(), v),
                  static_cast<int>(&entry - table.entries().data()));
    }
}

TEST(DispatchTableTest, OutOfRangeLookupsFailLoudly)
{
    DispatchTable table = tableOverRange(1, 64);
    EXPECT_THROW(table.lookup(0), std::out_of_range);
    EXPECT_THROW(table.lookup(65), std::out_of_range);
    EXPECT_THROW(table.lookup(-3), std::out_of_range);
    // A partial table refuses shapes past its entries even in range.
    ShapeVar var = batchVar(1, 64);
    DispatchTable partial("gemm_test", "V100", var);
    DispatchEntry first;
    first.lo = 1;
    first.hi = 1;
    first.config.spatialSplits = {{1, 1, 1, 1}};
    partial.addEntry(first);
    EXPECT_FALSE(partial.total());
    EXPECT_NO_THROW(partial.lookup(1));
    EXPECT_THROW(partial.lookup(2), std::out_of_range);
}

TEST(DispatchTableTest, SerializeRoundTripsByteIdentically)
{
    DispatchTable table = tableOverRange(1, 64);
    const std::string text = table.serialize();
    std::optional<DispatchTable> parsed = DispatchTable::deserialize(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->serialize(), text);
    EXPECT_EQ(parsed->familyName(), table.familyName());
    EXPECT_EQ(parsed->device(), table.device());
    EXPECT_EQ(parsed->entries().size(), table.entries().size());
    for (size_t i = 0; i < table.entries().size(); ++i) {
        EXPECT_EQ(parsed->entries()[i].gflops, table.entries()[i].gflops);
        EXPECT_EQ(serializeConfig(parsed->entries()[i].config),
                  serializeConfig(table.entries()[i].config));
    }
    EXPECT_FALSE(DispatchTable::deserialize("garbage").has_value());
    EXPECT_FALSE(DispatchTable::deserialize("dispatch v1\nentry 1 2 0x1p0 1 x")
                     .has_value());
}

TEST(FamilyTuneTest, TuneFamilyProducesATotalTable)
{
    ShapeFamily family = smallGemmFamily(1, 16);
    Target target = Target::forGpu(v100());
    FamilyTuneReport report = tuneFamily(family, target, quickOptions());
    EXPECT_TRUE(report.table.total());
    EXPECT_EQ(report.buckets.size(), bucketsOf(family.var).size());
    EXPECT_GT(report.totalTrials, 0);
    EXPECT_GT(report.spaceSize, 0.0);
    for (const FamilyBucketReport &bucket : report.buckets) {
        EXPECT_GT(bucket.familyGflops, 0.0);
        EXPECT_GT(bucket.repGflops, 0.0);
        EXPECT_GT(bucket.trials, 0);
    }
    // The winning schedule of every bucket adapts to every shape it
    // serves with positive modeled performance (legal on all shapes).
    for (int64_t v = family.var.lo; v <= family.var.hi; ++v) {
        const DispatchEntry &entry = report.table.lookup(v);
        EXPECT_GT(instanceGflopsFor(family, entry.config, v, target), 0.0)
            << "shape " << v;
    }
}

TEST(FamilyTuneTest, FixedSeedRunsAreBitIdentical)
{
    ShapeFamily family = smallGemmFamily(1, 16);
    Target target = Target::forGpu(v100());
    FamilyTuneReport a = tuneFamily(family, target, quickOptions(42));
    FamilyTuneReport b = tuneFamily(family, target, quickOptions(42));
    EXPECT_EQ(a.table.serialize(), b.table.serialize());
    EXPECT_EQ(a.totalTrials, b.totalTrials);
    FamilyTuneReport c = tuneFamily(family, target, quickOptions(43));
    EXPECT_EQ(c.table.serialize().empty(), false);
}

TEST(FamilyTuneTest, SharedCostModelAccruesTrialsAcrossBuckets)
{
    // One model rides through every bucket's ExploreOptions copy:
    // after a family run it must hold trials from all buckets (more
    // than any single bucket contributed) and be trained.
    ShapeFamily family = smallGemmFamily(1, 16);
    Target target = Target::forGpu(v100());

    CostModelOptions model_options;
    model_options.syncRefit = true;
    model_options.refitEvery = 16;
    CostModel model(model_options);

    FamilyTuneOptions options = quickOptions();
    options.explore.costModel = &model;
    FamilyTuneReport report = tuneFamily(family, target, options);
    ASSERT_GT(report.buckets.size(), 1u);

    int max_bucket_trials = 0;
    for (const FamilyBucketReport &bucket : report.buckets)
        max_bucket_trials = std::max(max_bucket_trials, bucket.trials);
    EXPECT_GT(model.numTrials(),
              static_cast<size_t>(max_bucket_trials));
    EXPECT_TRUE(model.ready());
    EXPECT_GE(model.refits(), 1u);
}

TEST(FamilyServiceTest, ServeShapeHitsDispatchTableAfterTuning)
{
    ServiceOptions service_options;
    service_options.evalThreads = 2;
    service_options.requestThreads = 1;
    TuningService service(service_options);
    ShapeFamily family = smallGemmFamily(1, 16);
    Target target = Target::forGpu(v100());

    // First request: no table yet, so the family is tuned.
    FamilyServeResult first =
        service.serveShape(family, 5, target, quickOptions());
    EXPECT_FALSE(first.fromDispatch);
    EXPECT_TRUE(first.bucket.contains(5));
    // The adapted config covers the concrete shape.
    EXPECT_GE(product(first.config.spatialSplits[0]), 5);

    // Second request: served straight from the published table.
    FamilyServeResult second =
        service.serveShape(family, 6, target, quickOptions());
    EXPECT_TRUE(second.fromDispatch);
    EXPECT_TRUE(second.bucket.contains(6));

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.familyRequests, 2u);
    EXPECT_EQ(stats.dispatchHits, 1u);
    EXPECT_EQ(stats.dispatchTables, 1u);

    std::optional<DispatchTable> table =
        service.dispatchTableFor(family.name, target.deviceName());
    ASSERT_TRUE(table.has_value());
    EXPECT_TRUE(table->total());
    EXPECT_FALSE(
        service.dispatchTableFor("no_such_family", target.deviceName())
            .has_value());
}

TEST(FamilyServiceTest, TuneFamilyPublishesAndCountsRequests)
{
    TuningService service;
    ShapeFamily family = smallGemmFamily(1, 8);
    Target target = Target::forGpu(v100());
    FamilyTuneReport report =
        service.tuneFamily(family, target, quickOptions());
    EXPECT_TRUE(report.table.total());
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.familyRequests, 1u);
    EXPECT_EQ(stats.dispatchHits, 0u);
    EXPECT_EQ(stats.dispatchTables, 1u);
    EXPECT_EQ(stats.evaluations,
              static_cast<uint64_t>(report.totalTrials));
}

} // namespace
} // namespace ft
