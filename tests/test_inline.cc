/**
 * @file
 * Tests for the operator-inlining pass (the `inline` primitive): node
 * elimination, semantic preservation against the reference executor, and
 * interaction with scheduling.
 */
#include <gtest/gtest.h>

#include "analysis/flops.h"
#include "analysis/static_analyzer.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "ir/inline.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(Inline, PlaceholdersAreNotInlinable)
{
    Tensor a = placeholder("A", {4});
    EXPECT_FALSE(canInline(a.op()));
}

TEST(Inline, ElementwiseIsInlinableReductionIsNot)
{
    Tensor a = placeholder("A", {4, 4});
    Tensor r = ops::relu(a);
    EXPECT_TRUE(canInline(r.op()));
    Tensor b = placeholder("B", {4, 4});
    Tensor g = ops::gemm(a, b);
    EXPECT_FALSE(canInline(g.op()));
}

TEST(Inline, PadIsRemovedFromConvGraph)
{
    Tensor input = placeholder("I", {1, 2, 6, 6});
    Tensor weight = placeholder("W", {3, 2, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    EXPECT_EQ(MiniGraph(out).computeOps().size(), 2u);

    Tensor fused = inlineGraph(out);
    MiniGraph g(fused);
    EXPECT_EQ(g.computeOps().size(), 1u);
    // The fused node reads the original placeholders directly.
    for (const Tensor &in : g.computeOps()[0]->inputs())
        EXPECT_TRUE(in.op()->isPlaceholder());
}

TEST(Inline, TransposedConvCollapsesToOneNode)
{
    Tensor input = placeholder("I", {1, 2, 4, 4});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    Tensor out = ops::conv2dTransposed(input, weight, 2, 1);
    EXPECT_EQ(MiniGraph(out).computeOps().size(), 3u);
    Tensor fused = inlineGraph(out);
    EXPECT_EQ(MiniGraph(fused).computeOps().size(), 1u);
}

TEST(Inline, PreservesShapeAndFlops)
{
    Tensor input = placeholder("I", {1, 3, 8, 8});
    Tensor weight = placeholder("W", {4, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    Tensor fused = inlineGraph(out);
    EXPECT_EQ(fused.shape(), out.shape());
    EXPECT_DOUBLE_EQ(anchorFlops(MiniGraph(fused)),
                     anchorFlops(MiniGraph(out)));
}

/** Reference-execute a graph and return the root buffer. */
Buffer
goldOf(const Tensor &root, uint64_t seed)
{
    MiniGraph g(root);
    Rng rng(seed);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    return buffers.at(root.op().get());
}

void
expectSameResult(const Tensor &original, const Tensor &fused, uint64_t seed)
{
    // Same seed => placeholders are structurally identical (same names,
    // same order in post-order), so both graphs see the same data.
    Buffer a = goldOf(original, seed);
    Buffer b = goldOf(fused, seed);
    ASSERT_EQ(a.numel(), b.numel());
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a[i], b[i], 1e-4) << "element " << i;
}

TEST(Inline, ConvWithPadComputesSameResult)
{
    Tensor input = placeholder("I", {1, 3, 7, 7});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    expectSameResult(out, inlineGraph(out), 11);
}

TEST(Inline, TransposedConvComputesSameResult)
{
    Tensor input = placeholder("I", {1, 2, 5, 5});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    Tensor out = ops::conv2dTransposed(input, weight, 2, 1);
    expectSameResult(out, inlineGraph(out), 13);
}

TEST(Inline, ChainOfElementwiseCollapses)
{
    Tensor a = placeholder("A", {6, 6});
    Tensor b = ops::relu(a);
    Tensor c = compute("scale", {6, 6}, [&](const std::vector<Expr> &iv) {
        return b(std::vector<Expr>(iv.begin(), iv.end())) * floatImm(3.0);
    });
    Tensor d = ops::relu(c);
    EXPECT_EQ(MiniGraph(d).computeOps().size(), 3u);
    Tensor fused = inlineGraph(d);
    EXPECT_EQ(MiniGraph(fused).computeOps().size(), 1u);
    expectSameResult(d, fused, 17);
}

TEST(Inline, ReductionBoundaryIsKept)
{
    // relu(gemm(relu(A), B)): the inner relu inlines into the gemm, the
    // gemm stays, the outer relu inlines nothing below it (it becomes the
    // root and consumes the gemm).
    Tensor a = placeholder("A", {4, 6});
    Tensor b = placeholder("B", {6, 5});
    Tensor g = ops::gemm(ops::relu(a), b);
    Tensor out = ops::relu(g);
    EXPECT_EQ(MiniGraph(out).computeOps().size(), 3u);
    Tensor fused = inlineGraph(out);
    EXPECT_EQ(MiniGraph(fused).computeOps().size(), 2u);
    expectSameResult(out, fused, 19);
}

TEST(Inline, InlinedAnchorStillSchedulesCorrectly)
{
    // The full pipeline on an inlined graph: schedule random points and
    // compare against the original graph's reference result.
    Tensor input = placeholder("I", {1, 4, 6, 6});
    Tensor weight = placeholder("W", {4, 4, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    Tensor fused = inlineGraph(out);

    Buffer gold = goldOf(out, 23);
    MiniGraph fg(fused);
    Operation anchor = anchorOp(fg);
    Rng rng(23);
    BufferMap buffers = makeRandomInputs(fg, rng);

    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(anchor, target);
    for (int trial = 0; trial < 5; ++trial) {
        Point pt = space.randomPoint(rng);
        Scheduled s = generate(anchor, space.decode(pt), target);
        BufferMap run = buffers;
        runScheduled(s.nest, run);
        const Buffer &got = run.at(anchor.get());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3);
    }
}

TEST(Inline, InlineAccessesToSingleProducer)
{
    Tensor a = placeholder("A", {8});
    Tensor r = ops::relu(a);
    Tensor c = compute("c", {8}, [&](const std::vector<Expr> &iv) {
        return r({iv[0]}) + floatImm(1.0);
    });
    const auto *op = static_cast<const ComputeOp *>(c.op().get());
    Expr body = inlineAccessesTo(op->body(), r.op());
    // The rewritten body accesses only the placeholder.
    for (const auto &src : collectSources(body))
        EXPECT_TRUE(src->isPlaceholder());
}

} // namespace
} // namespace ft
