/**
 * @file
 * Tests for the analytical device models: sanity, monotonicity, roofline
 * behaviour, validity enforcement, and the library baselines.
 */
#include <gtest/gtest.h>

#include "analysis/static_analyzer.h"
#include "ops/ops.h"
#include "ops/shapes.h"
#include "schedule/generator.h"
#include "sim/library_model.h"
#include "sim/perf_model.h"

namespace ft {
namespace {

Tensor
gemm1k()
{
    Tensor a = placeholder("A", {1024, 1024});
    Tensor b = placeholder("B", {1024, 1024});
    return ops::gemm(a, b);
}

/** A sensible GPU config for the 1k GEMM. */
OpConfig
goodGpuConfig()
{
    OpConfig cfg;
    cfg.spatialSplits = {{16, 2, 16, 2}, {16, 2, 16, 2}};
    cfg.reduceSplits = {{128, 2, 4}};
    cfg.unrollDepth = 2;
    return cfg;
}

TEST(GpuModel, GoodScheduleLandsInPlausibleRange)
{
    Tensor c = gemm1k();
    Scheduled s = generateGpu(c.op(), goodGpuConfig(), v100());
    ASSERT_TRUE(s.features.valid) << s.features.invalidReason;
    PerfResult perf = gpuModelPerf(s.features, v100());
    ASSERT_TRUE(perf.valid);
    // A tuned 1k GEMM on V100 runs in the multi-TFLOPS range, well under
    // the 15.7 TFLOPS peak.
    EXPECT_GT(perf.gflops, 500.0);
    EXPECT_LT(perf.gflops, v100().peakGflops());
}

TEST(GpuModel, DegenerateScheduleIsMuchSlower)
{
    Tensor c = gemm1k();
    OpConfig bad;
    bad.spatialSplits = {{1024, 1, 1, 1}, {1024, 1, 1, 1}}; // 1 thread/block
    bad.reduceSplits = {{1024, 1, 1}};
    Scheduled sb = generateGpu(c.op(), bad, v100());
    Scheduled sg = generateGpu(c.op(), goodGpuConfig(), v100());
    PerfResult pb = gpuModelPerf(sb.features, v100());
    PerfResult pg = gpuModelPerf(sg.features, v100());
    ASSERT_TRUE(pb.valid && pg.valid);
    EXPECT_GT(pg.gflops, 5.0 * pb.gflops);
}

TEST(GpuModel, InvalidFeaturesAreRejected)
{
    NestFeatures f;
    f.valid = false;
    f.invalidReason = "synthetic";
    PerfResult perf = gpuModelPerf(f, v100());
    EXPECT_FALSE(perf.valid);
    EXPECT_EQ(perf.reason, "synthetic");
}

TEST(GpuModel, FasterDeviceIsFaster)
{
    // Same schedule, V100 vs the smaller Titan X.
    Tensor c = gemm1k();
    Scheduled s = generateGpu(c.op(), goodGpuConfig(), v100());
    PerfResult on_v100 = gpuModelPerf(s.features, v100());
    PerfResult on_titan = gpuModelPerf(s.features, titanX());
    ASSERT_TRUE(on_v100.valid && on_titan.valid);
    EXPECT_GT(on_v100.gflops, on_titan.gflops);
}

TEST(GpuModel, MemoryBoundKernelHitsBandwidthRoofline)
{
    // GEMV is bandwidth bound: modeled GFLOPS must respect 2 flops/4 bytes
    // at DRAM speed (with some slack for the model's L2 discount).
    Tensor a = placeholder("A", {4096, 4096});
    Tensor x = placeholder("x", {4096});
    Tensor y = ops::gemv(a, x);
    OpConfig cfg;
    cfg.spatialSplits = {{16, 1, 256, 1}};
    cfg.reduceSplits = {{512, 1, 8}};
    Scheduled s = generateGpu(y.op(), cfg, v100());
    PerfResult perf = gpuModelPerf(s.features, v100());
    ASSERT_TRUE(perf.valid);
    double roofline = v100().memBwGBs * 2.0 / 4.0; // GFLOPS cap
    EXPECT_LT(perf.gflops, roofline * 2.0);
}

TEST(CpuModel, ParallelismImprovesThroughput)
{
    Tensor c = gemm1k();
    OpConfig serial;
    serial.spatialSplits = {{1, 64, 16}, {1, 64, 16}};
    serial.reduceSplits = {{256, 4}};
    serial.fuseCount = 1; // parallel extent 1
    OpConfig parallel = serial;
    parallel.spatialSplits = {{32, 2, 16}, {32, 2, 16}};
    parallel.fuseCount = 2; // parallel extent 1024
    PerfResult ps = cpuModelPerf(
        generateCpu(c.op(), serial, xeonE5()).features, xeonE5());
    PerfResult pp = cpuModelPerf(
        generateCpu(c.op(), parallel, xeonE5()).features, xeonE5());
    ASSERT_TRUE(ps.valid && pp.valid);
    EXPECT_GT(pp.gflops, 3.0 * ps.gflops);
}

TEST(CpuModel, VectorizationImprovesThroughput)
{
    Tensor c = gemm1k();
    OpConfig narrow;
    narrow.spatialSplits = {{64, 4, 4}, {64, 4, 4}};
    narrow.reduceSplits = {{256, 4}};
    narrow.fuseCount = 2;
    narrow.vectorizeLen = 1;
    OpConfig wide = narrow;
    wide.vectorizeLen = 8;
    wide.spatialSplits = {{64, 4, 4}, {32, 4, 8}};
    PerfResult pn = cpuModelPerf(
        generateCpu(c.op(), narrow, xeonE5()).features, xeonE5());
    PerfResult pw = cpuModelPerf(
        generateCpu(c.op(), wide, xeonE5()).features, xeonE5());
    ASSERT_TRUE(pn.valid && pw.valid);
    EXPECT_GT(pw.gflops, pn.gflops);
}

TEST(CpuModel, StaysUnderPeak)
{
    Tensor c = gemm1k();
    OpConfig cfg = expertConfig(c.op(), Target::forCpu(xeonE5()));
    PerfResult perf = cpuModelPerf(
        generateCpu(c.op(), cfg, xeonE5()).features, xeonE5());
    ASSERT_TRUE(perf.valid);
    EXPECT_LT(perf.gflops, xeonE5().peakGflops());
    EXPECT_GT(perf.gflops, 1.0);
}

TEST(FpgaModel, FollowsPaperFormula)
{
    // T = rounds * max(R, C, W) + fill; verify against hand computation.
    NestFeatures f;
    f.valid = true;
    f.totalFlops = 1e9;
    f.pe = 100;
    f.rounds = 10;
    f.flopsPerRound = 1e8;
    f.readBytesPerRound = 1e6;
    f.writeBytesPerRound = 5e5;
    f.partition = 16;
    const FpgaSpec &spec = vu9p();
    PerfResult perf = fpgaModelPerf(f, spec);
    ASSERT_TRUE(perf.valid);
    double compute = 1e8 / (2.0 * 100 * spec.clockGhz * 1e9);
    double read_bw =
        std::min(spec.ddrBwGBs, spec.baseBankBwGBs * 16) * 1e9;
    double read = 1e6 / read_bw;
    double write = 5e5 / (spec.ddrBwGBs * 1e9);
    double stage = std::max({read, compute, write});
    EXPECT_NEAR(perf.seconds, 10 * stage + 2 * stage, 1e-12);
}

TEST(FpgaModel, MorePesHelpComputeBoundDesigns)
{
    NestFeatures f;
    f.valid = true;
    f.totalFlops = 1e10;
    f.rounds = 100;
    f.flopsPerRound = 1e8;
    f.readBytesPerRound = 1e3; // compute bound
    f.writeBytesPerRound = 1e3;
    f.partition = 16;
    f.pe = 64;
    double slow = fpgaModelPerf(f, vu9p()).seconds;
    f.pe = 512;
    double fast = fpgaModelPerf(f, vu9p()).seconds;
    EXPECT_LT(fast, slow);
}

TEST(FpgaModel, PartitionRelievesReadBottleneck)
{
    NestFeatures f;
    f.valid = true;
    f.totalFlops = 1e9;
    f.rounds = 50;
    f.flopsPerRound = 2e7;
    f.readBytesPerRound = 5e6; // read bound at low partition
    f.writeBytesPerRound = 1e3;
    f.pe = 1024;
    f.partition = 1;
    double narrow = fpgaModelPerf(f, vu9p()).seconds;
    f.partition = 16;
    double wide = fpgaModelPerf(f, vu9p()).seconds;
    EXPECT_LT(wide, narrow);
}

TEST(LibraryModel, ClosestDivisor)
{
    EXPECT_EQ(closestDivisor(1024, 16), 16);
    EXPECT_EQ(closestDivisor(7, 16), 7);
    EXPECT_EQ(closestDivisor(12, 5), 6); // log-distance: 6 closer than 4
    EXPECT_EQ(closestDivisor(1, 100), 1);
}

TEST(LibraryModel, ClassifiesOperators)
{
    EXPECT_EQ(classifyAnchor(MiniGraph(
                  ops::table3Cases("GMM").front().build())),
              "gemm");
    EXPECT_EQ(classifyAnchor(MiniGraph(
                  ops::table3Cases("C2D").front().build())),
              "conv2d");
    EXPECT_EQ(classifyAnchor(MiniGraph(
                  ops::table3Cases("GRP").front().build())),
              "grpconv2d");
    EXPECT_EQ(classifyAnchor(MiniGraph(
                  ops::table3Cases("DEP").front().build())),
              "depthwise");
}

TEST(LibraryModel, CudnnSupportsConvNotGemm)
{
    Target gpu = Target::forGpu(v100());
    MiniGraph conv(ops::table3Cases("C2D")[3].build());
    MiniGraph gemm(ops::table3Cases("GMM")[4].build());
    EXPECT_TRUE(libraryPerf(conv, Library::CuDnn, gpu).supported);
    EXPECT_FALSE(libraryPerf(gemm, Library::CuDnn, gpu).supported);
    EXPECT_TRUE(libraryPerf(gemm, Library::CuBlas, gpu).supported);
}

TEST(LibraryModel, CudnnDepthwiseSlowerThanPytorch)
{
    // Section 6.2: for DEP the cuDNN implementation is even slower than
    // PyTorch's native kernels.
    Target gpu = Target::forGpu(v100());
    MiniGraph dep(ops::table3Cases("DEP")[2].build());
    auto cudnn = libraryPerf(dep, Library::CuDnn, gpu);
    auto native = libraryPerf(dep, Library::PyTorchNative, gpu);
    ASSERT_TRUE(cudnn.supported && native.supported);
    EXPECT_GT(cudnn.seconds, native.seconds);
}

TEST(LibraryModel, WinogradBeatsExpertDirectOnFriendlyLayers)
{
    // C6-like layer: 3x3 stride 1 with wide channels -> cuDNN uses
    // Winograd and beats the direct expert schedule.
    Target gpu = Target::forGpu(v100());
    const auto &layers = ops::yoloLayers();
    MiniGraph g(layers[5].build(1)); // C6
    auto cudnn = libraryPerf(g, Library::CuDnn, gpu);
    ASSERT_TRUE(cudnn.supported);
    Operation anchor = anchorOp(g);
    Scheduled expert = generate(anchor, expertConfig(anchor, gpu), gpu);
    PerfResult direct = modelPerf(expert.features, gpu);
    ASSERT_TRUE(direct.valid);
    EXPECT_LT(cudnn.seconds, direct.seconds);
}

TEST(LibraryModel, ExpertConfigsAreValidEverywhere)
{
    for (const auto &opname : ops::table3Operators()) {
        auto cases = ops::table3Cases(opname);
        MiniGraph g(cases.front().build());
        Operation anchor = anchorOp(g);
        for (const Target &t :
             {Target::forGpu(v100()), Target::forCpu(xeonE5()),
              Target::forFpga(vu9p())}) {
            Scheduled s = generate(anchor, expertConfig(anchor, t), t);
            PerfResult perf = modelPerf(s.features, t);
            EXPECT_TRUE(perf.valid)
                << opname << " on " << t.deviceName() << ": "
                << perf.reason;
        }
    }
}

TEST(HwSpec, PeakNumbersMatchDatasheets)
{
    EXPECT_NEAR(v100().peakGflops(), 15667.0, 100.0);   // 15.7 TFLOPS
    EXPECT_NEAR(p100().peakGflops(), 10609.0, 100.0);   // 10.6 TFLOPS
    EXPECT_NEAR(titanX().peakGflops(), 10967.0, 100.0); // 11.0 TFLOPS
    EXPECT_NEAR(xeonE5().peakGflops(), 1548.8, 1.0); // 2x256-bit FMA
    EXPECT_NEAR(vu9p().peakGflops(), 684.0, 1.0);
}

} // namespace
} // namespace ft
