/**
 * @file
 * Guards for the exploration hot-path optimizations: the batched and
 * scratch-buffer code paths must be BIT-IDENTICAL to the scalar
 * originals (the determinism digests depend on it), and the integer
 * point keys that checkpoints and caches persist must never change
 * value across builds.
 *
 * Float comparisons here are deliberately EXPECT_EQ, not NEAR: the
 * batched kernels promise the same accumulation order as the scalar
 * forms, so any difference at all is a regression.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <vector>

#include "explore/checkpoint.h"
#include "nn/mlp.h"
#include "ops/ops.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

std::vector<float>
randomVec(Rng &rng, int n)
{
    std::vector<float> out(n);
    for (float &v : out)
        v = static_cast<float>(rng.uniform(-2.0, 2.0));
    return out;
}

TEST(PerfPaths, LinearForwardBatchMatchesScalarExactly)
{
    Rng rng(101);
    for (auto [in, out, m] : {std::tuple<int, int, int>{1, 1, 1},
                              {3, 5, 4},
                              {16, 9, 7},
                              {64, 64, 17},
                              {33, 2, 32}}) {
        Linear layer(in, out, rng);
        std::vector<float> x = randomVec(rng, in * m);
        std::vector<float> y(static_cast<size_t>(out) * m, -7.0f);
        layer.forwardBatch(x.data(), m, y.data());
        for (int s = 0; s < m; ++s) {
            std::vector<float> row(x.begin() + static_cast<size_t>(s) * in,
                                   x.begin() +
                                       static_cast<size_t>(s + 1) * in);
            std::vector<float> want = layer.forward(row);
            for (int o = 0; o < out; ++o) {
                EXPECT_EQ(want[o], y[static_cast<size_t>(s) * out + o])
                    << "in=" << in << " out=" << out << " m=" << m
                    << " sample=" << s << " output=" << o;
            }
        }
    }
}

TEST(PerfPaths, MlpForwardBatchMatchesScalarExactly)
{
    Rng rng(202);
    Mlp net({11, 24, 24, 6}, rng);
    const int m = 13;
    std::vector<float> x = randomVec(rng, 11 * m);
    MlpScratch scratch;
    const float *y = net.forwardBatch(x.data(), m, scratch);
    for (int s = 0; s < m; ++s) {
        std::vector<float> row(x.begin() + static_cast<size_t>(s) * 11,
                               x.begin() + static_cast<size_t>(s + 1) * 11);
        std::vector<float> want = net.forward(row);
        for (int o = 0; o < 6; ++o)
            EXPECT_EQ(want[o], y[static_cast<size_t>(s) * 6 + o])
                << "sample=" << s << " output=" << o;
    }
    // A second batch through the same scratch (now warm) must agree too.
    const float *y2 = net.forwardBatch(x.data(), m, scratch);
    for (int i = 0; i < 13 * 6; ++i)
        EXPECT_EQ(y[i], y2[i]);
}

TEST(PerfPaths, AccumulateGradScratchMatchesLegacy)
{
    // Two identical networks; train one through the legacy entry point
    // and one through the scratch-buffer entry point. Losses, and the
    // parameters after the AdaDelta step, must match bit for bit.
    Rng rng_a(303), rng_b(303), rng_x(404);
    Mlp legacy({8, 16, 16, 4}, rng_a);
    Mlp scratched({8, 16, 16, 4}, rng_b);
    MlpScratch scratch;
    AdaDeltaOptions opt;
    for (int step = 0; step < 5; ++step) {
        std::vector<float> x = randomVec(rng_x, 8);
        int action = step % 4;
        float target = static_cast<float>(rng_x.uniform(-1.0, 1.0));
        legacy.zeroGrad();
        scratched.zeroGrad();
        double loss_a = legacy.accumulateGrad(x, action, target);
        double loss_b = scratched.accumulateGrad(x, action, target, scratch);
        EXPECT_EQ(loss_a, loss_b) << "step=" << step;
        legacy.step(opt);
        scratched.step(opt);
    }
    std::vector<float> probe = randomVec(rng_x, 8);
    std::vector<float> out_a = legacy.forward(probe);
    std::vector<float> out_b = scratched.forward(probe);
    for (size_t i = 0; i < out_a.size(); ++i)
        EXPECT_EQ(out_a[i], out_b[i]);
}

TEST(PerfPaths, PointKeyPinnedConstants)
{
    // These values are persisted in caches and coalescing maps; changing
    // the hash function silently invalidates them, so the constants are
    // pinned here (FNV-1a 64 over little-endian index bytes).
    EXPECT_EQ(Point{}.key64(), 1469598103934665603ULL);
    EXPECT_EQ((Point{{0}}).key64(), 5187598658539770339ULL);
    EXPECT_EQ((Point{{1, 2, 3}}).key64(), 8115307341289149987ULL);
    EXPECT_EQ((Point{{7, 0, 1023, 42}}).key64(), 5904968694198624284ULL);
}

TEST(PerfPaths, PointKeyDistinguishesNeighbors)
{
    // Not a collision-freedom proof — just that the key separates the
    // points the explorers actually compare: a point, its single-knob
    // neighbors, and permuted coordinates.
    Point p{{4, 1, 9, 0, 2}};
    EXPECT_NE(p.key64(), (Point{{4, 1, 9, 0, 3}}).key64());
    EXPECT_NE(p.key64(), (Point{{1, 4, 9, 0, 2}}).key64());
    EXPECT_NE(p.key64(), (Point{{4, 1, 9, 0}}).key64());
    EXPECT_EQ(p.key64(), (Point{{4, 1, 9, 0, 2}}).key64());
}

TEST(PerfPaths, FeaturesIntoMatchesFeatures)
{
    // featuresInto reuses an incremental decode; walking random points
    // through ONE scratch must reproduce the from-scratch features()
    // exactly (this exercises decodeInto's changed-knob-only re-apply).
    Tensor a = placeholder("A", {128, 128});
    Tensor b = placeholder("B", {128, 128});
    Tensor out = ops::gemm(a, b);
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);

    Rng rng(505);
    DecodeScratch scratch;
    std::vector<double> got;
    for (int i = 0; i < 24; ++i) {
        Point p = space.randomPoint(rng);
        // Every other round, mutate one knob only — the incremental
        // decode's common case.
        if (i % 2 == 1 && !p.idx.empty())
            p.idx[i % p.idx.size()] = 0;
        std::vector<double> want = space.features(p);
        space.featuresInto(p, scratch, got);
        ASSERT_EQ(want.size(), got.size());
        for (size_t j = 0; j < want.size(); ++j)
            EXPECT_EQ(want[j], got[j]) << "round=" << i << " feature=" << j;
    }
}

TEST(PerfPaths, CheckpointV2QuarantineRoundTrip)
{
    CheckpointState state;
    state.method = "q";
    state.seed = 77;
    state.spaceSig = "5/10";
    state.trial = 3;
    state.quarantine.push_back(Point{{12, 0, 3, 1, 9}});
    state.quarantine.push_back(Point{{0, 0, 0, 0, 0}});

    const std::string path = ::testing::TempDir() + "/ckpt_v2_quarantine";
    ASSERT_TRUE(saveCheckpoint(path, state));
    auto loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->quarantine.size(), 2u);
    EXPECT_EQ(loaded->quarantine[0].idx, (std::vector<int64_t>{12, 0, 3, 1, 9}));
    EXPECT_EQ(loaded->quarantine[1].idx, (std::vector<int64_t>{0, 0, 0, 0, 0}));
    std::remove(path.c_str());
}

TEST(PerfPaths, CheckpointV1LegacyQuarantineStillLoads)
{
    // A v1 file written by the pre-overhaul code stored quarantine
    // entries as legacy string keys ("12;0;3;"). The v2 loader must
    // still parse them into point coordinates.
    const std::string path = ::testing::TempDir() + "/ckpt_v1_quarantine";
    {
        std::ofstream out(path);
        out << "ftckpt|v=1|method=q|seed=77|space=3/6|trial=2\n"
            << "clock|sim=0x0p+0\n"
            << "rng|1|2|3|4|spare=0|sparev=0x0p+0\n"
            << "stats|0|0|0|0|0\n"
            << "q|12;0;3;\n"
            << "end|n=5\n";
    }
    auto loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->quarantine.size(), 1u);
    EXPECT_EQ(loaded->quarantine[0].idx, (std::vector<int64_t>{12, 0, 3}));
    std::remove(path.c_str());
}

} // namespace
} // namespace ft
