/**
 * @file
 * Tests for the fault-tolerant measurement layer: deterministic fault
 * injection, retry/deadline/quarantine policy in ResilientEvaluator,
 * deadline-degraded exploration runs, checkpoint/resume determinism,
 * fault counters flowing through the TuningService, and corrupt-file
 * recovery in TuningCache.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "explore/checkpoint.h"
#include "explore/tuner.h"
#include "ops/ops.h"
#include "serve/service.h"
#include "support/fault_injector.h"
#include "support/rng.h"

namespace ft {
namespace {

Tensor
faultGemm(int64_t n = 256)
{
    Tensor a = placeholder("A", {n, n});
    Tensor b = placeholder("B", {n, n});
    return ops::gemm(a, b);
}

/** Shared fixture: a GEMM schedule space on V100. */
class FaultTest : public ::testing::Test
{
  protected:
    FaultTest()
        : out_(faultGemm()),
          target_(Target::forGpu(v100())),
          space_(buildSpace(out_.op(), target_))
    {}

    std::vector<Point> randomPoints(int n, uint64_t seed)
    {
        Rng rng(seed);
        std::vector<Point> points;
        for (int i = 0; i < n; ++i)
            points.push_back(space_.randomPoint(rng));
        return points;
    }

    Tensor out_;
    Target target_;
    ScheduleSpace space_;
};

TEST(FaultInjector, ModeAssignmentIsDeterministic)
{
    FaultProfile profile;
    profile.transient = 0.2;
    profile.permanent = 0.1;
    profile.timeout = 0.1;
    profile.outlier = 0.1;
    profile.seed = 42;
    FaultInjector a(profile), b(profile);

    int faulted = 0, differ_under_new_seed = 0;
    FaultProfile reseeded = profile;
    reseeded.seed = 43;
    FaultInjector c(reseeded);
    for (int i = 0; i < 200; ++i) {
        std::string key = "point-" + std::to_string(i);
        EXPECT_EQ(a.pointMode(key), b.pointMode(key));
        if (a.pointMode(key) != FaultKind::None)
            ++faulted;
        if (a.pointMode(key) != c.pointMode(key))
            ++differ_under_new_seed;
    }
    // Half the points carry a fault in expectation; the seed matters.
    EXPECT_GT(faulted, 40);
    EXPECT_LT(faulted, 160);
    EXPECT_GT(differ_under_new_seed, 0);

    FaultProfile off;
    FaultInjector none(off);
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(none.pointMode("anything"), FaultKind::None);
}

TEST(FaultInjector, ParseProfileSpec)
{
    auto p = parseFaultProfile(
        "transient=0.1,permanent=0.05,timeout=0.02,outlier=0.1,"
        "flaky=2,hang=5.5,scale=100,seed=7");
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->transient, 0.1);
    EXPECT_DOUBLE_EQ(p->permanent, 0.05);
    EXPECT_DOUBLE_EQ(p->timeout, 0.02);
    EXPECT_DOUBLE_EQ(p->outlier, 0.1);
    EXPECT_EQ(p->transientFailures, 2);
    EXPECT_DOUBLE_EQ(p->hangSeconds, 5.5);
    EXPECT_DOUBLE_EQ(p->outlierScale, 100.0);
    EXPECT_EQ(p->seed, 7u);
    EXPECT_TRUE(p->enabled());

    EXPECT_FALSE(parseFaultProfile("bogus=1").has_value());
    EXPECT_FALSE(parseFaultProfile("transient=nope").has_value());
    // Probabilities must stay a distribution.
    EXPECT_FALSE(parseFaultProfile("transient=0.9,permanent=0.9"));
    EXPECT_FALSE(parseFaultProfile("transient=-0.1"));
}

TEST_F(FaultTest, NoInjectorIsBitIdenticalToBatchEvaluator)
{
    auto points = randomPoints(30, 17);

    Evaluator plain(out_.op(), space_, target_);
    BatchEvaluator batch(plain, nullptr, /*parallelism=*/4);
    std::vector<double> expect = batch.evaluate(points);

    Evaluator wrapped(out_.op(), space_, target_);
    ResilientEvaluator resilient(wrapped, nullptr, /*parallelism=*/4);
    EXPECT_FALSE(resilient.faultsActive());
    std::vector<double> got = resilient.evaluate(points);

    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], expect[i]);
    EXPECT_DOUBLE_EQ(wrapped.simulatedSeconds(), plain.simulatedSeconds());
    ASSERT_EQ(wrapped.history().size(), plain.history().size());
    for (size_t i = 0; i < plain.history().size(); ++i) {
        EXPECT_EQ(wrapped.history()[i].point.key(),
                  plain.history()[i].point.key());
        EXPECT_DOUBLE_EQ(wrapped.history()[i].gflops,
                         plain.history()[i].gflops);
    }
    EXPECT_EQ(resilient.stats().failures, 0u);
    EXPECT_EQ(resilient.quarantine().size(), 0u);
}

TEST_F(FaultTest, TransientFailureRecoveredByRetry)
{
    auto points = randomPoints(20, 23);

    // Clean reference values.
    Evaluator clean(out_.op(), space_, target_);
    std::vector<double> expect;
    for (const Point &p : points)
        expect.push_back(clean.evaluate(p));

    FaultProfile profile;
    profile.transient = 1.0; // every point fails once, then recovers
    FaultInjector injector(profile);
    ResilienceOptions options;
    options.injector = &injector;
    options.maxRetries = 2;

    Evaluator eval(out_.op(), space_, target_);
    ResilientEvaluator resilient(eval, nullptr, 1, options);
    std::vector<double> got = resilient.evaluate(points);

    // Retries recover the true value for every point...
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_DOUBLE_EQ(got[i], expect[i]);
    // ...at a real cost: failures and retries counted, clock inflated by
    // the extra attempts and backoff waits.
    EXPECT_GT(resilient.stats().failures, 0u);
    EXPECT_GT(resilient.stats().retries, 0u);
    EXPECT_EQ(resilient.stats().quarantined, 0u);
    EXPECT_EQ(resilient.quarantine().size(), 0u);
    EXPECT_GT(eval.simulatedSeconds(), clean.simulatedSeconds());
}

TEST_F(FaultTest, PermanentFailureIsQuarantined)
{
    auto points = randomPoints(12, 29);

    FaultProfile profile;
    profile.permanent = 1.0;
    FaultInjector injector(profile);
    ResilienceOptions options;
    options.injector = &injector;
    options.maxRetries = 1;

    Evaluator eval(out_.op(), space_, target_);
    ResilientEvaluator resilient(eval, nullptr, 1, options);
    std::vector<double> got = resilient.evaluate(points);

    for (double v : got)
        EXPECT_DOUBLE_EQ(v, kInvalidGflops);
    const size_t fresh = eval.history().size();
    EXPECT_EQ(resilient.quarantine().size(), fresh);
    EXPECT_EQ(resilient.stats().quarantined, fresh);
    for (const Point &p : points)
        EXPECT_TRUE(resilient.quarantined(p));

    // Quarantined points are never measured again: the evaluator cache
    // serves them and the counters stand still.
    const uint64_t measurements = resilient.stats().measurements;
    resilient.evaluate(points);
    EXPECT_EQ(resilient.stats().measurements, measurements);
    EXPECT_EQ(eval.history().size(), fresh);
}

TEST_F(FaultTest, TimeoutChargedToSimClockAndCapped)
{
    Point p = randomPoints(1, 31)[0];

    FaultProfile profile;
    profile.timeout = 1.0;
    profile.hangSeconds = 50.0;
    FaultInjector injector(profile);
    ResilienceOptions options;
    options.injector = &injector;
    options.maxRetries = 0;
    options.trialDeadlineSeconds = 2.0;

    Evaluator eval(out_.op(), space_, target_);
    ResilientEvaluator resilient(eval, nullptr, 1, options);
    double v = resilient.evaluate(p);

    // The hang is killed at the per-trial deadline, not after the full
    // 50 simulated seconds, and reports an invalid measurement.
    EXPECT_DOUBLE_EQ(v, kInvalidGflops);
    EXPECT_DOUBLE_EQ(eval.simulatedSeconds(), 2.0);
    EXPECT_EQ(resilient.stats().timeouts, 1u);
    EXPECT_TRUE(resilient.quarantined(p));
}

TEST_F(FaultTest, OutlierRejectedByRepeatedMeasureMedian)
{
    Point p = randomPoints(1, 37)[0];
    Evaluator clean(out_.op(), space_, target_);
    const double truth = clean.evaluate(p);

    FaultProfile profile;
    profile.outlier = 1.0;
    profile.outlierScale = 10.0;
    FaultInjector injector(profile);

    // A single measurement swallows the corrupted reading...
    ResilienceOptions single;
    single.injector = &injector;
    single.repeats = 1;
    Evaluator eval1(out_.op(), space_, target_);
    ResilientEvaluator r1(eval1, nullptr, 1, single);
    EXPECT_DOUBLE_EQ(r1.evaluate(p), truth * 10.0);

    // ...while three repeats reject it by lower median.
    ResilienceOptions repeated = single;
    repeated.repeats = 3;
    Evaluator eval3(out_.op(), space_, target_);
    ResilientEvaluator r3(eval3, nullptr, 1, repeated);
    EXPECT_DOUBLE_EQ(r3.evaluate(p), truth);
}

TEST_F(FaultTest, DeadlineDegradesRunWithMonotoneBestSoFar)
{
    ExploreOptions options;
    options.trials = 60;
    options.seed = 0xdead11;
    options.deadlineSimSeconds = 8.0; // well under 60 measured seconds

    Evaluator eval(out_.op(), space_, target_);
    ExploreResult result = exploreRandom(eval, options);

    EXPECT_TRUE(result.deadlineExceeded);
    EXPECT_LT(result.trialsUsed, 60);
    EXPECT_GT(result.trialsUsed, 0);
    // The partial report still carries a meaningful, monotone curve whose
    // final value is the reported best.
    ASSERT_FALSE(result.curve.empty());
    for (size_t i = 1; i < result.curve.size(); ++i) {
        EXPECT_LE(result.curve[i - 1].second, result.curve[i].second);
        EXPECT_LE(result.curve[i - 1].first, result.curve[i].first);
    }
    EXPECT_DOUBLE_EQ(result.curve.back().second, result.bestGflops);
    EXPECT_DOUBLE_EQ(result.bestGflops, eval.best());
}

/** Kill-then-resume must replay to the uninterrupted run, bit for bit. */
TEST_F(FaultTest, CheckpointResumeIsBitIdenticalForQMethod)
{
    const std::string path = "/tmp/flextensor_ckpt_test.ftc";
    std::remove(path.c_str());

    ExploreOptions options;
    options.trials = 12;
    options.warmupPoints = 8;
    options.startingPoints = 2;
    options.seed = 0xc0ffee;

    // Reference: one uninterrupted run.
    Evaluator ref(out_.op(), space_, target_);
    ExploreResult uninterrupted = exploreQMethod(ref, options);

    // "Crashed" run: executes only half the trials, snapshotting every 3.
    ExploreOptions partial = options;
    partial.trials = 6;
    partial.checkpointPath = path;
    partial.checkpointEveryTrials = 3;
    Evaluator killed(out_.op(), space_, target_);
    ExploreResult first_half = exploreQMethod(killed, partial);
    EXPECT_FALSE(first_half.resumed);

    // Resume from the snapshot and finish the full trial budget.
    ExploreOptions resume = partial;
    resume.trials = options.trials;
    Evaluator second(out_.op(), space_, target_);
    ExploreResult resumed = exploreQMethod(second, resume);
    EXPECT_TRUE(resumed.resumed);

    EXPECT_EQ(resumed.bestPoint.key(), uninterrupted.bestPoint.key());
    EXPECT_DOUBLE_EQ(resumed.bestGflops, uninterrupted.bestGflops);
    EXPECT_DOUBLE_EQ(resumed.simSeconds, uninterrupted.simSeconds);
    EXPECT_EQ(resumed.trialsUsed, uninterrupted.trialsUsed);
    ASSERT_EQ(second.history().size(), ref.history().size());
    for (size_t i = 0; i < ref.history().size(); ++i) {
        EXPECT_EQ(second.history()[i].point.key(),
                  ref.history()[i].point.key());
        EXPECT_DOUBLE_EQ(second.history()[i].gflops,
                         ref.history()[i].gflops);
    }
    ASSERT_EQ(second.curve().size(), ref.curve().size());
    for (size_t i = 0; i < ref.curve().size(); ++i) {
        EXPECT_DOUBLE_EQ(second.curve()[i].first, ref.curve()[i].first);
        EXPECT_DOUBLE_EQ(second.curve()[i].second, ref.curve()[i].second);
    }
    std::remove(path.c_str());
}

TEST_F(FaultTest, CheckpointResumeIsBitIdenticalUnderFaults)
{
    const std::string path = "/tmp/flextensor_ckpt_faulty.ftc";
    std::remove(path.c_str());

    FaultProfile profile;
    profile.transient = 0.3;
    profile.timeout = 0.1;
    profile.seed = 99;
    FaultInjector injector(profile);

    ExploreOptions options;
    options.trials = 10;
    options.warmupPoints = 6;
    options.startingPoints = 2;
    options.seed = 0xfa17;
    options.resilience.injector = &injector;

    Evaluator ref(out_.op(), space_, target_);
    ExploreResult uninterrupted = explorePMethod(ref, options);

    ExploreOptions partial = options;
    partial.trials = 5;
    partial.checkpointPath = path;
    partial.checkpointEveryTrials = 5;
    Evaluator killed(out_.op(), space_, target_);
    explorePMethod(killed, partial);

    ExploreOptions resume = partial;
    resume.trials = options.trials;
    Evaluator second(out_.op(), space_, target_);
    ExploreResult resumed = explorePMethod(second, resume);
    EXPECT_TRUE(resumed.resumed);

    EXPECT_EQ(resumed.bestPoint.key(), uninterrupted.bestPoint.key());
    EXPECT_DOUBLE_EQ(resumed.bestGflops, uninterrupted.bestGflops);
    EXPECT_DOUBLE_EQ(resumed.simSeconds, uninterrupted.simSeconds);
    EXPECT_EQ(resumed.failures, uninterrupted.failures);
    EXPECT_EQ(resumed.timeouts, uninterrupted.timeouts);
    EXPECT_EQ(resumed.quarantined, uninterrupted.quarantined);
    ASSERT_EQ(second.history().size(), ref.history().size());
    for (size_t i = 0; i < ref.history().size(); ++i) {
        EXPECT_EQ(second.history()[i].point.key(),
                  ref.history()[i].point.key());
        EXPECT_DOUBLE_EQ(second.history()[i].gflops,
                         ref.history()[i].gflops);
    }
    std::remove(path.c_str());
}

TEST_F(FaultTest, CorruptCheckpointIsIgnoredAndRunStartsFresh)
{
    const std::string path = "/tmp/flextensor_ckpt_corrupt.ftc";
    {
        std::ofstream out(path);
        out << "ftckpt|v=1|method=random|seed=1|space=9/9|trial=4\n"
            << "this line is garbage\n"; // and no end record
    }
    EXPECT_FALSE(loadCheckpoint(path).has_value());

    ExploreOptions options;
    options.trials = 8;
    options.seed = 0xabc;
    Evaluator plain(out_.op(), space_, target_);
    ExploreResult expect = exploreRandom(plain, options);

    options.checkpointPath = path;
    Evaluator eval(out_.op(), space_, target_);
    ExploreResult got = exploreRandom(eval, options);
    EXPECT_FALSE(got.resumed);
    EXPECT_EQ(got.bestPoint.key(), expect.bestPoint.key());
    EXPECT_DOUBLE_EQ(got.bestGflops, expect.bestGflops);
    std::remove(path.c_str());
}

TEST(FaultService, DeadlineAndFaultCountersFlowThroughService)
{
    FaultProfile profile;
    profile.transient = 0.5;
    profile.seed = 5;
    FaultInjector injector(profile);

    TuningService service({/*evalThreads=*/2, /*requestThreads=*/2});
    TuneOptions options;
    options.method = Method::PMethod;
    options.explore.trials = 8;
    options.explore.startingPoints = 2;
    options.explore.deadlineSimSeconds = 10.0;
    options.explore.resilience.injector = &injector;

    TuneReport report =
        service.tune(faultGemm(), Target::forGpu(v100()), options);
    EXPECT_TRUE(report.degraded);
    EXPECT_GT(report.failures, 0u);

    ServiceStats stats = service.stats();
    EXPECT_GE(stats.degradedReports, 1u);
    EXPECT_EQ(stats.failures, report.failures);
    EXPECT_EQ(stats.retries, report.retries);
    EXPECT_GT(report.gflops, 0.0); // best-so-far, not an error sentinel
}

TEST(FaultCache, TruncatedCacheFileKeepsOnlyIntactRecords)
{
    const std::string path = "/tmp/flextensor_cache_truncated.txt";
    TuningCache cache;
    TuningRecord record;
    record.key = "gemm:256,256,r:256,@V100";
    record.gflops = 123.0;
    cache.put(record);
    record.key = "gemm:512,512,r:512,@V100";
    cache.put(record);
    ASSERT_TRUE(cache.save(path));

    // Chop off the final line, as a crash mid-write would. The cache is
    // journalled one frame per record, so this tears the last frame only.
    std::ifstream in(path);
    std::stringstream kept;
    std::string line, prev;
    bool first = true;
    while (std::getline(in, line)) {
        if (!first)
            kept << prev << "\n";
        prev = line;
        first = false;
    }
    in.close();
    std::ofstream(path) << kept.str();

    TuningCache loaded;
    EXPECT_TRUE(loaded.load(path)); // torn frame dropped, intact prefix kept
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup("gemm:256,256,r:256,@V100").has_value());
    EXPECT_FALSE(loaded.lookup("gemm:512,512,r:512,@V100").has_value());
    std::remove(path.c_str());
}

} // namespace
} // namespace ft
