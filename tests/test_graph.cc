/**
 * @file
 * Graph-level scheduling tests.
 *
 * The load-bearing suites are differential: a fused subgraph's outputs
 * must equal the layer-by-layer unfused reference BIT-FOR-BIT (compared
 * with exact float equality, not a tolerance). Both executors share the
 * per-element kernels, so what these tests pin down is the fused path's
 * streaming machinery — ring indexing, retention windows, and the
 * producer/consumer interleave — including on anchors computed by
 * sampled schedule points (reusing the test_fuzz_schedule.cc sampling
 * machinery), on multi-consumer tensors, and on ephemeral
 * intermediates that must never materialize.
 *
 * The partitioner is property-fuzzed over seeded random DAGs: every
 * compute op in exactly one group, quotient acyclic, ephemeral tensors
 * never escape, and the working-set constraint holds; a violation
 * prints the offending DAG spec for replay.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dnn/models.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "graph/fused_exec.h"
#include "graph/lower.h"
#include "graph/partition.h"
#include "graph/schedule_dag.h"
#include "obs/trace.h"
#include "schedule/generator.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace graph {
namespace {

int
fuzzSamples()
{
    if (const char *env = std::getenv("FLEXTENSOR_FUZZ_SAMPLES")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 200;
}

int
pushInput(ComputeDag &dag, const std::string &name,
          std::vector<int64_t> shape)
{
    DagNode n;
    n.kind = NodeKind::Input;
    n.name = name;
    n.shape = std::move(shape);
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

int
pushConv(ComputeDag &dag, const std::string &name, int data, int64_t k,
         int64_t kernel, int64_t stride, int64_t padding)
{
    // Copy: pushInput below may reallocate dag.nodes.
    const auto in = dag.nodes[data].shape;
    int w = pushInput(dag, name + ".w", {k, in[1], kernel, kernel});
    DagNode n;
    n.kind = NodeKind::Conv;
    n.name = name;
    n.inputs = {data, w};
    n.outChannels = k;
    n.kernel = kernel;
    n.stride = stride;
    n.padding = padding;
    n.shape = {in[0], k, (in[2] + 2 * padding - kernel) / stride + 1,
               (in[3] + 2 * padding - kernel) / stride + 1};
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

int
pushEltwise(ComputeDag &dag, NodeKind kind, const std::string &name,
            std::vector<int> inputs)
{
    DagNode n;
    n.kind = kind;
    n.name = name;
    n.inputs = std::move(inputs);
    n.shape = dag.nodes[n.inputs[0]].shape;
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

int
pushPool(ComputeDag &dag, const std::string &name, int data, int64_t kernel,
         int64_t stride)
{
    const auto &in = dag.nodes[data].shape;
    DagNode n;
    n.kind = NodeKind::Pool;
    n.name = name;
    n.inputs = {data};
    n.kernel = kernel;
    n.stride = stride;
    n.shape = {in[0], in[1], (in[2] - kernel) / stride + 1,
               (in[3] - kernel) / stride + 1};
    dag.nodes.push_back(std::move(n));
    return static_cast<int>(dag.nodes.size()) - 1;
}

/** conv(3x3, pad 1) -> bias -> relu -> pool(2x2) chain. */
ComputeDag
chainDag()
{
    ComputeDag dag;
    dag.name = "chain";
    int data = pushInput(dag, "data", {1, 4, 10, 10});
    int conv = pushConv(dag, "conv", data, 6, 3, 1, 1);
    int bvec = pushInput(dag, "conv.b", {6});
    int bias = pushEltwise(dag, NodeKind::Bias, "conv.bias", {conv, bvec});
    int relu = pushEltwise(dag, NodeKind::Relu, "conv.relu", {bias});
    pushPool(dag, "pool", relu, 2, 2);
    std::string why;
    EXPECT_TRUE(dag.validate(&why)) << why;
    return dag;
}

/**
 * Multi-consumer DAG: relu feeds both a pool and a residual add, and
 * the add also re-reads the raw conv output —
 *
 *             conv -> bias -> relu -> pool
 *               \______________add___/
 * (add = conv + relu; pool and add are the two graph outputs).
 */
ComputeDag
multiConsumerDag()
{
    ComputeDag dag;
    dag.name = "multi";
    int data = pushInput(dag, "data", {1, 3, 8, 8});
    int conv = pushConv(dag, "conv", data, 5, 3, 1, 1);
    int bvec = pushInput(dag, "conv.b", {5});
    int bias = pushEltwise(dag, NodeKind::Bias, "conv.bias", {conv, bvec});
    int relu = pushEltwise(dag, NodeKind::Relu, "conv.relu", {bias});
    pushPool(dag, "pool", relu, 2, 2);
    pushEltwise(dag, NodeKind::Add, "residual", {conv, relu});
    std::string why;
    EXPECT_TRUE(dag.validate(&why)) << why;
    return dag;
}

/** Assign every compute node of `dag` to one fusion group. */
Partition
wholeDagGroup(const ComputeDag &dag, const Target &target)
{
    std::vector<int> assignment(dag.nodes.size(), -1);
    for (size_t i = 0; i < dag.nodes.size(); ++i)
        if (dag.nodes[i].kind != NodeKind::Input)
            assignment[i] = 0;
    return finalizePartition(dag, assignment, target);
}

/** Exact comparison of every non-ephemeral output, fused vs unfused. */
void
expectBitIdentical(const ComputeDag &dag, const Partition &partition,
                   const DagBuffers &fused, const DagBuffers &unfused)
{
    for (const FusionGroup &group : partition.groups)
        for (size_t m = 0; m < group.members.size(); ++m) {
            const int id = group.members[m];
            if (group.ephemeral[m]) {
                EXPECT_EQ(fused.count(id), 0u)
                    << "ephemeral " << dag.nodes[id].name
                    << " materialized a full buffer";
                continue;
            }
            ASSERT_EQ(fused.count(id), 1u) << dag.nodes[id].name;
            const DagTensor &a = fused.at(id);
            const DagTensor &b = unfused.at(id);
            ASSERT_EQ(a.numel(), b.numel());
            for (int64_t i = 0; i < a.numel(); ++i)
                ASSERT_EQ(a.data[i], b.data[i])
                    << dag.nodes[id].name << " element " << i
                    << " diverged (fused streaming bug)";
        }
}

TEST(GraphDagTest, NetworkDagsValidateAndFingerprintsAreStable)
{
    for (const Network &net : {yoloV1(), overFeat()}) {
        ComputeDag dag = dagFromNetwork(net);
        std::string why;
        EXPECT_TRUE(dag.validate(&why)) << why;
        EXPECT_EQ(dag.fingerprint(), dagFromNetwork(net).fingerprint());
        // Every layer maps to at least one compute node.
        EXPECT_GE(dag.numComputeNodes(),
                  static_cast<int>(net.layers.size()));
    }
    EXPECT_NE(dagFromNetwork(yoloV1()).fingerprint(),
              dagFromNetwork(overFeat()).fingerprint());
}

TEST(GraphDagTest, EpiloguePartitionMatchesLegacyGrouping)
{
    const Network net = yoloV1();
    const ComputeDag dag = dagFromNetwork(net);
    const Target target = Target::forGpu(v100());
    Partition epi = epiloguePartition(dag, target);
    // One group per legacy fused op (conv+epilogue, pool, dense+epilogue).
    EXPECT_EQ(epi.groups.size(), partitionAndFuse(net).size());
    std::string why;
    EXPECT_TRUE(checkPartition(dag, epi, target, &why)) << why;
}

TEST(GraphDifferentialTest, FusedChainMatchesUnfusedBitForBit)
{
    const ComputeDag dag = chainDag();
    const Target target = Target::forGpu(v100());
    const Partition partition = wholeDagGroup(dag, target);
    std::string why;
    ASSERT_TRUE(checkPartition(dag, partition, target, &why)) << why;
    // conv, bias, relu die inside the group; only the pool output is real.
    EXPECT_EQ(partition.ephemeralBytes,
              dag.nodes[2].bytes() * 3); // three (1,6,10,10) tensors

    Rng rng(0x9a001);
    DagBuffers inputs = makeDagInputs(dag, rng);
    DagBuffers fused = inputs, unfused = inputs;
    FusedRunStats stats;
    runFusedPartition(dag, partition, target, fused, &stats);
    runDagReference(dag, unfused);
    expectBitIdentical(dag, partition, fused, unfused);

    // The executor's rings stay within the roofline's working-set
    // charge: the model bound is enforced by construction.
    EXPECT_LE(stats.scratchPeakBytes,
              partition.groups[0].cost.workingSetBytes);
    EXPECT_EQ(stats.ephemeralBytes, partition.ephemeralBytes);
}

TEST(GraphDifferentialTest, MultiConsumerEphemeralMatchesBitForBit)
{
    const ComputeDag dag = multiConsumerDag();
    const Target target = Target::forCpu(xeonE5());
    const Partition partition = wholeDagGroup(dag, target);
    std::string why;
    ASSERT_TRUE(checkPartition(dag, partition, target, &why)) << why;

    Rng rng(0x9a002);
    DagBuffers inputs = makeDagInputs(dag, rng);
    DagBuffers fused = inputs, unfused = inputs;
    runFusedPartition(dag, partition, target, fused, nullptr);
    runDagReference(dag, unfused);
    expectBitIdentical(dag, partition, fused, unfused);

    // The beam search must also produce a legal partition here, and
    // fusing can only reduce modeled traffic vs the epilogue grouping.
    Partition beam = partitionDag(dag, target);
    ASSERT_TRUE(checkPartition(dag, beam, target, &why)) << why;
    EXPECT_LE(beam.totalTrafficBytes,
              epiloguePartition(dag, target).totalTrafficBytes);
}

/**
 * The core acceptance property: on anchors computed by SAMPLED SCHEDULE
 * POINTS (different tilings, orders, and vector widths), the fused
 * streaming epilogue must match the unfused layer-by-layer reference
 * bit-for-bit. Both sides adopt the same scheduled anchor output, so
 * any divergence is the fused path's fault, not reduction reordering.
 */
TEST(GraphDifferentialTest, SampledSchedulePointsMatchBitForBit)
{
    const ComputeDag dag = chainDag();
    const int conv = 2; // node id of the conv anchor in chainDag()
    ASSERT_TRUE(dag.nodes[conv].isHeavy());

    for (int t = 0; t < 2; ++t) {
        const Target target = t == 0 ? Target::forGpu(v100())
                                     : Target::forCpu(xeonE5());
        const Partition partition = wholeDagGroup(dag, target);
        const int64_t cap = tierSpecFor(target).tier2Bytes;

        LoweredAnchor lowered = lowerAnchor(dag, conv);
        MiniGraph g(lowered.output);
        Operation anchor = anchorOp(g);
        ScheduleSpace space = buildSpace(anchor, target);

        Rng rng(0x9a003u + static_cast<uint64_t>(t));
        DagBuffers inputs = makeDagInputs(dag, rng);
        BufferMap ir = bindOperands(lowered, inputs);
        runGraphReference(g, ir); // materializes the pad helper node

        const int samples = std::max(4, fuzzSamples() / 25);
        for (int trial = 0; trial < samples; ++trial) {
            Point p = space.randomPoint(rng);
            OpConfig cfg = space.decode(p);
            Scheduled s = generate(anchor, cfg, target);

            BufferMap run = ir;
            run.erase(anchor.get());
            runScheduled(s.nest, run, 1 + trial % 3);

            DagBuffers fused = inputs, unfused = inputs;
            adoptAnchorOutput(lowered, run, conv, dag, fused);
            adoptAnchorOutput(lowered, run, conv, dag, unfused);
            for (const FusionGroup &group : partition.groups)
                runFusedGroup(dag, group, fused, cap, nullptr);
            runDagReference(dag, unfused);

            // The anchor is shared, so only downstream members differ.
            for (const FusionGroup &group : partition.groups)
                for (size_t m = 0; m < group.members.size(); ++m) {
                    const int id = group.members[m];
                    if (id == conv || group.ephemeral[m])
                        continue;
                    const DagTensor &a = fused.at(id);
                    const DagTensor &b = unfused.at(id);
                    ASSERT_EQ(a.numel(), b.numel());
                    for (int64_t i = 0; i < a.numel(); ++i)
                        ASSERT_EQ(a.data[i], b.data[i])
                            << "point " << p.key() << " node "
                            << dag.nodes[id].name << " element " << i;
                }
        }
    }
}

/** Seeded random DAG: chains with branches, pools, and residual adds. */
ComputeDag
randomDag(Rng &rng)
{
    ComputeDag dag;
    dag.name = "fuzzdag";
    const int64_t C = 1 + static_cast<int64_t>(rng.below(3));
    const int64_t H = 6 + 2 * static_cast<int64_t>(rng.below(3));
    int cur = pushInput(dag, "data", {1, C, H, H});
    std::vector<int> sameShape; // candidates for residual adds
    const int layers = 2 + static_cast<int>(rng.below(5));
    for (int l = 0; l < layers; ++l) {
        const std::string tag = "n" + std::to_string(l);
        const auto &shape = dag.nodes[cur].shape;
        switch (rng.below(5)) {
          case 0: { // conv (3x3, pad 1: shape-preserving spatially)
            cur = pushConv(dag, tag + ".conv", cur,
                           1 + static_cast<int64_t>(rng.below(4)), 3, 1, 1);
            sameShape.clear();
            break;
          }
          case 1: { // pool, when the spatial extent allows it
            if (shape[2] >= 4) {
                cur = pushPool(dag, tag + ".pool", cur, 2, 2);
                sameShape.clear();
            }
            break;
          }
          case 2: { // bias
            int b = pushInput(dag, tag + ".b", {shape[1]});
            cur = pushEltwise(dag, NodeKind::Bias, tag + ".bias",
                              {cur, b});
            break;
          }
          case 3: // relu
            cur = pushEltwise(dag, NodeKind::Relu, tag + ".relu", {cur});
            break;
          case 4: { // residual add against an earlier same-shape node
            if (!sameShape.empty()) {
                int other = sameShape[rng.index(sameShape.size())];
                cur = pushEltwise(dag, NodeKind::Add, tag + ".add",
                                  {other, cur});
            } else {
                cur = pushEltwise(dag, NodeKind::Relu, tag + ".relu",
                                  {cur});
            }
            break;
          }
        }
        sameShape.push_back(cur);
    }
    std::string why;
    EXPECT_TRUE(dag.validate(&why)) << why;
    return dag;
}

/**
 * Partitioner property fuzz: for every seeded random DAG, the beam
 * search must produce a partition satisfying ALL invariants (exactly-one
 * group, acyclic quotient, no ephemeral escape, working set within
 * capacity). checkPartition appends the DAG spec to its message, so a
 * failure here prints everything needed to replay the offending DAG.
 */
TEST(FuzzGraphPartitionTest, RandomDagsSatisfyAllPartitionInvariants)
{
    const int rounds = std::max(8, fuzzSamples() / 4);
    for (int round = 0; round < rounds; ++round) {
        Rng rng(0xda60000u + static_cast<uint64_t>(round));
        ComputeDag dag = randomDag(rng);
        const Target target = round % 2 == 0 ? Target::forGpu(v100())
                                             : Target::forCpu(xeonE5());
        std::string why;
        Partition beam = partitionDag(dag, target);
        ASSERT_TRUE(checkPartition(dag, beam, target, &why))
            << "seed " << round << ": " << why;
        // The baselines must be legal partitions of the same DAG too.
        ASSERT_TRUE(
            checkPartition(dag, epiloguePartition(dag, target), target,
                           &why))
            << "seed " << round << ": " << why;
        ASSERT_TRUE(checkPartition(dag, nonePartition(dag, target), target,
                                   &why))
            << "seed " << round << ": " << why;
        // Fusion never increases modeled DRAM traffic over unfused.
        EXPECT_LE(beam.totalTrafficBytes,
                  nonePartition(dag, target).totalTrafficBytes)
            << "seed " << round;
    }
}

/**
 * Executor fuzz: on the same seeded random DAGs, the fused streaming
 * run of the searched partition must match the unfused reference
 * bit-for-bit, with ring scratch within the modeled working set.
 */
TEST(FuzzGraphPartitionTest, RandomDagsFusedMatchesUnfusedBitForBit)
{
    const int rounds = std::max(6, fuzzSamples() / 10);
    for (int round = 0; round < rounds; ++round) {
        Rng rng(0xdb70000u + static_cast<uint64_t>(round));
        ComputeDag dag = randomDag(rng);
        const Target target = round % 2 == 0 ? Target::forGpu(v100())
                                             : Target::forCpu(xeonE5());
        Partition partition = partitionDag(dag, target);

        DagBuffers inputs = makeDagInputs(dag, rng);
        DagBuffers fused = inputs, unfused = inputs;
        FusedRunStats stats;
        runFusedPartition(dag, partition, target, fused, &stats);
        runDagReference(dag, unfused);
        expectBitIdentical(dag, partition, fused, unfused);

        int64_t maxWorkingSet = 0;
        for (const FusionGroup &g : partition.groups)
            maxWorkingSet =
                std::max(maxWorkingSet, g.cost.workingSetBytes);
        EXPECT_LE(stats.scratchPeakBytes, maxWorkingSet)
            << "seed " << round << " rings exceed the modeled working set\n"
            << dag.spec();
    }
}

TEST(GraphScheduleTest, TuneDagStitchesGroupsAndAccountsTraffic)
{
    const ComputeDag dag = chainDag();
    const Target target = Target::forGpu(v100());
    TuneOptions options;
    options.method = Method::Random;
    options.explore.trials = 4;
    options.explore.warmupPoints = 2;
    options.explore.seed = 0x6eed;

    TraceRecorder trace;
    options.explore.obs.trace = &trace;
    DagTuneReport rep = tuneDag(dag, target, options);

    EXPECT_EQ(rep.fingerprint, dag.fingerprint());
    EXPECT_EQ(rep.groups.size(), rep.partition.groups.size());
    EXPECT_GT(rep.totalSeconds, 0.0);
    EXPECT_GT(rep.ephemeralBytes, 0); // fusion found something to sink
    std::string why;
    EXPECT_TRUE(checkPartition(dag, rep.partition, target, &why)) << why;

    // Exactly one tuned anchor (the conv); its group absorbed the rest.
    int tuned = 0;
    for (const SubgraphReport &sub : rep.groups)
        tuned += sub.tuned;
    EXPECT_EQ(tuned, 1);

    // The new spans are on the timeline.
    int partitionSpans = 0, subgraphSpans = 0, graphRuns = 0;
    for (const std::string &line : trace.lines()) {
        auto ev = parseTraceLine(line);
        ASSERT_TRUE(ev.has_value()) << line;
        if (ev->name == "graph.partition" && ev->type == 'B')
            ++partitionSpans;
        if (ev->name == "graph.subgraph" && ev->type == 'B')
            ++subgraphSpans;
        if (ev->name == "graph_run" && ev->type == 'M')
            ++graphRuns;
    }
    EXPECT_EQ(graphRuns, 1);
    EXPECT_EQ(partitionSpans, 1);
    EXPECT_EQ(subgraphSpans,
              static_cast<int>(rep.partition.groups.size()));
}

} // namespace
} // namespace graph
} // namespace ft
