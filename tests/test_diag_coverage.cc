/**
 * @file
 * Diagnostic-code completeness: every FT-* code declared in
 * src/analysis/verify/diag.h must (a) be triggerable — this file
 * constructs at least one fixture per code and collects the codes the
 * verifier/certifier actually emit — and (b) be documented in the
 * README diagnostics table. The declared set is parsed out of diag.h
 * at runtime, so adding a code without a fixture here or a README row
 * fails this suite rather than silently shipping an undocumented,
 * untested diagnostic.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "analysis/static_analyzer.h"
#include "analysis/verify/certificate.h"
#include "analysis/verify/deps.h"
#include "analysis/verify/verify.h"
#include "graph/dag.h"
#include "graph/partition.h"
#include "ops/ops.h"
#include "schedule/generator.h"

namespace ft {
namespace {

using verify::DiagReport;
using verify::Severity;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** Every FT-* code literal declared in diag.h. */
std::set<std::string>
declaredCodes()
{
    const std::string text =
        readFile(std::string(FT_SOURCE_DIR) +
                 "/src/analysis/verify/diag.h");
    std::set<std::string> codes;
    std::regex pat("\"(FT-[A-Z]+-[0-9]+)\"");
    for (std::sregex_iterator it(text.begin(), text.end(), pat), end;
         it != end; ++it)
        codes.insert((*it)[1]);
    return codes;
}

void
collect(const DiagReport &report, std::set<std::string> &into)
{
    for (const auto &d : report.diags())
        into.insert(d.code);
}

SubLoop
subLoop(const IterVarNode *origin, int64_t extent, int64_t stride, int level,
    LoopAnno anno = LoopAnno::Serial)
{
    SubLoop l;
    l.name = origin->name + "." + std::to_string(level);
    l.extent = extent;
    l.anno = anno;
    l.origin = origin;
    l.stride = stride;
    l.level = level;
    return l;
}

/** Gemm anchor plus axis handles for hand-built adversarial nests. */
struct GemmRig
{
    MiniGraph g;
    Operation anchor;
    const IterVarNode *i;
    const IterVarNode *j;
    const IterVarNode *k;

    explicit GemmRig(int64_t m, int64_t n, int64_t kk)
        : g(ops::gemm(placeholder("A", {m, kk}),
                      placeholder("B", {kk, n})))
    {
        anchor = anchorOp(g);
        const auto *op = static_cast<const ComputeOp *>(anchor.get());
        i = op->axis()[0].get();
        j = op->axis()[1].get();
        k = op->reduceAxis()[0].get();
    }
};

/**
 * Trigger every declared diagnostic at least once and return the set of
 * codes observed. One fixture per family member; certificate-only
 * refutation codes (FT-DEP-006) are collected from the obligation that
 * refutes them.
 */
std::set<std::string>
triggeredCodes()
{
    std::set<std::string> seen;
    const Target cpu = Target::forCpu(xeonE5());
    const Target gpu = Target::forGpu(v100());

    // FT-RACE-001: reduce axis bound to a concurrent annotation.
    {
        GemmRig rig(4, 4, 4);
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 4, 1, 0), subLoop(rig.j, 4, 1, 0),
                      subLoop(rig.k, 4, 1, 0, LoopAnno::Parallel)};
        DiagReport r;
        verify::checkRaces(nest, r);
        collect(r, seen);
    }

    // FT-RACE-002 / FT-COV-001: aliasing spatial strides under a
    // concurrent binding (the duplicate visits also leave original
    // iterations uncovered elsewhere, reported as under-coverage).
    {
        GemmRig rig(4, 4, 4);
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 2, 1, 0, LoopAnno::Parallel),
                      subLoop(rig.i, 2, 1, 1), subLoop(rig.j, 4, 1, 0),
                      subLoop(rig.k, 4, 1, 0)};
        DiagReport r;
        verify::checkRaces(nest, r);
        collect(r, seen);
    }

    // FT-RACE-003: the same alias with every sub-loop serial is an
    // advisory finding (duplicated work, not a race).
    {
        GemmRig rig(4, 4, 4);
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 2, 1, 0), subLoop(rig.i, 2, 1, 1),
                      subLoop(rig.j, 4, 1, 0), subLoop(rig.k, 4, 1, 0)};
        DiagReport r;
        verify::checkRaces(nest, r);
        collect(r, seen);
    }

    // FT-OOB-001: A[i - 1] with no guard reads A[-1] at i = 0.
    {
        Tensor a = placeholder("A", {8});
        Tensor out = compute("shifted", {8},
                             [&](const std::vector<Expr> &iv) {
                                 return a({sub(iv[0], intImm(1))});
                             });
        Operation anchor = out.op();
        OpConfig cfg = defaultConfig(anchor, cpu);
        Scheduled s = generateCpu(anchor, cfg, xeonE5());
        DiagReport r;
        verify::checkAccessBounds(s.nest, r);
        collect(r, seen);
    }

    // FT-OOB-002: unguarded overshoot past the axis extent.
    {
        GemmRig rig(6, 4, 4);
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 2, 4, 0), subLoop(rig.i, 4, 1, 1),
                      subLoop(rig.j, 4, 1, 0), subLoop(rig.k, 4, 1, 0)};
        DiagReport r;
        verify::checkAccessBounds(nest, r);
        collect(r, seen);
    }

    // FT-RES-*: limits are proven on extracted features, so drive
    // checkResources with features past every device budget.
    {
        GemmRig rig(4, 4, 4);
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 4, 1, 0), subLoop(rig.j, 4, 1, 0),
                      subLoop(rig.k, 4, 1, 0)};

        NestFeatures f;
        f.threadsPerBlock = v100().maxThreadsPerBlock + 1;
        f.sharedBytesPerBlock = v100().sharedMemPerBlock + 1;
        f.regsPerThread = v100().regsPerThreadMax + 1;
        f.vthreads = 65;
        DiagReport r;
        verify::checkResources(nest, f, gpu, nullptr, r);
        collect(r, seen);

        NestFeatures ff;
        ff.pe = vu9p().maxPe() + 1;
        ff.bufferBytes = vu9p().bramBytes + 1;
        OpConfig fcfg;
        fcfg.fpgaPartition = 3;
        fcfg.fpgaBufferRows = 4; // 3 does not divide 4
        DiagReport rf;
        verify::checkResources(nest, ff, Target::forFpga(vu9p()), &fcfg,
                               rf);
        collect(rf, seen);

        NestFeatures fc;
        fc.vecLen = 1;
        OpConfig ccfg;
        ccfg.vectorizeLen = xeonE5().vecLanes * 2;
        DiagReport rc;
        verify::checkResources(nest, fc, cpu, &ccfg, rc);
        collect(rc, seen);
    }

    // FT-DEP-001..005: the exact dependence engine on illegal nests.
    {
        GemmRig rig(4, 4, 4); // concurrent carried reduce
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 4, 1, 0, LoopAnno::BlockX),
                      subLoop(rig.j, 4, 1, 0, LoopAnno::ThreadX),
                      subLoop(rig.k, 4, 1, 0, LoopAnno::ThreadX)};
        DiagReport r;
        verify::checkDependences(nest, r);
        collect(r, seen);
    }
    {
        GemmRig rig(4, 4, 4); // duplicated reduce terms
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 4, 1, 0), subLoop(rig.j, 4, 1, 0),
                      subLoop(rig.k, 2, 1, 0), subLoop(rig.k, 2, 1, 1),
                      subLoop(rig.k, 2, 1, 2)};
        DiagReport r;
        verify::checkDependences(nest, r);
        collect(r, seen);
    }
    {
        GemmRig rig(6, 4, 4); // domain hole
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 2, 4, 0), subLoop(rig.i, 2, 1, 1),
                      subLoop(rig.j, 4, 1, 0), subLoop(rig.k, 4, 1, 0)};
        DiagReport r;
        verify::checkDependences(nest, r);
        collect(r, seen);
    }
    {
        GemmRig rig(4, 4, 4); // duplicated spatial visits
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 2, 1, 0), subLoop(rig.i, 2, 1, 1),
                      subLoop(rig.j, 4, 1, 0), subLoop(rig.k, 4, 1, 0)};
        DiagReport r;
        verify::checkDependences(nest, r);
        collect(r, seen);
    }
    {
        GemmRig rig(4, 4, 5); // inexact guard (dupes below the clip)
        LoopNest nest;
        nest.op = rig.anchor;
        nest.loops = {subLoop(rig.i, 4, 1, 0), subLoop(rig.j, 4, 1, 0),
                      subLoop(rig.k, 3, 2, 0), subLoop(rig.k, 3, 1, 1)};
        nest.guardedAxes = {rig.k};
        DiagReport r;
        verify::checkDependences(nest, r);
        collect(r, seen);
    }

    // FT-DEP-006: an illegal fusion partition refutes certification;
    // the code lives on the refuted obligation.
    {
        graph::ComputeDag dag;
        dag.name = "coverage";
        graph::DagNode data;
        data.kind = graph::NodeKind::Input;
        data.name = "data";
        data.shape = {1, 3, 8, 8};
        dag.nodes.push_back(data);
        graph::DagNode relu;
        relu.kind = graph::NodeKind::Relu;
        relu.name = "relu";
        relu.inputs = {0};
        relu.shape = {1, 3, 8, 8};
        dag.nodes.push_back(relu);
        std::string why;
        EXPECT_TRUE(dag.validate(&why)) << why;

        graph::Partition p = graph::nonePartition(dag, gpu);
        EXPECT_FALSE(p.groups.empty());
        p.groups.front().members.clear(); // break assignment coverage
        p.groups.front().ephemeral.clear();
        verify::PartitionCertificate cert =
            verify::certifyPartition(dag, p, gpu);
        EXPECT_EQ(cert.verdict, verify::Verdict::Refuted);
        for (const auto &o : cert.obligations)
            if (o.verdict == verify::Verdict::Refuted)
                seen.insert(o.code);
    }

    return seen;
}

TEST(DiagCoverageTest, EveryDeclaredCodeHasATriggeringFixture)
{
    const std::set<std::string> declared = declaredCodes();
    ASSERT_GE(declared.size(), 20u); // 3 RACE + 2 OOB + 1 COV + 8 RES + 6 DEP
    const std::set<std::string> seen = triggeredCodes();
    for (const std::string &code : declared)
        EXPECT_TRUE(seen.count(code))
            << code << " is declared in diag.h but no fixture in "
            << "test_diag_coverage.cc triggers it";
    // And the converse: fixtures only emit declared codes.
    for (const std::string &code : seen)
        EXPECT_TRUE(declared.count(code))
            << code << " was emitted but is not declared in diag.h";
}

TEST(DiagCoverageTest, EveryDeclaredCodeIsDocumentedInReadme)
{
    const std::set<std::string> declared = declaredCodes();
    const std::string readme =
        readFile(std::string(FT_SOURCE_DIR) + "/README.md");
    // The diagnostics table rows are `| FT-XXX-nnn | ... |`.
    std::set<std::string> documented;
    std::regex row("\\|\\s*`?(FT-[A-Z]+-[0-9]+)`?\\s*\\|");
    for (std::sregex_iterator it(readme.begin(), readme.end(), row), end;
         it != end; ++it)
        documented.insert((*it)[1]);
    for (const std::string &code : declared)
        EXPECT_TRUE(documented.count(code))
            << code
            << " is declared in diag.h but missing from the README "
            << "diagnostics table";
}

} // namespace
} // namespace ft
