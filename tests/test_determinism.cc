/**
 * @file
 * Cross-run determinism of the exploration methods: for a fixed seed,
 * every explorer — with or without fault injection — must reproduce the
 * exact same run, down to the trace timeline. Each run is folded into a
 * 64-bit FNV-1a digest of (best point, best GFLOPS, simulated clock,
 * trials used, trace event count); the digest must match a second run
 * in-process AND the value recorded in this file, so a change that
 * silently perturbs exploration (an extra RNG draw, a reordered commit,
 * an observer that is not pure) fails loudly.
 *
 * GFLOPS and the sim clock are digested as hexfloats: bit-exact, no
 * rounding slop to hide a perturbation.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "explore/tuner.h"
#include "family/tune_family.h"
#include "ml/costmodel.h"
#include "graph/schedule_dag.h"
#include "obs/trace.h"
#include "ops/ops.h"
#include "space/builder.h"
#include "support/fault_injector.h"

namespace ft {
namespace {

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

struct DeterminismCase
{
    const char *name;
    Method method;
    bool faults;
    uint64_t expectedDigest; ///< recorded from the run that authored it
    /** Digest of the exploration outcome alone (no trace event count).
     *  These values were recorded BEFORE the hot-path overhaul (integer
     *  point keys, batched Q-network inference, decode reuse) and must
     *  never change without a bit-identity justification: they prove the
     *  optimized paths visit the exact same points in the exact same
     *  order as the original code. The full digest additionally pins the
     *  trace timeline, which legitimately shrank when per-start
     *  `q_forward` points collapsed into one `q_forward_batch` span per
     *  step. */
    uint64_t expectedExploreDigest;
};

struct RunDigests
{
    uint64_t full;    ///< outcome + trace event count
    uint64_t explore; ///< outcome only
};

/** One complete exploration run, folded into digests. */
RunDigests
runDigest(Method method, bool faults)
{
    Tensor a = placeholder("A", {256, 256});
    Tensor b = placeholder("B", {256, 256});
    Tensor out = ops::gemm(a, b);
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    Evaluator eval(out.op(), space, target);

    ExploreOptions options;
    options.trials = 16;
    options.warmupPoints = 8;
    options.seed = 0xd5eed;

    FaultProfile profile;
    profile.transient = 0.15;
    profile.timeout = 0.05;
    profile.outlier = 0.10;
    profile.seed = 99;
    FaultInjector injector(profile);
    if (faults)
        options.resilience.injector = &injector;

    TraceRecorder trace;
    options.obs.trace = &trace;

    ExploreResult r;
    switch (method) {
      case Method::QMethod: r = exploreQMethod(eval, options); break;
      case Method::PMethod: r = explorePMethod(eval, options); break;
      case Method::Random: r = exploreRandom(eval, options); break;
      case Method::AutoTvm: r = exploreAutoTvm(eval, options); break;
    }

    std::ostringstream explore;
    explore << r.bestPoint.key() << '|' << std::hexfloat << r.bestGflops
            << '|' << r.simSeconds << '|' << std::dec << r.trialsUsed;
    std::ostringstream full;
    full << explore.str() << '|' << trace.eventCount();
    return {fnv1a(full.str()), fnv1a(explore.str())};
}

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase>
{};

TEST_P(DeterminismTest, FixedSeedReproducesRecordedDigest)
{
    const DeterminismCase &dc = GetParam();
    const RunDigests first = runDigest(dc.method, dc.faults);
    const RunDigests second = runDigest(dc.method, dc.faults);
    EXPECT_EQ(first.full, second.full)
        << "two same-seed runs diverged in-process";
    EXPECT_EQ(first.explore, dc.expectedExploreDigest)
        << dc.name << ": the exploration OUTCOME diverged from the "
        << "pre-optimization recording — the hot path is no longer "
        << "bit-identical (actual digest " << first.explore << "ULL)";
    EXPECT_EQ(first.full, dc.expectedDigest)
        << dc.name << ": exploration no longer reproduces the recorded "
        << "run (actual digest " << first.full << "ULL)";
}

constexpr DeterminismCase kDeterminismCases[] = {
    {"q", Method::QMethod, false, 12714931047985466100ULL,
     10249001808851198244ULL},
    {"q_faults", Method::QMethod, true, 18141620042741797031ULL,
     1083223271488592432ULL},
    {"p", Method::PMethod, false, 3119958773756146598ULL,
     3818915005806554347ULL},
    {"p_faults", Method::PMethod, true, 2262845705397639640ULL,
     4357111430187026791ULL},
    {"random", Method::Random, false, 13643892568673622403ULL,
     11376718906808054337ULL},
    {"random_faults", Method::Random, true, 12086598853644045418ULL,
     12347238173167869721ULL},
    {"autotvm", Method::AutoTvm, false, 9998006427364595515ULL,
     8047012551667023695ULL},
    {"autotvm_faults", Method::AutoTvm, true, 4451211975251665872ULL,
     2184174857944121938ULL},
};

std::string
determinismName(const ::testing::TestParamInfo<DeterminismCase> &info)
{
    return info.param.name;
}

// Named "Determinism" so the sanitizer CI job can select these tests
// with `ctest -R '^(Fuzz|Determinism)'`.
INSTANTIATE_TEST_SUITE_P(Determinism, DeterminismTest,
                         ::testing::ValuesIn(kDeterminismCases),
                         determinismName);

/**
 * Shape-family runs are pinned the same way: the digest folds the
 * serialized dispatch table (bucket bounds, hexfloat GFLOPS, config
 * lines) with the trial total and the hexfloat simulated clock, so any
 * perturbation of the per-bucket searches, the cascade seeding order,
 * or the table serialization fails against the recorded value.
 */
uint64_t
familyRunDigest()
{
    ShapeVar m;
    m.name = "m";
    m.lo = 1;
    m.hi = 16;
    ShapeFamily family = gemmOverM(64, 64, m);

    FamilyTuneOptions options;
    options.method = Method::QMethod;
    options.explore.trials = 12;
    options.explore.warmupPoints = 6;
    options.explore.seed = 0xfa5eed;
    options.samplesPerBucket = 2;
    FamilyTuneReport report =
        tuneFamily(family, Target::forGpu(v100()), options);

    std::ostringstream os;
    os << report.table.serialize() << '|' << report.totalTrials << '|'
       << std::hexfloat << report.simSeconds;
    return fnv1a(os.str());
}

// Suite name starts with "Determinism" so the sanitizer CI selection
// regex picks this test up too.
TEST(DeterminismFamilyTest, FixedSeedFamilyRunReproducesRecordedDigest)
{
    const uint64_t first = familyRunDigest();
    const uint64_t second = familyRunDigest();
    EXPECT_EQ(first, second)
        << "two same-seed family runs diverged in-process";
    EXPECT_EQ(first, 9800590346717069058ULL)
        << "family tuning no longer reproduces the recorded run "
        << "(actual digest " << first << "ULL)";
}

/**
 * Graph-level tuning is pinned the same way: the digest folds the DAG
 * fingerprint, the chosen partition (group membership and names), the
 * hexfloat stitched totals, the traffic accounting, and the trace event
 * count, so a perturbation of the beam search, the roofline scoring,
 * or the per-anchor explorer runs fails against the recorded value.
 */
uint64_t
graphRunDigest()
{
    graph::ComputeDag dag;
    dag.name = "chain";
    auto push = [&](graph::DagNode n) {
        dag.nodes.push_back(std::move(n));
        return static_cast<int>(dag.nodes.size()) - 1;
    };
    graph::DagNode data;
    data.kind = graph::NodeKind::Input;
    data.name = "data";
    data.shape = {1, 4, 10, 10};
    int d = push(data);
    graph::DagNode w;
    w.kind = graph::NodeKind::Input;
    w.name = "conv.w";
    w.shape = {6, 4, 3, 3};
    int wi = push(w);
    graph::DagNode conv;
    conv.kind = graph::NodeKind::Conv;
    conv.name = "conv";
    conv.inputs = {d, wi};
    conv.outChannels = 6;
    conv.kernel = 3;
    conv.stride = 1;
    conv.padding = 1;
    conv.shape = {1, 6, 10, 10};
    int c = push(conv);
    graph::DagNode bvec;
    bvec.kind = graph::NodeKind::Input;
    bvec.name = "conv.b";
    bvec.shape = {6};
    int bv = push(bvec);
    graph::DagNode bias;
    bias.kind = graph::NodeKind::Bias;
    bias.name = "conv.bias";
    bias.inputs = {c, bv};
    bias.shape = conv.shape;
    int b = push(bias);
    graph::DagNode relu;
    relu.kind = graph::NodeKind::Relu;
    relu.name = "conv.relu";
    relu.inputs = {b};
    relu.shape = conv.shape;
    int r = push(relu);
    graph::DagNode pool;
    pool.kind = graph::NodeKind::Pool;
    pool.name = "pool";
    pool.inputs = {r};
    pool.kernel = 2;
    pool.stride = 2;
    pool.shape = {1, 6, 5, 5};
    push(pool);

    TuneOptions options;
    options.method = Method::QMethod;
    options.explore.trials = 12;
    options.explore.warmupPoints = 6;
    options.explore.seed = 0x96aced;
    TraceRecorder trace;
    options.explore.obs.trace = &trace;
    graph::DagTuneReport report =
        graph::tuneDag(dag, Target::forGpu(v100()), options);

    std::ostringstream os;
    os << report.fingerprint << '|' << report.partition.groups.size();
    for (const graph::SubgraphReport &sub : report.groups) {
        os << '|' << sub.name << ':';
        for (int m : sub.members)
            os << m << ',';
        os << sub.tuned;
    }
    os << '|' << std::hexfloat << report.totalSeconds << '|'
       << report.simExploreSeconds << '|' << std::dec
       << report.trafficBytes << '|' << report.ephemeralBytes << '|'
       << trace.eventCount();
    return fnv1a(os.str());
}

// Suite name starts with "Determinism" so the sanitizer CI selection
// regex picks this test up too.
TEST(DeterminismGraphTest, FixedSeedGraphRunReproducesRecordedDigest)
{
    const uint64_t first = graphRunDigest();
    const uint64_t second = graphRunDigest();
    EXPECT_EQ(first, second)
        << "two same-seed graph runs diverged in-process";
    EXPECT_EQ(first, 9943629917423740432ULL)
        << "graph tuning no longer reproduces the recorded run "
        << "(actual digest " << first << "ULL)";
}

/**
 * The cost-model-assisted path is pinned separately from the eight
 * model-off cases above (which prove that merely COMPILING the model in
 * changes nothing): a model is pretrained with synchronous refits (the
 * deterministic mode — the refit seed derives from the trial count),
 * then a second run warm-starts from its ranking and prunes every
 * step's candidates. Both the training run and the assisted run fold
 * into one digest, so a perturbation anywhere — feature extraction,
 * rank-loss training, snapshot swap, warm-start ordering, prune
 * tie-breaks — fails against the recorded value.
 */
uint64_t
prunedRunDigest()
{
    Tensor a = placeholder("A", {256, 256});
    Tensor b = placeholder("B", {256, 256});
    Tensor out = ops::gemm(a, b);
    Target target = Target::forGpu(v100());

    CostModelOptions model_options;
    model_options.syncRefit = true;
    model_options.refitEvery = 32;
    CostModel model(model_options);

    ExploreOptions options;
    options.trials = 16;
    options.warmupPoints = 8;
    options.seed = 0xd5eed;
    options.costModel = &model;

    ScheduleSpace space1 = buildSpace(out.op(), target);
    Evaluator eval1(out.op(), space1, target);
    ExploreResult train = exploreQMethod(eval1, options);

    options.prunerKeep = 0.5;
    TraceRecorder trace;
    options.obs.trace = &trace;
    ScheduleSpace space2 = buildSpace(out.op(), target);
    Evaluator eval2(out.op(), space2, target);
    ExploreResult assisted = exploreQMethod(eval2, options);

    std::ostringstream os;
    os << train.bestPoint.key() << '|' << std::hexfloat
       << train.bestGflops << '|' << std::dec << model.refits() << '|'
       << model.numTrials() << '|' << assisted.bestPoint.key() << '|'
       << std::hexfloat << assisted.bestGflops << '|'
       << assisted.simSeconds << '|' << std::dec << assisted.trialsUsed
       << '|' << trace.eventCount();
    return fnv1a(os.str());
}

// Suite name starts with "Determinism" so the sanitizer CI selection
// regex picks this test up too.
TEST(DeterminismCostModelTest, FixedSeedPrunedRunReproducesRecordedDigest)
{
    const uint64_t first = prunedRunDigest();
    const uint64_t second = prunedRunDigest();
    EXPECT_EQ(first, second)
        << "two same-seed pruned runs diverged in-process";
    EXPECT_EQ(first, 2985445411779289973ULL)
        << "the cost-model-assisted (warm-start + pruned) path no "
        << "longer reproduces the recorded run (actual digest " << first
        << "ULL)";
}

} // namespace
} // namespace ft
