/**
 * @file
 * Cross-run determinism of the exploration methods: for a fixed seed,
 * every explorer — with or without fault injection — must reproduce the
 * exact same run, down to the trace timeline. Each run is folded into a
 * 64-bit FNV-1a digest of (best point, best GFLOPS, simulated clock,
 * trials used, trace event count); the digest must match a second run
 * in-process AND the value recorded in this file, so a change that
 * silently perturbs exploration (an extra RNG draw, a reordered commit,
 * an observer that is not pure) fails loudly.
 *
 * GFLOPS and the sim clock are digested as hexfloats: bit-exact, no
 * rounding slop to hide a perturbation.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "explore/tuner.h"
#include "obs/trace.h"
#include "ops/ops.h"
#include "space/builder.h"
#include "support/fault_injector.h"

namespace ft {
namespace {

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

struct DeterminismCase
{
    const char *name;
    Method method;
    bool faults;
    uint64_t expectedDigest; ///< recorded from the run that authored it
};

/** One complete exploration run, folded into a digest. */
uint64_t
runDigest(Method method, bool faults)
{
    Tensor a = placeholder("A", {256, 256});
    Tensor b = placeholder("B", {256, 256});
    Tensor out = ops::gemm(a, b);
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    Evaluator eval(out.op(), space, target);

    ExploreOptions options;
    options.trials = 16;
    options.warmupPoints = 8;
    options.seed = 0xd5eed;

    FaultProfile profile;
    profile.transient = 0.15;
    profile.timeout = 0.05;
    profile.outlier = 0.10;
    profile.seed = 99;
    FaultInjector injector(profile);
    if (faults)
        options.resilience.injector = &injector;

    TraceRecorder trace;
    options.obs.trace = &trace;

    ExploreResult r;
    switch (method) {
      case Method::QMethod: r = exploreQMethod(eval, options); break;
      case Method::PMethod: r = explorePMethod(eval, options); break;
      case Method::Random: r = exploreRandom(eval, options); break;
      case Method::AutoTvm: r = exploreAutoTvm(eval, options); break;
    }

    std::ostringstream oss;
    oss << r.bestPoint.key() << '|' << std::hexfloat << r.bestGflops
        << '|' << r.simSeconds << '|' << std::dec << r.trialsUsed << '|'
        << trace.eventCount();
    return fnv1a(oss.str());
}

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase>
{};

TEST_P(DeterminismTest, FixedSeedReproducesRecordedDigest)
{
    const DeterminismCase &dc = GetParam();
    const uint64_t first = runDigest(dc.method, dc.faults);
    const uint64_t second = runDigest(dc.method, dc.faults);
    EXPECT_EQ(first, second) << "two same-seed runs diverged in-process";
    EXPECT_EQ(first, dc.expectedDigest)
        << dc.name << ": exploration no longer reproduces the recorded "
        << "run (actual digest " << first << "ULL)";
}

constexpr DeterminismCase kDeterminismCases[] = {
    {"q", Method::QMethod, false, 13338141935272421852ULL},
    {"q_faults", Method::QMethod, true, 347663719112211092ULL},
    {"p", Method::PMethod, false, 3119958773756146598ULL},
    {"p_faults", Method::PMethod, true, 2262845705397639640ULL},
    {"random", Method::Random, false, 13643892568673622403ULL},
    {"random_faults", Method::Random, true, 12086598853644045418ULL},
    {"autotvm", Method::AutoTvm, false, 9998006427364595515ULL},
    {"autotvm_faults", Method::AutoTvm, true, 4451211975251665872ULL},
};

std::string
determinismName(const ::testing::TestParamInfo<DeterminismCase> &info)
{
    return info.param.name;
}

// Named "Determinism" so the sanitizer CI job can select these tests
// with `ctest -R '^(Fuzz|Determinism)'`.
INSTANTIATE_TEST_SUITE_P(Determinism, DeterminismTest,
                         ::testing::ValuesIn(kDeterminismCases),
                         determinismName);

} // namespace
} // namespace ft
