/**
 * @file
 * Adversarial tests for the static schedule verifier.
 *
 * The corpus is built by mutating *accepted* lowered nests into broken
 * ones — a reduce loop bound to a parallel annotation, a stride edited
 * into an aliasing mixed-radix map, an inner extent widened past the
 * data, a sub-loop dropped from an axis. The legacy NestFeatures
 * heuristics accept every one of these (they only look at device
 * limits); each test asserts the verifier pins the exact diagnostic
 * code, and that code generation refuses the nest.
 *
 * The flip side is proven too: verifier-clean schedules (including
 * guard-heavy inlined padding) execute through the interpreter and
 * match the reference output.
 */
#include <gtest/gtest.h>

#include "analysis/static_analyzer.h"
#include "analysis/verify/verify.h"
#include "codegen/codegen.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "explore/evaluator.h"
#include "ir/inline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_report.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "sim/library_model.h"
#include "sim/perf_model.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

using verify::DiagReport;
using verify::Severity;

/** A small GEMM whose CPU splits below divide the extents exactly. */
Tensor
smallGemm()
{
    Tensor a = placeholder("A", {6, 18});
    Tensor b = placeholder("B", {18, 8});
    return ops::gemm(a, b);
}

/** Lower smallGemm() for the CPU with fixed, exact splits. */
Scheduled
lowerSmallGemm(Operation &anchor_out)
{
    Tensor c = smallGemm();
    anchor_out = c.op();
    OpConfig cfg = defaultConfig(anchor_out, Target::forCpu(xeonE5()));
    cfg.spatialSplits = {{3, 1, 2}, {2, 2, 2}};
    cfg.reduceSplits = {{3, 6}};
    return generateCpu(anchor_out, cfg, xeonE5());
}

/** Index of the sub-loop with the given origin and level, or -1. */
int
findLoop(const LoopNest &nest, const IterVarNode *origin, int level)
{
    for (size_t i = 0; i < nest.loops.size(); ++i) {
        if (nest.loops[i].origin == origin &&
            nest.loops[i].level == level)
            return static_cast<int>(i);
    }
    return -1;
}

bool
hasCode(const DiagReport &report, const char *code, Severity severity)
{
    for (const auto &d : report.diags()) {
        if (d.code == code && d.severity == severity)
            return true;
    }
    return false;
}

TEST(VerifyRace, ReduceLoopBoundToParallelIsARace)
{
    Operation anchor;
    Scheduled s = lowerSmallGemm(anchor);
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    int idx = findLoop(s.nest, op->reduceAxis()[0].get(), 0);
    ASSERT_GE(idx, 0);
    ASSERT_GT(s.nest.loops[idx].extent, 1);
    s.nest.loops[idx].anno = LoopAnno::Parallel;

    // The legacy heuristics accept this nest: no device limit is hit.
    EXPECT_TRUE(s.features.valid);
    EXPECT_TRUE(modelPerf(s.features, Target::forCpu(xeonE5())).valid);

    DiagReport report =
        verify::verifySchedule(s, Target::forCpu(xeonE5()));
    EXPECT_TRUE(hasCode(report, verify::kRaceReduceParallel,
                        Severity::Error));
    EXPECT_THROW(emitC(s.nest, "race"), verify::VerifyError);
}

TEST(VerifyRace, AliasingStridesUnderParallelAreARace)
{
    Operation anchor;
    Scheduled s = lowerSmallGemm(anchor);
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    // Axis i is split {3, 1, 2} with strides {2, 2, 1}; rewriting the
    // outer (Parallel) stride to 1 makes iterations {outer=1, inner=0}
    // and {outer=0, inner=1} write the same output row.
    int idx = findLoop(s.nest, op->axis()[0].get(), 0);
    ASSERT_GE(idx, 0);
    ASSERT_EQ(s.nest.loops[idx].anno, LoopAnno::Parallel);
    s.nest.loops[idx].stride = 1;

    EXPECT_TRUE(s.features.valid);
    EXPECT_TRUE(modelPerf(s.features, Target::forCpu(xeonE5())).valid);

    DiagReport report =
        verify::verifySchedule(s, Target::forCpu(xeonE5()));
    EXPECT_TRUE(hasCode(report, verify::kRaceStrideAlias,
                        Severity::Error));
    EXPECT_THROW(emitC(s.nest, "alias"), verify::VerifyError);
}

TEST(VerifyBounds, WidenedInnerExtentOverflowsTheBuffer)
{
    Operation anchor;
    Scheduled s = lowerSmallGemm(anchor);
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    // Axis i realizes [0, 5]; widening the innermost factor from 2 to 4
    // pushes the reconstructed index to 7.
    int idx = findLoop(s.nest, op->axis()[0].get(), 2);
    ASSERT_GE(idx, 0);
    ASSERT_EQ(s.nest.loops[idx].extent, 2);
    s.nest.loops[idx].extent = 4;

    EXPECT_TRUE(s.features.valid);
    EXPECT_TRUE(modelPerf(s.features, Target::forCpu(xeonE5())).valid);

    DiagReport report =
        verify::verifySchedule(s, Target::forCpu(xeonE5()));
    EXPECT_TRUE(hasCode(report, verify::kOobOverflow, Severity::Error));
    EXPECT_THROW(emitC(s.nest, "oob"), verify::VerifyError);
}

TEST(VerifyBounds, NegativeIndexUnderflowsTheBuffer)
{
    // A hand-written operator reading A[i - 1] with no guard: element 0
    // reads A[-1]. No split or annotation is at fault — the access
    // itself is out of bounds, and only the bounds prover sees it.
    Tensor a = placeholder("A", {8});
    Tensor out = compute("shifted", {8},
                         [&](const std::vector<Expr> &iv) {
                             return a({sub(iv[0], intImm(1))});
                         });
    Operation anchor = out.op();
    OpConfig cfg = defaultConfig(anchor, Target::forCpu(xeonE5()));
    Scheduled s = generateCpu(anchor, cfg, xeonE5());

    EXPECT_TRUE(s.features.valid);
    EXPECT_TRUE(modelPerf(s.features, Target::forCpu(xeonE5())).valid);

    DiagReport report =
        verify::verifySchedule(s, Target::forCpu(xeonE5()));
    EXPECT_TRUE(hasCode(report, verify::kOobUnderflow, Severity::Error));
    EXPECT_THROW(emitC(s.nest, "underflow"), verify::VerifyError);
}

TEST(VerifyCoverage, DroppedSubLoopLeavesIterationsUnwritten)
{
    Operation anchor;
    Scheduled s = lowerSmallGemm(anchor);
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    int idx = findLoop(s.nest, op->axis()[0].get(), 0);
    ASSERT_GE(idx, 0);
    ASSERT_GT(s.nest.loops[idx].extent, 1);
    s.nest.loops.erase(s.nest.loops.begin() + idx);

    EXPECT_TRUE(s.features.valid);
    EXPECT_TRUE(modelPerf(s.features, Target::forCpu(xeonE5())).valid);

    DiagReport report =
        verify::verifySchedule(s, Target::forCpu(xeonE5()));
    EXPECT_TRUE(hasCode(report, verify::kCovUnderCoverage,
                        Severity::Error));
    EXPECT_THROW(emitC(s.nest, "coverage"), verify::VerifyError);
}

TEST(VerifyResources, SharedMemoryLintAgreesWithLegacyHeuristics)
{
    Tensor a = placeholder("A", {512, 512});
    Tensor b = placeholder("B", {512, 512});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{1, 1, 1, 512}, {1, 1, 1, 512}};
    cfg.reduceSplits = {{1, 1, 512}};
    Scheduled s = generateGpu(c.op(), cfg, v100());

    // This nest the legacy heuristics DO reject; the verifier must
    // reproduce the verdict and the message bit-for-bit.
    ASSERT_FALSE(s.features.valid);
    DiagReport report = verify::verifySchedule(s, Target::forGpu(v100()));
    ASSERT_TRUE(report.hasError());
    EXPECT_EQ(report.firstError()->code, verify::kResSharedMem);
    EXPECT_EQ(report.firstError()->message, s.features.invalidReason);
    EXPECT_THROW(
        emitVerified(s, Target::forGpu(v100()), "smem"),
        verify::VerifyError);
}

TEST(VerifyClean, InlinedPaddedConvIsCleanAndExecutes)
{
    Tensor input = placeholder("I", {1, 3, 8, 8});
    Tensor weight = placeholder("W", {4, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    Tensor out = ops::conv2d(input, weight, p);
    Tensor fused = inlineGraph(out);
    MiniGraph g(fused);
    Operation anchor = anchorOp(g);
    Target target = Target::forCpu(xeonE5());
    OpConfig cfg = expertConfig(anchor, target);
    Scheduled s = generate(anchor, cfg, target);

    // The padded read indices span [-1, 8] raw; the guard-aware prover
    // must keep them in bounds instead of flagging the padding.
    DiagReport report = verify::verifySchedule(s, target, &cfg);
    EXPECT_FALSE(report.hasError()) << report.toJson();

    Rng rng(31);
    BufferMap reference = makeRandomInputs(g, rng);
    runGraphReference(g, reference);
    const Buffer &gold = reference.at(anchor.get());
    BufferMap buffers = reference;
    buffers.erase(anchor.get());
    runScheduled(s.nest, buffers, 2);
    const Buffer &got = buffers.at(anchor.get());
    ASSERT_EQ(got.numel(), gold.numel());
    for (int64_t i = 0; i < gold.numel(); ++i)
        ASSERT_NEAR(got[i], gold[i], 1e-3) << "element " << i;
}

TEST(VerifyClean, SampledCleanPointsExecuteAgainstReference)
{
    Tensor c = smallGemm();
    MiniGraph g(c);
    Operation anchor = anchorOp(g);
    Target target = Target::forCpu(xeonE5());
    ScheduleSpace space = buildSpace(anchor, target);

    Rng rng(47);
    BufferMap reference = makeRandomInputs(g, rng);
    runGraphReference(g, reference);
    const Buffer &gold = reference.at(anchor.get());

    int executed = 0;
    for (int trial = 0; trial < 24 && executed < 6; ++trial) {
        OpConfig cfg = space.decode(space.randomPoint(rng));
        Scheduled s = generate(anchor, cfg, target);
        DiagReport report = verify::verifySchedule(s, target, &cfg);
        if (report.hasError())
            continue;
        ++executed;
        BufferMap buffers = reference;
        buffers.erase(anchor.get());
        runScheduled(s.nest, buffers, 1 + trial % 3);
        const Buffer &got = buffers.at(anchor.get());
        ASSERT_EQ(got.numel(), gold.numel());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3) << cfg.toString();
    }
    EXPECT_GT(executed, 0);
}

TEST(VerifyObs, ProfiledEvaluationEmitsSpansAndRejectCodes)
{
    // Wall-profiled evaluation must emit an eval.verify span per new
    // point, bump the verify.* counters, and tag each rejection with
    // its diagnostic code; trace-report folds those into a per-code
    // table that matches the metrics.
    Tensor a = placeholder("A", {512, 512});
    Tensor b = placeholder("B", {512, 512});
    Tensor c = ops::gemm(a, b);
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(c.op(), target);
    Evaluator eval(c.op(), space, target);

    TraceRecorder rec;
    MetricsRegistry reg;
    ObsContext obs;
    obs.trace = &rec;
    obs.metrics = &reg;
    obs.wallProfile = true;
    eval.setObs(obs);

    Rng rng(91);
    for (int i = 0; i < 200; ++i) {
        Point p = space.randomPoint(rng);
        if (eval.known(p))
            continue;
        eval.evaluate(p);
        if (reg.snapshot().counter("verify.rejected") > 0 && i >= 8)
            break;
    }
    auto snap = reg.snapshot();
    uint64_t checked = snap.counter("verify.checked");
    uint64_t rejected = snap.counter("verify.rejected");
    ASSERT_GT(checked, 0u);
    ASSERT_GT(rejected, 0u) << "no sampled point hit a device limit";
    EXPECT_GT(snap.counter("eval.verify.ns"), 0u);

    std::vector<ParsedTraceEvent> events;
    for (const auto &line : rec.lines()) {
        auto e = parseTraceLine(line);
        ASSERT_TRUE(e.has_value()) << line;
        events.push_back(*e);
    }
    TraceReport report = foldTrace(events);
    bool saw_verify_phase = false;
    for (const auto &ph : report.phases) {
        if (ph.name == "eval.verify") {
            saw_verify_phase = true;
            EXPECT_EQ(ph.spans, checked);
            EXPECT_GT(ph.wallNs, 0u);
        }
    }
    EXPECT_TRUE(saw_verify_phase);

    uint64_t folded = 0;
    for (const auto &[code, count] : report.verifyRejects) {
        // Generator-produced nests can only trip resource limits.
        EXPECT_EQ(code.rfind("FT-RES-", 0), 0u) << code;
        EXPECT_EQ(snap.counter("verify.reject." + code), count);
        folded += count;
    }
    EXPECT_EQ(folded, rejected);
    EXPECT_NE(renderTraceReport(report).find("verifier rejections"),
              std::string::npos);
}

TEST(VerifyDiag, ReportsSerializeToJson)
{
    Operation anchor;
    Scheduled s = lowerSmallGemm(anchor);
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    int idx = findLoop(s.nest, op->reduceAxis()[0].get(), 0);
    ASSERT_GE(idx, 0);
    s.nest.loops[idx].anno = LoopAnno::Parallel;

    DiagReport report =
        verify::verifySchedule(s, Target::forCpu(xeonE5()));
    std::string json = report.toJson();
    EXPECT_NE(json.find("\"code\":\"FT-RACE-001\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos)
        << json;
    // The JSON array is well-bracketed and one object per finding.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
}

TEST(VerifyDiag, VerifyErrorCarriesTheDiagnostic)
{
    Operation anchor;
    Scheduled s = lowerSmallGemm(anchor);
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    int idx = findLoop(s.nest, op->reduceAxis()[0].get(), 0);
    ASSERT_GE(idx, 0);
    s.nest.loops[idx].anno = LoopAnno::Parallel;
    try {
        emitC(s.nest, "carrier");
        FAIL() << "emitC accepted a racy nest";
    } catch (const verify::VerifyError &e) {
        EXPECT_EQ(e.diag.code, verify::kRaceReduceParallel);
        EXPECT_NE(std::string(e.what()).find("FT-RACE-001"),
                  std::string::npos);
    }
}

} // namespace
} // namespace ft
