/**
 * @file
 * Tests for schedule lowering and—crucially—the semantic-preservation
 * property: any schedule drawn from the space computes the same tensor as
 * the reference executor, for every operator family and target skeleton.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/static_analyzer.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "ops/ops.h"
#include "schedule/encoder.h"
#include "schedule/generator.h"
#include "space/builder.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(SplitLoop, StridesReconstructIndices)
{
    IterVar i = makeIterVar("i", 24);
    auto subs = splitLoop(i, {2, 3, 4}, "s");
    ASSERT_EQ(subs.size(), 3u);
    EXPECT_EQ(subs[0].stride, 12);
    EXPECT_EQ(subs[1].stride, 4);
    EXPECT_EQ(subs[2].stride, 1);
    EXPECT_EQ(subs[0].level, 0);
    EXPECT_EQ(subs[2].level, 2);
    // Every original index is produced exactly once.
    std::vector<int> seen(24, 0);
    for (int64_t a = 0; a < 2; ++a)
        for (int64_t b = 0; b < 3; ++b)
            for (int64_t c = 0; c < 4; ++c)
                seen[a * 12 + b * 4 + c]++;
    for (int v : seen)
        EXPECT_EQ(v, 1);
}

TEST(LinearCoefficient, ReadsAffineMultipliers)
{
    IterVar i = makeIterVar("i", 8);
    IterVar j = makeIterVar("j", 8);
    Expr e = add(mul(intImm(3), varRef(i)), varRef(j));
    EXPECT_EQ(linearCoefficient(e, i.get()), 3);
    EXPECT_EQ(linearCoefficient(e, j.get()), 1);
    IterVar k = makeIterVar("k", 8);
    EXPECT_EQ(linearCoefficient(e, k.get()), 0);
}

TEST(DefaultConfig, ValidForEveryTarget)
{
    Tensor a = placeholder("A", {32, 16});
    Tensor b = placeholder("B", {16, 24});
    Tensor c = ops::gemm(a, b);
    for (const Target &t : {Target::forGpu(v100()), Target::forCpu(xeonE5()),
                            Target::forFpga(vu9p())}) {
        OpConfig cfg = defaultConfig(c.op(), t);
        Scheduled s = generate(c.op(), cfg, t);
        EXPECT_EQ(s.nest.op.get(), c.op().get());
        EXPECT_FALSE(s.nest.loops.empty());
    }
}

TEST(GeneratorGpu, AnnotationsFollowSkeleton)
{
    Tensor a = placeholder("A", {64, 64});
    Tensor b = placeholder("B", {64, 64});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{4, 2, 8, 1}, {2, 2, 16, 1}};
    cfg.reduceSplits = {{8, 4, 2}};
    Scheduled s = generateGpu(c.op(), cfg, v100());
    EXPECT_EQ(s.features.grid, 8);            // 4*2 blocks
    EXPECT_EQ(s.features.threadsPerBlock, 128); // 8*16
    EXPECT_EQ(s.features.vthreads, 4);        // 2*2
    EXPECT_TRUE(s.features.valid);
    EXPECT_EQ(s.nest.extentOf(LoopAnno::BlockX), 8);
    EXPECT_EQ(s.nest.extentOf(LoopAnno::ThreadX), 128);
}

TEST(GeneratorGpu, RejectsOversizedThreadBlocks)
{
    Tensor a = placeholder("A", {64, 64});
    Tensor b = placeholder("B", {64, 64});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{1, 1, 64, 1}, {1, 1, 64, 1}}; // 4096 threads
    cfg.reduceSplits = {{64, 1, 1}};
    Scheduled s = generateGpu(c.op(), cfg, v100());
    EXPECT_FALSE(s.features.valid);
    EXPECT_NE(s.features.invalidReason.find("threads"), std::string::npos);
}

TEST(GeneratorGpu, SharedMemoryGrowsWithTile)
{
    Tensor a = placeholder("A", {256, 256});
    Tensor b = placeholder("B", {256, 256});
    Tensor c = ops::gemm(a, b);
    OpConfig small;
    small.spatialSplits = {{32, 1, 8, 1}, {32, 1, 8, 1}};
    small.reduceSplits = {{32, 8, 1}};
    OpConfig big = small;
    big.spatialSplits = {{8, 1, 32, 1}, {8, 1, 32, 1}};
    int64_t smem_small =
        generateGpu(c.op(), small, v100()).features.sharedBytesPerBlock;
    int64_t smem_big =
        generateGpu(c.op(), big, v100()).features.sharedBytesPerBlock;
    EXPECT_GT(smem_big, smem_small);
}

TEST(GeneratorCpu, ParallelExtentFollowsFuseCount)
{
    Tensor a = placeholder("A", {32, 32});
    Tensor b = placeholder("B", {32, 32});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{4, 4, 2}, {8, 2, 2}};
    cfg.reduceSplits = {{16, 2}};
    cfg.fuseCount = 1;
    EXPECT_EQ(generateCpu(c.op(), cfg, xeonE5()).features.parallelExtent, 4);
    cfg.fuseCount = 2;
    EXPECT_EQ(generateCpu(c.op(), cfg, xeonE5()).features.parallelExtent,
              32);
}

TEST(GeneratorCpu, VectorLengthCappedByInnermostFactor)
{
    Tensor a = placeholder("A", {32, 24});
    Tensor b = placeholder("B", {24, 36});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{8, 4, 1}, {2, 3, 6}};
    cfg.reduceSplits = {{12, 2}};
    cfg.vectorizeLen = 8;
    Scheduled s = generateCpu(c.op(), cfg, xeonE5());
    // Innermost spatial factor 6 -> largest pow2 divisor 2.
    EXPECT_EQ(s.features.vecLen, 2);
}

TEST(GeneratorFpga, PeBoundedByDsps)
{
    Tensor a = placeholder("A", {2048, 64});
    Tensor b = placeholder("B", {64, 2048});
    Tensor c = ops::gemm(a, b);
    OpConfig cfg;
    cfg.spatialSplits = {{1, 2048}, {1, 2048}}; // 4M PEs: impossible
    cfg.reduceSplits = {{64, 1}};
    Scheduled s = generateFpga(c.op(), cfg, vu9p());
    EXPECT_FALSE(s.features.valid);

    cfg.spatialSplits = {{64, 32}, {128, 16}}; // 512 PEs: fine
    s = generateFpga(c.op(), cfg, vu9p());
    EXPECT_TRUE(s.features.valid);
    EXPECT_EQ(s.features.pe, 512);
    // Rounds cover the spatial tiles and the streamed reduce chunks.
    EXPECT_EQ(s.features.rounds, 64 * 128 * 64);
}

TEST(Encoder, NestedVectorHasSplitsAndKnobs)
{
    OpConfig cfg;
    cfg.spatialSplits = {{4, 4, 8, 8}, {4, 4, 8, 8}};
    cfg.reduceSplits = {{8, 4, 8}};
    cfg.reorderChoice = 2;
    cfg.unrollDepth = 1;
    auto enc = encodeConfig(cfg);
    ASSERT_GE(enc.size(), 5u);
    EXPECT_EQ(enc[0], (std::vector<int64_t>{4, 4, 8, 8}));
    EXPECT_EQ(enc[2], (std::vector<int64_t>{8, 4, 8}));
    EXPECT_EQ(enc[3], (std::vector<int64_t>{2})); // reorder
}

TEST(Encoder, FeaturesFiniteAndBounded)
{
    OpConfig cfg;
    cfg.spatialSplits = {{16, 1, 2, 2}};
    cfg.reduceSplits = {{3, 1, 1}};
    for (double v : configFeatures(cfg)) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
    }
}

// ---------------------------------------------------------------------
// The central property: scheduled execution == reference execution.

/** Operators small enough to interpret quickly. */
struct PropertyCase
{
    const char *name;
    Tensor (*build)();
};

Tensor
buildSmallGemm()
{
    Tensor a = placeholder("A", {12, 18});
    Tensor b = placeholder("B", {18, 8});
    return ops::gemm(a, b);
}

Tensor
buildSmallGemv()
{
    Tensor a = placeholder("A", {24, 16});
    Tensor x = placeholder("x", {16});
    return ops::gemv(a, x);
}

Tensor
buildSmallBilinear()
{
    Tensor a = placeholder("A", {4, 6});
    Tensor w = placeholder("W", {5, 6, 4});
    Tensor c = placeholder("C", {4, 4});
    return ops::bilinear(a, w, c);
}

Tensor
buildSmallConv1d()
{
    Tensor input = placeholder("I", {2, 3, 12});
    Tensor weight = placeholder("W", {4, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    return ops::conv1d(input, weight, p);
}

Tensor
buildSmallConv2d()
{
    Tensor input = placeholder("I", {1, 4, 8, 8});
    Tensor weight = placeholder("W", {6, 4, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    return ops::conv2d(input, weight, p);
}

Tensor
buildSmallGroupConv()
{
    Tensor input = placeholder("I", {1, 4, 6, 6});
    Tensor weight = placeholder("W", {4, 2, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    p.groups = 2;
    return ops::conv2d(input, weight, p);
}

Tensor
buildSmallDepthwise()
{
    Tensor input = placeholder("I", {1, 6, 6, 6});
    Tensor weight = placeholder("W", {6, 1, 3, 3});
    return ops::depthwiseConv2d(input, weight, 1, 1);
}

Tensor
buildSmallDilated()
{
    Tensor input = placeholder("I", {1, 3, 9, 9});
    Tensor weight = placeholder("W", {4, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 2;
    p.dilation = 2;
    return ops::conv2d(input, weight, p);
}

Tensor
buildSmallT1d()
{
    Tensor input = placeholder("I", {1, 3, 6});
    Tensor weight = placeholder("W", {3, 4, 3});
    return ops::conv1dTransposed(input, weight, 2, 1);
}

Tensor
buildSmallT2d()
{
    Tensor input = placeholder("I", {1, 2, 4, 4});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    return ops::conv2dTransposed(input, weight, 2, 1);
}

Tensor
buildSmallConv3d()
{
    Tensor input = placeholder("I", {1, 2, 4, 4, 4});
    Tensor weight = placeholder("W", {3, 2, 3, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    return ops::conv3d(input, weight, p);
}

Tensor
buildSmallBcm()
{
    Tensor a = placeholder("A", {3, 12});
    Tensor w = placeholder("W", {4, 3, 4});
    return ops::blockCirculantMatmul(a, w, 4);
}

Tensor
buildSmallShift()
{
    Tensor input = placeholder("I", {1, 9, 5, 5});
    return ops::shift2d(input);
}

class SchedulePropertyTest
    : public ::testing::TestWithParam<std::tuple<PropertyCase, int>>
{};

/**
 * Draw random points from the schedule space of the given target, lower
 * them, execute, and compare against the reference bit pattern (with a
 * float tolerance — reduction order differs between schedules).
 */
void
checkSemanticPreservation(const Tensor &out, const Target &target,
                          uint64_t seed, int samples)
{
    MiniGraph g(out);
    Operation anchor = anchorOp(g);

    Rng rng(seed);
    BufferMap reference = makeRandomInputs(g, rng);
    runGraphReference(g, reference);
    const Buffer &gold = reference.at(anchor.get());

    ScheduleSpace space = buildSpace(anchor, target);
    for (int trial = 0; trial < samples; ++trial) {
        Point p = space.randomPoint(rng);
        OpConfig cfg = space.decode(p);
        Scheduled s = generate(anchor, cfg, target);
        // Functional semantics hold even for model-invalid points.
        BufferMap buffers = reference;
        buffers.erase(anchor.get());
        int threads = 1 + static_cast<int>(trial % 3);
        runScheduled(s.nest, buffers, threads);
        const Buffer &got = buffers.at(anchor.get());
        ASSERT_EQ(got.numel(), gold.numel());
        for (int64_t i = 0; i < gold.numel(); ++i) {
            ASSERT_NEAR(got[i], gold[i], 1e-3)
                << "config " << cfg.toString() << " element " << i;
        }
    }
}

TEST_P(SchedulePropertyTest, RandomSchedulesPreserveSemantics)
{
    auto [pcase, target_kind] = GetParam();
    Tensor out = pcase.build();
    Target target = target_kind == 0   ? Target::forGpu(v100())
                    : target_kind == 1 ? Target::forCpu(xeonE5())
                                       : Target::forFpga(vu9p());
    checkSemanticPreservation(out, target,
                              0x1234u + static_cast<uint64_t>(target_kind),
                              6);
}

constexpr PropertyCase kPropertyCases[] = {
    {"gemm", buildSmallGemm},       {"gemv", buildSmallGemv},
    {"bilinear", buildSmallBilinear}, {"conv1d", buildSmallConv1d},
    {"conv2d", buildSmallConv2d},   {"group", buildSmallGroupConv},
    {"depthwise", buildSmallDepthwise}, {"dilated", buildSmallDilated},
    {"t1d", buildSmallT1d},         {"t2d", buildSmallT2d},
    {"conv3d", buildSmallConv3d},   {"bcm", buildSmallBcm},
    {"shift", buildSmallShift},
};

std::string
propertyName(
    const ::testing::TestParamInfo<std::tuple<PropertyCase, int>> &info)
{
    static const char *const targets[] = {"Gpu", "Cpu", "Fpga"};
    return std::string(std::get<0>(info.param).name) +
           targets[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(AllOpsAllTargets, SchedulePropertyTest,
                         ::testing::Combine(::testing::ValuesIn(
                                                kPropertyCases),
                                            ::testing::Values(0, 1, 2)),
                         propertyName);

TEST(Interpreter, MultiThreadedMatchesSingleThreaded)
{
    Tensor out = buildSmallConv2d();
    MiniGraph g(out);
    Operation anchor = anchorOp(g);
    Rng rng(77);
    BufferMap base = makeRandomInputs(g, rng);
    runGraphReference(g, base);

    Target target = Target::forCpu(xeonE5());
    ScheduleSpace space = buildSpace(anchor, target);
    Point p = space.randomPoint(rng);
    Scheduled s = generate(anchor, space.decode(p), target);

    BufferMap one = base, four = base;
    one.erase(anchor.get());
    four.erase(anchor.get());
    runScheduled(s.nest, one, 1);
    runScheduled(s.nest, four, 4);
    const Buffer &a = one.at(anchor.get());
    const Buffer &b = four.at(anchor.get());
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_FLOAT_EQ(a[i], b[i]);
}

} // namespace
} // namespace ft
