/**
 * @file
 * Tests for constant tensors and the Winograd F(2x2,3x3) convolution
 * graph: structure, exact agreement with direct convolution, FLOP
 * reduction, and schedulability of the contraction stage.
 */
#include <gtest/gtest.h>

#include "analysis/flops.h"
#include "analysis/static_analyzer.h"
#include "exec/interpreter.h"
#include "exec/reference.h"
#include "ir/graph.h"
#include "ops/ops.h"
#include "schedule/generator.h"
#include "space/builder.h"
#include "support/rng.h"

namespace ft {
namespace {

TEST(Constant, CarriesItsData)
{
    Tensor c = constant("C", {2, 3}, {1, 2, 3, 4, 5, 6});
    EXPECT_TRUE(c.op()->isConstant());
    EXPECT_FALSE(c.op()->isPlaceholder());
    const auto *node = static_cast<const ConstantOp *>(c.op().get());
    EXPECT_EQ(node->data().size(), 6u);
    EXPECT_FLOAT_EQ(node->data()[4], 5.0f);
}

TEST(Constant, MaterializedByReferenceExecutor)
{
    Tensor c = constant("C", {3}, {2, 4, 6});
    Tensor doubled = compute("D", {3}, [&](const std::vector<Expr> &iv) {
        return c({iv[0]}) * floatImm(0.5);
    });
    MiniGraph g(doubled);
    BufferMap buffers; // no placeholder data needed
    runGraphReference(g, buffers);
    const Buffer &out = buffers.at(doubled.op().get());
    EXPECT_FLOAT_EQ(out.at({0}), 1.0f);
    EXPECT_FLOAT_EQ(out.at({2}), 3.0f);
}

TEST(Constant, NotListedAsComputeOp)
{
    Tensor c = constant("C", {2}, {1, 1});
    Tensor d = compute("D", {2}, [&](const std::vector<Expr> &iv) {
        return c({iv[0]});
    });
    MiniGraph g(d);
    EXPECT_EQ(g.numNodes(), 2);
    EXPECT_EQ(g.computeOps().size(), 1u);
    EXPECT_DOUBLE_EQ(flopsOf(c.op()), 0.0);
}

TEST(Winograd, GraphStructure)
{
    // Wide enough output channels that the contraction dominates the
    // input transform (M flops / V flops ~ K/16).
    Tensor input = placeholder("I", {1, 8, 8, 8});
    Tensor weight = placeholder("W", {32, 8, 3, 3});
    Tensor out = ops::conv2dWinograd(input, weight, 1);
    EXPECT_EQ(out.shape(), (std::vector<int64_t>{1, 32, 8, 8}));

    MiniGraph g(out);
    // Compute nodes: pad, U, V, M, out-transform.
    EXPECT_EQ(g.computeOps().size(), 5u);
    // The anchor (largest FLOPs) is the batched contraction M.
    EXPECT_EQ(anchorOp(g)->name(), "wino.M");
}

TEST(Winograd, MatchesDirectConvolutionExactly)
{
    const int64_t n = 2, c = 3, k = 4, hw = 10;
    Tensor input = placeholder("I", {n, c, hw, hw});
    Tensor weight = placeholder("W", {k, c, 3, 3});

    Rng rng(41);
    // Direct convolution result.
    ops::ConvParams p;
    p.padding = 1;
    Tensor direct = ops::conv2d(input, weight, p);
    MiniGraph dg(direct);
    BufferMap direct_buffers = makeRandomInputs(dg, rng);
    runGraphReference(dg, direct_buffers);
    const Buffer &gold = direct_buffers.at(direct.op().get());

    // Winograd result over the same placeholder data.
    Tensor wino = ops::conv2dWinograd(input, weight, 1);
    MiniGraph wg(wino);
    BufferMap wino_buffers;
    wino_buffers.emplace(input.op().get(),
                         direct_buffers.at(input.op().get()));
    wino_buffers.emplace(weight.op().get(),
                         direct_buffers.at(weight.op().get()));
    runGraphReference(wg, wino_buffers);
    const Buffer &got = wino_buffers.at(wino.op().get());

    ASSERT_EQ(got.numel(), gold.numel());
    for (int64_t i = 0; i < gold.numel(); ++i)
        ASSERT_NEAR(got[i], gold[i], 2e-3) << "element " << i;
}

TEST(Winograd, ContractionHasFewerMultipliesThanDirect)
{
    Tensor input = placeholder("I", {1, 64, 28, 28});
    Tensor weight = placeholder("W", {64, 64, 3, 3});
    ops::ConvParams p;
    p.padding = 1;
    double direct_flops = anchorFlops(MiniGraph(ops::conv2d(input,
                                                            weight, p)));
    double wino_flops =
        anchorFlops(MiniGraph(ops::conv2dWinograd(input, weight, 1)));
    // 16/tile vs 9*4/tile multiplies: ratio 36/16 = 2.25.
    EXPECT_NEAR(direct_flops / wino_flops, 2.25, 0.05);
}

TEST(Winograd, RejectsOddOutputsAndWrongKernels)
{
    Tensor input = placeholder("I", {1, 2, 7, 7}); // odd output with pad 1
    Tensor weight = placeholder("W", {2, 2, 3, 3});
    EXPECT_DEATH(ops::conv2dWinograd(input, weight, 1), "even output");
    Tensor w5 = placeholder("W5", {2, 2, 5, 5});
    Tensor in8 = placeholder("I8", {1, 2, 8, 8});
    EXPECT_DEATH(ops::conv2dWinograd(in8, w5, 1), "3x3 kernel");
}

TEST(Winograd, ContractionSchedulesPreserveSemantics)
{
    Tensor input = placeholder("I", {1, 3, 6, 6});
    Tensor weight = placeholder("W", {2, 3, 3, 3});
    Tensor out = ops::conv2dWinograd(input, weight, 1);
    MiniGraph g(out);
    Operation anchor = anchorOp(g);

    Rng rng(43);
    BufferMap buffers = makeRandomInputs(g, rng);
    runGraphReference(g, buffers);
    Buffer gold = buffers.at(anchor.get());
    buffers.erase(anchor.get());

    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(anchor, target);
    for (int trial = 0; trial < 4; ++trial) {
        Scheduled s =
            generate(anchor, space.decode(space.randomPoint(rng)), target);
        BufferMap run = buffers;
        runScheduled(s.nest, run);
        const Buffer &got = run.at(anchor.get());
        for (int64_t i = 0; i < gold.numel(); ++i)
            ASSERT_NEAR(got[i], gold[i], 1e-3);
    }
}

} // namespace
} // namespace ft
