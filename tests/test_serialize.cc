/**
 * @file
 * Tests for schedule serialization, the tuning cache, point recovery
 * (ScheduleSpace::pointOf), and cache/seed integration with the tuner.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "explore/tuner.h"
#include "ops/ops.h"
#include "schedule/serialize.h"
#include "sim/library_model.h"
#include "support/rng.h"

namespace ft {
namespace {

OpConfig
sampleConfig()
{
    OpConfig config;
    config.spatialSplits = {{4, 2, 8, 1}, {16, 1, 4, 2}};
    config.reduceSplits = {{32, 2, 4}};
    config.reorderChoice = 2;
    config.fuseCount = 2;
    config.unrollDepth = 3;
    config.vectorizeLen = 16;
    config.fpgaBufferRows = 4;
    config.fpgaPartition = 8;
    return config;
}

TEST(Serialize, ConfigRoundTrips)
{
    OpConfig config = sampleConfig();
    auto parsed = parseConfig(serializeConfig(config));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->spatialSplits, config.spatialSplits);
    EXPECT_EQ(parsed->reduceSplits, config.reduceSplits);
    EXPECT_EQ(parsed->reorderChoice, config.reorderChoice);
    EXPECT_EQ(parsed->fuseCount, config.fuseCount);
    EXPECT_EQ(parsed->unrollDepth, config.unrollDepth);
    EXPECT_EQ(parsed->vectorizeLen, config.vectorizeLen);
    EXPECT_EQ(parsed->fpgaBufferRows, config.fpgaBufferRows);
    EXPECT_EQ(parsed->fpgaPartition, config.fpgaPartition);
}

TEST(Serialize, EmptySplitsRoundTrip)
{
    OpConfig config; // no splits at all
    auto parsed = parseConfig(serializeConfig(config));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->spatialSplits.empty());
    EXPECT_TRUE(parsed->reduceSplits.empty());
}

TEST(Serialize, RejectsGarbage)
{
    EXPECT_FALSE(parseConfig("not a config").has_value());
    EXPECT_FALSE(parseConfig("v2|s=1|r=1").has_value());
    EXPECT_FALSE(parseConfig("v1|s=a,b|r=").has_value());
}

TEST(Serialize, TuningKeyDependsOnShapeAndDevice)
{
    Tensor a1 = placeholder("A", {64, 32});
    Tensor b1 = placeholder("B", {32, 16});
    Tensor a2 = placeholder("A", {64, 64});
    Tensor b2 = placeholder("B", {64, 16});
    std::string k1 = tuningKey(ops::gemm(a1, b1), "V100");
    std::string k2 = tuningKey(ops::gemm(a2, b2), "V100");
    std::string k3 = tuningKey(ops::gemm(a1, b1), "XeonE5");
    EXPECT_NE(k1, k2);
    EXPECT_NE(k1, k3);
    // Structurally identical graphs share a key.
    Tensor a4 = placeholder("A", {64, 32});
    Tensor b4 = placeholder("B", {32, 16});
    EXPECT_EQ(k1, tuningKey(ops::gemm(a4, b4), "V100"));
}

TEST(TuningCache, KeepsBestPerKey)
{
    TuningCache cache;
    cache.put({"k", sampleConfig(), 10.0});
    OpConfig better = sampleConfig();
    better.unrollDepth = 1;
    cache.put({"k", better, 20.0});
    OpConfig worse = sampleConfig();
    worse.unrollDepth = 0;
    cache.put({"k", worse, 5.0});

    auto hit = cache.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->gflops, 20.0);
    EXPECT_EQ(hit->config.unrollDepth, 1);
    EXPECT_FALSE(cache.lookup("other").has_value());
}

TEST(TuningCache, FileRoundTrip)
{
    const std::string path = "/tmp/flextensor_cache_test.txt";
    TuningCache cache;
    cache.put({"alpha", sampleConfig(), 12.5});
    OpConfig other = sampleConfig();
    other.reorderChoice = 0;
    cache.put({"beta", other, 7.25});
    ASSERT_TRUE(cache.save(path));

    TuningCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.size(), 2u);
    auto hit = loaded.lookup("alpha");
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->gflops, 12.5);
    EXPECT_EQ(hit->config.spatialSplits, sampleConfig().spatialSplits);
    std::remove(path.c_str());
}

TEST(TuningCache, LoadMissingFileFails)
{
    TuningCache cache;
    EXPECT_FALSE(cache.load("/tmp/definitely_not_here_12345.txt"));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TuningCache, SkipsMalformedLines)
{
    const std::string path = "/tmp/flextensor_cache_bad.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("garbage line without tabs\n", f);
        std::fputs("key\tnot_a_number\tv1|s=|r=\n", f);
        std::fputs("good\t3.5\tv1|s=2,2|r=4|reorder=1|fuse=1|unroll=0|"
                   "vec=8|rows=1|part=1\n",
                   f);
        std::fclose(f);
    }
    TuningCache cache;
    ASSERT_TRUE(cache.load(path));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.lookup("good").has_value());
    std::remove(path.c_str());
}

Tensor
cachedGemm()
{
    Tensor a = placeholder("A", {128, 64});
    Tensor b = placeholder("B", {64, 96});
    return ops::gemm(a, b);
}

TEST(SpacePointOf, RecoversDecodedConfig)
{
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(cachedGemm().op(), target);
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        Point p = space.randomPoint(rng);
        OpConfig config = space.decode(p);
        auto recovered = space.pointOf(config);
        ASSERT_TRUE(recovered.has_value());
        EXPECT_EQ(recovered->idx, p.idx);
    }
}

TEST(SpacePointOf, RejectsForeignConfig)
{
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(cachedGemm().op(), target);
    OpConfig bad = sampleConfig(); // wrong split shapes for this op
    EXPECT_FALSE(space.pointOf(bad).has_value());
}

TEST(TunerCache, SecondCallIsServedFromCache)
{
    TuningCache cache;
    TuneOptions options;
    options.explore.trials = 25;
    options.cache = &cache;

    Target target = Target::forGpu(v100());
    TuneReport first = tune(cachedGemm(), target, options);
    EXPECT_FALSE(first.fromCache);
    EXPECT_EQ(cache.size(), 1u);

    TuneReport second = tune(cachedGemm(), target, options);
    EXPECT_TRUE(second.fromCache);
    EXPECT_DOUBLE_EQ(second.gflops, first.gflops);
    EXPECT_EQ(serializeConfig(second.config),
              serializeConfig(first.config));
}

TEST(TunerCache, DifferentDeviceMisses)
{
    TuningCache cache;
    TuneOptions options;
    options.explore.trials = 20;
    options.cache = &cache;
    tune(cachedGemm(), Target::forGpu(v100()), options);
    TuneReport cpu = tune(cachedGemm(), Target::forCpu(xeonE5()), options);
    EXPECT_FALSE(cpu.fromCache);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(Explore, SeedPointsEnterHistory)
{
    Tensor out = cachedGemm();
    Target target = Target::forGpu(v100());
    ScheduleSpace space = buildSpace(out.op(), target);
    // Seed with the expert config's point.
    OpConfig expert = expertConfig(out.op(), target);
    auto seed_point = space.pointOf(expert);
    ASSERT_TRUE(seed_point.has_value());

    Evaluator eval(out.op(), space, target);
    ExploreOptions options;
    options.trials = 10;
    options.seedPoints = {*seed_point};
    ExploreResult result = exploreQMethod(eval, options);
    // The seed was evaluated, so the best is at least its value.
    double expert_gflops = eval.evaluate(*seed_point);
    EXPECT_GE(result.bestGflops, expert_gflops);
    EXPECT_TRUE(eval.known(*seed_point));
}

} // namespace
} // namespace ft
