#include "explore/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/journal.h"
#include "support/logging.h"

namespace ft {

namespace {

/** Exact double round-trip via hexfloat. */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
parseU64(const std::string &text, uint64_t *out)
{
    try {
        size_t pos = 0;
        *out = std::stoull(text, &pos);
        return pos == text.size();
    } catch (...) {
        return false;
    }
}

bool
parseInt(const std::string &text, int *out)
{
    try {
        size_t pos = 0;
        *out = std::stoi(text, &pos);
        return pos == text.size();
    } catch (...) {
        return false;
    }
}

void
appendIdx(std::ostringstream &oss, const std::vector<int64_t> &idx)
{
    for (size_t i = 0; i < idx.size(); ++i) {
        if (i)
            oss << ",";
        oss << idx[i];
    }
}

bool
parseIdx(const std::string &text, std::vector<int64_t> *out)
{
    out->clear();
    if (text.empty())
        return false;
    std::istringstream cells(text);
    std::string cell;
    while (std::getline(cells, cell, ',')) {
        try {
            size_t pos = 0;
            out->push_back(std::stoll(cell, &pos));
            if (pos != cell.size())
                return false;
        } catch (...) {
            return false;
        }
    }
    return !out->empty();
}

std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, '|'))
        out.push_back(std::move(field));
    return out;
}

/** "key=value" field whose key must match; value written to *out. */
bool
keyed(const std::string &field, const char *key, std::string *out)
{
    const size_t n = std::strlen(key);
    if (field.size() < n + 1 || field.compare(0, n, key) != 0 ||
        field[n] != '=') {
        return false;
    }
    *out = field.substr(n + 1);
    return true;
}

/** v1 quarantine entry: a legacy Point::key() string ("12;0;3;"). */
bool
parseLegacyKey(const std::string &text, std::vector<int64_t> *out)
{
    out->clear();
    if (text.empty())
        return false;
    std::istringstream cells(text);
    std::string cell;
    while (std::getline(cells, cell, ';')) {
        try {
            size_t pos = 0;
            out->push_back(std::stoll(cell, &pos));
            if (pos != cell.size())
                return false;
        } catch (...) {
            return false;
        }
    }
    return !out->empty();
}

} // namespace

std::string
spaceSignature(const ScheduleSpace &space)
{
    std::ostringstream oss;
    oss << space.numSubSpaces() << "/" << space.numDirections();
    return oss.str();
}

/** Journal kind tag for checkpoint snapshot frames. */
constexpr char kCheckpointKind[] = "ckpt";

/**
 * Render one snapshot as the versioned line-oriented text body (header
 * line through the `end|n=` count footer). This is the exact format the
 * legacy whole-file checkpoints used, now carried as one journal frame.
 */
static std::string
serializeCheckpointBody(const CheckpointState &state)
{
    std::ostringstream body;
    size_t lines = 0;
    auto emit = [&](const std::string &line) {
        body << line << "\n";
        ++lines;
    };

    {
        // v2: quarantine entries are point coordinates, not string keys.
        std::ostringstream oss;
        oss << "ftckpt|v=2|method=" << state.method
            << "|seed=" << state.seed << "|space=" << state.spaceSig
            << "|trial=" << state.trial;
        emit(oss.str());
    }
    emit("clock|sim=" + hexDouble(state.simSeconds));
    {
        std::ostringstream oss;
        oss << "rng";
        for (uint64_t w : state.rng.s)
            oss << "|" << w;
        oss << "|spare=" << (state.rng.haveSpare ? 1 : 0)
            << "|sparev=" << hexDouble(state.rng.spare);
        emit(oss.str());
    }
    FT_ASSERT(state.history.size() == state.commitSim.size(),
              "checkpoint history/clock mismatch");
    for (size_t i = 0; i < state.history.size(); ++i) {
        std::ostringstream oss;
        oss << "h|";
        appendIdx(oss, state.history[i].point.idx);
        oss << "|" << hexDouble(state.history[i].gflops) << "|"
            << hexDouble(state.commitSim[i]);
        emit(oss.str());
    }
    for (const ReplayTransition &t : state.replay) {
        std::ostringstream oss;
        oss << "r|";
        appendIdx(oss, t.start);
        oss << "|" << t.direction << "|";
        appendIdx(oss, t.next);
        emit(oss.str());
    }
    if (!state.netState.empty()) {
        std::ostringstream oss;
        oss << "net|" << state.netState.size() << "|";
        for (size_t i = 0; i < state.netState.size(); ++i) {
            if (i)
                oss << ",";
            oss << hexDouble(static_cast<double>(state.netState[i]));
        }
        emit(oss.str());
    }
    {
        std::ostringstream oss;
        oss << "stats|" << state.stats.measurements << "|"
            << state.stats.failures << "|" << state.stats.retries << "|"
            << state.stats.timeouts << "|" << state.stats.quarantined;
        emit(oss.str());
    }
    for (const Point &p : state.quarantine) {
        std::ostringstream oss;
        oss << "q|";
        appendIdx(oss, p.idx);
        emit(oss.str());
    }
    body << "end|n=" << lines << "\n";
    return body.str();
}

bool
saveCheckpoint(const std::string &path, const CheckpointState &state)
{
    // Each snapshot is one whole frame appended to the journal: a crash
    // mid-append can only tear the in-flight frame, and resume falls
    // back to the previous snapshot — which is still bit-identical to
    // an uninterrupted run from that point. Once enough superseded
    // snapshots accumulate, compact by atomically rewriting the journal
    // with just the newest frame (only the latest snapshot matters).
    constexpr size_t kCompactAfterFrames = 8;
    const std::string body = serializeCheckpointBody(state);
    JournalContents existing = readJournal(path);
    if (existing.valid && existing.kind == kCheckpointKind &&
        existing.records.size() >= kCompactAfterFrames) {
        JournalWriter writer(kCheckpointKind);
        writer.append(body);
        return writer.commit(path);
    }
    return journalAppend(path, kCheckpointKind, body);
}

/** Parse one snapshot body (the legacy file format / one frame). */
static std::optional<CheckpointState>
parseCheckpointBody(const std::string &text)
{
    CheckpointState state;
    bool saw_header = false, saw_end = false, ok = true;
    int version = 0;
    size_t lines = 0, declared = 0;
    std::string line;
    std::istringstream in(text);
    while (ok && std::getline(in, line)) {
        if (line.empty())
            continue;
        if (saw_end) {
            ok = false; // trailing junk after the count line
            break;
        }
        auto fields = splitFields(line);
        const std::string &tag = fields[0];
        std::string value;
        if (tag == "ftckpt") {
            ok = fields.size() == 6 && keyed(fields[1], "v", &value) &&
                 (value == "1" || value == "2");
            if (ok)
                version = value == "1" ? 1 : 2;
            if (ok)
                ok = keyed(fields[2], "method", &state.method) &&
                     keyed(fields[3], "seed", &value) &&
                     parseU64(value, &state.seed) &&
                     keyed(fields[4], "space", &state.spaceSig) &&
                     keyed(fields[5], "trial", &value) &&
                     parseInt(value, &state.trial);
            saw_header = ok;
        } else if (tag == "clock") {
            ok = fields.size() == 2 && keyed(fields[1], "sim", &value) &&
                 parseDouble(value, &state.simSeconds);
        } else if (tag == "rng") {
            ok = fields.size() == 7;
            for (int i = 0; ok && i < 4; ++i)
                ok = parseU64(fields[1 + i], &state.rng.s[i]);
            if (ok) {
                ok = keyed(fields[5], "spare", &value);
                state.rng.haveSpare = ok && value == "1";
                ok = ok && (value == "0" || value == "1") &&
                     keyed(fields[6], "sparev", &value) &&
                     parseDouble(value, &state.rng.spare);
            }
        } else if (tag == "h") {
            Evaluated e;
            double commit_sim = 0.0;
            ok = fields.size() == 4 && parseIdx(fields[1], &e.point.idx) &&
                 parseDouble(fields[2], &e.gflops) &&
                 parseDouble(fields[3], &commit_sim);
            if (ok) {
                state.history.push_back(std::move(e));
                state.commitSim.push_back(commit_sim);
            }
        } else if (tag == "r") {
            ReplayTransition t;
            ok = fields.size() == 4 && parseIdx(fields[1], &t.start) &&
                 parseInt(fields[2], &t.direction) &&
                 parseIdx(fields[3], &t.next);
            if (ok)
                state.replay.push_back(std::move(t));
        } else if (tag == "net") {
            uint64_t count = 0;
            ok = fields.size() == 3 && parseU64(fields[1], &count);
            if (ok) {
                std::istringstream cells(fields[2]);
                std::string cell;
                while (ok && std::getline(cells, cell, ',')) {
                    double v = 0.0;
                    ok = parseDouble(cell, &v);
                    state.netState.push_back(static_cast<float>(v));
                }
                ok = ok && state.netState.size() == count;
            }
        } else if (tag == "stats") {
            ok = fields.size() == 6 &&
                 parseU64(fields[1], &state.stats.measurements) &&
                 parseU64(fields[2], &state.stats.failures) &&
                 parseU64(fields[3], &state.stats.retries) &&
                 parseU64(fields[4], &state.stats.timeouts) &&
                 parseU64(fields[5], &state.stats.quarantined);
        } else if (tag == "q") {
            Point p;
            ok = fields.size() == 2 &&
                 (version == 2 ? parseIdx(fields[1], &p.idx)
                               : parseLegacyKey(fields[1], &p.idx));
            if (ok)
                state.quarantine.push_back(std::move(p));
        } else if (tag == "end") {
            ok = fields.size() == 2 && keyed(fields[1], "n", &value) &&
                 parseU64(value, &declared);
            saw_end = true;
            continue; // the count line does not count itself
        } else {
            ok = false;
        }
        ++lines;
    }
    if (!ok || !saw_header || !saw_end || declared != lines ||
        state.trial < 0) {
        return std::nullopt;
    }
    return state;
}

std::optional<CheckpointState>
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt; // a missing checkpoint is a normal first run
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    in.close();

    if (!looksLikeJournal(bytes)) {
        // Legacy pre-journal checkpoint: the whole file is one body.
        auto state = parseCheckpointBody(bytes);
        if (!state)
            warn("ignoring truncated or corrupt checkpoint ", path);
        return state;
    }

    JournalContents journal = parseJournal(bytes);
    if (!journal.valid || journal.kind != kCheckpointKind) {
        warn("ignoring corrupt checkpoint journal ", path, " (",
             journal.diag.empty() ? "wrong journal kind" : journal.diag,
             ")");
        return std::nullopt;
    }
    if (journal.torn) {
        warn("checkpoint journal ", path, " has a torn tail (",
             journal.diag, "); recovering to last valid frame");
        if (!truncateToValid(path, journal))
            warn("could not repair torn checkpoint journal ", path);
    }
    // Newest snapshot wins; skip backwards over any frame whose body
    // fails to parse (a framed-but-bad snapshot should never happen,
    // but resume from an older good one beats starting over).
    for (auto it = journal.records.rbegin(); it != journal.records.rend();
         ++it) {
        auto state = parseCheckpointBody(*it);
        if (state) {
            if (it != journal.records.rbegin())
                warn("checkpoint journal ", path, " skipped ",
                     it - journal.records.rbegin(),
                     " unparseable snapshot frame(s)");
            return state;
        }
    }
    warn("ignoring checkpoint journal ", path,
         " with no parseable snapshot frames");
    return std::nullopt;
}

bool
checkpointCompatible(const CheckpointState &state, const std::string &method,
                     uint64_t seed, const ScheduleSpace &space)
{
    if (state.method != method || state.seed != seed ||
        state.spaceSig != spaceSignature(space)) {
        return false;
    }
    const size_t dims = static_cast<size_t>(space.numSubSpaces());
    for (const Evaluated &e : state.history) {
        if (e.point.idx.size() != dims)
            return false;
    }
    for (const ReplayTransition &t : state.replay) {
        if (t.start.size() != dims || t.next.size() != dims)
            return false;
    }
    for (const Point &p : state.quarantine) {
        if (p.idx.size() != dims)
            return false;
    }
    return true;
}

CheckpointState
captureCommon(const std::string &method, uint64_t seed, int nextTrial,
              const Evaluator &eval, const Rng &rng,
              const ResilientEvaluator &reval)
{
    CheckpointState state;
    state.method = method;
    state.seed = seed;
    state.spaceSig = spaceSignature(eval.space());
    state.trial = nextTrial;
    state.simSeconds = eval.simulatedSeconds();
    state.rng = rng.state();
    state.history = eval.history();
    state.commitSim.reserve(eval.curve().size());
    for (const auto &entry : eval.curve())
        state.commitSim.push_back(entry.first);
    state.stats = reval.stats();
    state.quarantine = reval.quarantine();
    return state;
}

void
restoreCommon(const CheckpointState &state, Evaluator &eval, Rng &rng,
              ResilientEvaluator &reval)
{
    eval.restore(state.history, state.commitSim, state.simSeconds);
    rng.setState(state.rng);
    reval.restore(state.stats, state.quarantine);
}

} // namespace ft
