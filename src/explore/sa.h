/**
 * @file
 * Simulated-annealing starting-point selection (Section 5.1).
 *
 * FlexTensor picks the next starting point p from the evaluated set H with
 * probability proportional to exp(-gamma * (E* - Ep) / E*): points close
 * to the best are favored, but worse points keep a nonzero chance, which
 * is what lets the search escape local optima.
 */
#ifndef FLEXTENSOR_EXPLORE_SA_H
#define FLEXTENSOR_EXPLORE_SA_H

#include <vector>

#include "explore/evaluator.h"
#include "support/rng.h"

namespace ft {

class SaChooser
{
  public:
    explicit SaChooser(double gamma = 2.0) : gamma_(gamma) {}

    /** Selection weight of a point with value e given the best value. */
    double weight(double e, double best) const;

    /** Pick one starting point from H (H must be non-empty). */
    const Point &choose(const Evaluator &eval, Rng &rng) const;

    /** Pick `count` starting points (with replacement). */
    std::vector<Point> chooseMany(const Evaluator &eval, Rng &rng,
                                  int count) const;

    double gamma() const { return gamma_; }

  private:
    double gamma_;
    /** Per-window weights reused across chooseMany picks: H is fixed
     *  for the whole call, so exp() runs once per entry, not per pick. */
    mutable std::vector<double> weights_;
};

} // namespace ft

#endif // FLEXTENSOR_EXPLORE_SA_H
