#include "explore/resilient.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {

ResilientEvaluator::ResilientEvaluator(Evaluator &eval, ThreadPool *pool,
                                       int parallelism,
                                       ResilienceOptions options)
    : eval_(eval),
      batch_(eval, pool, parallelism),
      pool_(pool),
      options_(std::move(options))
{
    FT_ASSERT(options_.maxRetries >= 0, "negative retry budget");
    FT_ASSERT(options_.repeats >= 1, "repeats must be >= 1");
}

bool
ResilientEvaluator::faultsActive() const
{
    return options_.injector && options_.injector->profile().enabled();
}

bool
ResilientEvaluator::quarantined(const Point &p) const
{
    return quarantineSet_.count(p.key64()) > 0;
}

void
ResilientEvaluator::restore(const ResilienceStats &stats,
                            const std::vector<Point> &quarantine)
{
    stats_ = stats;
    quarantine_ = quarantine;
    quarantineSet_.clear();
    for (const Point &p : quarantine)
        quarantineSet_.insert(p.key64());
}

ResilientEvaluator::Measured
ResilientEvaluator::measureWithFaults(const Point &p, PointKey key64,
                                      double trueScore)
{
    // The injector's fate function hashes the legacy string key, so it
    // is still built here — only on the fault path, never fault-free —
    // keeping fault outcomes identical to earlier releases.
    const std::string key = p.key();
    const ResilienceStats before = stats_;
    const FaultInjector &injector = *options_.injector;
    const double measure_cost = eval_.measureCost();
    const double deadline = options_.trialDeadlineSeconds;

    Measured out;
    std::vector<double> values;
    values.reserve(options_.repeats);
    int attempt = 0;
    int failed_repeats = 0;
    for (int repeat = 0; repeat < options_.repeats; ++repeat) {
        bool delivered = false;
        for (int retry = 0; retry <= options_.maxRetries; ++retry) {
            FaultOutcome fate = injector.apply(key, attempt++, trueScore);
            if (fate.hung) {
                // The measurement hangs; the per-trial deadline kills it.
                double hang = injector.profile().hangSeconds;
                if (deadline > 0.0)
                    hang = std::min(hang, deadline);
                out.simCharge += hang;
                ++stats_.timeouts;
            } else {
                out.simCharge += measure_cost;
            }
            if (!fate.failed) {
                values.push_back(fate.gflops);
                delivered = true;
                break;
            }
            ++stats_.failures;
            if (retry < options_.maxRetries) {
                ++stats_.retries;
                out.simCharge +=
                    options_.backoffBaseSeconds * double(1 << retry);
            }
        }
        if (!delivered) {
            values.push_back(kInvalidGflops);
            ++failed_repeats;
        }
    }

    // Lower median: robust against a corrupted high reading without ever
    // inventing a value that was not measured.
    std::sort(values.begin(), values.end());
    out.value = values[(values.size() - 1) / 2];

    if (failed_repeats == options_.repeats &&
        quarantineSet_.insert(key64).second) {
        quarantine_.push_back(p);
        ++stats_.quarantined;
        debug("quarantined point ", key, " after ", attempt,
              " failed attempts");
        if (eval_.obs().trace) {
            eval_.obs().trace->point("quarantine",
                                     eval_.simulatedSeconds(),
                                     {tstr("key", key),
                                      tint("attempts", attempt)});
        }
    }
    ++stats_.measurements;
    if (MetricsRegistry *m = eval_.obs().metrics) {
        m->counter("resilience.failures")
            .add(stats_.failures - before.failures);
        m->counter("resilience.retries").add(stats_.retries - before.retries);
        m->counter("resilience.timeouts")
            .add(stats_.timeouts - before.timeouts);
        m->counter("resilience.quarantined")
            .add(stats_.quarantined - before.quarantined);
        m->counter("resilience.measurements").add();
    }
    return out;
}

std::vector<double>
ResilientEvaluator::evaluate(const std::vector<Point> &points)
{
    if (!faultsActive())
        return batch_.evaluate(points);

    // Fresh work: first occurrence of each unknown point, in order.
    std::vector<size_t> fresh;
    std::vector<PointKey> keys(points.size());
    std::unordered_set<PointKey> batch_keys;
    for (size_t i = 0; i < points.size(); ++i) {
        keys[i] = points[i].key64();
        if (eval_.known(keys[i]))
            continue;
        if (batch_keys.insert(keys[i]).second)
            fresh.push_back(i);
    }

    if (!fresh.empty()) {
        const ObsContext &obs = eval_.obs();
        if (obs.trace) {
            obs.trace->begin(
                "batch_evaluate", eval_.simulatedSeconds(),
                {tint("batch", static_cast<int64_t>(points.size())),
                 tint("fresh", static_cast<int64_t>(fresh.size())),
                 tbool("faults", true)});
        }
        // True scores in parallel (pure model queries)...
        std::vector<double> true_scores(fresh.size());
        if (pool_ && pool_->numThreads() > 1 && fresh.size() > 1) {
            const size_t workers =
                std::min<size_t>(pool_->numThreads(), fresh.size());
            if (scratch_.size() < workers)
                scratch_.resize(workers);
            pool_->parallelFor(fresh.size(), [&](size_t w, size_t j) {
                true_scores[j] =
                    eval_.scoreOnly(points[fresh[j]], scratch_[w]);
            });
        } else {
            if (scratch_.empty())
                scratch_.resize(1);
            for (size_t j = 0; j < fresh.size(); ++j)
                true_scores[j] =
                    eval_.scoreOnly(points[fresh[j]], scratch_[0]);
        }

        // ...then the fault/retry policy per point, sequentially, so the
        // outcome is deterministic regardless of thread interleaving.
        std::vector<Measured> measured(fresh.size());
        for (size_t j = 0; j < fresh.size(); ++j)
            measured[j] = measureWithFaults(points[fresh[j]],
                                            keys[fresh[j]], true_scores[j]);

        // Batch clock: machines take points round-robin; the batch spans
        // the busiest machine, spread evenly across the curve entries.
        const int machines = batch_.parallelism();
        std::vector<double> load(machines, 0.0);
        for (size_t j = 0; j < fresh.size(); ++j)
            load[j % machines] += measured[j].simCharge;
        const double span = *std::max_element(load.begin(), load.end());
        const double per_point = span / double(fresh.size());
        for (size_t j = 0; j < fresh.size(); ++j)
            eval_.commitMeasured(points[fresh[j]], keys[fresh[j]],
                                 measured[j].value, per_point);
        if (obs.trace)
            obs.trace->end("batch_evaluate", eval_.simulatedSeconds());
        if (obs.metrics) {
            obs.metrics->counter("eval.batches").add();
            obs.metrics->counter("eval.fresh_points").add(fresh.size());
            obs.metrics
                ->histogram("eval.batch_size",
                            {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
                .observe(static_cast<double>(fresh.size()));
        }
    }

    std::vector<double> out(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        out[i] = eval_.evaluate(points[i], keys[i]); // cache reads
    return out;
}

double
ResilientEvaluator::evaluate(const Point &p, PointKey key)
{
    if (!faultsActive() || eval_.known(key))
        return eval_.evaluate(p, key);
    if (scratch_.empty())
        scratch_.resize(1);
    Measured m = measureWithFaults(p, key, eval_.scoreOnly(p, scratch_[0]));
    eval_.commitMeasured(p, key, m.value, m.simCharge);
    return m.value;
}

} // namespace ft
