/**
 * @file
 * Checkpoint/resume for tuning runs.
 *
 * A long exploration run is expensive to lose to a crash or an eviction,
 * so the explorers periodically snapshot everything their next step
 * depends on: the evaluated set H with its per-commit simulated clock,
 * the RNG stream position, the resilience counters and quarantine set,
 * and — for the Q-method — the Q-network parameters (values plus AdaDelta
 * accumulators) and the replay buffer (as point/direction triples; the
 * feature vectors and rewards are recomputed from H on resume).
 *
 * Each snapshot is a versioned line-oriented text body (with a trailing
 * record-count line) carried as one CRC32-framed record in a crash-safe
 * journal (support/journal.h): snapshots append a frame, so a crash
 * mid-write can only tear the in-flight frame, and resume recovers the
 * newest intact snapshot — still bit-identical to an uninterrupted run
 * from that point. Legacy whole-file (pre-journal) checkpoints are
 * still read. Floating-point values round-trip exactly (hexfloat),
 * which is what makes the guarantee hold: a run killed and resumed from
 * its last snapshot produces bit-identical results — history, best
 * point, and simulated clock — to a run that was never interrupted, for
 * the same seed and fault profile.
 */
#ifndef FLEXTENSOR_EXPLORE_CHECKPOINT_H
#define FLEXTENSOR_EXPLORE_CHECKPOINT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/evaluator.h"
#include "explore/resilient.h"
#include "support/rng.h"

namespace ft {

/** One replay-buffer record as space coordinates (features/rewards are
 *  recomputed from the restored H, so floats never go through text). */
struct ReplayTransition
{
    std::vector<int64_t> start;
    int direction = 0;
    std::vector<int64_t> next;
};

/** Everything a resumed run needs to continue bit-identically. */
struct CheckpointState
{
    std::string method;   ///< methodName() of the writing explorer
    uint64_t seed = 0;    ///< ExploreOptions::seed of the run
    std::string spaceSig; ///< spaceSignature() of the schedule space
    int trial = 0;        ///< next outer trial index to execute
    double simSeconds = 0.0;
    RngState rng;
    std::vector<Evaluated> history;
    std::vector<double> commitSim; ///< simulated clock at each commit
    ResilienceStats stats;
    /** Quarantined points as space coordinates (format v2 writes them as
     *  `q|i,i,...`; the legacy v1 `q|<string key>` form is still read). */
    std::vector<Point> quarantine;
    /** Q-method only: Mlp::checkpointState() of the online network. */
    std::vector<float> netState;
    /** Q-method only: the replay buffer. */
    std::vector<ReplayTransition> replay;
};

/** Cheap structural identity of a space ("numSubSpaces/numDirections"). */
std::string spaceSignature(const ScheduleSpace &space);

/** Append a snapshot frame to the checkpoint journal (crash-safe). */
bool saveCheckpoint(const std::string &path, const CheckpointState &state);

/**
 * Load the newest intact snapshot. A torn journal tail is recovered
 * from (and repaired in place) with a loud structured diagnostic.
 * Returns nullopt when the file is missing, corrupt beyond recovery,
 * or from an unknown version (a warning is logged for anything but a
 * missing file — the caller starts fresh).
 */
std::optional<CheckpointState> loadCheckpoint(const std::string &path);

/**
 * Whether a loaded snapshot belongs to this run: same method, seed, and
 * space shape, with a trial index and history consistent with it.
 */
bool checkpointCompatible(const CheckpointState &state,
                          const std::string &method, uint64_t seed,
                          const ScheduleSpace &space);

/** Capture the state every method shares (H, clock, RNG, resilience). */
CheckpointState captureCommon(const std::string &method, uint64_t seed,
                              int nextTrial, const Evaluator &eval,
                              const Rng &rng,
                              const ResilientEvaluator &reval);

/** Restore the shared state onto a fresh run (inverse of captureCommon). */
void restoreCommon(const CheckpointState &state, Evaluator &eval, Rng &rng,
                   ResilientEvaluator &reval);

} // namespace ft

#endif // FLEXTENSOR_EXPLORE_CHECKPOINT_H
