#include "explore/explorer.h"

#include <algorithm>

#include "ml/gbt.h"
#include "support/logging.h"
#include "support/rng.h"

namespace ft {

ExploreResult
exploreAutoTvm(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();

    GbtModel model;
    GbtOptions gbt_options;
    std::vector<std::vector<double>> train_x;
    std::vector<double> train_y;

    const int batch = 8;         // measured configs per round
    const int pool = 96;         // ranked candidates per round
    const double model_overhead = 2.0; // seconds per round: fit + rank

    int measured = 0;
    while (measured < options.trials) {
        if (options.targetGflops > 0.0 &&
            eval.best() >= options.targetGflops) {
            break;
        }
        // Candidate pool: random points ranked by the cost model (pure
        // random before the model has data).
        std::vector<Point> candidates;
        for (int i = 0; i < pool; ++i) {
            Point p = space.randomPoint(rng);
            if (!eval.known(p))
                candidates.push_back(std::move(p));
        }
        if (candidates.empty())
            break;
        if (model.trained()) {
            std::stable_sort(candidates.begin(), candidates.end(),
                             [&](const Point &a, const Point &b) {
                                 return model.predict(space.features(a)) >
                                        model.predict(space.features(b));
                             });
        }
        // Epsilon-greedy batch: mostly top-ranked, some random.
        int take = std::min<int>(batch, static_cast<int>(candidates.size()));
        for (int i = 0; i < take && measured < options.trials; ++i) {
            size_t pick = i;
            if (rng.chance(options.epsilon))
                pick = rng.index(candidates.size());
            const Point &p = candidates[pick];
            if (eval.known(p))
                continue;
            double gflops = eval.evaluate(p);
            ++measured;
            train_x.push_back(space.features(p));
            train_y.push_back(gflops);
        }
        // Refit the cost model on everything measured so far.
        model.fit(train_x, train_y, gbt_options, rng);
        eval.chargeOverhead(model_overhead);
    }

    ExploreResult out;
    out.bestPoint = eval.bestPoint();
    out.bestGflops = eval.best();
    out.trialsUsed = eval.numTrials();
    out.simSeconds = eval.simulatedSeconds();
    out.curve = eval.curve();
    return out;
}

} // namespace ft
