#include "explore/explorer.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ml/costmodel.h"
#include "ml/gbt.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "support/rng.h"

namespace ft {

ExploreResult
exploreAutoTvm(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    eval.setCostModel(options.costModel);
    TraceRecorder *trace = options.obs.trace;
    Counter *step_counter = maybeCounter(options.obs.metrics,
                                         "explore.steps");
    Counter *fit_counter = maybeCounter(options.obs.metrics,
                                        "autotvm.model_fits");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);
    if (!options.checkpointPath.empty()) {
        warn("AutoTVM search does not support checkpoint/resume; "
             "ignoring ", options.checkpointPath);
    }

    GbtModel model;
    GbtOptions gbt_options;
    std::vector<std::vector<double>> train_x;
    std::vector<double> train_y;

    // Reused ranking buffers (one model query per candidate per round;
    // the former comparator form re-ran predict O(n log n) times).
    DecodeScratch decode_scratch;
    std::vector<double> feat;
    std::vector<double> scores;
    std::vector<size_t> rank;

    const int batch = 8;         // measured configs per round
    const int pool = 96;         // ranked candidates per round
    const double model_overhead = 2.0; // seconds per round: fit + rank

    bool deadline_exceeded = false;
    int measured = 0;
    while (measured < options.trials) {
        if (options.targetGflops > 0.0 &&
            eval.best() >= options.targetGflops) {
            break;
        }
        if (options.deadlineSimSeconds > 0.0 &&
            eval.simulatedSeconds() >= options.deadlineSimSeconds) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("measured", measured)});
        }
        // Candidate pool: random points ranked by the cost model (pure
        // random before the model has data).
        std::vector<Point> candidates;
        for (int i = 0; i < pool; ++i) {
            Point p = space.randomPoint(rng);
            if (!eval.known(p))
                candidates.push_back(std::move(p));
        }
        if (candidates.empty()) {
            if (trace)
                trace->end("step", eval.simulatedSeconds());
            break;
        }
        const bool persistent_rank =
            !model.trained() && options.costModel != nullptr &&
            options.costModel->ready();
        if (persistent_rank) {
            // Cold rounds: the per-run GBT has no data yet, so the
            // persistent model ranks the pool instead of leaving it in
            // random order.
            scores.resize(candidates.size());
            std::vector<double> cost_feat;
            for (size_t i = 0; i < candidates.size(); ++i) {
                eval.costFeaturesFor(candidates[i], cost_feat);
                scores[i] = options.costModel->predict(cost_feat);
            }
            rank.resize(candidates.size());
            for (size_t i = 0; i < rank.size(); ++i)
                rank[i] = i;
            std::stable_sort(rank.begin(), rank.end(),
                             [&](size_t a, size_t b) {
                                 return scores[a] > scores[b];
                             });
            std::vector<Point> ranked;
            ranked.reserve(candidates.size());
            for (size_t i : rank)
                ranked.push_back(std::move(candidates[i]));
            candidates = std::move(ranked);
        }
        if (model.trained()) {
            // Stable-sorting precomputed scores yields the exact
            // permutation the predict-in-comparator form produced
            // (predict is pure, so every comparison saw these values).
            scores.resize(candidates.size());
            for (size_t i = 0; i < candidates.size(); ++i) {
                space.featuresInto(candidates[i], decode_scratch, feat);
                scores[i] = model.predict(feat);
            }
            rank.resize(candidates.size());
            for (size_t i = 0; i < rank.size(); ++i)
                rank[i] = i;
            std::stable_sort(rank.begin(), rank.end(),
                             [&](size_t a, size_t b) {
                                 return scores[a] > scores[b];
                             });
            std::vector<Point> ranked;
            ranked.reserve(candidates.size());
            for (size_t i : rank)
                ranked.push_back(std::move(candidates[i]));
            candidates = std::move(ranked);
        }
        // With pruning on, epsilon-greedy only draws from the ranked
        // top fraction of the pool (never fewer than one batch).
        if (options.costModel != nullptr && options.prunerKeep > 0.0 &&
            options.costModel->ready() &&
            (model.trained() || persistent_rank)) {
            const size_t keep = std::max<size_t>(
                static_cast<size_t>(batch),
                static_cast<size_t>(std::ceil(
                    options.prunerKeep *
                    static_cast<double>(candidates.size()))));
            if (keep < candidates.size()) {
                if (trace) {
                    trace->point(
                        "costmodel.prune", eval.simulatedSeconds(),
                        {tint("considered",
                              static_cast<int64_t>(candidates.size())),
                         tint("kept", static_cast<int64_t>(keep))});
                }
                if (options.obs.metrics) {
                    options.obs.metrics->counter("costmodel.prune.kept")
                        .add(keep);
                    options.obs.metrics
                        ->counter("costmodel.prune.dropped")
                        .add(candidates.size() - keep);
                }
                candidates.resize(keep);
            }
        }
        // Epsilon-greedy batch: mostly top-ranked, some random. Picks are
        // selected first, then measured as one parallel batch; the
        // selection's RNG stream and the resulting H match the
        // point-at-a-time equivalent exactly.
        int take = std::min<int>(batch, static_cast<int>(candidates.size()));
        std::vector<Point> picks;
        std::unordered_set<PointKey> picked_keys;
        for (int i = 0;
             i < take &&
             measured + static_cast<int>(picks.size()) < options.trials;
             ++i) {
            size_t pick = i;
            if (rng.chance(options.epsilon))
                pick = rng.index(candidates.size());
            const Point &p = candidates[pick];
            const PointKey key = p.key64();
            if (eval.known(key) || !picked_keys.insert(key).second)
                continue;
            picks.push_back(p);
        }
        std::vector<double> values = reval.evaluate(picks);
        for (size_t i = 0; i < picks.size(); ++i) {
            train_x.push_back(space.features(picks[i]));
            train_y.push_back(values[i]);
        }
        measured += static_cast<int>(picks.size());
        // Refit the cost model on everything measured so far.
        if (trace) {
            trace->begin("model_fit", eval.simulatedSeconds(),
                         {tint("samples",
                               static_cast<int64_t>(train_x.size()))});
        }
        model.fit(train_x, train_y, gbt_options, rng);
        eval.chargeOverhead(model_overhead);
        if (trace)
            trace->end("model_fit", eval.simulatedSeconds());
        if (fit_counter)
            fit_counter->add();
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
    }

    ExploreResult out;
    out.bestPoint = eval.bestPoint();
    out.bestGflops = eval.best();
    out.trialsUsed = eval.numTrials();
    out.simSeconds = eval.simulatedSeconds();
    out.curve = eval.curve();
    out.deadlineExceeded = deadline_exceeded;
    out.failures = reval.stats().failures;
    out.retries = reval.stats().retries;
    out.timeouts = reval.stats().timeouts;
    out.quarantined = reval.stats().quarantined;
    return out;
}

} // namespace ft
