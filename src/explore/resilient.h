/**
 * @file
 * Fault-tolerant measurement policy over the batch evaluator.
 *
 * Real measurement backends fail; this layer makes every exploration
 * method degrade gracefully when they do:
 *
 *  - Bounded retries with exponential backoff. Failed attempts are
 *    retried up to `maxRetries` times; each backoff wait is charged to
 *    the simulated clock, so flaky backends slow a run down exactly the
 *    way they would on real hardware.
 *  - Per-trial deadline. A hung measurement is killed after
 *    `trialDeadlineSeconds` of simulated time and reports kInvalidGflops
 *    instead of blocking the run forever.
 *  - Outlier rejection. With `repeats > 1` every fresh point is measured
 *    that many times and the (lower) median value is committed, so a
 *    single corrupted reading cannot become the best schedule.
 *  - Quarantine. A point whose every repeat exhausts its retries is
 *    committed as kInvalidGflops and its key recorded in the quarantine
 *    set; the evaluator cache guarantees it is never measured again.
 *
 * With no (or a disabled) injector the layer delegates directly to
 * BatchEvaluator / Evaluator, so fault-free runs are bit-identical to
 * runs without this layer — values and simulated clock included.
 *
 * Under faults, the simulated batch clock models `parallelism` machines
 * taking points round-robin, each machine running its points' full
 * attempt sequences back to back; the batch is charged the busiest
 * machine's span, spread evenly over the per-point curve entries. With
 * equal per-point costs this reduces to BatchEvaluator's
 * ceil(n/parallelism) rounds.
 */
#ifndef FLEXTENSOR_EXPLORE_RESILIENT_H
#define FLEXTENSOR_EXPLORE_RESILIENT_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "serve/batch_eval.h"
#include "support/fault_injector.h"

namespace ft {

/** Retry/deadline/repeat policy for one exploration run. */
struct ResilienceOptions
{
    /** Fault source (not owned); null or disabled = transparent layer. */
    const FaultInjector *injector = nullptr;
    /** Extra attempts after a failed measurement. */
    int maxRetries = 2;
    /** Simulated backoff before retry k: base * 2^k seconds. */
    double backoffBaseSeconds = 0.25;
    /** Kill a hung measurement after this much simulated time (0 = let
     *  it run the injector's full hang duration). */
    double trialDeadlineSeconds = 2.0;
    /** Measurements per fresh point; the lower median is committed. */
    int repeats = 1;
};

/** Counters accumulated by one ResilientEvaluator. */
struct ResilienceStats
{
    uint64_t measurements = 0; ///< fresh points committed
    uint64_t failures = 0;     ///< failed attempts (errors and hangs)
    uint64_t retries = 0;      ///< re-attempts after a failure
    uint64_t timeouts = 0;     ///< attempts that hung until killed
    uint64_t quarantined = 0;  ///< points that failed persistently
};

class ResilientEvaluator
{
  public:
    /**
     * @param eval the evaluator owning H and the simulated clock
     * @param pool optional worker pool for parallel scoring
     * @param parallelism simulated measurement width (0 = pool size,
     *        or 1 without a pool)
     * @param options retry/deadline policy and fault source
     */
    explicit ResilientEvaluator(Evaluator &eval, ThreadPool *pool = nullptr,
                                int parallelism = 0,
                                ResilienceOptions options = {});

    /**
     * Evaluate a batch with the retry/deadline policy applied per fresh
     * point; returns one value per input point. Identical to
     * BatchEvaluator::evaluate when faults are off.
     */
    std::vector<double> evaluate(const std::vector<Point> &points);

    /** Single-point convenience (full per-point charge, no batching). */
    double evaluate(const Point &p) { return evaluate(p, p.key64()); }

    /** Single-point evaluate with the key64() already in hand. */
    double evaluate(const Point &p, PointKey key);

    /** Whether an enabled fault injector is attached. */
    bool faultsActive() const;

    const ResilienceStats &stats() const { return stats_; }

    /** Persistently failing points, in quarantine order. */
    const std::vector<Point> &quarantine() const { return quarantine_; }

    bool quarantined(const Point &p) const;

    /** Reload counters and quarantine from a checkpoint. */
    void restore(const ResilienceStats &stats,
                 const std::vector<Point> &quarantine);

    Evaluator &evaluator() { return eval_; }

  private:
    /** One point's full measurement: repeats x retry loop. */
    struct Measured
    {
        double value = 0.0;     ///< median committed to H
        double simCharge = 0.0; ///< attempts + backoffs, seconds
    };
    Measured measureWithFaults(const Point &p, PointKey key,
                               double trueScore);

    Evaluator &eval_;
    BatchEvaluator batch_;
    ThreadPool *pool_;
    ResilienceOptions options_;
    ResilienceStats stats_;
    std::vector<Point> quarantine_;
    std::unordered_set<PointKey> quarantineSet_;
    /** One scoring scratch per pool worker on the fault batch path. */
    std::vector<EvalScratch> scratch_;
};

} // namespace ft

#endif // FLEXTENSOR_EXPLORE_RESILIENT_H
