/**
 * @file
 * Schedule-point evaluation with caching and a simulated exploration clock.
 *
 * The evaluator maintains the paper's evaluated set H: every point carries
 * its performance value E (GFLOPS under the target's analytical model).
 * Each *new* evaluation is charged a per-trial measurement cost on the
 * simulated clock, standing in for the compile+run latency of real
 * hardware measurement (<= 1 s on CPU/GPU per Section 5.2) or a model
 * query on FPGA.
 */
#ifndef FLEXTENSOR_EXPLORE_EVALUATOR_H
#define FLEXTENSOR_EXPLORE_EVALUATOR_H

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/verify/certificate.h"
#include "analysis/verify/diag.h"
#include "obs/obs.h"
#include "schedule/generator.h"
#include "sim/perf_model.h"
#include "space/space.h"

namespace ft {

class CostModel;
class Counter;
class Gauge;
class Histogram;

/** Performance value assigned to model-invalid schedules. */
inline constexpr double kInvalidGflops = 1e-3;

/** One evaluated point of H. */
struct Evaluated
{
    Point point;
    double gflops;
};

/**
 * Reusable per-caller scoring buffers: the incremental decode state,
 * the lowered schedule, and the verifier report for it. Scoring through
 * one of these is allocation-free once warm; concurrent scorers must
 * each own their own scratch.
 */
struct EvalScratch
{
    DecodeScratch decode;
    Scheduled sched;
    verify::DiagReport diags;
    /**
     * Per-instance adapted config for family (joint) scoring: the
     * decoded generic config with the dynamic axis's split re-fit to
     * one concrete shape. Unused by single-shape evaluation.
     */
    OpConfig adapted;
};

class Evaluator
{
  public:
    /**
     * @param anchor the compute node being scheduled
     * @param space its schedule space (must outlive the evaluator)
     * @param target the device to model
     */
    Evaluator(Operation anchor, const ScheduleSpace &space, Target target);

    virtual ~Evaluator() = default;

    /**
     * Performance value of a point (GFLOPS; kInvalidGflops when the
     * static verifier finds an Error-severity diagnostic — a race,
     * out-of-bounds access, or hardware-limit violation — or the model
     * itself rejects the schedule). Cached: re-evaluating a known point
     * is free on the simulated clock.
     */
    double evaluate(const Point &p) { return evaluate(p, p.key64()); }

    /**
     * evaluate() with the point's key64() already in hand — the hot
     * loops compute the key once for the known() probe and pass it here
     * instead of hashing the point a second time.
     */
    double evaluate(const Point &p, PointKey key);

    /**
     * Pure model query: the performance value of a point without touching
     * H, the cache, or the simulated clock. Thread-safe for concurrent
     * callers (decode + generate + perf model only); the serving layer
     * scores batches with this in parallel, then commits in order.
     * The scratch overload reuses the caller's buffers; each concurrent
     * scorer must own a distinct EvalScratch. Virtual so a joint (shape
     * family) evaluator can swap the scoring function while reusing the
     * explorers, the cache/history machinery, and the batch layer
     * unchanged.
     */
    double scoreOnly(const Point &p) const;
    virtual double scoreOnly(const Point &p, EvalScratch &scratch) const;

    /**
     * Record a measurement scored elsewhere: insert into H and the cache,
     * advance the simulated clock by `simCharge` seconds, and update the
     * best point. `p` must not be known yet. Batched measurement commits
     * points in submission order so H is deterministic.
     */
    void commitMeasured(const Point &p, double gflops, double simCharge)
    {
        commitMeasured(p, p.key64(), gflops, simCharge);
    }
    void commitMeasured(const Point &p, PointKey key, double gflops,
                        double simCharge);

    /** Whether the point has been evaluated before. */
    bool known(const Point &p) const { return known(p.key64()); }
    bool known(PointKey key) const { return cache_.count(key) > 0; }

    /**
     * Rebuild H from a checkpoint onto a fresh evaluator: every entry
     * re-enters the cache and history in order, the curve is rebuilt
     * against the recorded per-commit clock values `commitSim`, and the
     * simulated clock is set to `simSeconds` (which may exceed the last
     * commit when overhead was charged afterwards).
     */
    void restore(const std::vector<Evaluated> &history,
                 const std::vector<double> &commitSim, double simSeconds);

    /** The evaluated set H, in evaluation order. */
    const std::vector<Evaluated> &history() const { return history_; }

    /** Best performance value seen so far (E*). */
    double best() const { return best_; }

    /** The point achieving best(). */
    const Point &bestPoint() const { return bestPoint_; }

    /** Number of distinct measurements performed. */
    int numTrials() const { return static_cast<int>(history_.size()); }

    /** Simulated wall-clock seconds spent measuring. */
    double simulatedSeconds() const { return simSeconds_; }

    /** Add extra simulated time (search/model overhead of a method). */
    void chargeOverhead(double seconds) { simSeconds_ += seconds; }

    /** Per-measurement cost on the simulated clock. */
    void setMeasureCost(double seconds) { measureCost_ = seconds; }
    double measureCost() const { return measureCost_; }

    /**
     * Attach observability sinks (not owned; may both be null). Every
     * commit then emits an "eval" trace event and updates the
     * exploration metrics. Observation only: attaching sinks never
     * changes values, H order, or the simulated clock.
     */
    void setObs(const ObsContext &obs);

    /** The attached sinks (shared by the batch/resilient layers). */
    const ObsContext &obs() const { return obs_; }

    /**
     * Attach the persistent cost model (not owned; may be null). Every
     * subsequent commit records a training trial (features, GFLOPS,
     * workload group) with the model. Observation-only with respect to
     * H, the cache, and the simulated clock.
     */
    void setCostModel(CostModel *model) { costModel_ = model; }
    CostModel *costModel() const { return costModel_; }

    /**
     * Cost-model feature vector of a point (decode + lower only; no
     * verifier run, no clock charge). Single-threaded like evaluate():
     * reuses a dedicated scratch so it may interleave with scoring.
     */
    void costFeaturesFor(const Point &p, std::vector<double> &out) const;

    /**
     * Transformation-legality certificate of one candidate point
     * (decode + lower + certifySchedule; no cache, no clock charge).
     * The certification sweeps and the differential soundness oracle
     * sample spaces through this, reusing the evaluator's decode
     * machinery. Single-threaded like costFeaturesFor().
     */
    verify::ScheduleCertificate certifyPoint(const Point &p) const;

    /**
     * Workload fingerprint grouping this evaluator's trials for the
     * rank objective: FNV-1a over operator name, axis extents, and
     * device name.
     */
    uint64_t workloadKey() const { return workloadKey_; }

    /** (simulated time, best-so-far) after each measurement. */
    const std::vector<std::pair<double, double>> &curve() const
    {
        return curve_;
    }

    const ScheduleSpace &space() const { return space_; }
    const Operation &anchor() const { return anchor_; }
    const Target &target() const { return target_; }

  protected:
    /**
     * Wall-profiled scoring for the single-threaded evaluate() path:
     * emits eval.decode / eval.lower / eval.verify spans (the span
     * clock is the simulated clock, which does not advance inside one
     * evaluation). Only called when obs().wallProfile and a trace sink
     * are attached. Subclasses override to emit their own span shape.
     */
    virtual double scoreProfiled(const Point &p);

    /**
     * Run the static verifier on the lowered schedule in `scratch`,
     * updating the verify.* counters. True when an Error-severity
     * diagnostic gates the schedule (score is kInvalidGflops).
     */
    bool verifyRejects(const OpConfig &config, EvalScratch &scratch) const;

  private:
    Operation anchor_;
    const ScheduleSpace &space_;
    Target target_;
    double measureCost_;

    ObsContext obs_;
    /** Pre-resolved instrument handles (null when metrics are off). */
    Counter *commitCounter_ = nullptr;
    Gauge *bestGauge_ = nullptr;
    Gauge *simGauge_ = nullptr;
    Histogram *gflopsHist_ = nullptr;
    /** Wall-profiling counters (null unless obs.wallProfile). */
    Counter *decodeNsCounter_ = nullptr;
    Counter *lowerNsCounter_ = nullptr;
    Counter *verifyNsCounter_ = nullptr;
    /** Verifier gate counters (null when metrics are off). */
    Counter *verifyCheckedCounter_ = nullptr;
    Counter *verifyRejectedCounter_ = nullptr;
    /** Per-code rejection counters ("verify.reject.<code>"). */
    std::vector<std::pair<const char *, Counter *>> verifyCodeCounters_;

    /** Scoring buffers for the single-threaded evaluate() path. */
    mutable EvalScratch scratch_;

    /** Persistent cost model hookup (null = detached). */
    CostModel *costModel_ = nullptr;
    mutable EvalScratch costScratch_;
    mutable std::vector<double> costFeat_;
    uint64_t workloadKey_ = 0;

    std::unordered_map<PointKey, double> cache_;
    std::vector<Evaluated> history_;
    std::vector<std::pair<double, double>> curve_;
    double best_ = 0.0;
    Point bestPoint_;
    double simSeconds_ = 0.0;
};

} // namespace ft

#endif // FLEXTENSOR_EXPLORE_EVALUATOR_H
