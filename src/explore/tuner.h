/**
 * @file
 * The top-level tuning entry point: front-end analysis, space generation,
 * back-end exploration, and final schedule generation in one call
 * (Algorithm 1 of the paper, specialized to the anchor node with helper
 * nodes inlined).
 */
#ifndef FLEXTENSOR_EXPLORE_TUNER_H
#define FLEXTENSOR_EXPLORE_TUNER_H

#include <memory>
#include <string>

#include "explore/explorer.h"
#include "ir/graph.h"
#include "schedule/serialize.h"
#include "space/builder.h"

namespace ft {

namespace verify {
struct ScheduleCertificate;
} // namespace verify

/** Which exploration method to run. */
enum class Method { QMethod, PMethod, Random, AutoTvm };

/** Human-readable method name. */
std::string methodName(Method method);

/** Tuning options. */
struct TuneOptions
{
    Method method = Method::QMethod;
    ExploreOptions explore;
    /** Use the template-restricted space (implied by Method::AutoTvm). */
    bool templateRestricted = false;
    /**
     * Optional persistent tuning cache. A hit whose config is still
     * representable in the space skips exploration entirely; after a
     * search the best result is stored back.
     */
    TuningCache *cache = nullptr;
    /**
     * Attach a transformation-legality certificate
     * (analysis/verify/certificate.h) for the winning schedule to the
     * report, and emit a "certificate" trace point when a trace sink is
     * attached. Read-only over the search: certification never changes
     * the tuned result (the determinism digests pin this).
     */
    bool certify = false;
};

/** Outcome of tuning one operator. */
struct TuneReport
{
    OpConfig config;          ///< best schedule found
    double gflops = 0.0;      ///< modeled performance of the best schedule
    double kernelSeconds = 0.0;
    double simExploreSeconds = 0.0;
    int trials = 0;
    double spaceSize = 0.0;
    std::string device;
    std::vector<std::pair<double, double>> curve;
    bool fromCache = false; ///< true when served from the tuning cache
    /**
     * True when the run hit its simulated deadline and returned its
     * best-so-far result instead of finishing all trials.
     */
    bool degraded = false;
    bool resumed = false; ///< exploration resumed from a checkpoint
    /** Fault-path counters (zero without fault injection). */
    uint64_t failures = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;
    uint64_t quarantined = 0;
    /** Legality certificate of `config` (null unless TuneOptions::certify). */
    std::shared_ptr<const verify::ScheduleCertificate> certificate;
};

/** Tune the mini-graph rooted at `output` for `target` (anchor node). */
TuneReport tune(const Tensor &output, const Target &target,
                const TuneOptions &options = {});

/** Tune one specific compute node. */
TuneReport tuneOp(const Operation &anchor, const Target &target,
                  const TuneOptions &options = {});

/** Per-node results of whole-graph scheduling. */
struct GraphTuneReport
{
    /** One entry per scheduled (non-inlinable) compute node, bottom-up. */
    std::vector<std::pair<std::string, TuneReport>> nodes;
    double totalKernelSeconds = 0.0;
    double simExploreSeconds = 0.0;
};

/**
 * Algorithm 1: inline elementwise helpers, traverse the mini-graph in
 * post order, and schedule every remaining compute node for the target.
 */
GraphTuneReport tuneGraph(const Tensor &root, const Target &target,
                          const TuneOptions &options = {});

} // namespace ft

#endif // FLEXTENSOR_EXPLORE_TUNER_H
