#include "explore/evaluator.h"

#include <chrono>
#include <string>

#include "analysis/verify/verify.h"
#include "ml/costmodel.h"
#include "ml/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {

namespace {

using WallClock = std::chrono::steady_clock;

int64_t
nsBetween(WallClock::time_point a, WallClock::time_point b)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
        .count();
}

double
defaultMeasureCost(const Target &target)
{
    // Section 5.2: compile+measure is <= 1 s on CPU/GPU; on FPGA a model
    // query replaces hours of synthesis.
    switch (target.kind) {
      case DeviceKind::Gpu:
        return 0.8;
      case DeviceKind::Cpu:
        return 1.0;
      case DeviceKind::Fpga:
        return 0.05;
    }
    return 1.0;
}

/**
 * Error-severity diagnostic codes that can gate a schedule. Each gets a
 * dedicated "verify.reject.<code>" counter when metrics are attached.
 */
constexpr const char *kGatingCodes[] = {
    verify::kRaceReduceParallel, verify::kRaceStrideAlias,
    verify::kOobUnderflow,       verify::kOobOverflow,
    verify::kCovUnderCoverage,   verify::kResThreadsPerBlock,
    verify::kResSharedMem,       verify::kResRegisters,
    verify::kResVthreads,        verify::kResPeBudget,
    verify::kResBramBudget,
};

/** FNV-1a workload fingerprint: operator, shape, device. */
uint64_t
workloadKeyFor(const Operation &anchor, const Target &target)
{
    constexpr uint64_t kOffset = 1469598103934665603ULL;
    constexpr uint64_t kPrime = 1099511628211ULL;
    uint64_t h = kOffset;
    auto mixU64 = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i, v >>= 8) {
            h ^= v & 0xff;
            h *= kPrime;
        }
    };
    auto mixStr = [&](const std::string &s) {
        mixU64(s.size());
        for (unsigned char c : s) {
            h ^= c;
            h *= kPrime;
        }
    };
    mixStr(anchor->name());
    if (!anchor->isPlaceholder()) {
        const auto *c = static_cast<const ComputeOp *>(anchor.get());
        mixU64(c->axis().size());
        for (const auto &iv : c->axis())
            mixU64(static_cast<uint64_t>(iv->extent));
        mixU64(c->reduceAxis().size());
        for (const auto &iv : c->reduceAxis())
            mixU64(static_cast<uint64_t>(iv->extent));
    }
    mixStr(target.deviceName());
    return h;
}

} // namespace

Evaluator::Evaluator(Operation anchor, const ScheduleSpace &space,
                     Target target)
    : anchor_(std::move(anchor)),
      space_(space),
      target_(target),
      measureCost_(defaultMeasureCost(target))
{
    workloadKey_ = workloadKeyFor(anchor_, target_);
    // Typical tuning budgets are a few hundred to a few thousand trials;
    // pre-sizing keeps the per-commit push_back off the allocator.
    history_.reserve(1024);
    curve_.reserve(1024);
}

double
Evaluator::evaluate(const Point &p, PointKey key)
{
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    double gflops = obs_.wallProfile && obs_.trace ? scoreProfiled(p)
                                                   : scoreOnly(p, scratch_);
    commitMeasured(p, key, gflops, measureCost_);
    return gflops;
}

double
Evaluator::scoreProfiled(const Point &p)
{
    // Profiled single-threaded path: time decode and lowering
    // separately, emit them as spans carrying wall nanoseconds (the
    // span clock itself is the simulated clock, which does not
    // advance inside one evaluation).
    auto t0 = WallClock::now();
    obs_.trace->begin("eval.decode", simSeconds_);
    const OpConfig &config = space_.decodeInto(p, scratch_.decode);
    auto t1 = WallClock::now();
    int64_t decode_ns = nsBetween(t0, t1);
    obs_.trace->end("eval.decode", simSeconds_, {tint("ns", decode_ns)});
    obs_.trace->begin("eval.lower", simSeconds_);
    generateInto(anchor_, config, target_, scratch_.sched);
    auto t2 = WallClock::now();
    int64_t lower_ns = nsBetween(t1, t2);
    obs_.trace->end("eval.lower", simSeconds_, {tint("ns", lower_ns)});
    obs_.trace->begin("eval.verify", simSeconds_);
    bool rejected = verifyRejects(config, scratch_);
    auto t3 = WallClock::now();
    int64_t verify_ns = nsBetween(t2, t3);
    obs_.trace->end("eval.verify", simSeconds_, {tint("ns", verify_ns)});
    if (decodeNsCounter_) {
        decodeNsCounter_->add(static_cast<uint64_t>(decode_ns));
        lowerNsCounter_->add(static_cast<uint64_t>(lower_ns));
    }
    if (verifyNsCounter_)
        verifyNsCounter_->add(static_cast<uint64_t>(verify_ns));
    if (rejected) {
        obs_.trace->point("verify.reject", simSeconds_,
                          {tstr("code", scratch_.diags.firstError()->code)});
        return kInvalidGflops;
    }
    PerfResult perf = modelPerf(scratch_.sched.features, target_);
    return perf.valid ? perf.gflops : kInvalidGflops;
}

double
Evaluator::scoreOnly(const Point &p) const
{
    EvalScratch scratch;
    return scoreOnly(p, scratch);
}

double
Evaluator::scoreOnly(const Point &p, EvalScratch &scratch) const
{
    if (decodeNsCounter_) {
        // Counter-only profiling (atomic adds, safe from worker
        // threads). Spans are emitted only by the single-threaded
        // evaluate() path above.
        auto t0 = WallClock::now();
        const OpConfig &config = space_.decodeInto(p, scratch.decode);
        auto t1 = WallClock::now();
        generateInto(anchor_, config, target_, scratch.sched);
        auto t2 = WallClock::now();
        bool rejected = verifyRejects(config, scratch);
        auto t3 = WallClock::now();
        decodeNsCounter_->add(static_cast<uint64_t>(nsBetween(t0, t1)));
        lowerNsCounter_->add(static_cast<uint64_t>(nsBetween(t1, t2)));
        if (verifyNsCounter_)
            verifyNsCounter_->add(static_cast<uint64_t>(nsBetween(t2, t3)));
        if (rejected)
            return kInvalidGflops;
        PerfResult perf = modelPerf(scratch.sched.features, target_);
        return perf.valid ? perf.gflops : kInvalidGflops;
    }
    const OpConfig &config = space_.decodeInto(p, scratch.decode);
    generateInto(anchor_, config, target_, scratch.sched);
    if (verifyRejects(config, scratch))
        return kInvalidGflops;
    PerfResult perf = modelPerf(scratch.sched.features, target_);
    return perf.valid ? perf.gflops : kInvalidGflops;
}

bool
Evaluator::verifyRejects(const OpConfig &config, EvalScratch &scratch) const
{
    scratch.diags.clear();
    verify::verifyScheduleInto(scratch.sched, target_, &config,
                               scratch.diags);
    if (verifyCheckedCounter_)
        verifyCheckedCounter_->add();
    if (!scratch.diags.hasError())
        return false;
    if (verifyRejectedCounter_) {
        verifyRejectedCounter_->add();
        // Attribute the rejection to its gating (first-error) code so
        // the per-code counters sum to verify.rejected and agree with
        // the "verify.reject" trace points.
        const verify::Diag *e = scratch.diags.firstError();
        for (const auto &[code, counter] : verifyCodeCounters_) {
            if (e->code == code) {
                counter->add();
                break;
            }
        }
    }
    return true;
}

void
Evaluator::setObs(const ObsContext &obs)
{
    obs_ = obs;
    commitCounter_ = maybeCounter(obs_.metrics, "explore.evals");
    bestGauge_ = maybeGauge(obs_.metrics, "explore.best_gflops");
    simGauge_ = maybeGauge(obs_.metrics, "explore.sim_seconds");
    gflopsHist_ = maybeHistogram(obs_.metrics, "eval.gflops",
                                 {1.0, 10.0, 100.0, 1000.0, 10000.0});
    if (obs_.wallProfile) {
        decodeNsCounter_ = maybeCounter(obs_.metrics, "eval.decode.ns");
        lowerNsCounter_ = maybeCounter(obs_.metrics, "eval.lower.ns");
        verifyNsCounter_ = maybeCounter(obs_.metrics, "eval.verify.ns");
    } else {
        decodeNsCounter_ = nullptr;
        lowerNsCounter_ = nullptr;
        verifyNsCounter_ = nullptr;
    }
    verifyCheckedCounter_ = maybeCounter(obs_.metrics, "verify.checked");
    verifyRejectedCounter_ = maybeCounter(obs_.metrics, "verify.rejected");
    verifyCodeCounters_.clear();
    if (obs_.metrics) {
        for (const char *code : kGatingCodes)
            verifyCodeCounters_.emplace_back(
                code, maybeCounter(obs_.metrics,
                                   std::string("verify.reject.") + code));
    }
}

void
Evaluator::commitMeasured(const Point &p, PointKey key, double gflops,
                          double simCharge)
{
    auto [it, inserted] = cache_.emplace(key, gflops);
    FT_ASSERT(inserted, "committing an already-known point");
    (void)it;
    history_.push_back({p, gflops});
    simSeconds_ += simCharge;
    if (gflops > best_) {
        best_ = gflops;
        bestPoint_ = p;
    }
    curve_.emplace_back(simSeconds_, best_);
    if (obs_.trace) {
        obs_.trace->point(
            "eval", simSeconds_,
            {tint("trial", static_cast<int64_t>(history_.size())),
             tstr("key", p.key()), treal("gflops", gflops),
             treal("best", best_)});
    }
    if (commitCounter_) {
        commitCounter_->add();
        bestGauge_->set(best_);
        simGauge_->set(simSeconds_);
        gflopsHist_->observe(gflops);
    }
    if (costModel_) {
        costFeaturesFor(p, costFeat_);
        costModel_->recordTrial(costFeat_, gflops, workloadKey_, &obs_,
                                simSeconds_);
    }
}

void
Evaluator::costFeaturesFor(const Point &p, std::vector<double> &out) const
{
    const OpConfig &config = space_.decodeInto(p, costScratch_.decode);
    generateInto(anchor_, config, target_, costScratch_.sched);
    costFeaturesInto(costScratch_.sched, target_, out);
}

verify::ScheduleCertificate
Evaluator::certifyPoint(const Point &p) const
{
    const OpConfig &config = space_.decodeInto(p, costScratch_.decode);
    generateInto(anchor_, config, target_, costScratch_.sched);
    return verify::certifySchedule(costScratch_.sched, target_, &config);
}

void
Evaluator::restore(const std::vector<Evaluated> &history,
                   const std::vector<double> &commitSim, double simSeconds)
{
    FT_ASSERT(history_.empty(), "restoring a non-empty evaluator");
    FT_ASSERT(history.size() == commitSim.size(),
              "history/clock length mismatch");
    for (size_t i = 0; i < history.size(); ++i) {
        const Evaluated &e = history[i];
        cache_.emplace(e.point.key64(), e.gflops);
        history_.push_back(e);
        if (e.gflops > best_) {
            best_ = e.gflops;
            bestPoint_ = e.point;
        }
        curve_.emplace_back(commitSim[i], best_);
    }
    simSeconds_ = simSeconds;
}

} // namespace ft
