#include "explore/evaluator.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {

namespace {

double
defaultMeasureCost(const Target &target)
{
    // Section 5.2: compile+measure is <= 1 s on CPU/GPU; on FPGA a model
    // query replaces hours of synthesis.
    switch (target.kind) {
      case DeviceKind::Gpu:
        return 0.8;
      case DeviceKind::Cpu:
        return 1.0;
      case DeviceKind::Fpga:
        return 0.05;
    }
    return 1.0;
}

} // namespace

Evaluator::Evaluator(Operation anchor, const ScheduleSpace &space,
                     Target target)
    : anchor_(std::move(anchor)),
      space_(space),
      target_(target),
      measureCost_(defaultMeasureCost(target))
{}

double
Evaluator::evaluate(const Point &p)
{
    auto it = cache_.find(p.key());
    if (it != cache_.end())
        return it->second;
    double gflops = scoreOnly(p);
    commitMeasured(p, gflops, measureCost_);
    return gflops;
}

double
Evaluator::scoreOnly(const Point &p) const
{
    OpConfig config = space_.decode(p);
    Scheduled s = generate(anchor_, config, target_);
    PerfResult perf = modelPerf(s.features, target_);
    return perf.valid ? perf.gflops : kInvalidGflops;
}

void
Evaluator::setObs(const ObsContext &obs)
{
    obs_ = obs;
    commitCounter_ = maybeCounter(obs_.metrics, "explore.evals");
    bestGauge_ = maybeGauge(obs_.metrics, "explore.best_gflops");
    simGauge_ = maybeGauge(obs_.metrics, "explore.sim_seconds");
    gflopsHist_ = maybeHistogram(obs_.metrics, "eval.gflops",
                                 {1.0, 10.0, 100.0, 1000.0, 10000.0});
}

void
Evaluator::commitMeasured(const Point &p, double gflops, double simCharge)
{
    auto [it, inserted] = cache_.emplace(p.key(), gflops);
    FT_ASSERT(inserted, "committing an already-known point");
    (void)it;
    history_.push_back({p, gflops});
    simSeconds_ += simCharge;
    if (gflops > best_) {
        best_ = gflops;
        bestPoint_ = p;
    }
    curve_.emplace_back(simSeconds_, best_);
    if (obs_.trace) {
        obs_.trace->point(
            "eval", simSeconds_,
            {tint("trial", static_cast<int64_t>(history_.size())),
             tstr("key", p.key()), treal("gflops", gflops),
             treal("best", best_)});
    }
    if (commitCounter_) {
        commitCounter_->add();
        bestGauge_->set(best_);
        simGauge_->set(simSeconds_);
        gflopsHist_->observe(gflops);
    }
}

bool
Evaluator::known(const Point &p) const
{
    return cache_.count(p.key()) > 0;
}

void
Evaluator::restore(const std::vector<Evaluated> &history,
                   const std::vector<double> &commitSim, double simSeconds)
{
    FT_ASSERT(history_.empty(), "restoring a non-empty evaluator");
    FT_ASSERT(history.size() == commitSim.size(),
              "history/clock length mismatch");
    for (size_t i = 0; i < history.size(); ++i) {
        const Evaluated &e = history[i];
        cache_.emplace(e.point.key(), e.gflops);
        history_.push_back(e);
        if (e.gflops > best_) {
            best_ = e.gflops;
            bestPoint_ = e.point;
        }
        curve_.emplace_back(commitSim[i], best_);
    }
    simSeconds_ = simSeconds;
}

} // namespace ft
