#include "explore/tuner.h"

#include "analysis/static_analyzer.h"
#include "analysis/verify/certificate.h"
#include "ir/inline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {

namespace {

/**
 * Certify the winning schedule and attach the result (TuneOptions::
 * certify). Observation-only: runs after the search is fully decided.
 */
void
attachCertificate(TuneReport &report, const Scheduled &s,
                  const Target &target, const TuneOptions &options,
                  double sim)
{
    if (!options.certify)
        return;
    auto cert = std::make_shared<verify::ScheduleCertificate>(
        verify::certifySchedule(s, target, &report.config));
    const ObsContext &obs = options.explore.obs;
    if (obs.trace) {
        obs.trace->point(
            "certificate", sim,
            {tstr("op", cert->op),
             tstr("verdict", verify::verdictName(cert->verdict)),
             tint("obligations",
                  static_cast<int64_t>(cert->obligations.size())),
             tint("refuted", cert->count(verify::Verdict::Refuted)),
             tint("unknown", cert->count(verify::Verdict::Unknown))});
    }
    report.certificate = std::move(cert);
}

} // namespace

std::string
methodName(Method method)
{
    switch (method) {
      case Method::QMethod: return "Q-method";
      case Method::PMethod: return "P-method";
      case Method::Random: return "random";
      case Method::AutoTvm: return "AutoTVM";
    }
    return "?";
}

TuneReport
tuneOp(const Operation &anchor, const Target &target,
       const TuneOptions &options)
{
    const ObsContext &obs = options.explore.obs;
    if (obs.trace) {
        obs.trace->meta(
            "run",
            {tstr("op", anchor->name()),
             tstr("device", target.deviceName()),
             tstr("method", methodName(options.method)),
             tint("seed", static_cast<int64_t>(options.explore.seed)),
             tint("trials", options.explore.trials)});
        // The space is built before any measurement: sim clock is 0.
        obs.trace->begin("space_build", 0.0);
    }
    SpaceOptions space_options;
    space_options.templateRestricted =
        options.templateRestricted || options.method == Method::AutoTvm;
    ScheduleSpace space = buildSpace(anchor, target, space_options);
    if (obs.trace) {
        obs.trace->end("space_build", 0.0,
                       {treal("size", space.size()),
                        tint("dims", space.numSubSpaces()),
                        tint("directions", space.numDirections())});
    }
    if (obs.metrics)
        obs.metrics->counter("tuner.runs").add();

    const std::string key =
        options.cache ? tuningKeyFor(anchor, target.deviceName()) : "";
    if (options.cache) {
        if (auto hit = options.cache->lookup(key)) {
            if (auto point = space.pointOf(hit->config)) {
                Scheduled s = generate(anchor, hit->config, target);
                PerfResult perf = modelPerf(s.features, target);
                if (perf.valid) {
                    TuneReport report;
                    report.config = hit->config;
                    report.gflops = perf.gflops;
                    report.kernelSeconds = perf.seconds;
                    report.spaceSize = space.size();
                    report.device = target.deviceName();
                    report.fromCache = true;
                    if (obs.trace) {
                        obs.trace->point("report", 0.0,
                                         {treal("best", report.gflops),
                                          tint("trials", 0),
                                          tbool("cached", true)});
                    }
                    if (obs.metrics)
                        obs.metrics->counter("tuner.cache_hits").add();
                    attachCertificate(report, s, target, options, 0.0);
                    return report;
                }
            }
        }
    }

    Evaluator eval(anchor, space, target);
    ExploreResult result;
    switch (options.method) {
      case Method::QMethod:
        result = exploreQMethod(eval, options.explore);
        break;
      case Method::PMethod:
        result = explorePMethod(eval, options.explore);
        break;
      case Method::Random:
        result = exploreRandom(eval, options.explore);
        break;
      case Method::AutoTvm:
        result = exploreAutoTvm(eval, options.explore);
        break;
    }

    TuneReport report;
    report.config = space.decode(result.bestPoint);
    report.gflops = result.bestGflops;
    Scheduled s = generate(anchor, report.config, target);
    PerfResult perf = modelPerf(s.features, target);
    report.kernelSeconds = perf.valid ? perf.seconds : 0.0;
    report.simExploreSeconds = result.simSeconds;
    report.trials = result.trialsUsed;
    report.spaceSize = space.size();
    report.device = target.deviceName();
    report.curve = std::move(result.curve);
    report.degraded = result.deadlineExceeded;
    report.resumed = result.resumed;
    report.failures = result.failures;
    report.retries = result.retries;
    report.timeouts = result.timeouts;
    report.quarantined = result.quarantined;

    if (options.cache)
        options.cache->put({key, report.config, report.gflops});
    attachCertificate(report, s, target, options, result.simSeconds);

    if (obs.trace) {
        obs.trace->point("report", result.simSeconds,
                         {treal("best", report.gflops),
                          tint("trials", report.trials),
                          tbool("degraded", report.degraded),
                          tbool("resumed", report.resumed),
                          tbool("cached", false)});
    }
    if (obs.metrics && report.degraded)
        obs.metrics->counter("tuner.degraded_reports").add();

    inform("tuned ", anchor->name(), " on ", report.device, " with ",
           methodName(options.method), ": ", report.gflops,
           " GFLOPS after ", report.trials, " trials",
           report.degraded ? " (degraded: deadline reached)" : "");
    return report;
}

TuneReport
tune(const Tensor &output, const Target &target, const TuneOptions &options)
{
    MiniGraph graph(output);
    return tuneOp(anchorOp(graph), target, options);
}

GraphTuneReport
tuneGraph(const Tensor &root, const Target &target,
          const TuneOptions &options)
{
    // Fuse elementwise helpers into their consumers first, then schedule
    // every remaining node bottom-up (Algorithm 1).
    Tensor fused_root = inlineGraph(root);
    GraphTuneReport report;
    for (const auto &op : postOrderTraverse(fused_root)) {
        if (op->isPlaceholder() || op->isConstant())
            continue;
        TuneReport node_report = tuneOp(op, target, options);
        report.totalKernelSeconds += node_report.kernelSeconds;
        report.simExploreSeconds += node_report.simExploreSeconds;
        report.nodes.emplace_back(op->name(), std::move(node_report));
    }
    return report;
}

} // namespace ft
