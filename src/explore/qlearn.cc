#include "explore/explorer.h"

#include <algorithm>
#include <chrono>

#include "explore/checkpoint.h"
#include "explore/sa.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "support/rng.h"

namespace ft {

namespace {

/** One replay-buffer record: (state, action, next-state, reward). The
 *  points are kept alongside the features so the buffer can be
 *  checkpointed as coordinates and rebuilt exactly on resume. */
struct Transition
{
    Point start;
    Point next;
    std::vector<float> stateFeatures;
    int direction;
    std::vector<float> nextFeatures;
    float reward;
};

std::vector<float>
toFloat(const std::vector<double> &v)
{
    return std::vector<float>(v.begin(), v.end());
}

int64_t
wallNsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Seed H with random points so SA has something to choose from. */
void
warmup(ResilientEvaluator &reval, Rng &rng, const ExploreOptions &options)
{
    // One parallel measurement batch: seeds, random warmup, and the
    // deterministic initial point, committed in that order.
    Evaluator &eval = reval.evaluator();
    const ScheduleSpace &space = eval.space();
    std::vector<Point> points = options.seedPoints;
    points.reserve(points.size() + options.warmupPoints + 1);
    for (int i = 0; i < options.warmupPoints; ++i)
        points.push_back(space.randomPoint(rng));
    points.push_back(space.initialPoint());
    if (options.obs.trace) {
        options.obs.trace->begin(
            "warmup", eval.simulatedSeconds(),
            {tint("points", static_cast<int64_t>(points.size()))});
    }
    reval.evaluate(points);
    if (options.obs.trace)
        options.obs.trace->end("warmup", eval.simulatedSeconds());
    if (options.obs.metrics)
        options.obs.metrics->counter("explore.warmup_points")
            .add(points.size());
}

ExploreResult
finish(const Evaluator &eval, const ResilientEvaluator &reval,
       bool deadline_exceeded, bool resumed)
{
    ExploreResult out;
    out.bestPoint = eval.bestPoint();
    out.bestGflops = eval.best();
    out.trialsUsed = eval.numTrials();
    out.simSeconds = eval.simulatedSeconds();
    out.curve = eval.curve();
    out.deadlineExceeded = deadline_exceeded;
    out.resumed = resumed;
    out.failures = reval.stats().failures;
    out.retries = reval.stats().retries;
    out.timeouts = reval.stats().timeouts;
    out.quarantined = reval.stats().quarantined;
    return out;
}

bool
reachedTarget(const Evaluator &eval, const ExploreOptions &options)
{
    return options.targetGflops > 0.0 &&
           eval.best() >= options.targetGflops;
}

bool
deadlineHit(const Evaluator &eval, const ExploreOptions &options)
{
    return options.deadlineSimSeconds > 0.0 &&
           eval.simulatedSeconds() >= options.deadlineSimSeconds;
}

/**
 * Load the checkpoint named by the options if it belongs to this run.
 * Returns the state without applying it, so method-specific parts (the
 * Q-network) can be validated before any shared state is touched.
 */
std::optional<CheckpointState>
loadCompatible(const ExploreOptions &options, const std::string &method,
               const ScheduleSpace &space)
{
    if (options.checkpointPath.empty())
        return std::nullopt;
    auto state = loadCheckpoint(options.checkpointPath);
    if (!state)
        return std::nullopt;
    if (!checkpointCompatible(*state, method, options.seed, space) ||
        state->trial > options.trials) {
        warn("checkpoint ", options.checkpointPath,
             " belongs to a different run; starting fresh");
        return std::nullopt;
    }
    return state;
}

/** Snapshot after finishing trial `trial` when the period says so. */
void
maybeSnapshot(const ExploreOptions &options, const std::string &method,
              int trial, const Evaluator &eval, const Rng &rng,
              const ResilientEvaluator &reval,
              const Mlp *net = nullptr,
              const std::vector<Transition> *replay = nullptr)
{
    if (options.checkpointPath.empty() ||
        options.checkpointEveryTrials <= 0 ||
        (trial + 1) % options.checkpointEveryTrials != 0) {
        return;
    }
    CheckpointState state = captureCommon(method, options.seed, trial + 1,
                                          eval, rng, reval);
    if (net)
        state.netState = net->checkpointState();
    if (replay) {
        state.replay.reserve(replay->size());
        for (const Transition &t : *replay)
            state.replay.push_back({t.start.idx, t.direction, t.next.idx});
    }
    if (options.obs.trace) {
        options.obs.trace->begin("checkpoint_save", eval.simulatedSeconds(),
                                 {tint("trial", trial + 1)});
    }
    bool saved = saveCheckpoint(options.checkpointPath, state);
    if (options.obs.trace) {
        options.obs.trace->end("checkpoint_save", eval.simulatedSeconds(),
                               {tbool("ok", saved)});
    }
    if (options.obs.metrics)
        options.obs.metrics->counter("checkpoint.saves").add();
    if (!saved)
        warn("could not write checkpoint to ", options.checkpointPath);
}

/** Rebuild the replay buffer from checkpointed coordinates: features and
 *  rewards are recomputed from the restored H (all cache hits). */
std::vector<Transition>
rebuildReplay(const CheckpointState &state, Evaluator &eval)
{
    const ScheduleSpace &space = eval.space();
    std::vector<Transition> replay;
    replay.reserve(state.replay.size());
    for (const ReplayTransition &r : state.replay) {
        Transition t;
        t.start = Point{r.start};
        t.next = Point{r.next};
        t.direction = r.direction;
        t.stateFeatures = toFloat(space.features(t.start));
        t.nextFeatures = toFloat(space.features(t.next));
        double e_start = eval.evaluate(t.start);
        double e_next = eval.evaluate(t.next);
        t.reward = static_cast<float>((e_next - e_start) /
                                      std::max(e_start, 1e-9));
        replay.push_back(std::move(t));
    }
    return replay;
}

} // namespace

ExploreResult
exploreQMethod(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    TraceRecorder *trace = options.obs.trace;
    MetricsRegistry *metrics = options.obs.metrics;
    Counter *step_counter = maybeCounter(metrics, "explore.steps");
    Counter *forward_counter = maybeCounter(metrics, "q.forward_passes");
    Counter *train_counter = maybeCounter(metrics, "q.train_rounds");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);

    // RNG draw order must match an uninterrupted fresh run exactly:
    // warmup draws come before network init, so load the checkpoint (a
    // pure file read) first and only skip warmup when resuming. The
    // restored RNG state overwrites every draw made before restoreCommon.
    std::optional<CheckpointState> ckpt =
        loadCompatible(options, "Q-method", space);
    if (!ckpt)
        warmup(reval, rng, options);

    const int feature_dim = space.featureDim();
    const int num_dirs = space.numDirections();
    // Section 5.1: four fully-connected layers with ReLU, online training
    // with AdaDelta, and a target network Y stabilizing the updates.
    Mlp netX({feature_dim, options.hidden, options.hidden, options.hidden,
              num_dirs},
             rng);
    Mlp netY = netX; // same initial parameters

    SaChooser chooser(options.saGamma);
    std::vector<Transition> replay;
    // At most one transition lands per start per trial; cap the reserve
    // so a huge trial budget cannot pre-claim unbounded memory.
    replay.reserve(std::min<size_t>(
        static_cast<size_t>(std::max(options.trials, 0)) *
            static_cast<size_t>(std::max(options.startingPoints, 1)),
        size_t(1) << 16));
    AdaDeltaOptions adadelta;

    // Reused hot-loop buffers: the per-step feature batch (row-major
    // starts x feature_dim), the decode scratch feeding it, the network
    // scratch, the direction ranking, and the training gather buffers.
    DecodeScratch decode_scratch;
    std::vector<double> feat_d;
    std::vector<float> batch_feat;
    MlpScratch net_scratch;
    std::vector<int> order(num_dirs);
    std::vector<size_t> replay_idx;
    std::vector<float> train_feat;
    std::vector<float> train_state;
    std::vector<int> train_action;
    std::vector<float> targets;
    Counter *qf_ns_counter = options.obs.wallProfile
                                 ? maybeCounter(metrics, "q.forward_batch.ns")
                                 : nullptr;

    int start_trial = 0;
    bool resumed = false;
    if (ckpt) {
        if (netX.restoreCheckpointState(ckpt->netState)) {
            restoreCommon(*ckpt, eval, rng, reval);
            netY.copyValuesFrom(netX);
            replay = rebuildReplay(*ckpt, eval);
            start_trial = ckpt->trial;
            resumed = true;
            inform("resumed Q-method run at trial ", start_trial, " from ",
                   options.checkpointPath);
        } else {
            warn("checkpoint network shape mismatch; starting fresh");
            warmup(reval, rng, options);
        }
    }

    bool deadline_exceeded = false;
    for (int trial = start_trial; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        if (deadlineHit(eval, options)) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("trial", trial)});
        }
        auto starts = chooser.chooseMany(eval, rng, options.startingPoints);
        const int m = static_cast<int>(starts.size());

        // Batched direction inference: every start's feature row is
        // decoded into one matrix and the Q-network runs a single
        // blocked pass over it. Features and the network are fixed
        // within a trial, so the per-row results are bit-identical to
        // the former per-start forward() calls.
        if (trace) {
            trace->begin("q_forward_batch", eval.simulatedSeconds(),
                         {tint("starts", m)});
        }
        const auto qf_t0 = std::chrono::steady_clock::now();
        batch_feat.resize(static_cast<size_t>(m) * feature_dim);
        for (int s = 0; s < m; ++s) {
            space.featuresInto(starts[s], decode_scratch, feat_d);
            float *row = batch_feat.data() +
                         static_cast<size_t>(s) * feature_dim;
            for (int i = 0; i < feature_dim; ++i)
                row[i] = static_cast<float>(feat_d[i]);
        }
        const float *batch_q =
            m > 0 ? netX.forwardBatch(batch_feat.data(), m, net_scratch)
                  : nullptr;
        if (qf_ns_counter)
            qf_ns_counter->add(static_cast<uint64_t>(wallNsSince(qf_t0)));
        if (trace) {
            if (options.obs.wallProfile) {
                trace->end("q_forward_batch", eval.simulatedSeconds(),
                           {tint("ns", wallNsSince(qf_t0))});
            } else {
                trace->end("q_forward_batch", eval.simulatedSeconds());
            }
        }
        if (forward_counter)
            forward_counter->add(static_cast<uint64_t>(m));

        for (int s = 0; s < m; ++s) {
            const Point &start = starts[s];
            const float *q = batch_q + static_cast<size_t>(s) * num_dirs;

            // Rank directions by predicted Q-value; epsilon-greedy.
            for (int d = 0; d < num_dirs; ++d)
                order[d] = d;
            const bool greedy = !rng.chance(options.epsilon);
            if (!greedy) {
                rng.shuffle(order);
            } else {
                std::sort(order.begin(), order.end(),
                          [&](int a, int b) { return q[a] > q[b]; });
            }

            // Take the best direction that leads to an unvisited point.
            for (int d : order) {
                auto next = space.move(start, d);
                if (!next)
                    continue;
                const PointKey next_key = next->key64();
                if (eval.known(next_key))
                    continue;
                double e_start = eval.evaluate(start);
                double e_next = reval.evaluate(*next, next_key);
                float reward = static_cast<float>(
                    (e_next - e_start) / std::max(e_start, 1e-9));
                const float *feat_row =
                    batch_feat.data() + static_cast<size_t>(s) * feature_dim;
                space.featuresInto(*next, decode_scratch, feat_d);
                replay.push_back(
                    {start, *next,
                     std::vector<float>(feat_row, feat_row + feature_dim),
                     d, toFloat(feat_d), reward});
                if (trace) {
                    trace->point("q_step", eval.simulatedSeconds(),
                                 {tstr("key", next->key()), tint("dir", d),
                                  treal("reward", reward),
                                  tbool("greedy", greedy)});
                }
                break;
            }
        }

        // Periodic online training of X against the target network Y.
        if ((trial + 1) % options.trainEvery == 0 && !replay.empty()) {
            if (trace)
                trace->begin("q_train", eval.simulatedSeconds());
            netX.zeroGrad();
            int batch = std::min<int>(options.replayBatch,
                                      static_cast<int>(replay.size()));
            // Pre-draw the replay sample (same RNG draw order as the
            // former per-sample loop: nothing between the draws consumed
            // randomness), then run the target network over the whole
            // sample in one blocked pass.
            replay_idx.resize(batch);
            for (int b = 0; b < batch; ++b)
                replay_idx[b] = rng.index(replay.size());
            train_feat.resize(static_cast<size_t>(batch) * feature_dim);
            for (int b = 0; b < batch; ++b) {
                const Transition &t = replay[replay_idx[b]];
                std::copy(t.nextFeatures.begin(), t.nextFeatures.end(),
                          train_feat.begin() +
                              static_cast<size_t>(b) * feature_dim);
            }
            const float *next_q_all =
                netY.forwardBatch(train_feat.data(), batch, net_scratch);
            targets.resize(batch);
            for (int b = 0; b < batch; ++b) {
                const float *row =
                    next_q_all + static_cast<size_t>(b) * num_dirs;
                // First-largest scan: same element as std::max_element.
                float max_next = row[0];
                for (int d = 1; d < num_dirs; ++d) {
                    if (row[d] > max_next)
                        max_next = row[d];
                }
                targets[b] = static_cast<float>(options.qAlpha) * max_next +
                             replay[replay_idx[b]].reward;
            }
            // One batched gradient pass: forward runs once over the
            // sample lanes, gradients accumulate in index order — the
            // same values the per-sample accumulateGrad loop produced.
            train_state.resize(static_cast<size_t>(batch) * feature_dim);
            train_action.resize(batch);
            for (int b = 0; b < batch; ++b) {
                const Transition &t = replay[replay_idx[b]];
                std::copy(t.stateFeatures.begin(), t.stateFeatures.end(),
                          train_state.begin() +
                              static_cast<size_t>(b) * feature_dim);
                train_action[b] = t.direction;
            }
            netX.accumulateGradBatch(train_state.data(), batch,
                                     train_action.data(), targets.data(),
                                     net_scratch);
            netX.step(adadelta);
            netY.copyValuesFrom(netX);
            if (trace) {
                trace->end("q_train", eval.simulatedSeconds(),
                           {tint("batch", batch)});
            }
            if (train_counter)
                train_counter->add();
        }
        eval.chargeOverhead(options.stepOverheadSeconds);
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
        maybeSnapshot(options, "Q-method", trial, eval,
                      rng, reval, &netX, &replay);
    }
    return finish(eval, reval, deadline_exceeded, resumed);
}

ExploreResult
explorePMethod(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    TraceRecorder *trace = options.obs.trace;
    Counter *step_counter = maybeCounter(options.obs.metrics,
                                         "explore.steps");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);
    SaChooser chooser(options.saGamma);
    const int num_dirs = space.numDirections();
    // Reused across starts; a neighborhood holds at most num_dirs points.
    std::vector<Point> neighborhood;
    neighborhood.reserve(num_dirs);

    int start_trial = 0;
    bool resumed = false;
    if (auto ckpt = loadCompatible(options, "P-method",
                                   space)) {
        restoreCommon(*ckpt, eval, rng, reval);
        start_trial = ckpt->trial;
        resumed = true;
        inform("resumed P-method run at trial ", start_trial, " from ",
               options.checkpointPath);
    }
    if (!resumed)
        warmup(reval, rng, options);

    bool deadline_exceeded = false;
    for (int trial = start_trial; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        if (deadlineHit(eval, options)) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("trial", trial)});
        }
        auto starts = chooser.chooseMany(eval, rng, options.startingPoints);
        for (const Point &start : starts) {
            if (reachedTarget(eval, options))
                break;
            if (deadlineHit(eval, options)) {
                deadline_exceeded = true;
                break;
            }
            // P-method: measure the full neighborhood of the starting
            // point as one parallel batch (early-stop granularity is a
            // whole neighborhood, matching batched measurement).
            neighborhood.clear();
            for (int d = 0; d < num_dirs; ++d) {
                auto next = space.move(start, d);
                if (next && !eval.known(*next))
                    neighborhood.push_back(std::move(*next));
            }
            reval.evaluate(neighborhood);
        }
        eval.chargeOverhead(options.stepOverheadSeconds);
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
        maybeSnapshot(options, "P-method", trial, eval,
                      rng, reval);
    }
    return finish(eval, reval, deadline_exceeded, resumed);
}

ExploreResult
exploreRandom(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    TraceRecorder *trace = options.obs.trace;
    Counter *step_counter = maybeCounter(options.obs.metrics,
                                         "explore.steps");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);

    int start_trial = 0;
    bool resumed = false;
    if (auto ckpt = loadCompatible(options, "random",
                                   space)) {
        restoreCommon(*ckpt, eval, rng, reval);
        start_trial = ckpt->trial;
        resumed = true;
    }
    if (!resumed) {
        for (const Point &p : options.seedPoints)
            reval.evaluate(p);
    }

    bool deadline_exceeded = false;
    for (int trial = start_trial; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        if (deadlineHit(eval, options)) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("trial", trial)});
        }
        reval.evaluate(space.randomPoint(rng));
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
        maybeSnapshot(options, "random", trial, eval,
                      rng, reval);
    }
    return finish(eval, reval, deadline_exceeded, resumed);
}

} // namespace ft
