#include "explore/explorer.h"

#include <algorithm>

#include "explore/sa.h"
#include "nn/mlp.h"
#include "serve/batch_eval.h"
#include "support/logging.h"
#include "support/rng.h"

namespace ft {

namespace {

/** One replay-buffer record: (state, action, next-state, reward). */
struct Transition
{
    std::vector<float> stateFeatures;
    int direction;
    std::vector<float> nextFeatures;
    float reward;
};

std::vector<float>
toFloat(const std::vector<double> &v)
{
    return std::vector<float>(v.begin(), v.end());
}

/** Seed H with random points so SA has something to choose from. */
void
warmup(Evaluator &eval, Rng &rng, const ExploreOptions &options)
{
    // One parallel measurement batch: seeds, random warmup, and the
    // deterministic initial point, committed in that order.
    std::vector<Point> points = options.seedPoints;
    points.reserve(points.size() + options.warmupPoints + 1);
    for (int i = 0; i < options.warmupPoints; ++i)
        points.push_back(eval.space().randomPoint(rng));
    points.push_back(eval.space().initialPoint());
    BatchEvaluator(eval, options.evalPool, options.measureParallelism)
        .evaluate(points);
}

ExploreResult
finish(const Evaluator &eval)
{
    ExploreResult out;
    out.bestPoint = eval.bestPoint();
    out.bestGflops = eval.best();
    out.trialsUsed = eval.numTrials();
    out.simSeconds = eval.simulatedSeconds();
    out.curve = eval.curve();
    return out;
}

bool
reachedTarget(const Evaluator &eval, const ExploreOptions &options)
{
    return options.targetGflops > 0.0 &&
           eval.best() >= options.targetGflops;
}

} // namespace

ExploreResult
exploreQMethod(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    warmup(eval, rng, options);

    const int feature_dim = space.featureDim();
    const int num_dirs = space.numDirections();
    // Section 5.1: four fully-connected layers with ReLU, online training
    // with AdaDelta, and a target network Y stabilizing the updates.
    Mlp netX({feature_dim, options.hidden, options.hidden, options.hidden,
              num_dirs},
             rng);
    Mlp netY = netX; // same initial parameters

    SaChooser chooser(options.saGamma);
    std::vector<Transition> replay;
    AdaDeltaOptions adadelta;

    for (int trial = 0; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        auto starts = chooser.chooseMany(eval, rng, options.startingPoints);
        for (const Point &start : starts) {
            std::vector<float> feat = toFloat(space.features(start));
            std::vector<float> q = netX.forward(feat);

            // Rank directions by predicted Q-value; epsilon-greedy.
            std::vector<int> order(num_dirs);
            for (int d = 0; d < num_dirs; ++d)
                order[d] = d;
            if (rng.chance(options.epsilon)) {
                rng.shuffle(order);
            } else {
                std::sort(order.begin(), order.end(),
                          [&](int a, int b) { return q[a] > q[b]; });
            }

            // Take the best direction that leads to an unvisited point.
            for (int d : order) {
                auto next = space.move(start, d);
                if (!next || eval.known(*next))
                    continue;
                double e_start = eval.evaluate(start);
                double e_next = eval.evaluate(*next);
                float reward = static_cast<float>(
                    (e_next - e_start) / std::max(e_start, 1e-9));
                replay.push_back({feat, d,
                                  toFloat(space.features(*next)), reward});
                break;
            }
        }

        // Periodic online training of X against the target network Y.
        if ((trial + 1) % options.trainEvery == 0 && !replay.empty()) {
            netX.zeroGrad();
            int batch = std::min<int>(options.replayBatch,
                                      static_cast<int>(replay.size()));
            for (int b = 0; b < batch; ++b) {
                const Transition &t = replay[rng.index(replay.size())];
                std::vector<float> next_q = netY.forward(t.nextFeatures);
                float max_next =
                    *std::max_element(next_q.begin(), next_q.end());
                float target = static_cast<float>(options.qAlpha) *
                                   max_next +
                               t.reward;
                netX.accumulateGrad(t.stateFeatures, t.direction, target);
            }
            netX.step(adadelta);
            netY.copyValuesFrom(netX);
        }
        eval.chargeOverhead(options.stepOverheadSeconds);
    }
    return finish(eval);
}

ExploreResult
explorePMethod(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    warmup(eval, rng, options);

    SaChooser chooser(options.saGamma);
    const int num_dirs = space.numDirections();
    BatchEvaluator batch(eval, options.evalPool, options.measureParallelism);

    for (int trial = 0; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        auto starts = chooser.chooseMany(eval, rng, options.startingPoints);
        for (const Point &start : starts) {
            if (reachedTarget(eval, options))
                break;
            // P-method: measure the full neighborhood of the starting
            // point as one parallel batch (early-stop granularity is a
            // whole neighborhood, matching batched measurement).
            std::vector<Point> neighborhood;
            for (int d = 0; d < num_dirs; ++d) {
                auto next = space.move(start, d);
                if (next && !eval.known(*next))
                    neighborhood.push_back(std::move(*next));
            }
            batch.evaluate(neighborhood);
        }
        eval.chargeOverhead(options.stepOverheadSeconds);
    }
    return finish(eval);
}

ExploreResult
exploreRandom(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    for (const Point &p : options.seedPoints)
        eval.evaluate(p);
    for (int trial = 0; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        eval.evaluate(space.randomPoint(rng));
    }
    return finish(eval);
}

} // namespace ft
