#include "explore/explorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "explore/checkpoint.h"
#include "explore/sa.h"
#include "ml/costmodel.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "support/rng.h"

namespace ft {

namespace {

/** One replay-buffer record: (state, action, next-state, reward). The
 *  points are kept alongside the features so the buffer can be
 *  checkpointed as coordinates and rebuilt exactly on resume. */
struct Transition
{
    Point start;
    Point next;
    std::vector<float> stateFeatures;
    int direction;
    std::vector<float> nextFeatures;
    float reward;
};

std::vector<float>
toFloat(const std::vector<double> &v)
{
    return std::vector<float>(v.begin(), v.end());
}

int64_t
wallNsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Candidates simulated given the keep fraction: at least one. */
size_t
keepCount(double keep, size_t n)
{
    return std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(keep * static_cast<double>(n))));
}

/** True when the options ask for model-guided candidate pruning and a
 *  trained snapshot is available to score with. */
bool
pruningActive(const ExploreOptions &options)
{
    return options.costModel != nullptr && options.prunerKeep > 0.0 &&
           options.costModel->ready();
}

/**
 * Keep only the top prunerKeep fraction of `points` by predicted rank
 * score (stable order among survivors). Emits the costmodel.prune trace
 * point and kept/dropped counters.
 */
void
pruneCandidates(Evaluator &eval, const ExploreOptions &options,
                std::vector<Point> &points, std::vector<double> &feat,
                std::vector<double> &scores, std::vector<size_t> &order)
{
    const size_t n = points.size();
    const size_t keep = keepCount(options.prunerKeep, n);
    if (keep >= n)
        return;
    CostModel &model = *options.costModel;
    scores.resize(n);
    order.resize(n);
    for (size_t i = 0; i < n; ++i) {
        eval.costFeaturesFor(points[i], feat);
        scores[i] = model.predict(feat);
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a] > scores[b];
    });
    std::vector<Point> kept;
    kept.reserve(keep);
    for (size_t i = 0; i < keep; ++i)
        kept.push_back(std::move(points[order[i]]));
    points.swap(kept);
    if (options.obs.trace) {
        options.obs.trace->point(
            "costmodel.prune", eval.simulatedSeconds(),
            {tint("considered", static_cast<int64_t>(n)),
             tint("kept", static_cast<int64_t>(keep))});
    }
    if (options.obs.metrics) {
        options.obs.metrics->counter("costmodel.prune.kept").add(keep);
        options.obs.metrics->counter("costmodel.prune.dropped")
            .add(n - keep);
    }
}

/** Seed H with random points so SA has something to choose from. */
void
warmup(ResilientEvaluator &reval, Rng &rng, const ExploreOptions &options)
{
    // One parallel measurement batch: seeds, random warmup, and the
    // deterministic initial point, committed in that order.
    Evaluator &eval = reval.evaluator();
    const ScheduleSpace &space = eval.space();
    std::vector<Point> points = options.seedPoints;
    points.reserve(points.size() + options.warmupPoints + 1);
    CostModel *model = options.costModel;
    const bool warm = model != nullptr && model->ready() &&
                      options.warmupPoints > 0;
    if (warm) {
        // Model warm-start: oversample random candidates, rank them
        // with the persistent model, and seed from the top-ranked
        // subset instead of the raw draws. The extra RNG draws only
        // happen with a model attached, so model-off runs keep their
        // pinned digests.
        const int oversample = 4 * options.warmupPoints;
        std::vector<Point> cands;
        cands.reserve(oversample);
        for (int i = 0; i < oversample; ++i)
            cands.push_back(space.randomPoint(rng));
        std::vector<double> feat, scores(cands.size());
        std::vector<size_t> order(cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
            eval.costFeaturesFor(cands[i], feat);
            scores[i] = model->predict(feat);
            order[i] = i;
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return scores[a] > scores[b];
                         });
        for (int i = 0; i < options.warmupPoints; ++i)
            points.push_back(std::move(cands[order[i]]));
        if (options.obs.trace) {
            options.obs.trace->point(
                "costmodel.warm_start", eval.simulatedSeconds(),
                {tint("candidates", static_cast<int64_t>(cands.size())),
                 tint("kept", options.warmupPoints)});
        }
        if (options.obs.metrics)
            options.obs.metrics->counter("costmodel.warmstarts").add();
    } else {
        for (int i = 0; i < options.warmupPoints; ++i)
            points.push_back(space.randomPoint(rng));
    }
    points.push_back(space.initialPoint());
    if (options.obs.trace) {
        options.obs.trace->begin(
            "warmup", eval.simulatedSeconds(),
            {tint("points", static_cast<int64_t>(points.size()))});
    }
    reval.evaluate(points);
    if (options.obs.trace)
        options.obs.trace->end("warmup", eval.simulatedSeconds());
    if (options.obs.metrics)
        options.obs.metrics->counter("explore.warmup_points")
            .add(points.size());
}

ExploreResult
finish(const Evaluator &eval, const ResilientEvaluator &reval,
       bool deadline_exceeded, bool resumed)
{
    ExploreResult out;
    out.bestPoint = eval.bestPoint();
    out.bestGflops = eval.best();
    out.trialsUsed = eval.numTrials();
    out.simSeconds = eval.simulatedSeconds();
    out.curve = eval.curve();
    out.deadlineExceeded = deadline_exceeded;
    out.resumed = resumed;
    out.failures = reval.stats().failures;
    out.retries = reval.stats().retries;
    out.timeouts = reval.stats().timeouts;
    out.quarantined = reval.stats().quarantined;
    return out;
}

bool
reachedTarget(const Evaluator &eval, const ExploreOptions &options)
{
    return options.targetGflops > 0.0 &&
           eval.best() >= options.targetGflops;
}

bool
deadlineHit(const Evaluator &eval, const ExploreOptions &options)
{
    return options.deadlineSimSeconds > 0.0 &&
           eval.simulatedSeconds() >= options.deadlineSimSeconds;
}

/**
 * Load the checkpoint named by the options if it belongs to this run.
 * Returns the state without applying it, so method-specific parts (the
 * Q-network) can be validated before any shared state is touched.
 */
std::optional<CheckpointState>
loadCompatible(const ExploreOptions &options, const std::string &method,
               const ScheduleSpace &space)
{
    if (options.checkpointPath.empty())
        return std::nullopt;
    auto state = loadCheckpoint(options.checkpointPath);
    if (!state)
        return std::nullopt;
    if (!checkpointCompatible(*state, method, options.seed, space) ||
        state->trial > options.trials) {
        warn("checkpoint ", options.checkpointPath,
             " belongs to a different run; starting fresh");
        return std::nullopt;
    }
    return state;
}

/** Snapshot after finishing trial `trial` when the period says so. */
void
maybeSnapshot(const ExploreOptions &options, const std::string &method,
              int trial, const Evaluator &eval, const Rng &rng,
              const ResilientEvaluator &reval,
              const Mlp *net = nullptr,
              const std::vector<Transition> *replay = nullptr)
{
    if (options.checkpointPath.empty() ||
        options.checkpointEveryTrials <= 0 ||
        (trial + 1) % options.checkpointEveryTrials != 0) {
        return;
    }
    CheckpointState state = captureCommon(method, options.seed, trial + 1,
                                          eval, rng, reval);
    if (net)
        state.netState = net->checkpointState();
    if (replay) {
        state.replay.reserve(replay->size());
        for (const Transition &t : *replay)
            state.replay.push_back({t.start.idx, t.direction, t.next.idx});
    }
    if (options.obs.trace) {
        options.obs.trace->begin("checkpoint_save", eval.simulatedSeconds(),
                                 {tint("trial", trial + 1)});
    }
    bool saved = saveCheckpoint(options.checkpointPath, state);
    if (options.obs.trace) {
        options.obs.trace->end("checkpoint_save", eval.simulatedSeconds(),
                               {tbool("ok", saved)});
    }
    if (options.obs.metrics)
        options.obs.metrics->counter("checkpoint.saves").add();
    if (!saved)
        warn("could not write checkpoint to ", options.checkpointPath);
}

/** Rebuild the replay buffer from checkpointed coordinates: features and
 *  rewards are recomputed from the restored H (all cache hits). */
std::vector<Transition>
rebuildReplay(const CheckpointState &state, Evaluator &eval)
{
    const ScheduleSpace &space = eval.space();
    std::vector<Transition> replay;
    replay.reserve(state.replay.size());
    for (const ReplayTransition &r : state.replay) {
        Transition t;
        t.start = Point{r.start};
        t.next = Point{r.next};
        t.direction = r.direction;
        t.stateFeatures = toFloat(space.features(t.start));
        t.nextFeatures = toFloat(space.features(t.next));
        double e_start = eval.evaluate(t.start);
        double e_next = eval.evaluate(t.next);
        t.reward = static_cast<float>((e_next - e_start) /
                                      std::max(e_start, 1e-9));
        replay.push_back(std::move(t));
    }
    return replay;
}

} // namespace

ExploreResult
exploreQMethod(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    eval.setCostModel(options.costModel);
    TraceRecorder *trace = options.obs.trace;
    MetricsRegistry *metrics = options.obs.metrics;
    Counter *step_counter = maybeCounter(metrics, "explore.steps");
    Counter *forward_counter = maybeCounter(metrics, "q.forward_passes");
    Counter *train_counter = maybeCounter(metrics, "q.train_rounds");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);

    // RNG draw order must match an uninterrupted fresh run exactly:
    // warmup draws come before network init, so load the checkpoint (a
    // pure file read) first and only skip warmup when resuming. The
    // restored RNG state overwrites every draw made before restoreCommon.
    std::optional<CheckpointState> ckpt =
        loadCompatible(options, "Q-method", space);
    if (!ckpt)
        warmup(reval, rng, options);

    const int feature_dim = space.featureDim();
    const int num_dirs = space.numDirections();
    // Section 5.1: four fully-connected layers with ReLU, online training
    // with AdaDelta, and a target network Y stabilizing the updates.
    Mlp netX({feature_dim, options.hidden, options.hidden, options.hidden,
              num_dirs},
             rng);
    Mlp netY = netX; // same initial parameters

    SaChooser chooser(options.saGamma);
    std::vector<Transition> replay;
    // At most one transition lands per start per trial; cap the reserve
    // so a huge trial budget cannot pre-claim unbounded memory.
    replay.reserve(std::min<size_t>(
        static_cast<size_t>(std::max(options.trials, 0)) *
            static_cast<size_t>(std::max(options.startingPoints, 1)),
        size_t(1) << 16));
    AdaDeltaOptions adadelta;

    // Reused hot-loop buffers: the per-step feature batch (row-major
    // starts x feature_dim), the decode scratch feeding it, the network
    // scratch, the direction ranking, and the training gather buffers.
    DecodeScratch decode_scratch;
    std::vector<double> feat_d;
    std::vector<float> batch_feat;
    MlpScratch net_scratch;
    std::vector<int> order(num_dirs);
    std::vector<size_t> replay_idx;
    std::vector<float> train_feat;
    std::vector<float> train_state;
    std::vector<int> train_action;
    std::vector<float> targets;
    // Pruned-path buffers (untouched unless a trained model is attached).
    std::vector<int> cand_dirs;
    std::vector<Point> cand_points;
    std::vector<double> prune_feat;
    Counter *qf_ns_counter = options.obs.wallProfile
                                 ? maybeCounter(metrics, "q.forward_batch.ns")
                                 : nullptr;

    int start_trial = 0;
    bool resumed = false;
    if (ckpt) {
        if (netX.restoreCheckpointState(ckpt->netState)) {
            restoreCommon(*ckpt, eval, rng, reval);
            netY.copyValuesFrom(netX);
            replay = rebuildReplay(*ckpt, eval);
            start_trial = ckpt->trial;
            resumed = true;
            inform("resumed Q-method run at trial ", start_trial, " from ",
                   options.checkpointPath);
        } else {
            warn("checkpoint network shape mismatch; starting fresh");
            warmup(reval, rng, options);
        }
    }

    bool deadline_exceeded = false;
    for (int trial = start_trial; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        if (deadlineHit(eval, options)) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("trial", trial)});
        }
        auto starts = chooser.chooseMany(eval, rng, options.startingPoints);
        const int m = static_cast<int>(starts.size());

        // Batched direction inference: every start's feature row is
        // decoded into one matrix and the Q-network runs a single
        // blocked pass over it. Features and the network are fixed
        // within a trial, so the per-row results are bit-identical to
        // the former per-start forward() calls.
        if (trace) {
            trace->begin("q_forward_batch", eval.simulatedSeconds(),
                         {tint("starts", m)});
        }
        const auto qf_t0 = std::chrono::steady_clock::now();
        batch_feat.resize(static_cast<size_t>(m) * feature_dim);
        for (int s = 0; s < m; ++s) {
            space.featuresInto(starts[s], decode_scratch, feat_d);
            float *row = batch_feat.data() +
                         static_cast<size_t>(s) * feature_dim;
            for (int i = 0; i < feature_dim; ++i)
                row[i] = static_cast<float>(feat_d[i]);
        }
        const float *batch_q =
            m > 0 ? netX.forwardBatch(batch_feat.data(), m, net_scratch)
                  : nullptr;
        if (qf_ns_counter)
            qf_ns_counter->add(static_cast<uint64_t>(wallNsSince(qf_t0)));
        if (trace) {
            if (options.obs.wallProfile) {
                trace->end("q_forward_batch", eval.simulatedSeconds(),
                           {tint("ns", wallNsSince(qf_t0))});
            } else {
                trace->end("q_forward_batch", eval.simulatedSeconds());
            }
        }
        if (forward_counter)
            forward_counter->add(static_cast<uint64_t>(m));

        for (int s = 0; s < m; ++s) {
            const Point &start = starts[s];
            const float *q = batch_q + static_cast<size_t>(s) * num_dirs;

            // Rank directions by predicted Q-value; epsilon-greedy.
            for (int d = 0; d < num_dirs; ++d)
                order[d] = d;
            const bool greedy = !rng.chance(options.epsilon);
            if (!greedy) {
                rng.shuffle(order);
            } else {
                std::sort(order.begin(), order.end(),
                          [&](int a, int b) { return q[a] > q[b]; });
            }

            // Take the best direction that leads to an unvisited point.
            // With pruning on, the persistent model re-ranks the top
            // prunerKeep fraction of the Q-ordered candidates and the
            // model-argmax is measured instead of the first.
            int chosen_dir = -1;
            std::optional<Point> chosen;
            if (!pruningActive(options)) {
                for (int d : order) {
                    auto next = space.move(start, d);
                    if (!next || eval.known(next->key64()))
                        continue;
                    chosen_dir = d;
                    chosen = std::move(next);
                    break;
                }
            } else {
                cand_dirs.clear();
                cand_points.clear();
                for (int d : order) {
                    auto next = space.move(start, d);
                    if (!next || eval.known(next->key64()))
                        continue;
                    cand_dirs.push_back(d);
                    cand_points.push_back(std::move(*next));
                }
                if (!cand_points.empty()) {
                    const size_t consider = keepCount(
                        options.prunerKeep, cand_points.size());
                    size_t best_i = 0;
                    double best_score = 0.0;
                    for (size_t i = 0; i < consider; ++i) {
                        eval.costFeaturesFor(cand_points[i], prune_feat);
                        double score =
                            options.costModel->predict(prune_feat);
                        if (i == 0 || score > best_score) {
                            best_score = score;
                            best_i = i;
                        }
                    }
                    chosen_dir = cand_dirs[best_i];
                    chosen = std::move(cand_points[best_i]);
                    if (trace) {
                        trace->point(
                            "costmodel.prune", eval.simulatedSeconds(),
                            {tint("considered",
                                  static_cast<int64_t>(consider)),
                             tint("kept", 1)});
                    }
                    if (metrics) {
                        metrics->counter("costmodel.prune.kept").add(1);
                        metrics->counter("costmodel.prune.dropped")
                            .add(consider - 1);
                    }
                }
            }
            if (chosen) {
                const int d = chosen_dir;
                const Point &next = *chosen;
                const PointKey next_key = next.key64();
                double e_start = eval.evaluate(start);
                double e_next = reval.evaluate(next, next_key);
                float reward = static_cast<float>(
                    (e_next - e_start) / std::max(e_start, 1e-9));
                const float *feat_row =
                    batch_feat.data() + static_cast<size_t>(s) * feature_dim;
                space.featuresInto(next, decode_scratch, feat_d);
                replay.push_back(
                    {start, next,
                     std::vector<float>(feat_row, feat_row + feature_dim),
                     d, toFloat(feat_d), reward});
                if (trace) {
                    trace->point("q_step", eval.simulatedSeconds(),
                                 {tstr("key", next.key()), tint("dir", d),
                                  treal("reward", reward),
                                  tbool("greedy", greedy)});
                }
            }
        }

        // Periodic online training of X against the target network Y.
        if ((trial + 1) % options.trainEvery == 0 && !replay.empty()) {
            if (trace)
                trace->begin("q_train", eval.simulatedSeconds());
            netX.zeroGrad();
            int batch = std::min<int>(options.replayBatch,
                                      static_cast<int>(replay.size()));
            // Pre-draw the replay sample (same RNG draw order as the
            // former per-sample loop: nothing between the draws consumed
            // randomness), then run the target network over the whole
            // sample in one blocked pass.
            replay_idx.resize(batch);
            for (int b = 0; b < batch; ++b)
                replay_idx[b] = rng.index(replay.size());
            train_feat.resize(static_cast<size_t>(batch) * feature_dim);
            for (int b = 0; b < batch; ++b) {
                const Transition &t = replay[replay_idx[b]];
                std::copy(t.nextFeatures.begin(), t.nextFeatures.end(),
                          train_feat.begin() +
                              static_cast<size_t>(b) * feature_dim);
            }
            const float *next_q_all =
                netY.forwardBatch(train_feat.data(), batch, net_scratch);
            targets.resize(batch);
            for (int b = 0; b < batch; ++b) {
                const float *row =
                    next_q_all + static_cast<size_t>(b) * num_dirs;
                // First-largest scan: same element as std::max_element.
                float max_next = row[0];
                for (int d = 1; d < num_dirs; ++d) {
                    if (row[d] > max_next)
                        max_next = row[d];
                }
                targets[b] = static_cast<float>(options.qAlpha) * max_next +
                             replay[replay_idx[b]].reward;
            }
            // One batched gradient pass: forward runs once over the
            // sample lanes, gradients accumulate in index order — the
            // same values the per-sample accumulateGrad loop produced.
            train_state.resize(static_cast<size_t>(batch) * feature_dim);
            train_action.resize(batch);
            for (int b = 0; b < batch; ++b) {
                const Transition &t = replay[replay_idx[b]];
                std::copy(t.stateFeatures.begin(), t.stateFeatures.end(),
                          train_state.begin() +
                              static_cast<size_t>(b) * feature_dim);
                train_action[b] = t.direction;
            }
            netX.accumulateGradBatch(train_state.data(), batch,
                                     train_action.data(), targets.data(),
                                     net_scratch);
            netX.step(adadelta);
            netY.copyValuesFrom(netX);
            if (trace) {
                trace->end("q_train", eval.simulatedSeconds(),
                           {tint("batch", batch)});
            }
            if (train_counter)
                train_counter->add();
        }
        eval.chargeOverhead(options.stepOverheadSeconds);
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
        maybeSnapshot(options, "Q-method", trial, eval,
                      rng, reval, &netX, &replay);
    }
    return finish(eval, reval, deadline_exceeded, resumed);
}

ExploreResult
explorePMethod(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    eval.setCostModel(options.costModel);
    TraceRecorder *trace = options.obs.trace;
    Counter *step_counter = maybeCounter(options.obs.metrics,
                                         "explore.steps");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);
    SaChooser chooser(options.saGamma);
    const int num_dirs = space.numDirections();
    // Reused across starts; a neighborhood holds at most num_dirs points.
    std::vector<Point> neighborhood;
    neighborhood.reserve(num_dirs);
    std::vector<double> prune_feat, prune_scores;
    std::vector<size_t> prune_order;

    int start_trial = 0;
    bool resumed = false;
    if (auto ckpt = loadCompatible(options, "P-method",
                                   space)) {
        restoreCommon(*ckpt, eval, rng, reval);
        start_trial = ckpt->trial;
        resumed = true;
        inform("resumed P-method run at trial ", start_trial, " from ",
               options.checkpointPath);
    }
    if (!resumed)
        warmup(reval, rng, options);

    bool deadline_exceeded = false;
    for (int trial = start_trial; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        if (deadlineHit(eval, options)) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("trial", trial)});
        }
        auto starts = chooser.chooseMany(eval, rng, options.startingPoints);
        for (const Point &start : starts) {
            if (reachedTarget(eval, options))
                break;
            if (deadlineHit(eval, options)) {
                deadline_exceeded = true;
                break;
            }
            // P-method: measure the full neighborhood of the starting
            // point as one parallel batch (early-stop granularity is a
            // whole neighborhood, matching batched measurement).
            neighborhood.clear();
            for (int d = 0; d < num_dirs; ++d) {
                auto next = space.move(start, d);
                if (next && !eval.known(*next))
                    neighborhood.push_back(std::move(*next));
            }
            // Pruned mode simulates only the model's top fraction of
            // the neighborhood instead of every direction.
            if (pruningActive(options)) {
                pruneCandidates(eval, options, neighborhood, prune_feat,
                                prune_scores, prune_order);
            }
            reval.evaluate(neighborhood);
        }
        eval.chargeOverhead(options.stepOverheadSeconds);
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
        maybeSnapshot(options, "P-method", trial, eval,
                      rng, reval);
    }
    return finish(eval, reval, deadline_exceeded, resumed);
}

ExploreResult
exploreRandom(Evaluator &eval, const ExploreOptions &options)
{
    Rng rng(options.seed);
    const ScheduleSpace &space = eval.space();
    eval.setObs(options.obs);
    eval.setCostModel(options.costModel);
    TraceRecorder *trace = options.obs.trace;
    Counter *step_counter = maybeCounter(options.obs.metrics,
                                         "explore.steps");
    ResilientEvaluator reval(eval, options.evalPool,
                             options.measureParallelism, options.resilience);
    std::vector<Point> draws;
    std::vector<double> prune_feat, prune_scores;
    std::vector<size_t> prune_order;

    int start_trial = 0;
    bool resumed = false;
    if (auto ckpt = loadCompatible(options, "random",
                                   space)) {
        restoreCommon(*ckpt, eval, rng, reval);
        start_trial = ckpt->trial;
        resumed = true;
    }
    if (!resumed) {
        for (const Point &p : options.seedPoints)
            reval.evaluate(p);
    }

    bool deadline_exceeded = false;
    for (int trial = start_trial; trial < options.trials; ++trial) {
        if (reachedTarget(eval, options))
            break;
        if (deadlineHit(eval, options)) {
            deadline_exceeded = true;
            break;
        }
        if (trace) {
            trace->begin("step", eval.simulatedSeconds(),
                         {tint("trial", trial)});
        }
        if (pruningActive(options)) {
            // Pruned random search draws a batch sized so that keeping
            // the prunerKeep fraction measures ~one model-chosen point
            // per trial — same measurement budget, model-guided picks.
            const int n = std::max(
                1, static_cast<int>(std::ceil(1.0 / options.prunerKeep)));
            draws.clear();
            for (int i = 0; i < n; ++i)
                draws.push_back(space.randomPoint(rng));
            pruneCandidates(eval, options, draws, prune_feat,
                            prune_scores, prune_order);
            reval.evaluate(draws);
        } else {
            reval.evaluate(space.randomPoint(rng));
        }
        if (trace)
            trace->end("step", eval.simulatedSeconds());
        if (step_counter)
            step_counter->add();
        maybeSnapshot(options, "random", trial, eval,
                      rng, reval);
    }
    return finish(eval, reval, deadline_exceeded, resumed);
}

} // namespace ft
