#include "explore/sa.h"

#include <cmath>

#include "support/logging.h"

namespace ft {

double
SaChooser::weight(double e, double best) const
{
    FT_ASSERT(best > 0.0, "SA weight needs a positive best value");
    return std::exp(-gamma_ * (best - e) / best);
}

const Point &
SaChooser::choose(const Evaluator &eval, Rng &rng) const
{
    const auto &h = eval.history();
    FT_ASSERT(!h.empty(), "SA selection from empty evaluated set");
    const double best = eval.best();

    // Sample over the most recent window to keep selection O(window).
    const size_t window = 256;
    const size_t begin = h.size() > window ? h.size() - window : 0;
    double total = 0.0;
    for (size_t i = begin; i < h.size(); ++i)
        total += weight(h[i].gflops, best);

    double pick = rng.uniform() * total;
    for (size_t i = begin; i < h.size(); ++i) {
        pick -= weight(h[i].gflops, best);
        if (pick <= 0.0)
            return h[i].point;
    }
    return h.back().point;
}

std::vector<Point>
SaChooser::chooseMany(const Evaluator &eval, Rng &rng, int count) const
{
    std::vector<Point> out;
    if (count <= 0)
        return out;
    out.reserve(count);

    // H does not change between picks, so the window weights (and their
    // sum, accumulated in the same i-ascending order as choose()) are
    // computed once; each pick replays choose()'s scan over the cached
    // values and draws the same single uniform. Bit-identical to calling
    // choose() count times.
    const auto &h = eval.history();
    FT_ASSERT(!h.empty(), "SA selection from empty evaluated set");
    const double best = eval.best();
    const size_t window = 256;
    const size_t begin = h.size() > window ? h.size() - window : 0;
    weights_.clear();
    double total = 0.0;
    for (size_t i = begin; i < h.size(); ++i) {
        weights_.push_back(weight(h[i].gflops, best));
        total += weights_.back();
    }

    for (int c = 0; c < count; ++c) {
        double pick = rng.uniform() * total;
        const Point *chosen = &h.back().point;
        for (size_t i = begin; i < h.size(); ++i) {
            pick -= weights_[i - begin];
            if (pick <= 0.0) {
                chosen = &h[i].point;
                break;
            }
        }
        out.push_back(*chosen);
    }
    return out;
}

} // namespace ft
