#include "explore/sa.h"

#include <cmath>

#include "support/logging.h"

namespace ft {

double
SaChooser::weight(double e, double best) const
{
    FT_ASSERT(best > 0.0, "SA weight needs a positive best value");
    return std::exp(-gamma_ * (best - e) / best);
}

const Point &
SaChooser::choose(const Evaluator &eval, Rng &rng) const
{
    const auto &h = eval.history();
    FT_ASSERT(!h.empty(), "SA selection from empty evaluated set");
    const double best = eval.best();

    // Sample over the most recent window to keep selection O(window).
    const size_t window = 256;
    const size_t begin = h.size() > window ? h.size() - window : 0;
    double total = 0.0;
    for (size_t i = begin; i < h.size(); ++i)
        total += weight(h[i].gflops, best);

    double pick = rng.uniform() * total;
    for (size_t i = begin; i < h.size(); ++i) {
        pick -= weight(h[i].gflops, best);
        if (pick <= 0.0)
            return h[i].point;
    }
    return h.back().point;
}

std::vector<Point>
SaChooser::chooseMany(const Evaluator &eval, Rng &rng, int count) const
{
    std::vector<Point> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i)
        out.push_back(choose(eval, rng));
    return out;
}

} // namespace ft
