/**
 * @file
 * Back-end exploration methods (Section 5.1 and Section 6.5):
 *
 *  - Q-method: the paper's contribution — SA starting points plus a
 *    Q-learning network that predicts the single best direction to try.
 *  - P-method: SA starting points, but *every* direction of each start is
 *    evaluated (the exhaustive-neighborhood baseline of Section 6.5).
 *  - Random search: uniform sampling (ablation baseline).
 *  - AutoTVM baseline: template-restricted space + gradient-boosted-tree
 *    cost model with batched epsilon-greedy measurement (Section 6.5).
 *
 * All methods share the Evaluator, so trial counts and the simulated
 * exploration clock are directly comparable.
 */
#ifndef FLEXTENSOR_EXPLORE_EXPLORER_H
#define FLEXTENSOR_EXPLORE_EXPLORER_H

#include <functional>
#include <string>
#include <vector>

#include "explore/evaluator.h"
#include "explore/resilient.h"
#include "obs/obs.h"

namespace ft {

class CostModel;

/** Options shared by the exploration methods. */
struct ExploreOptions
{
    int trials = 120;         ///< exploration steps (per-method meaning)
    int startingPoints = 4;   ///< SA starting points per step
    int warmupPoints = 16;    ///< random seeds placed into H up front
    double saGamma = 2.0;     ///< SA selection temperature
    double epsilon = 0.10;    ///< exploration rate for Q-method
    double qAlpha = 0.7;      ///< discount on the target network's value
    int trainEvery = 5;       ///< Q-network update period (paper: 5)
    int replayBatch = 32;     ///< samples per Q training round
    int hidden = 64;          ///< Q-network hidden width (4 FC layers)
    uint64_t seed = 0xf1e27;
    /** Known-good points evaluated before exploration starts. */
    std::vector<Point> seedPoints;
    /** Stop early once best() reaches this value (0 = run all trials). */
    double targetGflops = 0.0;
    /** Extra simulated seconds per step for method bookkeeping. */
    double stepOverheadSeconds = 0.0;
    /**
     * Optional worker pool for parallel batched measurement (the serve
     * layer's Section 5.2 model). Batched stages (warmup, P-method
     * neighborhoods, AutoTVM measurement rounds) score candidates
     * concurrently but commit them to H in submission order, so results
     * are identical to a sequential run for the same seed.
     */
    ThreadPool *evalPool = nullptr;
    /** Simulated measurement width (0 = pool size, or 1 without a pool). */
    int measureParallelism = 0;
    /**
     * Fault-tolerance policy for measurements: retries with backoff,
     * per-trial deadline, repeated-measure median, quarantine. With no
     * injector attached the policy layer is a transparent no-op and
     * results are bit-identical to a run without it.
     */
    ResilienceOptions resilience;
    /**
     * Per-run deadline on the simulated clock (0 = none). A run that
     * reaches it stops and returns its best-so-far result flagged
     * deadlineExceeded instead of blocking until all trials finish.
     */
    double deadlineSimSeconds = 0.0;
    /**
     * Checkpoint file (empty = disabled). The run snapshots its full
     * state every checkpointEveryTrials outer trials, and on start
     * resumes from a compatible snapshot at this path; a resumed run
     * with the same seed and fault profile is bit-identical to an
     * uninterrupted one. Not supported by Method::AutoTvm.
     */
    std::string checkpointPath;
    int checkpointEveryTrials = 10;
    /**
     * Persistent learned cost model (not owned; may be null). When
     * attached, every committed measurement is recorded as a training
     * trial, and — once the model is trained — warmup seeds from the
     * model's top-ranked candidates instead of plain random points.
     * Attaching a model changes the RNG draw schedule, so the pinned
     * model-off determinism digests only hold when this is null.
     */
    CostModel *costModel = nullptr;
    /**
     * Model-guided candidate pruning (0 = off): each explorer scores
     * candidate neighborhoods with the cost model and simulates only
     * the top `prunerKeep` fraction (at least one). Requires a trained
     * costModel; ignored without one. Off by default to preserve the
     * model-off determinism digests — the pruned path has its own
     * pinned digest.
     */
    double prunerKeep = 0.0;
    /**
     * Observability sinks (trace timeline + metrics registry; both
     * optional, not owned). Attached to the evaluator at run start so
     * every layer — warmup, SA steps, Q-network, batch evaluation,
     * checkpointing — reports through the same context. Pure
     * observation: results are bit-identical with sinks on or off.
     */
    ObsContext obs;
};

/** Outcome of an exploration run. */
struct ExploreResult
{
    Point bestPoint;
    double bestGflops = 0.0;
    int trialsUsed = 0;          ///< measurements performed
    double simSeconds = 0.0;     ///< simulated exploration time
    /** (simulated seconds, best-so-far GFLOPS) per measurement. */
    std::vector<std::pair<double, double>> curve;
    bool deadlineExceeded = false; ///< run cut short by the deadline
    bool resumed = false;          ///< restored from a checkpoint
    /** Fault-path counters (zero when no faults were injected). */
    uint64_t failures = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;
    uint64_t quarantined = 0;
};

/** Run the paper's Q-learning-guided exploration. */
ExploreResult exploreQMethod(Evaluator &eval, const ExploreOptions &options);

/** Run the exhaustive-direction P-method. */
ExploreResult explorePMethod(Evaluator &eval, const ExploreOptions &options);

/** Uniform random search over the space. */
ExploreResult exploreRandom(Evaluator &eval, const ExploreOptions &options);

/**
 * AutoTVM-style search: GBT cost model ranking random candidates, batched
 * measurement. Intended to be used with a template-restricted space (see
 * SpaceOptions::templateRestricted).
 */
ExploreResult exploreAutoTvm(Evaluator &eval, const ExploreOptions &options);

} // namespace ft

#endif // FLEXTENSOR_EXPLORE_EXPLORER_H
