#include "analysis/flops.h"

#include <algorithm>

#include "support/logging.h"

namespace ft {

namespace {

/**
 * Count arithmetic float ops in one evaluation of an expression. Only the
 * floating-point dataflow counts: index expressions inside accesses and
 * select predicates are integer bookkeeping, not FLOPs.
 */
double
bodyArithmeticOps(const Expr &e)
{
    if (!e)
        return 0.0;
    switch (e->kind) {
      case ExprKind::Add:
      case ExprKind::Sub:
      case ExprKind::Mul:
      case ExprKind::Div:
      case ExprKind::Min:
      case ExprKind::Max:
        return 1.0 + bodyArithmeticOps(e->a) + bodyArithmeticOps(e->b);
      case ExprKind::Select:
        // Predicate is integer; both branches may execute across points,
        // count the larger one.
        return std::max(bodyArithmeticOps(e->b), bodyArithmeticOps(e->c));
      case ExprKind::Access: // leaf of the float dataflow
      default:
        return 0.0;
    }
}

} // namespace

double
flopsOf(const Operation &op)
{
    if (op->isPlaceholder() || op->isConstant())
        return 0.0;
    const auto *c = static_cast<const ComputeOp *>(op.get());
    double spatial = 1.0;
    for (const auto &iv : c->axis())
        spatial *= static_cast<double>(iv->extent);
    double reduce = 1.0;
    for (const auto &iv : c->reduceAxis())
        reduce *= static_cast<double>(iv->extent);
    double body = bodyArithmeticOps(c->body());
    // Each reduce iteration also performs one accumulate.
    double perPoint = c->reduceAxis().empty()
                          ? body
                          : reduce * (body + 1.0);
    // Pure data movement (e.g. the zero-FLOP shift operator) counts one
    // effective op per output point so throughput stays measurable.
    if (perPoint == 0.0)
        perPoint = 1.0;
    return spatial * perPoint;
}

double
flopsOf(const MiniGraph &graph)
{
    double total = 0.0;
    for (const auto &op : graph.postOrder())
        total += flopsOf(op);
    return total;
}

double
anchorFlops(const MiniGraph &graph)
{
    double best = 0.0;
    for (const auto &op : graph.postOrder())
        best = std::max(best, flopsOf(op));
    FT_ASSERT(best > 0.0, "graph has no compute work");
    return best;
}

} // namespace ft
