/**
 * @file
 * Front-end static analysis (Section 4.1 of the paper).
 *
 * Extracts, for each compute node, the *statistical* information (#sl, #rl,
 * stc, rtc, order) and for the mini-graph the *structural* information
 * (#node, #in, #out, #cs) that drive schedule-space generation.
 */
#ifndef FLEXTENSOR_ANALYSIS_STATIC_ANALYZER_H
#define FLEXTENSOR_ANALYSIS_STATIC_ANALYZER_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace ft {

/** Statistical information of one compute node (Figure 3c, left). */
struct NodeStats
{
    int numSpatialLoops = 0;             ///< #sl
    int numReduceLoops = 0;              ///< #rl
    std::vector<int64_t> spatialTripCounts; ///< stc
    std::vector<int64_t> reduceTripCounts;  ///< rtc
    std::vector<std::string> loopOrder;  ///< order (spatial then reduce)
};

/** Structural information of one node in its graph (Figure 3c, right). */
struct NodeStructure
{
    int numInputs = 0;    ///< #in
    int numOutputs = 1;   ///< #out (FlexTensor assumes one output per node)
    int numConsumers = 0; ///< #cs
};

/** Full analysis result for one compute node. */
struct NodeAnalysis
{
    Operation op;
    NodeStats stats;
    NodeStructure structure;
};

/** Full analysis of a mini-graph. */
struct GraphAnalysis
{
    int numNodes = 0; ///< placeholders + computes
    std::vector<NodeAnalysis> nodes; ///< compute nodes, post order
};

/** Analyze one compute node. */
NodeAnalysis analyzeNode(const Operation &op, const MiniGraph &graph);

/** Analyze a mini-graph (all compute nodes, post order). */
GraphAnalysis analyzeGraph(const MiniGraph &graph);

/**
 * The dominant ("anchor") compute node of a graph: the one with the most
 * FLOPs, which is where FlexTensor focuses its schedule space. Pad/dilate
 * helper nodes are inlined into it at schedule time.
 */
Operation anchorOp(const MiniGraph &graph);

} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_STATIC_ANALYZER_H
