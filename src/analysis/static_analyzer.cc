#include "analysis/static_analyzer.h"

#include "analysis/flops.h"
#include "support/logging.h"

namespace ft {

NodeAnalysis
analyzeNode(const Operation &op, const MiniGraph &graph)
{
    FT_ASSERT(!op->isPlaceholder() && !op->isConstant(),
              "analyzeNode expects a compute node");
    const auto *c = static_cast<const ComputeOp *>(op.get());

    NodeAnalysis out;
    out.op = op;

    NodeStats &st = out.stats;
    st.numSpatialLoops = static_cast<int>(c->axis().size());
    st.numReduceLoops = static_cast<int>(c->reduceAxis().size());
    for (const auto &iv : c->axis()) {
        st.spatialTripCounts.push_back(iv->extent);
        st.loopOrder.push_back(iv->name);
    }
    for (const auto &iv : c->reduceAxis()) {
        st.reduceTripCounts.push_back(iv->extent);
        st.loopOrder.push_back(iv->name);
    }

    NodeStructure &sr = out.structure;
    sr.numInputs = static_cast<int>(op->inputs().size());
    sr.numOutputs = 1;
    sr.numConsumers = graph.numConsumers(op);
    return out;
}

GraphAnalysis
analyzeGraph(const MiniGraph &graph)
{
    GraphAnalysis out;
    out.numNodes = graph.numNodes();
    for (const auto &op : graph.computeOps())
        out.nodes.push_back(analyzeNode(op, graph));
    return out;
}

Operation
anchorOp(const MiniGraph &graph)
{
    Operation best;
    double bestFlops = -1.0;
    for (const auto &op : graph.computeOps()) {
        double f = flopsOf(op);
        if (f > bestFlops) {
            bestFlops = f;
            best = op;
        }
    }
    FT_ASSERT(best != nullptr, "graph has no compute node");
    return best;
}

} // namespace ft
