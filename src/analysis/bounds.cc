#include "analysis/bounds.h"

#include <algorithm>

#include "ir/operation.h"
#include "support/logging.h"

namespace ft {

namespace {

Interval
combine4(int64_t a, int64_t b, int64_t c, int64_t d)
{
    return Interval{std::min(std::min(a, b), std::min(c, d)),
                    std::max(std::max(a, b), std::max(c, d))};
}

} // namespace

Interval
boundsOf(const Expr &e, const VarRanges &ranges)
{
    FT_ASSERT(e != nullptr, "boundsOf null expr");
    switch (e->kind) {
      case ExprKind::IntImm:
        return {e->intValue, e->intValue};
      case ExprKind::Var: {
        auto it = ranges.find(e->var.get());
        if (it != ranges.end())
            return it->second;
        return {0, e->var->extent - 1};
      }
      case ExprKind::Add: {
        Interval a = boundsOf(e->a, ranges), b = boundsOf(e->b, ranges);
        return {a.lo + b.lo, a.hi + b.hi};
      }
      case ExprKind::Sub: {
        Interval a = boundsOf(e->a, ranges), b = boundsOf(e->b, ranges);
        return {a.lo - b.hi, a.hi - b.lo};
      }
      case ExprKind::Mul: {
        Interval a = boundsOf(e->a, ranges), b = boundsOf(e->b, ranges);
        return combine4(a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi);
      }
      case ExprKind::Div: {
        Interval a = boundsOf(e->a, ranges), b = boundsOf(e->b, ranges);
        FT_ASSERT(b.lo > 0, "interval division by non-positive divisor");
        return combine4(a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi);
      }
      case ExprKind::Mod: {
        Interval b = boundsOf(e->b, ranges);
        FT_ASSERT(b.lo > 0, "interval modulo by non-positive divisor");
        Interval a = boundsOf(e->a, ranges);
        // A tight special case: if the whole numerator range fits inside one
        // period, the modulo is affine there.
        if (a.lo >= 0 && a.lo / b.lo == a.hi / b.lo && b.lo == b.hi)
            return {a.lo % b.lo, a.hi % b.lo};
        return {0, b.hi - 1};
      }
      case ExprKind::Min: {
        Interval a = boundsOf(e->a, ranges), b = boundsOf(e->b, ranges);
        return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
      }
      case ExprKind::Max: {
        Interval a = boundsOf(e->a, ranges), b = boundsOf(e->b, ranges);
        return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
      }
      case ExprKind::CmpLT:
      case ExprKind::CmpLE:
      case ExprKind::CmpEQ:
      case ExprKind::And:
      case ExprKind::Or:
        return {0, 1};
      case ExprKind::Select: {
        // Conservative union of the branches (the condition is not
        // consulted; the guard-aware prover in analysis/verify refines
        // further when it matters).
        Interval a = boundsOf(e->b, ranges), b = boundsOf(e->c, ranges);
        return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
      }
      default:
        panic("boundsOf: unsupported expr kind for integer bounds");
    }
}

int64_t
accessFootprint(const ExprNode &acc, const VarRanges &ranges)
{
    FT_ASSERT(acc.kind == ExprKind::Access, "accessFootprint on non-access");
    const auto &shape = acc.source->outputShape();
    int64_t cells = 1;
    for (size_t d = 0; d < acc.indices.size(); ++d) {
        Interval b = boundsOf(acc.indices[d], ranges);
        // Clamp to the tensor's real extent; padding predicates often make
        // the raw interval wider than the data.
        int64_t lo = std::max<int64_t>(b.lo, 0);
        int64_t hi = std::min<int64_t>(b.hi, shape[d] - 1);
        cells *= std::max<int64_t>(hi - lo + 1, 1);
    }
    return cells;
}

} // namespace ft
