/**
 * @file
 * Interval analysis of index expressions.
 *
 * Given ranges for iteration variables, compute conservative [min, max]
 * bounds of an integer index expression. The performance models use this to
 * derive tile footprints (how much of each input a block/tile touches),
 * which determine shared-memory usage, cache fit, and DRAM traffic.
 */
#ifndef FLEXTENSOR_ANALYSIS_BOUNDS_H
#define FLEXTENSOR_ANALYSIS_BOUNDS_H

#include <cstdint>
#include <unordered_map>

#include "ir/expr.h"

namespace ft {

/** Inclusive integer interval. */
struct Interval
{
    int64_t lo = 0;
    int64_t hi = 0;

    /** Number of integers covered. */
    int64_t extent() const { return hi - lo + 1; }
};

/** Per-variable value ranges (inclusive). */
using VarRanges = std::unordered_map<const IterVarNode *, Interval>;

/**
 * Conservative bounds of an integer expression under the given variable
 * ranges. Variables absent from `ranges` default to their full extent
 * [0, extent-1]. Float-typed nodes (Access, FloatImm) must not appear.
 */
Interval boundsOf(const Expr &e, const VarRanges &ranges);

/**
 * Footprint (number of distinct elements, conservatively an axis-aligned
 * box) of one tensor access under the given variable ranges.
 */
int64_t accessFootprint(const ExprNode &acc, const VarRanges &ranges);

} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_BOUNDS_H
