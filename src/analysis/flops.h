/**
 * @file
 * FLOP accounting for compute nodes and graphs.
 */
#ifndef FLEXTENSOR_ANALYSIS_FLOPS_H
#define FLEXTENSOR_ANALYSIS_FLOPS_H

#include <cstdint>

#include "ir/graph.h"

namespace ft {

/**
 * Floating-point operations performed by one compute node: the iteration
 * count (spatial x reduce) times the arithmetic ops in the body, plus one
 * accumulate per reduce iteration.
 */
double flopsOf(const Operation &op);

/** Total FLOPs of every compute node in the graph. */
double flopsOf(const MiniGraph &graph);

/**
 * FLOPs of the dominant node only — the number benchmarks report GFLOPS
 * against (helper pad/dilate nodes are bookkeeping, not useful work).
 */
double anchorFlops(const MiniGraph &graph);

} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_FLOPS_H
