/**
 * @file
 * Affine dependence engine: exact per-axis iteration relations and the
 * carried-dependence set of a lowered nest (see deps.h).
 *
 * The interpreter executes a nest by reconstructing each original index
 * from its sub-loop variables and accumulating the body value into the
 * output element (`out[spatial] += body(...)`). Equivalence with the
 * reference program therefore hinges on the live iteration map being a
 * bijection onto the original domain per axis, and on every carried
 * dependence staying on serially ordered hardware. Both properties are
 * separable per axis, which is what makes exact enumeration cheap: a
 * schedule's tuple count per axis is the product of its split factors,
 * i.e. on the order of the axis extent itself.
 */
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/verify/deps.h"
#include "analysis/verify/verify.h"

namespace ft {
namespace verify {

namespace {

std::string
axisAccess(const ComputeOp *op, const IterVarNode *axis)
{
    return op->name() + "[" + axis->name + "]";
}

/**
 * Conservative injectivity: with sub-loops sorted by descending stride,
 * each stride must exceed the furthest index the inner sub-loops reach
 * together. Exact mixed-radix splits satisfy this by construction.
 */
bool
strideDominates(const AxisRelation &axis)
{
    std::vector<const SubLoop *> sorted;
    for (const SubLoop *l : axis.loops) {
        if (l->extent > 1)
            sorted.push_back(l);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const SubLoop *a, const SubLoop *b) {
                  return a->stride > b->stride;
              });
    for (size_t i = 0; i < sorted.size(); ++i) {
        int64_t inner_span = 0;
        for (size_t j = i + 1; j < sorted.size(); ++j)
            inner_span += (sorted[j]->extent - 1) * sorted[j]->stride;
        if (sorted[i]->stride <= inner_span)
            return false;
    }
    return true;
}

/**
 * Enumerate the axis's tuple set exactly, filling the hit count of every
 * reconstructed index in [lo, hi]. Returns false when the enumeration
 * budget (tuples or span) is exceeded.
 */
bool
enumerateAxis(AxisRelation &a, std::vector<int32_t> &counts)
{
    const int64_t span = a.range.extent();
    if (a.tuples > kExactTupleCap || span > (int64_t(1) << 22))
        return false;
    counts.assign(static_cast<size_t>(span), 0);
    // Iterative mixed-radix walk over the extent>1 sub-loops.
    std::vector<const SubLoop *> loops;
    for (const SubLoop *l : a.loops) {
        if (l->extent > 1)
            loops.push_back(l);
    }
    std::vector<int64_t> idx(loops.size(), 0);
    int64_t value = 0;
    while (true) {
        counts[static_cast<size_t>(value - a.range.lo)]++;
        size_t d = loops.size();
        while (d > 0) {
            --d;
            ++idx[d];
            value += loops[d]->stride;
            if (idx[d] < loops[d]->extent)
                break;
            value -= idx[d] * loops[d]->stride;
            idx[d] = 0;
            if (d == 0)
                return true;
        }
        if (loops.empty())
            return true;
    }
}

} // namespace

const char *
depKindName(DepKind kind)
{
    switch (kind) {
    case DepKind::Reduction:
        return "reduction";
    case DepKind::Output:
        return "output";
    }
    return "?";
}

const AxisRelation *
DependenceInfo::axisOf(const IterVarNode *origin) const
{
    for (const AxisRelation &a : axes) {
        if (a.origin == origin)
            return &a;
    }
    return nullptr;
}

std::vector<const Dependence *>
DependenceInfo::carriedBy(const SubLoop *loop) const
{
    std::vector<const Dependence *> deps;
    for (const Dependence &d : carried) {
        if (d.loop == loop)
            deps.push_back(&d);
    }
    return deps;
}

DependenceInfo
analyzeDependences(const LoopNest &nest)
{
    DependenceInfo info;
    if (!nest.op || nest.op->isPlaceholder())
        return info;
    const auto *op = static_cast<const ComputeOp *>(nest.op.get());

    // One relation per original axis, in declaration order.
    auto addAxis = [&info, &nest](const IterVarNode *origin) {
        AxisRelation a;
        a.origin = origin;
        a.guarded = nest.isGuarded(origin);
        info.axes.push_back(std::move(a));
    };
    for (const auto &iv : op->axis())
        addAxis(iv.get());
    for (const auto &iv : op->reduceAxis())
        addAxis(iv.get());

    auto relationOf = [&info](const IterVarNode *origin) -> AxisRelation & {
        for (AxisRelation &a : info.axes) {
            if (a.origin == origin)
                return a;
        }
        info.axes.push_back(AxisRelation{});
        info.axes.back().origin = origin;
        return info.axes.back();
    };
    for (const SubLoop &l : nest.loops) {
        if (!l.origin)
            continue;
        AxisRelation &a = relationOf(l.origin);
        a.loops.push_back(&l);
        int64_t reach = (l.extent - 1) * l.stride;
        a.range.lo += std::min<int64_t>(reach, 0);
        a.range.hi += std::max<int64_t>(reach, 0);
        a.tuples *= std::max<int64_t>(l.extent, 1);
        if (l.extent > 1 && l.stride <= 0)
            a.positiveStrides = false;
        a.anyConcurrent =
            a.anyConcurrent || (l.extent > 1 && isConcurrentAnno(l.anno));
    }

    std::vector<int32_t> counts;
    for (AxisRelation &a : info.axes) {
        const int64_t extent = a.origin->extent;
        a.overshoots = a.range.hi >= extent;
        if (enumerateAxis(a, counts)) {
            a.exact = true;
            a.liveInjective = Tri::True;
            a.covers = Tri::True;
            for (int64_t v = 0; v < extent; ++v) {
                int32_t hits = (v >= a.range.lo && v <= a.range.hi)
                                   ? counts[static_cast<size_t>(v - a.range.lo)]
                                   : 0;
                if (hits == 0 && a.covers == Tri::True) {
                    a.covers = Tri::False;
                    a.holeWitness = v;
                }
                if (hits > 1 && a.liveInjective == Tri::True) {
                    a.liveInjective = Tri::False;
                    a.duplicateWitness = v;
                }
            }
        } else {
            // Budget exceeded: fall back to the conservative criterion.
            a.exact = false;
            if (strideDominates(a)) {
                a.liveInjective = Tri::True;
            } else {
                a.liveInjective = Tri::Unknown;
            }
            int64_t span = a.range.extent();
            int64_t reachable = std::min<int64_t>(a.tuples, span);
            if (a.range.lo > 0 || a.range.hi < extent - 1 || reachable < extent)
                a.covers = Tri::False; // provably under-covered
            else
                a.covers = Tri::Unknown;
        }
    }

    // Carried dependences. A reduction op reads, updates, and writes one
    // accumulator per spatial point: every reduce sub-loop with more than
    // one iteration carries that read-modify-write at distance 1. A
    // non-injective live map adds an output dependence between the
    // duplicated writers, carried by every sub-loop of the axis.
    const bool hasReduction = !op->reduceAxis().empty();
    for (const AxisRelation &a : info.axes) {
        const bool reduceAxis = a.origin->kind == IterKind::Reduce;
        for (const SubLoop *l : a.loops) {
            if (l->extent <= 1)
                continue;
            if (reduceAxis) {
                Dependence d;
                d.kind = DepKind::Reduction;
                d.loop = l;
                d.axis = a.origin;
                d.distance = 1;
                d.note = "accumulator read-modify-write between "
                         "consecutive iterations of '" +
                         l->name + "'";
                info.carried.push_back(std::move(d));
            }
            if (a.liveInjective == Tri::False) {
                Dependence d;
                d.kind = DepKind::Output;
                d.loop = l;
                d.axis = a.origin;
                d.distance = 1;
                d.note =
                    "duplicated iterations of axis '" + a.origin->name +
                    "' (index " + std::to_string(a.duplicateWitness) +
                    " runs twice) order-depend through the output element";
                info.carried.push_back(std::move(d));
            }
        }
        (void)hasReduction;
    }
    return info;
}

void
checkDependences(const LoopNest &nest, DiagReport &out)
{
    if (!nest.op || nest.op->isPlaceholder())
        return;
    const auto *op = static_cast<const ComputeOp *>(nest.op.get());
    DependenceInfo info = analyzeDependences(nest);

    for (const AxisRelation &a : info.axes) {
        const int64_t extent = a.origin->extent;
        const std::string access = axisAccess(op, a.origin);
        const std::string loop0 =
            a.loops.empty() ? std::string() : a.loops[0]->name;
        const bool reduceAxis = a.origin->kind == IterKind::Reduce;

        if (a.guarded) {
            // FT-DEP-005: the declared guard must cut exactly the
            // overshoot — live map bijective onto [0, extent), nothing
            // below zero, and monotone sub-loops so the executors'
            // early-exit prune is sound.
            if (a.range.lo != 0) {
                out.add({kDepGuardInexact, Severity::Error, loop0, access,
                         "guarded axis '" + a.origin->name +
                             "' realizes indices from " +
                             std::to_string(a.range.lo) +
                             ": the `value < extent` guard only cuts the "
                             "top, so the guard is not exact"});
            }
            if (!a.positiveStrides) {
                out.add({kDepGuardInexact, Severity::Error, loop0, access,
                         "guarded axis '" + a.origin->name +
                             "' has a non-positive sub-loop stride: the "
                             "executors' monotone guard prune is unsound "
                             "for this nest"});
            }
            if (a.liveInjective == Tri::False) {
                out.add({kDepGuardInexact, Severity::Error, loop0, access,
                         "guarded axis '" + a.origin->name +
                             "' duplicates live iteration " +
                             std::to_string(a.duplicateWitness) +
                             " (below the guard): the guard does not "
                             "exactly cover the residual iterations"});
            }
            if (a.covers == Tri::False) {
                out.add({kDepGuardInexact, Severity::Error, loop0, access,
                         "guarded axis '" + a.origin->name +
                             "' never reaches live iteration " +
                             std::to_string(a.holeWitness) + " of [0, " +
                             std::to_string(extent) +
                             "): the guard cuts more than the overshoot"});
            }
        } else {
            if (a.liveInjective == Tri::False) {
                const char *code =
                    reduceAxis ? kDepReduceDuplicate : kDepSpatialDuplicate;
                const char *consequence =
                    reduceAxis
                        ? "the duplicated reduction terms are accumulated "
                          "twice"
                        : "the duplicated iterations re-accumulate the "
                          "output element";
                out.add({code, Severity::Error, loop0, access,
                         "sub-loops of axis '" + a.origin->name +
                             "' map two distinct iteration tuples to "
                             "index " +
                             std::to_string(a.duplicateWitness) + ": " +
                             consequence});
            }
            if (a.covers == Tri::False || a.overshoots || a.range.lo < 0) {
                std::string what;
                if (a.covers == Tri::False) {
                    what = "never reaches iteration " +
                           std::to_string(a.holeWitness) + " of [0, " +
                           std::to_string(extent) + ")";
                } else {
                    what = "runs unguarded iterations outside [0, " +
                           std::to_string(extent) + ") (realized span [" +
                           std::to_string(a.range.lo) + ", " +
                           std::to_string(a.range.hi) + "])";
                }
                out.add({kDepDomainMismatch, Severity::Error, loop0,
                         access,
                         "iteration map of axis '" + a.origin->name +
                             "' is not a bijection onto the original "
                             "domain: " +
                             what});
            }
        }
    }

    // FT-DEP-001: a carried dependence on concurrently ordered hardware.
    for (const SubLoop &l : nest.loops) {
        if (l.extent <= 1 || !isConcurrentAnno(l.anno))
            continue;
        for (const Dependence *d : info.carriedBy(&l)) {
            out.add({kDepConcurrentCarried, Severity::Error, l.name,
                     l.origin ? axisAccess(op, l.origin) : std::string(),
                     "sub-loop '" + l.name + "' carries a " +
                         std::string(depKindName(d->kind)) +
                         " dependence (distance " +
                         std::to_string(d->distance) +
                         ", direction '<') but runs with concurrent "
                         "annotation '" +
                         annoName(l.anno) + "': " + d->note});
        }
    }
}

} // namespace verify
} // namespace ft
