/**
 * @file
 * Access-bounds prover (FT-OOB-*): interval analysis over the variable
 * ranges a lowered nest realizes, proving every tensor access and the
 * output write within the buffer extents.
 *
 * The variable ranges come from the sub-loop strides, not the original
 * extents — an illegal split (e.g. a widened inner factor) widens the
 * realized range past the data, which is exactly the bug class this
 * pass catches.
 *
 * Guard awareness: inlined producers guard their accesses with select
 * predicates (zero padding emits `select(lo <= iv && iv < hi, t[..],
 * 0)`), whose raw index intervals extend past the data on purpose. The
 * prover therefore carries the conditions of every enclosing select
 * branch as "atoms" (normalized `lhs <= rhs` facts) and refines the
 * interval of each subexpression that matches an atom side up to an
 * affine constant offset. An interval refined to empty means the branch
 * is unreachable and its accesses are skipped, not reported.
 */
#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "analysis/bounds.h"
#include "analysis/verify/verify.h"

namespace ft {
namespace verify {

namespace {

/** Saturation bound for intervals the analysis cannot pin down. */
constexpr int64_t kWide = int64_t(1) << 40;

/** One guard fact: lhs <= rhs holds inside the guarded branch. */
struct Atom
{
    Expr lhs, rhs;
};

bool
isEmpty(const Interval &i)
{
    return i.lo > i.hi;
}

Interval
emptyInterval()
{
    return Interval{1, 0};
}

Interval
wideInterval()
{
    return Interval{-kWide, kWide};
}

/** Affine = integer linear in the iteration variables. */
bool
hasVars(const Expr &e)
{
    bool found = false;
    visitExpr(e, [&found](const ExprNode &n) {
        if (n.kind == ExprKind::Var)
            found = true;
    });
    return found;
}

bool
isAffine(const Expr &e)
{
    switch (e->kind) {
      case ExprKind::IntImm:
      case ExprKind::Var:
        return true;
      case ExprKind::Add:
      case ExprKind::Sub:
        return isAffine(e->a) && isAffine(e->b);
      case ExprKind::Mul:
        // Linear only when one side is a constant expression.
        return isAffine(e->a) && isAffine(e->b) &&
               (!hasVars(e->a) || !hasVars(e->b));
      default:
        return false;
    }
}

int64_t
evalAtZero(const Expr &e)
{
    std::vector<std::pair<const IterVarNode *, int64_t>> env;
    for (const IterVar &v : collectVars(e))
        env.emplace_back(v.get(), 0);
    return evalIntExpr(e, env);
}

/**
 * The constant d with a == b + d, when both expressions are affine with
 * identical linear parts; nullopt otherwise.
 */
std::optional<int64_t>
affineDelta(const Expr &a, const Expr &b)
{
    if (!isAffine(a) || !isAffine(b))
        return std::nullopt;
    std::vector<const IterVarNode *> vars;
    for (const IterVar &v : collectVars(a))
        vars.push_back(v.get());
    for (const IterVar &v : collectVars(b)) {
        if (std::find(vars.begin(), vars.end(), v.get()) == vars.end())
            vars.push_back(v.get());
    }
    for (const IterVarNode *v : vars) {
        if (linearCoefficient(a, v) != linearCoefficient(b, v))
            return std::nullopt;
    }
    return evalAtZero(a) - evalAtZero(b);
}

/** Structural equality (same shape, same vars, same constants). */
bool
sameExpr(const Expr &a, const Expr &b)
{
    if (a.get() == b.get())
        return true;
    if (!a || !b || a->kind != b->kind)
        return false;
    switch (a->kind) {
      case ExprKind::IntImm:
        return a->intValue == b->intValue;
      case ExprKind::FloatImm:
        return a->floatValue == b->floatValue;
      case ExprKind::Var:
        return a->var.get() == b->var.get();
      case ExprKind::Access: {
        if (a->source.get() != b->source.get() ||
            a->indices.size() != b->indices.size())
            return false;
        for (size_t i = 0; i < a->indices.size(); ++i) {
            if (!sameExpr(a->indices[i], b->indices[i]))
                return false;
        }
        return true;
      }
      default:
        return sameExpr(a->a, b->a) && sameExpr(a->b, b->b) &&
               (a->c == nullptr) == (b->c == nullptr) &&
               (a->c == nullptr || sameExpr(a->c, b->c));
    }
}

/**
 * The constant d with a == b + d. Affine matching handles linear
 * expressions with reassociated terms; the structural fallback peels a
 * top-level added/subtracted integer constant off each side and compares
 * the cores verbatim — this is what relates a non-affine guarded index
 * to its guard (an inlined pad of a shifted access reads `x - 1` under
 * the atom `1 <= x`, where x contains div/mod of an iteration variable).
 */
std::optional<int64_t>
matchDelta(const Expr &a, const Expr &b)
{
    if (auto d = affineDelta(a, b))
        return d;
    auto peel = [](const Expr &e, Expr &core) -> int64_t {
        if (e->kind == ExprKind::Add && e->b->kind == ExprKind::IntImm) {
            core = e->a;
            return e->b->intValue;
        }
        if (e->kind == ExprKind::Add && e->a->kind == ExprKind::IntImm) {
            core = e->b;
            return e->a->intValue;
        }
        if (e->kind == ExprKind::Sub && e->b->kind == ExprKind::IntImm) {
            core = e->a;
            return -e->b->intValue;
        }
        core = e;
        return 0;
    };
    Expr core_a, core_b;
    int64_t da = peel(a, core_a), db = peel(b, core_b);
    if (sameExpr(core_a, core_b))
        return da - db;
    return std::nullopt;
}

Interval boundsWithAtoms(const Expr &e, const std::vector<Atom> &atoms,
                         const VarRanges &ranges);

/**
 * Tighten `raw` with every atom whose side matches `e` up to a constant
 * offset: e == lhs + d gives e <= hi(rhs) + d, e == rhs + d gives
 * e >= lo(lhs) + d.
 */
Interval
refineWithAtoms(Interval raw, const Expr &e, const std::vector<Atom> &atoms,
                const VarRanges &ranges)
{
    static const std::vector<Atom> kNoAtoms;
    for (const Atom &atom : atoms) {
        if (auto d = matchDelta(e, atom.lhs)) {
            Interval rhs = boundsWithAtoms(atom.rhs, kNoAtoms, ranges);
            if (!isEmpty(rhs))
                raw.hi = std::min(raw.hi, rhs.hi + *d);
        }
        if (auto d = matchDelta(e, atom.rhs)) {
            Interval lhs = boundsWithAtoms(atom.lhs, kNoAtoms, ranges);
            if (!isEmpty(lhs))
                raw.lo = std::max(raw.lo, lhs.lo + *d);
        }
    }
    return raw;
}

Interval
combine4(int64_t a, int64_t b, int64_t c, int64_t d)
{
    return Interval{std::min(std::min(a, b), std::min(c, d)),
                    std::max(std::max(a, b), std::max(c, d))};
}

/**
 * boundsOf with guard atoms: same interval arithmetic, but every
 * subexpression is additionally refined against the atoms, unsupported
 * operations widen instead of panicking, and an empty child interval
 * (an unreachable guard combination) propagates up.
 */
Interval
boundsWithAtoms(const Expr &e, const std::vector<Atom> &atoms,
                const VarRanges &ranges)
{
    if (!e)
        return wideInterval();
    Interval raw;
    switch (e->kind) {
      case ExprKind::IntImm:
        raw = {e->intValue, e->intValue};
        break;
      case ExprKind::Var: {
        auto it = ranges.find(e->var.get());
        raw = it != ranges.end() ? it->second
                                 : Interval{0, e->var->extent - 1};
        break;
      }
      case ExprKind::Add: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        raw = {a.lo + b.lo, a.hi + b.hi};
        break;
      }
      case ExprKind::Sub: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        raw = {a.lo - b.hi, a.hi - b.lo};
        break;
      }
      case ExprKind::Mul: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        raw = combine4(a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi);
        break;
      }
      case ExprKind::Div: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        if (b.lo <= 0) {
            raw = wideInterval(); // divisor range not provably positive
            break;
        }
        raw = combine4(a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi);
        break;
      }
      case ExprKind::Mod: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        if (b.lo <= 0) {
            raw = wideInterval();
            break;
        }
        if (a.lo >= 0 && a.lo / b.lo == a.hi / b.lo && b.lo == b.hi)
            raw = {a.lo % b.lo, a.hi % b.lo};
        else
            raw = {0, b.hi - 1};
        break;
      }
      case ExprKind::Min: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        raw = {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
        break;
      }
      case ExprKind::Max: {
        Interval a = boundsWithAtoms(e->a, atoms, ranges);
        Interval b = boundsWithAtoms(e->b, atoms, ranges);
        if (isEmpty(a) || isEmpty(b))
            return emptyInterval();
        raw = {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
        break;
      }
      case ExprKind::Select: {
        Interval a = boundsWithAtoms(e->b, atoms, ranges);
        Interval b = boundsWithAtoms(e->c, atoms, ranges);
        if (isEmpty(a))
            return b;
        if (isEmpty(b))
            return a;
        raw = {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
        break;
      }
      case ExprKind::CmpLT:
      case ExprKind::CmpLE:
      case ExprKind::CmpEQ:
      case ExprKind::And:
      case ExprKind::Or:
        raw = {0, 1};
        break;
      default: // FloatImm / Access: not an integer index expression
        raw = wideInterval();
        break;
    }
    if (!atoms.empty())
        raw = refineWithAtoms(raw, e, atoms, ranges);
    return raw;
}

/**
 * Normalize a guard condition into `lhs <= rhs` atoms. Conjunctions
 * recurse; disjunctions and anything else contribute nothing (sound:
 * fewer atoms only widen intervals).
 */
void
extractAtoms(const Expr &cond, std::vector<Atom> &out)
{
    switch (cond->kind) {
      case ExprKind::And:
        extractAtoms(cond->a, out);
        extractAtoms(cond->b, out);
        break;
      case ExprKind::CmpLE:
        out.push_back({cond->a, cond->b});
        break;
      case ExprKind::CmpLT:
        out.push_back({cond->a, sub(cond->b, intImm(1))});
        break;
      case ExprKind::CmpEQ:
        out.push_back({cond->a, cond->b});
        out.push_back({cond->b, cond->a});
        break;
      default:
        break;
    }
}

struct ProverCtx
{
    VarRanges ranges;
    DiagReport *out = nullptr;
};

void
reportAccess(ProverCtx &ctx, const ExprNode &acc, size_t dim,
             const Interval &got, int64_t extent)
{
    std::string where =
        acc.source->name() + "[" + std::to_string(dim) + "]";
    std::string interval = "[" + std::to_string(got.lo) + ", " +
                           std::to_string(got.hi) + "]";
    if (got.lo < 0) {
        ctx.out->add({kOobUnderflow, Severity::Error, "", where,
                      "access index of " + where + " spans " + interval +
                          ": reads below element 0"});
    }
    if (got.hi > extent - 1) {
        ctx.out->add({kOobOverflow, Severity::Error, "", where,
                      "access index of " + where + " spans " + interval +
                          ": exceeds extent " + std::to_string(extent)});
    }
}

void
walkBody(const Expr &e, std::vector<Atom> &atoms, ProverCtx &ctx)
{
    if (!e)
        return;
    switch (e->kind) {
      case ExprKind::Select: {
        // Condition evaluates unconditionally; the then-branch runs
        // under the condition's atoms; the else-branch gains nothing
        // (negations are not tracked).
        walkBody(e->a, atoms, ctx);
        size_t base = atoms.size();
        extractAtoms(e->a, atoms);
        walkBody(e->b, atoms, ctx);
        atoms.resize(base);
        walkBody(e->c, atoms, ctx);
        break;
      }
      case ExprKind::Access: {
        const auto &shape = e->source->outputShape();
        for (size_t d = 0; d < e->indices.size(); ++d) {
            Interval b = boundsWithAtoms(e->indices[d], atoms, ctx.ranges);
            if (isEmpty(b))
                continue; // guard combination is unreachable
            int64_t extent = d < shape.size() ? shape[d] : 1;
            if (b.lo < 0 || b.hi > extent - 1)
                reportAccess(ctx, *e, d, b, extent);
            walkBody(e->indices[d], atoms, ctx);
        }
        break;
      }
      default:
        walkBody(e->a, atoms, ctx);
        walkBody(e->b, atoms, ctx);
        walkBody(e->c, atoms, ctx);
        break;
    }
}

} // namespace

void
checkAccessBounds(const LoopNest &nest, DiagReport &out)
{
    if (!nest.op || nest.op->isPlaceholder())
        return;
    const auto *op = static_cast<const ComputeOp *>(nest.op.get());

    // Realized range of every original variable: the stride-weighted
    // span of its sub-loops (NOT the declared extent — widened splits
    // must surface as wider ranges here).
    ProverCtx ctx;
    ctx.out = &out;
    for (const auto &iv : op->axis())
        ctx.ranges[iv.get()] = Interval{0, 0};
    for (const auto &iv : op->reduceAxis())
        ctx.ranges[iv.get()] = Interval{0, 0};
    for (const SubLoop &l : nest.loops) {
        if (!l.origin)
            continue;
        auto it = ctx.ranges.find(l.origin);
        if (it == ctx.ranges.end())
            continue;
        int64_t reach = (l.extent - 1) * l.stride;
        it->second.lo += std::min<int64_t>(reach, 0);
        it->second.hi += std::max<int64_t>(reach, 0);
    }

    // Guarded (imperfectly tiled) axes declare that executors and
    // emitters skip every iteration with value >= extent, so the range
    // the body actually sees is the raw span clamped to the data. An
    // axis that overshoots WITHOUT being declared guarded keeps its raw
    // span and fails the proofs below — this is how the prover gates
    // imperfect tiles instead of the old divisibility assertion.
    for (const IterVarNode *g : nest.guardedAxes) {
        auto it = ctx.ranges.find(g);
        if (it == ctx.ranges.end())
            continue;
        it->second.lo = std::max<int64_t>(it->second.lo, 0);
        it->second.hi = std::min<int64_t>(it->second.hi, g->extent - 1);
    }

    // Output write O[i1..iM]: each spatial index must stay within the
    // output extent (an over-wide split writes past the buffer).
    const auto &shape = op->outputShape();
    for (size_t d = 0; d < op->axis().size() && d < shape.size(); ++d) {
        const Interval &r = ctx.ranges.at(op->axis()[d].get());
        std::string where = op->name() + "[" + std::to_string(d) + "]";
        std::string interval = "[" + std::to_string(r.lo) + ", " +
                               std::to_string(r.hi) + "]";
        if (r.lo < 0) {
            out.add({kOobUnderflow, Severity::Error,
                     op->axis()[d]->name, where,
                     "output write index of " + where + " spans " +
                         interval + ": writes below element 0"});
        }
        if (r.hi > shape[d] - 1) {
            out.add({kOobOverflow, Severity::Error, op->axis()[d]->name,
                     where,
                     "output write index of " + where + " spans " +
                         interval + ": exceeds extent " +
                         std::to_string(shape[d])});
        }
    }

    // Every read in the body, guard-aware.
    std::vector<Atom> atoms;
    walkBody(op->body(), atoms, ctx);
}

} // namespace verify
} // namespace ft
