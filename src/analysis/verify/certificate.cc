/**
 * @file
 * Certificate construction (see certificate.h).
 *
 * Every obligation is derived from the exact dependence engine (deps.h)
 * or re-proved from first principles over the partition structures; the
 * certificate never trusts a flag another pass set without checking it.
 */
#include <algorithm>
#include <sstream>

#include "analysis/verify/certificate.h"
#include "analysis/verify/verify.h"
#include "graph/partition.h"

namespace ft {
namespace verify {

namespace {

void
appendJsonEscaped(std::ostringstream &oss, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': oss << "\\\""; break;
          case '\\': oss << "\\\\"; break;
          case '\n': oss << "\\n"; break;
          case '\t': oss << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                oss << buf;
            } else {
                oss << c;
            }
        }
    }
}

void
appendJsonField(std::ostringstream &oss, const char *key,
                const std::string &value, bool last = false)
{
    oss << "\"" << key << "\":\"";
    appendJsonEscaped(oss, value);
    oss << "\"" << (last ? "" : ",");
}

/** Conjunction of verdicts: any Refuted wins, then any Unknown. */
Verdict
conjoin(Verdict a, Verdict b)
{
    if (a == Verdict::Refuted || b == Verdict::Refuted)
        return Verdict::Refuted;
    if (a == Verdict::Unknown || b == Verdict::Unknown)
        return Verdict::Unknown;
    return Verdict::Proven;
}

Verdict
verdictOf(const std::vector<Obligation> &obligations)
{
    Verdict v = Verdict::Proven;
    for (const Obligation &o : obligations)
        v = conjoin(v, o.verdict);
    return v;
}

std::string
obligationsJson(const std::vector<Obligation> &obligations)
{
    std::string s = "[";
    for (size_t i = 0; i < obligations.size(); ++i) {
        if (i)
            s += ",";
        s += obligations[i].toJson();
    }
    s += "]";
    return s;
}

Verdict
triVerdict(Tri t)
{
    switch (t) {
    case Tri::True:
        return Verdict::Proven;
    case Tri::False:
        return Verdict::Refuted;
    case Tri::Unknown:
        return Verdict::Unknown;
    }
    return Verdict::Unknown;
}

} // namespace

const char *
verdictName(Verdict v)
{
    switch (v) {
    case Verdict::Proven:
        return "proven";
    case Verdict::Refuted:
        return "refuted";
    case Verdict::Unknown:
        return "unknown";
    }
    return "unknown";
}

std::string
Obligation::toJson() const
{
    std::ostringstream oss;
    oss << "{";
    appendJsonField(oss, "id", id);
    appendJsonField(oss, "transform", transform);
    appendJsonField(oss, "code", code);
    appendJsonField(oss, "verdict", verdictName(verdict));
    appendJsonField(oss, "detail", detail, /*last=*/true);
    oss << "}";
    return oss.str();
}

int
ScheduleCertificate::count(Verdict v) const
{
    int n = 0;
    for (const Obligation &o : obligations)
        n += o.verdict == v ? 1 : 0;
    return n;
}

std::string
ScheduleCertificate::toJson() const
{
    std::ostringstream oss;
    oss << "{";
    appendJsonField(oss, "op", op);
    appendJsonField(oss, "device", device);
    appendJsonField(oss, "verdict", verdictName(verdict));
    oss << "\"obligations\":" << obligationsJson(obligations) << "}";
    return oss.str();
}

ScheduleCertificate
certifySchedule(const Scheduled &s, const Target &target,
                const OpConfig *config)
{
    (void)config;
    ScheduleCertificate cert;
    cert.device = target.deviceName();
    const LoopNest &nest = s.nest;
    if (!nest.op || nest.op->isPlaceholder()) {
        cert.verdict = Verdict::Unknown;
        return cert;
    }
    cert.op = nest.op->name();

    DependenceInfo info = analyzeDependences(nest);

    // Per-axis split obligations: the live iteration map must be a
    // bijection onto [0, extent). Guarded axes instead get the guard
    // exactness obligation (FT-DEP-005), which subsumes both halves
    // under the `value < extent` guard.
    for (const AxisRelation &a : info.axes) {
        const std::string axis = a.origin->name;
        const int64_t extent = a.origin->extent;
        const bool reduceAxis = a.origin->kind == IterKind::Reduce;

        if (a.guarded) {
            Obligation o;
            o.id = "guard/" + axis;
            o.transform = "guard";
            o.code = kDepGuardInexact;
            Verdict v = conjoin(triVerdict(a.liveInjective),
                                triVerdict(a.covers));
            if (a.range.lo != 0 || !a.positiveStrides)
                v = Verdict::Refuted;
            o.verdict = v;
            if (v == Verdict::Proven) {
                o.detail = "guard `" + axis + " < " +
                           std::to_string(extent) +
                           "` cuts exactly the overshoot: live map is a "
                           "bijection onto [0, " + std::to_string(extent) +
                           ") and every stride is positive (monotone "
                           "prune sound)";
            } else if (a.range.lo != 0) {
                o.detail = "realized range starts at " +
                           std::to_string(a.range.lo) +
                           "; the guard only cuts the top";
            } else if (!a.positiveStrides) {
                o.detail = "non-positive sub-loop stride defeats the "
                           "monotone guard prune";
            } else if (a.liveInjective == Tri::False) {
                o.detail = "live iteration " +
                           std::to_string(a.duplicateWitness) +
                           " below the guard runs twice";
            } else if (a.covers == Tri::False) {
                o.detail = "live iteration " +
                           std::to_string(a.holeWitness) +
                           " is never reached (guard cuts too much)";
            } else {
                o.detail = "axis exceeds the exact enumeration budget";
            }
            cert.obligations.push_back(std::move(o));
            continue;
        }

        {
            Obligation o;
            o.id = "split/" + axis;
            o.transform = "split";
            o.code = reduceAxis ? kDepReduceDuplicate : kDepSpatialDuplicate;
            o.verdict = triVerdict(a.liveInjective);
            if (o.verdict == Verdict::Proven) {
                o.detail = a.exact
                               ? "exact enumeration: all " +
                                     std::to_string(a.tuples) +
                                     " tuples map to distinct indices"
                               : "stride dominance: each stride exceeds "
                                 "the inner sub-loops' span";
            } else if (o.verdict == Verdict::Refuted) {
                o.detail = "index " + std::to_string(a.duplicateWitness) +
                           " is reached by two iteration tuples (" +
                           (reduceAxis ? "duplicated reduction term"
                                       : "duplicated output write") +
                           ")";
            } else {
                o.detail = "axis exceeds the exact enumeration budget";
            }
            cert.obligations.push_back(std::move(o));
        }
        {
            Obligation o;
            o.id = "domain/" + axis;
            o.transform = "split";
            o.code = kDepDomainMismatch;
            Verdict v = triVerdict(a.covers);
            if (a.overshoots || a.range.lo < 0)
                v = Verdict::Refuted;
            o.verdict = v;
            if (v == Verdict::Proven) {
                o.detail = "live image is exactly [0, " +
                           std::to_string(extent) + ")";
            } else if (a.covers == Tri::False) {
                o.detail = "iteration " + std::to_string(a.holeWitness) +
                           " of [0, " + std::to_string(extent) +
                           ") is never reached";
            } else if (a.overshoots || a.range.lo < 0) {
                o.detail = "unguarded iterations run outside [0, " +
                           std::to_string(extent) + ") (realized span [" +
                           std::to_string(a.range.lo) + ", " +
                           std::to_string(a.range.hi) + "])";
            } else {
                o.detail = "axis exceeds the exact enumeration budget";
            }
            cert.obligations.push_back(std::move(o));
        }
    }

    // Binding obligations: concurrent annotations must not carry a
    // dependence; unroll is an in-order serial expansion.
    for (const SubLoop &l : nest.loops) {
        if (l.extent <= 1)
            continue;
        if (isConcurrentAnno(l.anno)) {
            Obligation o;
            o.id = "binding/" + l.name;
            o.transform = "binding";
            o.code = kDepConcurrentCarried;
            auto deps = info.carriedBy(&l);
            const AxisRelation *a =
                l.origin ? info.axisOf(l.origin) : nullptr;
            if (!deps.empty()) {
                o.verdict = Verdict::Refuted;
                o.detail = "carries a " +
                           std::string(depKindName(deps[0]->kind)) +
                           " dependence (distance " +
                           std::to_string(deps[0]->distance) +
                           ", direction '<') under annotation '" +
                           annoName(l.anno) + "': " + deps[0]->note;
            } else if (a && a->liveInjective == Tri::Unknown) {
                o.verdict = Verdict::Unknown;
                o.detail = "axis injectivity undecided: a hidden output "
                           "dependence cannot be ruled out";
            } else {
                o.verdict = Verdict::Proven;
                o.detail = "iterations of '" + l.name +
                           "' touch pairwise-distinct output elements "
                           "and carry no dependence";
            }
            cert.obligations.push_back(std::move(o));
        } else if (l.anno == LoopAnno::Unroll) {
            Obligation o;
            o.id = "unroll/" + l.name;
            o.transform = "unroll";
            o.code = kDepConcurrentCarried;
            o.verdict = Verdict::Proven;
            o.detail = "unrolling expands iterations in serial program "
                       "order; every carried dependence keeps its "
                       "direction";
            cert.obligations.push_back(std::move(o));
        }
    }

    // Reorder obligation: once every axis map is a live bijection and no
    // concurrent binding carries a dependence, the nest's loop order is
    // a permutation of independent iterations interleaved with
    // order-insensitive accumulator updates — any order is legal.
    {
        Obligation o;
        o.id = "order/nest";
        o.transform = "reorder";
        o.code = kDepConcurrentCarried;
        o.verdict = verdictOf(cert.obligations);
        o.detail =
            o.verdict == Verdict::Proven
                ? "per-axis bijectivity + dependence-free bindings make "
                  "every sub-loop interleaving equivalent (the reduction "
                  "update is the only carried dependence and is "
                  "order-insensitive on exact inputs)"
                : "depends on the refuted/undecided obligations above";
        cert.obligations.push_back(std::move(o));
    }

    // Access-bounds obligation, from the guard-aware bounds prover.
    {
        Obligation o;
        o.id = "bounds/nest";
        o.transform = "bounds";
        DiagReport bounds;
        checkAccessBounds(nest, bounds);
        if (bounds.hasError()) {
            const Diag *first = bounds.firstError();
            o.code = first->code;
            o.verdict = Verdict::Refuted;
            o.detail = first->message;
        } else {
            o.code = kOobOverflow;
            o.verdict = Verdict::Proven;
            o.detail = "every tensor access stays within its buffer "
                       "extents under the realized variable ranges";
        }
        cert.obligations.push_back(std::move(o));
    }

    cert.verdict = verdictOf(cert.obligations);
    return cert;
}

std::string
GroupCertificate::toJson() const
{
    std::ostringstream oss;
    oss << "{\"group\":" << group << ",";
    appendJsonField(oss, "verdict", verdictName(verdict));
    oss << "\"obligations\":" << obligationsJson(obligations) << "}";
    return oss.str();
}

int
PartitionCertificate::groupCount(Verdict v) const
{
    int n = 0;
    for (const GroupCertificate &g : groups)
        n += g.verdict == v ? 1 : 0;
    return n;
}

std::string
PartitionCertificate::toJson() const
{
    std::ostringstream oss;
    oss << "{";
    appendJsonField(oss, "verdict", verdictName(verdict));
    oss << "\"obligations\":" << obligationsJson(obligations)
        << ",\"groups\":[";
    for (size_t i = 0; i < groups.size(); ++i) {
        if (i)
            oss << ",";
        oss << groups[i].toJson();
    }
    oss << "]}";
    return oss.str();
}

PartitionCertificate
certifyPartition(const graph::ComputeDag &dag,
                 const graph::Partition &partition, const Target &target)
{
    using graph::FusionGroup;
    PartitionCertificate cert;

    // Partition-level: every compute node in exactly one group, Input
    // nodes in none. Without this, "equivalent to the reference graph"
    // is not even well-posed.
    {
        Obligation o;
        o.id = "fusion/cover";
        o.transform = "fusion";
        o.code = kDepFusionIllegal;
        o.verdict = Verdict::Proven;
        std::vector<int> owners(dag.nodes.size(), 0);
        for (const FusionGroup &g : partition.groups)
            for (int id : g.members) {
                if (id < 0 || id >= static_cast<int>(dag.nodes.size())) {
                    o.verdict = Verdict::Refuted;
                    o.detail = "member id " + std::to_string(id) +
                               " is not a node of the DAG";
                    break;
                }
                owners[static_cast<size_t>(id)]++;
            }
        if (o.verdict == Verdict::Proven) {
            for (size_t id = 0; id < dag.nodes.size(); ++id) {
                const bool isInput =
                    dag.nodes[id].kind == graph::NodeKind::Input;
                const int expect = isInput ? 0 : 1;
                if (owners[id] != expect) {
                    o.verdict = Verdict::Refuted;
                    o.detail = "node " + std::to_string(id) + " ('" +
                               dag.nodes[id].name + "') appears in " +
                               std::to_string(owners[id]) +
                               " group(s), expected " +
                               std::to_string(expect);
                    break;
                }
            }
        }
        if (o.verdict == Verdict::Proven)
            o.detail = "every compute node is assigned to exactly one "
                       "group and Input nodes to none";
        cert.obligations.push_back(std::move(o));
    }

    const auto consumers = dag.consumers();
    for (size_t gi = 0; gi < partition.groups.size(); ++gi) {
        const FusionGroup &g = partition.groups[gi];
        GroupCertificate gc;
        gc.group = static_cast<int>(gi);
        const std::string gid = "g" + std::to_string(gi);
        auto inGroup = [&g](int id) {
            return std::find(g.members.begin(), g.members.end(), id) !=
                   g.members.end();
        };

        // Streaming order: members ascending (node ids are topological)
        // and every intra-group producer precedes its consumer, so the
        // executor's single pass visits producers first.
        {
            Obligation o;
            o.id = "fusion/order/" + gid;
            o.transform = "fusion";
            o.code = kDepFusionIllegal;
            o.verdict = Verdict::Proven;
            for (size_t i = 0; i + 1 < g.members.size(); ++i) {
                if (g.members[i] >= g.members[i + 1]) {
                    o.verdict = Verdict::Refuted;
                    o.detail = "members are not strictly ascending at "
                               "position " + std::to_string(i) +
                               ": the streaming pass would consume a "
                               "row before its producer emits it";
                    break;
                }
            }
            if (o.verdict == Verdict::Proven) {
                for (int id : g.members) {
                    for (int p : dag.nodes[static_cast<size_t>(id)].inputs)
                        if (inGroup(p) && p >= id) {
                            o.verdict = Verdict::Refuted;
                            o.detail = "intra-group producer " +
                                       std::to_string(p) +
                                       " does not precede consumer " +
                                       std::to_string(id);
                        }
                }
            }
            if (o.verdict == Verdict::Proven)
                o.detail = "members ascend in topological order; every "
                           "intra-group flow dependence points forward";
            gc.obligations.push_back(std::move(o));
        }

        // Anchor uniqueness: the streaming executor tunes and drives
        // exactly one heavy anchor, which must lead the group.
        {
            Obligation o;
            o.id = "fusion/anchor/" + gid;
            o.transform = "fusion";
            o.code = kDepFusionIllegal;
            o.verdict = Verdict::Proven;
            int heavy = 0;
            for (size_t i = 0; i < g.members.size(); ++i) {
                const graph::DagNode &n =
                    dag.nodes[static_cast<size_t>(g.members[i])];
                if (!n.isHeavy())
                    continue;
                ++heavy;
                if (i != 0) {
                    o.verdict = Verdict::Refuted;
                    o.detail = "heavy anchor '" + n.name +
                               "' is not the group's first member";
                }
            }
            if (heavy > 1) {
                o.verdict = Verdict::Refuted;
                o.detail = "group has " + std::to_string(heavy) +
                           " heavy anchors; the streaming executor can "
                           "drive only one";
            }
            if (o.verdict == Verdict::Proven)
                o.detail = heavy ? "single heavy anchor leads the group"
                                 : "anchor-free group";
            gc.obligations.push_back(std::move(o));
        }

        // Ephemeral non-escape: a tensor that never reaches DRAM must
        // provably never be needed outside its group (including as the
        // graph output).
        {
            Obligation o;
            o.id = "fusion/escape/" + gid;
            o.transform = "fusion";
            o.code = kDepFusionIllegal;
            o.verdict = Verdict::Proven;
            for (size_t i = 0;
                 i < g.members.size() && i < g.ephemeral.size(); ++i) {
                if (!g.ephemeral[i])
                    continue;
                const int id = g.members[i];
                if (dag.isOutput(id)) {
                    o.verdict = Verdict::Refuted;
                    o.detail = "ephemeral member " + std::to_string(id) +
                               " ('" +
                               dag.nodes[static_cast<size_t>(id)].name +
                               "') is a graph output: its value escapes "
                               "but is never written to DRAM";
                    break;
                }
                for (int c : consumers[static_cast<size_t>(id)]) {
                    if (!inGroup(c)) {
                        o.verdict = Verdict::Refuted;
                        o.detail =
                            "ephemeral member " + std::to_string(id) +
                            " is consumed by out-of-group node " +
                            std::to_string(c) +
                            ": the consumer would read a tensor that "
                            "never reaches DRAM";
                        break;
                    }
                }
                if (o.verdict == Verdict::Refuted)
                    break;
            }
            if (o.verdict == Verdict::Proven)
                o.detail = "every ephemeral tensor is consumed only "
                           "inside the group";
            gc.obligations.push_back(std::move(o));
        }

        // Retention windows: for each intra-group edge the executor's
        // ring buffer holds consumerWindowRows(consumer) producer rows;
        // that window must cover what one consumer row reads, and rows
        // must be consumed monotonically (stride >= 1) so eviction never
        // discards a row that is still needed.
        {
            Obligation o;
            o.id = "fusion/window/" + gid;
            o.transform = "fusion";
            o.code = kDepFusionIllegal;
            o.verdict = Verdict::Proven;
            for (int id : g.members) {
                const graph::DagNode &n =
                    dag.nodes[static_cast<size_t>(id)];
                bool hasIntraProducer = false;
                for (int p : n.inputs)
                    hasIntraProducer = hasIntraProducer || inGroup(p);
                if (!hasIntraProducer)
                    continue;
                const int64_t window = graph::consumerWindowRows(n);
                const int64_t needed =
                    n.kind == graph::NodeKind::Pool ? n.kernel : 1;
                if (window < needed) {
                    o.verdict = Verdict::Refuted;
                    o.detail =
                        "consumer '" + n.name + "' retains " +
                        std::to_string(window) +
                        " producer row(s) but one output row reads " +
                        std::to_string(needed);
                    break;
                }
                if (n.kind == graph::NodeKind::Pool && n.stride < 1) {
                    o.verdict = Verdict::Refuted;
                    o.detail = "consumer '" + n.name + "' has stride " +
                               std::to_string(n.stride) +
                               ": row consumption is not monotone, so "
                               "ring eviction would discard live rows";
                    break;
                }
            }
            if (o.verdict == Verdict::Proven)
                o.detail = "each ring buffer's retention window covers "
                           "one output row's reads and rows are "
                           "consumed monotonically";
            gc.obligations.push_back(std::move(o));
        }

        // Working set: the retention windows must actually fit on chip;
        // recomputed from the roofline model, not read off g.cost.
        {
            Obligation o;
            o.id = "fusion/capacity/" + gid;
            o.transform = "fusion";
            o.code = kDepFusionIllegal;
            graph::GroupCost cost = graph::rooflineGroupCost(
                dag, g.members, g.ephemeral, target);
            o.verdict =
                cost.feasible ? Verdict::Proven : Verdict::Refuted;
            o.detail =
                cost.feasible
                    ? "streaming working set (" +
                          std::to_string(cost.workingSetBytes) +
                          " bytes) fits within tier-2 capacity"
                    : "streaming working set (" +
                          std::to_string(cost.workingSetBytes) +
                          " bytes) exceeds tier-2 capacity: the ring "
                          "buffers cannot be allocated on chip";
            gc.obligations.push_back(std::move(o));
        }

        gc.verdict = verdictOf(gc.obligations);
        cert.groups.push_back(std::move(gc));
    }

    Verdict v = verdictOf(cert.obligations);
    for (const GroupCertificate &g : cert.groups)
        v = conjoin(v, g.verdict);
    cert.verdict = v;
    return cert;
}

} // namespace verify
} // namespace ft
