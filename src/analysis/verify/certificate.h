/**
 * @file
 * Transformation-legality certificates: machine-checkable proofs that a
 * lowered schedule (and a fusion partition) is equivalent to the
 * reference program.
 *
 * A certificate is a list of named obligations, one per transformation
 * the schedule applied, each carrying a verdict:
 *
 *   Proven  — the obligation holds; the detail records the argument
 *             (exact bijectivity of the split map, absence of carried
 *             dependences on a binding, guard exactness, ...).
 *   Refuted — a concrete witness violates it; the code field names the
 *             FT-DEP-* / FT-OOB-* diagnostic a refutation reports under.
 *   Unknown — the engine's exact budget was exceeded and the
 *             conservative criterion could not decide. Unknown never
 *             certifies: only a fully Proven certificate claims
 *             equivalence.
 *
 * Soundness contract (enforced by the differential oracle in
 * tests/test_certify.cc): a schedule whose certificate verdict is Proven
 * must match the reference interpreter bit-for-bit on integer-valued
 * inputs; a Refuted schedule must either mismatch or be conservatively
 * rejected by the structural verifier.
 *
 * Certification is read-only over nests and partitions: attaching or
 * skipping it never changes tuning outcomes (the determinism digests
 * pin this).
 */
#ifndef FLEXTENSOR_ANALYSIS_VERIFY_CERTIFICATE_H
#define FLEXTENSOR_ANALYSIS_VERIFY_CERTIFICATE_H

#include <string>
#include <vector>

#include "analysis/verify/deps.h"
#include "schedule/config.h"
#include "schedule/loop_nest.h"
#include "sim/hw_spec.h"

namespace ft {

namespace graph {
struct ComputeDag;
struct Partition;
} // namespace graph

namespace verify {

/** Outcome of one obligation (and of a whole certificate). */
enum class Verdict { Proven, Refuted, Unknown };

/** Lower-case verdict name used in JSON and human output. */
const char *verdictName(Verdict v);

/** One per-transformation proof obligation. */
struct Obligation
{
    std::string id;        ///< stable identifier ("split/k", "guard/m", ...)
    std::string transform; ///< primitive proved legal ("split", "binding", ...)
    std::string code;      ///< diagnostic code a refutation reports under
    Verdict verdict = Verdict::Unknown;
    std::string detail;    ///< proof sketch or refutation witness

    std::string toJson() const;
};

/** Certificate for one lowered schedule. */
struct ScheduleCertificate
{
    std::string op;     ///< scheduled compute node name
    std::string device; ///< target device name
    Verdict verdict = Verdict::Unknown;
    std::vector<Obligation> obligations;

    /** Number of obligations with the given verdict. */
    int count(Verdict v) const;
    /** True only for a fully Proven certificate. */
    bool equivalent() const { return verdict == Verdict::Proven; }

    std::string toJson() const;
};

/**
 * Certify one lowered schedule against the reference program: exact
 * dependence obligations (deps.h) per axis and per binding, the guard
 * exactness proof for imperfect tiles, and the access-bounds proof.
 * `config` is optional context (unused by the proofs themselves).
 * Deterministic and read-only.
 */
ScheduleCertificate certifySchedule(const Scheduled &s,
                                    const Target &target,
                                    const OpConfig *config = nullptr);

/** Certificate for one fusion group (FT-DEP-006 obligations). */
struct GroupCertificate
{
    int group = 0; ///< group index within the partition
    Verdict verdict = Verdict::Unknown;
    std::vector<Obligation> obligations;

    std::string toJson() const;
};

/** Certificate for a whole fusion partition. */
struct PartitionCertificate
{
    Verdict verdict = Verdict::Unknown;
    /** Partition-level obligations (assignment coverage). */
    std::vector<Obligation> obligations;
    std::vector<GroupCertificate> groups;

    int groupCount(Verdict v) const;
    bool equivalent() const { return verdict == Verdict::Proven; }

    std::string toJson() const;
};

/**
 * Certify a fusion partition: per group, producer→consumer streaming
 * order, retention-window sufficiency of the ring buffers, ephemeral
 * non-escape, anchor uniqueness, and working-set feasibility; plus the
 * partition-level assignment coverage. Refutations carry FT-DEP-006.
 */
PartitionCertificate certifyPartition(const graph::ComputeDag &dag,
                                      const graph::Partition &partition,
                                      const Target &target);

} // namespace verify
} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_VERIFY_CERTIFICATE_H
