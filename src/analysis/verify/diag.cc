#include "analysis/verify/diag.h"

#include <sstream>

namespace ft {
namespace verify {

namespace {

/** Escape a string for inclusion in a JSON string literal. */
void
appendJsonEscaped(std::ostringstream &oss, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': oss << "\\\""; break;
          case '\\': oss << "\\\\"; break;
          case '\n': oss << "\\n"; break;
          case '\t': oss << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                oss << buf;
            } else {
                oss << c;
            }
        }
    }
}

void
appendJsonField(std::ostringstream &oss, const char *key,
                const std::string &value, bool last = false)
{
    oss << "\"" << key << "\":\"";
    appendJsonEscaped(oss, value);
    oss << "\"" << (last ? "" : ",");
}

} // namespace

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "error";
}

std::string
Diag::toJson() const
{
    std::ostringstream oss;
    oss << "{";
    appendJsonField(oss, "code", code);
    appendJsonField(oss, "severity", severityName(severity));
    appendJsonField(oss, "loop", loop);
    appendJsonField(oss, "access", access);
    appendJsonField(oss, "message", message, /*last=*/true);
    oss << "}";
    return oss.str();
}

void
DiagReport::add(Diag d)
{
    if (d.severity == Severity::Error)
        ++errors_;
    else if (d.severity == Severity::Warning)
        ++warnings_;
    diags_.push_back(std::move(d));
}

void
DiagReport::clear()
{
    diags_.clear();
    errors_ = 0;
    warnings_ = 0;
}

const Diag *
DiagReport::firstError() const
{
    for (const Diag &d : diags_) {
        if (d.severity == Severity::Error)
            return &d;
    }
    return nullptr;
}

std::string
DiagReport::toJson() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < diags_.size(); ++i) {
        if (i)
            oss << ",";
        oss << diags_[i].toJson();
    }
    oss << "]";
    return oss.str();
}

VerifyError::VerifyError(Diag d)
    : std::runtime_error(d.code + ": " + d.message), diag(std::move(d))
{}

} // namespace verify
} // namespace ft
