/**
 * @file
 * Dependence/race detection over a lowered loop nest (FT-RACE-*) plus
 * the iteration-coverage proof (FT-COV-*).
 *
 * The anchor's output is written once per point of the original spatial
 * iteration space; every reduce iteration accumulates into the same
 * output element. The sub-loops of the nest realize those original
 * iterations through the mixed-radix map
 *     original index = sum_j  v_j * stride_j,   v_j in [0, extent_j)
 * so three things can go wrong statically:
 *
 *  - a Reduce-origin sub-loop with a concurrent annotation makes
 *    distinct hardware lanes accumulate into one element (FT-RACE-001);
 *  - aliasing strides make two distinct sub-loop index tuples of one
 *    spatial axis map to the same original index, i.e. two iterations
 *    write the same output element — a race when any of the axis's
 *    sub-loops runs concurrently (FT-RACE-002), a repeated serial write
 *    otherwise (FT-RACE-003, advisory);
 *  - the reachable index set does not cover [0, extent), leaving output
 *    elements unwritten or reduction terms dropped (FT-COV-001).
 *
 * Over-coverage (indices past the extent) is the bounds prover's
 * territory; this pass only proves the race/coverage half.
 */
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/verify/verify.h"

namespace ft {
namespace verify {

namespace {

/** Sub-loops of one original axis, with the span they reach. */
struct AxisLoops
{
    const IterVarNode *origin = nullptr;
    std::vector<const SubLoop *> loops;
    int64_t lo = 0; ///< minimum reachable original index
    int64_t hi = 0; ///< maximum reachable original index
    int64_t tuples = 1; ///< number of sub-loop index tuples
    bool anyConcurrent = false;
};

std::string
axisAccess(const ComputeOp *op, const IterVarNode *axis)
{
    return op->name() + "[" + axis->name + "]";
}

/**
 * The mixed-radix map of one axis is injective iff, with sub-loops
 * sorted by descending stride, each stride exceeds the furthest index
 * the inner sub-loops can reach together. Exact splits satisfy this by
 * construction (stride_i == product of inner extents). Returns the
 * offending sub-loop when the condition fails.
 */
const SubLoop *
findAlias(const AxisLoops &axis)
{
    std::vector<const SubLoop *> sorted;
    for (const SubLoop *l : axis.loops) {
        if (l->extent > 1)
            sorted.push_back(l);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const SubLoop *a, const SubLoop *b) {
                  return a->stride > b->stride;
              });
    for (size_t i = 0; i < sorted.size(); ++i) {
        int64_t inner_span = 0;
        for (size_t j = i + 1; j < sorted.size(); ++j)
            inner_span += (sorted[j]->extent - 1) * sorted[j]->stride;
        if (sorted[i]->stride <= inner_span)
            return sorted[i];
    }
    return nullptr;
}

} // namespace

void
checkRaces(const LoopNest &nest, DiagReport &out)
{
    if (!nest.op || nest.op->isPlaceholder())
        return;
    const auto *op = static_cast<const ComputeOp *>(nest.op.get());

    // FT-RACE-001: a reduce iteration bound to concurrent hardware.
    for (const SubLoop &l : nest.loops) {
        if (!l.origin || l.origin->kind != IterKind::Reduce)
            continue;
        if (l.extent > 1 && isConcurrentAnno(l.anno)) {
            out.add({kRaceReduceParallel, Severity::Error, l.name,
                     axisAccess(op, l.origin),
                     "reduce axis '" + l.origin->name + "' sub-loop '" +
                         l.name + "' carries annotation '" +
                         annoName(l.anno) +
                         "': concurrent iterations accumulate into the "
                         "same output element (write-write race)"});
        }
    }

    // Group sub-loops by their original axis.
    std::vector<AxisLoops> axes;
    auto groupOf = [&axes](const IterVarNode *origin) -> AxisLoops & {
        for (AxisLoops &a : axes) {
            if (a.origin == origin)
                return a;
        }
        axes.push_back(AxisLoops{});
        axes.back().origin = origin;
        return axes.back();
    };
    for (const auto &iv : op->axis())
        groupOf(iv.get());
    for (const auto &iv : op->reduceAxis())
        groupOf(iv.get());
    for (const SubLoop &l : nest.loops) {
        if (!l.origin)
            continue;
        AxisLoops &a = groupOf(l.origin);
        a.loops.push_back(&l);
        int64_t reach = (l.extent - 1) * l.stride;
        a.lo += std::min<int64_t>(reach, 0);
        a.hi += std::max<int64_t>(reach, 0);
        a.tuples *= std::max<int64_t>(l.extent, 1);
        a.anyConcurrent =
            a.anyConcurrent || (l.extent > 1 && isConcurrentAnno(l.anno));
    }

    for (const AxisLoops &a : axes) {
        // FT-RACE-002/003: stride aliasing on output-writing (spatial)
        // axes. Reduce-axis aliasing double-counts terms but never adds
        // a writer, so it is reported through coverage below instead.
        if (a.origin->kind == IterKind::Spatial) {
            if (const SubLoop *offender = findAlias(a)) {
                std::string what =
                    "sub-loops of spatial axis '" + a.origin->name +
                    "' alias: stride " + std::to_string(offender->stride) +
                    " of '" + offender->name +
                    "' is covered by the span of the inner sub-loops, so "
                    "distinct iterations map to the same output element";
                if (a.anyConcurrent) {
                    out.add({kRaceStrideAlias, Severity::Error,
                             offender->name, axisAccess(op, a.origin),
                             what + " (concurrent write-write race)"});
                } else {
                    out.add({kRaceSerialAlias, Severity::Warning,
                             offender->name, axisAccess(op, a.origin),
                             what + " (serial repeated write)"});
                }
            }
        }

        // FT-COV-001: the reachable set must cover [0, extent). The
        // reachable-count bound is min(#tuples, span width); either one
        // falling short proves some original iteration never runs.
        int64_t extent = a.origin->extent;
        int64_t span = a.hi - a.lo + 1;
        int64_t reachable = std::min<int64_t>(a.tuples, span);
        if (a.lo > 0 || a.hi < extent - 1 || reachable < extent) {
            const char *consequence =
                a.origin->kind == IterKind::Spatial
                    ? "some output elements are never written"
                    : "some reduction terms are never accumulated";
            out.add({kCovUnderCoverage, Severity::Error,
                     a.loops.empty() ? std::string() : a.loops[0]->name,
                     axisAccess(op, a.origin),
                     "sub-loops of axis '" + a.origin->name + "' reach " +
                         std::to_string(reachable) + " of " +
                         std::to_string(extent) + " iterations ([" +
                         std::to_string(a.lo) + ", " +
                         std::to_string(a.hi) + "]): " + consequence});
        }
    }
}

} // namespace verify
} // namespace ft
