/**
 * @file
 * Resource-legality lint (FT-RES-*): device limits over the features a
 * generator extracted from the nest.
 *
 * The Error checks reproduce the legacy `NestFeatures::valid` heuristics
 * that used to live inline in generator_gpu/fpga.cc — same predicates,
 * same order, same message text — so the generator shim
 * (applyResourceValidity) and the old if-chains are interchangeable and
 * the exploration digests pinned by test_determinism stay put. The
 * Warning checks are new advisory lint the old heuristics never ran.
 */
#include <string>

#include "analysis/verify/verify.h"

namespace ft {
namespace verify {

namespace {

void
checkGpu(const NestFeatures &f, const GpuSpec &spec, DiagReport &out)
{
    // Error checks in legacy order; messages must stay bit-identical to
    // the old generator strings (tests match on them).
    if (f.threadsPerBlock > spec.maxThreadsPerBlock) {
        out.add({kResThreadsPerBlock, Severity::Error, "", "",
                 "too many threads per block"});
    }
    if (f.sharedBytesPerBlock > spec.sharedMemPerBlock) {
        out.add({kResSharedMem, Severity::Error, "", "",
                 "shared memory tile exceeds per-block limit"});
    }
    if (f.regsPerThread > spec.regsPerThreadMax) {
        out.add({kResRegisters, Severity::Error, "", "",
                 "register tile exceeds per-thread budget"});
    }
    if (f.vthreads > 64) {
        out.add({kResVthreads, Severity::Error, "", "",
                 "too many virtual threads"});
    }
}

void
checkFpga(const NestFeatures &f, const FpgaSpec &spec,
          const OpConfig *config, DiagReport &out)
{
    if (f.pe > spec.maxPe()) {
        out.add({kResPeBudget, Severity::Error, "", "",
                 "PE count exceeds DSP budget"});
    }
    if (f.bufferBytes > spec.bramBytes) {
        out.add({kResBramBudget, Severity::Error, "", "",
                 "on-chip buffer exceeds BRAM capacity"});
    }
    if (config && config->fpgaPartition > 1 &&
        config->fpgaBufferRows % config->fpgaPartition != 0) {
        out.add({kResPartition, Severity::Warning, "", "",
                 "memory partition factor " +
                     std::to_string(config->fpgaPartition) +
                     " does not divide the " +
                     std::to_string(config->fpgaBufferRows) +
                     " buffered rows: banks fill unevenly"});
    }
}

void
checkCpu(const NestFeatures &f, const CpuSpec &spec,
         const OpConfig *config, DiagReport &out)
{
    if (!config)
        return;
    if (config->vectorizeLen > spec.vecLanes) {
        out.add({kResVectorLanes, Severity::Warning, "", "",
                 "requested vector length " +
                     std::to_string(config->vectorizeLen) + " exceeds the " +
                     std::to_string(spec.vecLanes) + " SIMD lanes of " +
                     spec.name});
    } else if (f.vecLen < config->vectorizeLen) {
        out.add({kResVectorLanes, Severity::Warning, "", "",
                 "vectorize length " +
                     std::to_string(config->vectorizeLen) +
                     " is not filled by the innermost spatial extent "
                     "(only " +
                     std::to_string(f.vecLen) + " lanes used)"});
    }
}

} // namespace

void
checkResources(const LoopNest &nest, const NestFeatures &features,
               const Target &target, const OpConfig *config,
               DiagReport &out)
{
    (void)nest; // limits are proven on the extracted features
    switch (target.kind) {
      case DeviceKind::Gpu:
        checkGpu(features, *target.gpu, out);
        break;
      case DeviceKind::Cpu:
        checkCpu(features, *target.cpu, config, out);
        break;
      case DeviceKind::Fpga:
        checkFpga(features, *target.fpga, config, out);
        break;
    }
}

} // namespace verify
} // namespace ft
