#include "analysis/verify/verify.h"

namespace ft {
namespace verify {

bool
isConcurrentAnno(LoopAnno anno)
{
    switch (anno) {
      case LoopAnno::Parallel:
      case LoopAnno::Vectorize:
      case LoopAnno::BlockX:
      case LoopAnno::VThread:
      case LoopAnno::ThreadX:
      case LoopAnno::PE:
        return true;
      case LoopAnno::Serial:
      case LoopAnno::Unroll:
        return false;
    }
    return false;
}

const char *
annoName(LoopAnno anno)
{
    switch (anno) {
      case LoopAnno::Serial: return "serial";
      case LoopAnno::Parallel: return "parallel";
      case LoopAnno::Vectorize: return "vectorize";
      case LoopAnno::Unroll: return "unroll";
      case LoopAnno::BlockX: return "blockIdx.x";
      case LoopAnno::VThread: return "vthread";
      case LoopAnno::ThreadX: return "threadIdx.x";
      case LoopAnno::PE: return "pe";
    }
    return "?";
}

void
checkStructural(const LoopNest &nest, DiagReport &out)
{
    checkRaces(nest, out);
    checkAccessBounds(nest, out);
}

void
verifyScheduleInto(const Scheduled &s, const Target &target,
                   const OpConfig *config, DiagReport &out)
{
    checkRaces(s.nest, out);
    checkAccessBounds(s.nest, out);
    checkResources(s.nest, s.features, target, config, out);
}

DiagReport
verifySchedule(const Scheduled &s, const Target &target,
               const OpConfig *config)
{
    DiagReport out;
    verifyScheduleInto(s, target, config, out);
    return out;
}

void
applyResourceValidity(Scheduled &s, const Target &target)
{
    DiagReport report;
    checkResources(s.nest, s.features, target, /*config=*/nullptr, report);
    const Diag *e = report.firstError();
    s.features.valid = (e == nullptr);
    s.features.invalidReason = e ? e->message : "";
}

} // namespace verify
} // namespace ft
