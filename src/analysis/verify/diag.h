/**
 * @file
 * Structured diagnostics for the static schedule verifier.
 *
 * A Diag pins one legality finding to a machine-readable code
 * (FT-RACE-*, FT-OOB-*, FT-COV-*, FT-RES-*, FT-DEP-*), a severity, and
 * — when the
 * finding is localized — the offending sub-loop and/or tensor access.
 * Error-severity diagnostics gate evaluation and code generation;
 * Warnings are advisory lint. Reports serialize to JSON so tools and CI
 * can consume them without parsing human-readable text.
 */
#ifndef FLEXTENSOR_ANALYSIS_VERIFY_DIAG_H
#define FLEXTENSOR_ANALYSIS_VERIFY_DIAG_H

#include <stdexcept>
#include <string>
#include <vector>

namespace ft {
namespace verify {

/** How bad a finding is. Only Error gates evaluation/codegen. */
enum class Severity { Info, Warning, Error };

/** Lower-case name used in JSON and human output. */
const char *severityName(Severity s);

/** @name Diagnostic codes
 * Dependence/race family (FT-RACE), access-bounds family (FT-OOB),
 * iteration-coverage family (FT-COV), resource-legality family (FT-RES),
 * dependence-preservation family (FT-DEP — the exact engine in deps.h
 * and the fusion certificates in certificate.h).
 * @{ */
inline constexpr const char *kRaceReduceParallel = "FT-RACE-001";
inline constexpr const char *kRaceStrideAlias = "FT-RACE-002";
inline constexpr const char *kRaceSerialAlias = "FT-RACE-003";
inline constexpr const char *kOobUnderflow = "FT-OOB-001";
inline constexpr const char *kOobOverflow = "FT-OOB-002";
inline constexpr const char *kCovUnderCoverage = "FT-COV-001";
inline constexpr const char *kResThreadsPerBlock = "FT-RES-001";
inline constexpr const char *kResSharedMem = "FT-RES-002";
inline constexpr const char *kResRegisters = "FT-RES-003";
inline constexpr const char *kResVthreads = "FT-RES-004";
inline constexpr const char *kResPeBudget = "FT-RES-005";
inline constexpr const char *kResBramBudget = "FT-RES-006";
inline constexpr const char *kResVectorLanes = "FT-RES-007";
inline constexpr const char *kResPartition = "FT-RES-008";
inline constexpr const char *kDepConcurrentCarried = "FT-DEP-001";
inline constexpr const char *kDepReduceDuplicate = "FT-DEP-002";
inline constexpr const char *kDepDomainMismatch = "FT-DEP-003";
inline constexpr const char *kDepSpatialDuplicate = "FT-DEP-004";
inline constexpr const char *kDepGuardInexact = "FT-DEP-005";
inline constexpr const char *kDepFusionIllegal = "FT-DEP-006";
/** @} */

/** One verifier finding. */
struct Diag
{
    std::string code;     ///< e.g. "FT-RACE-001"
    Severity severity = Severity::Error;
    std::string loop;     ///< offending sub-loop name ("" when global)
    std::string access;   ///< "tensor[dim]" for access findings ("" else)
    std::string message;  ///< human-readable explanation

    /** One JSON object with fixed key order. */
    std::string toJson() const;
};

/** An ordered collection of findings for one lowered schedule. */
class DiagReport
{
  public:
    void add(Diag d);

    /** Reset for reuse (keeps vector capacity: hot-loop friendly). */
    void clear();

    const std::vector<Diag> &diags() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    size_t size() const { return diags_.size(); }

    /** Whether any Error-severity finding is present. */
    bool hasError() const { return errors_ > 0; }
    int errorCount() const { return errors_; }
    int warningCount() const { return warnings_; }

    /** First Error-severity finding, or nullptr when clean. */
    const Diag *firstError() const;

    /** JSON array of every finding, in report order. */
    std::string toJson() const;

  private:
    std::vector<Diag> diags_;
    int errors_ = 0;
    int warnings_ = 0;
};

/**
 * Thrown by the code generators when asked to emit an Error-diagnosed
 * nest. Carries the first gating diagnostic.
 */
class VerifyError : public std::runtime_error
{
  public:
    explicit VerifyError(Diag d);

    const Diag diag;
};

} // namespace verify
} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_VERIFY_DIAG_H
