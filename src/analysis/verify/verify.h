/**
 * @file
 * Static schedule verifier: legality proofs over lowered loop nests.
 *
 * FlexTensor's front-end is a static analyzer; this module extends the
 * same discipline to the *back end* of the pipeline. Before a lowered
 * schedule is costed, executed, or emitted, three independent passes
 * prove (conservatively) that it is legal:
 *
 *  1. Dependence/race detection (`checkRaces`, FT-RACE-* and FT-COV-*):
 *     every sub-loop with a concurrent annotation (Parallel, Vectorize,
 *     BlockX, VThread, ThreadX, PE) must carry no cross-iteration write
 *     conflict. A Reduce-origin axis bound to a concurrent annotation is
 *     a write-write race by construction; spatial sub-loops whose
 *     strides alias (the mixed-radix map back to the original index is
 *     non-injective) race whenever a concurrent sub-loop is involved.
 *     The same walk proves write coverage: the sub-loops of each axis
 *     must reconstruct every original iteration.
 *
 *  2. Access-bounds proofs (`checkAccessBounds`, FT-OOB-*): interval
 *     analysis (analysis/bounds.h) over the variable ranges the nest
 *     actually realizes, with guard-aware refinement — an access inside
 *     the taken branch of a `select` is analyzed under the constraints
 *     the condition implies (this is what keeps inlined zero-padding,
 *     whose raw index intervals extend past the data, provably in
 *     bounds). Every tensor read and the output write must stay within
 *     the buffer extents.
 *
 *  3. Resource-legality lint (`checkResources`, FT-RES-*): the device
 *     limits previously enforced by ad-hoc `NestFeatures::valid` checks
 *     in the generators (threads/block, shared memory, registers,
 *     virtual threads, PE/DSP budget, BRAM capacity), plus advisory
 *     lint the old heuristics never looked at (vector-lane fill, FPGA
 *     partition divisibility).
 *
 * The passes only read the nest; they never throw on malformed
 * schedules — illegality is reported as diagnostics, not assertions.
 * `verifySchedule` is deliberately deterministic and allocation-light:
 * the evaluation hot loop runs it per candidate point.
 */
#ifndef FLEXTENSOR_ANALYSIS_VERIFY_VERIFY_H
#define FLEXTENSOR_ANALYSIS_VERIFY_VERIFY_H

#include "analysis/verify/diag.h"
#include "schedule/config.h"
#include "schedule/loop_nest.h"
#include "sim/hw_spec.h"

namespace ft {
namespace verify {

/** Whether a loop annotation executes iterations concurrently. */
bool isConcurrentAnno(LoopAnno anno);

/** Lower-case annotation name used in diagnostic messages. */
const char *annoName(LoopAnno anno);

/**
 * Dependence/race detection and write-coverage proof over the nest.
 * Appends FT-RACE-001/002/003 and FT-COV-001 findings to `out`.
 */
void checkRaces(const LoopNest &nest, DiagReport &out);

/**
 * Guard-aware access-bounds proof: every tensor access (and the output
 * write) must stay within its buffer extents under the variable ranges
 * the nest realizes. Appends FT-OOB-001/002 findings to `out`.
 */
void checkAccessBounds(const LoopNest &nest, DiagReport &out);

/**
 * Resource-legality lint against the target's device limits. The six
 * Error checks reproduce the legacy generator heuristics bit-for-bit
 * (same predicates, same order, same messages); the Warning checks are
 * new advisory lint. `config` may be null (the partition-divisibility
 * lint is skipped without it).
 */
void checkResources(const LoopNest &nest, const NestFeatures &features,
                    const Target &target, const OpConfig *config,
                    DiagReport &out);

/** Races + bounds: the target-independent structural legality checks. */
void checkStructural(const LoopNest &nest, DiagReport &out);

/** All three passes, appending into a caller-owned (reusable) report. */
void verifyScheduleInto(const Scheduled &s, const Target &target,
                        const OpConfig *config, DiagReport &out);

/** All three passes into a fresh report. */
DiagReport verifySchedule(const Scheduled &s, const Target &target,
                          const OpConfig *config = nullptr);

/**
 * Generator compatibility shim: run the Error-severity resource checks
 * and derive `features.valid` / `features.invalidReason` exactly as the
 * legacy in-generator heuristics did (first failing check wins, legacy
 * message text). Generators call this instead of hand-rolled if-chains;
 * downstream consumers of NestFeatures are unaffected.
 */
void applyResourceValidity(Scheduled &s, const Target &target);

} // namespace verify
} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_VERIFY_VERIFY_H
