/**
 * @file
 * Affine dependence engine over lowered loop nests.
 *
 * Where the race pass (race.cc) applies fast conservative bounds, this
 * engine extracts the *exact* affine relation each original axis realizes
 * through its mixed-radix split map
 *     original index = sum_j  v_j * stride_j,   v_j in [0, extent_j)
 * and proves (or refutes, with a concrete witness iteration) the three
 * properties a transformed nest must have to be equivalent to the
 * reference program:
 *
 *  - the live iteration map (the tuples that survive any `value < extent`
 *    guard) is injective — no original iteration runs twice, so no
 *    reduction term is double-counted and no output element is
 *    re-accumulated (FT-DEP-002 on reduce axes, FT-DEP-004 on spatial);
 *  - the live map is onto [0, extent) and nothing escapes it — no
 *    original iteration is dropped and no unguarded iteration runs past
 *    the domain (FT-DEP-003);
 *  - every dependence the nest carries (the accumulator read-modify-write
 *    of a reduction, the output dependence between duplicated writers)
 *    stays on serially ordered hardware: a concurrent annotation on a
 *    dependence-carrying sub-loop is refuted (FT-DEP-001);
 *  - a declared guarded axis (imperfect tile) gets a guard-exactness
 *    proof: the guard must cut exactly the overshoot and nothing else
 *    (FT-DEP-005) — this replaces the bounds prover's "declared guarded
 *    axes" trust with a checked obligation.
 *
 * Exactness: because the split map is separable per axis, each axis can
 * be analyzed independently by enumerating its (small) tuple set. Above
 * `kExactTupleCap` tuples the engine falls back to the conservative
 * stride-dominance criterion and reports Unknown instead of guessing.
 */
#ifndef FLEXTENSOR_ANALYSIS_VERIFY_DEPS_H
#define FLEXTENSOR_ANALYSIS_VERIFY_DEPS_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bounds.h"
#include "analysis/verify/diag.h"
#include "schedule/loop_nest.h"

namespace ft {
namespace verify {

/** Enumeration budget per axis; above this the analysis degrades to the
 *  conservative stride criterion (verdicts become Unknown, never wrong). */
inline constexpr int64_t kExactTupleCap = int64_t(1) << 20;

/** Three-valued analysis outcome. */
enum class Tri { True, False, Unknown };

/** Exact affine relation one original axis realizes. */
struct AxisRelation
{
    const IterVarNode *origin = nullptr;
    std::vector<const SubLoop *> loops; ///< nest order (outer to inner)
    bool guarded = false;  ///< axis is in LoopNest::guardedAxes
    /** Reconstructed index range the sub-loops realize (inclusive). */
    Interval range;
    int64_t tuples = 1;    ///< number of sub-loop index tuples
    bool exact = false;    ///< tuple set enumerated (vs. conservative)
    bool positiveStrides = true; ///< every extent>1 sub-loop has stride>0

    /**
     * Injectivity of the *live* map: tuples whose reconstructed index is
     * < extent (all tuples when the axis never overshoots). A duplicate
     * means some original iteration executes more than once.
     */
    Tri liveInjective = Tri::Unknown;
    /** The live image covers every index in [0, extent). */
    Tri covers = Tri::Unknown;
    /** Witness index hit by two live tuples (-1 when none found). */
    int64_t duplicateWitness = -1;
    /** Witness index in [0, extent) never reached (-1 when none). */
    int64_t holeWitness = -1;
    /** Whether any tuple reconstructs an index >= extent. */
    bool overshoots = false;
    /** Whether any sub-loop with extent > 1 runs concurrently. */
    bool anyConcurrent = false;
};

/** What kind of cross-iteration dependence a sub-loop carries. */
enum class DepKind {
    Reduction, ///< accumulator read-modify-write between its iterations
    Output     ///< duplicated writers of one output element
};

const char *depKindName(DepKind kind);

/**
 * One carried dependence: iterating `loop` out of order (or in parallel)
 * reorders the two endpoints of a dependence. Distance is measured in
 * iterations of `loop` itself; direction is always '<' (the source
 * precedes the sink in program order).
 */
struct Dependence
{
    DepKind kind = DepKind::Reduction;
    const SubLoop *loop = nullptr;
    const IterVarNode *axis = nullptr;
    int64_t distance = 1;
    std::string note; ///< human-readable derivation
};

/** The full dependence summary of one nest. */
struct DependenceInfo
{
    std::vector<AxisRelation> axes;      ///< one per original axis
    std::vector<Dependence> carried;     ///< all carried dependences

    const AxisRelation *axisOf(const IterVarNode *origin) const;
    /** Dependences carried by one specific sub-loop. */
    std::vector<const Dependence *> carriedBy(const SubLoop *loop) const;
};

/**
 * Analyze the nest: exact per-axis relations plus the carried-dependence
 * set. Read-only over the nest; deterministic.
 */
DependenceInfo analyzeDependences(const LoopNest &nest);

/**
 * Dependence-preservation findings (FT-DEP-001..005) appended to `out`.
 * Complements checkRaces: where the race pass bounds, this pass decides
 * exactly (and so also catches duplication the bounds admit, e.g. an
 * aliasing reduce split whose tuple count happens to cover the span).
 */
void checkDependences(const LoopNest &nest, DiagReport &out);

} // namespace verify
} // namespace ft

#endif // FLEXTENSOR_ANALYSIS_VERIFY_DEPS_H
