#include "schedule/generator_util.h"

#include "schedule/config.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace ft {
namespace gen {

std::vector<const ExprNode *>
bodyAccesses(const ComputeOp *op)
{
    std::vector<const ExprNode *> out;
    visitExpr(op->body(), [&](const ExprNode &n) {
        if (n.kind == ExprKind::Access)
            out.push_back(&n);
    });
    return out;
}

VarRanges
rangesWithFree(const ComputeOp *op, const std::vector<SubLoop> &loops,
               const std::function<bool(const SubLoop &)> &isFree)
{
    VarRanges ranges;
    for (const auto &iv : op->axis())
        ranges[iv.get()] = Interval{0, 0};
    for (const auto &iv : op->reduceAxis())
        ranges[iv.get()] = Interval{0, 0};
    for (const auto &l : loops) {
        if (!isFree(l))
            continue;
        auto it = ranges.find(l.origin);
        FT_ASSERT(it != ranges.end(), "sub-loop with foreign origin");
        it->second.hi += (l.extent - 1) * l.stride;
    }
    return ranges;
}

std::vector<InputFootprint>
inputFootprints(const ComputeOp *op, const VarRanges &ranges)
{
    std::vector<InputFootprint> out;
    for (const ExprNode *acc : bodyAccesses(op))
        out.push_back({acc, accessFootprint(*acc, ranges)});
    return out;
}

int64_t
footprintBytes(const std::vector<InputFootprint> &fps)
{
    int64_t cells = 0;
    for (const auto &fp : fps)
        cells += fp.cells;
    return cells * 4;
}

void
checkSplits(const ComputeOp *op, const OpConfig &config, int spatial_levels,
            int reduce_levels)
{
    FT_ASSERT(config.spatialSplits.size() == op->axis().size(),
              "config has ", config.spatialSplits.size(),
              " spatial splits for op with ", op->axis().size(), " axes");
    FT_ASSERT(config.reduceSplits.size() == op->reduceAxis().size(),
              "config has ", config.reduceSplits.size(),
              " reduce splits for op with ", op->reduceAxis().size(),
              " reduce axes");
    for (size_t i = 0; i < config.spatialSplits.size(); ++i) {
        FT_ASSERT(static_cast<int>(config.spatialSplits[i].size()) ==
                      spatial_levels,
                  "spatial split row must have ", spatial_levels, " levels");
        FT_ASSERT(product(config.spatialSplits[i]) >=
                      op->axis()[i]->extent,
                  "spatial split of ", op->axis()[i]->name,
                  " multiplies below extent");
    }
    for (size_t i = 0; i < config.reduceSplits.size(); ++i) {
        FT_ASSERT(static_cast<int>(config.reduceSplits[i].size()) ==
                      reduce_levels,
                  "reduce split row must have ", reduce_levels, " levels");
        FT_ASSERT(product(config.reduceSplits[i]) >=
                      op->reduceAxis()[i]->extent,
                  "reduce split of ", op->reduceAxis()[i]->name,
                  " multiplies below extent");
    }
}

void
recordGuardedAxes(const ComputeOp *op, LoopNest &nest)
{
    nest.guardedAxes.clear();
    auto span = [&nest](const IterVarNode *origin) {
        int64_t hi = 0;
        for (const SubLoop &l : nest.loops) {
            if (l.origin == origin)
                hi += (l.extent - 1) * l.stride;
        }
        return hi;
    };
    for (const auto &iv : op->axis()) {
        if (span(iv.get()) > iv->extent - 1)
            nest.guardedAxes.push_back(iv.get());
    }
    for (const auto &iv : op->reduceAxis()) {
        if (span(iv.get()) > iv->extent - 1)
            nest.guardedAxes.push_back(iv.get());
    }
}

} // namespace gen
} // namespace ft
