/**
 * @file
 * Schedule configuration: one point of the schedule space, decoded.
 *
 * A config records the parameters of every schedule primitive FlexTensor
 * applies (Table 2): split factors per loop, reorder choice, fuse count,
 * unroll depth, vectorize length, and the FPGA buffer/partition knobs. The
 * per-hardware generators (generator_cpu/gpu/fpga) interpret a config and
 * lower the anchor operation to an annotated loop nest.
 */
#ifndef FLEXTENSOR_SCHEDULE_CONFIG_H
#define FLEXTENSOR_SCHEDULE_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace ft {

/** Number of reorder patterns the generators understand. */
inline constexpr int kNumReorderChoices = 4;

/** A decoded schedule-space point. */
struct OpConfig
{
    /**
     * Split factors per spatial loop, outermost factor first. The product
     * of each row equals the loop extent (divisible splits only; Section
     * 4.2). Row length is the tiling depth of the target (4 on GPU, 3 on
     * CPU, 2 on FPGA).
     */
    std::vector<std::vector<int64_t>> spatialSplits;

    /** Split factors per reduce loop (3 levels on GPU, 2 on CPU, 1 FPGA). */
    std::vector<std::vector<int64_t>> reduceSplits;

    /** Which inner-block loop arrangement to use; see generators. */
    int reorderChoice = 0;

    /** CPU: number of outermost sub-loops fused into the parallel loop. */
    int fuseCount = 1;

    /** Unroll the innermost `unrollDepth` loops (0 = no unrolling). */
    int unrollDepth = 0;

    /** CPU: requested vector width in lanes. */
    int vectorizeLen = 8;

    /**
     * GPU: reduce level the shared-memory tiles are staged at (the
     * compute_at primitive of Table 2). Level 0 stages big tiles once per
     * outer reduce step; level 1 stages smaller tiles more often, freeing
     * shared memory (occupancy) at the cost of extra DRAM traffic.
     */
    int cacheAtReduceLevel = 0;

    /** FPGA: input rows buffered on chip per round. */
    int fpgaBufferRows = 1;

    /** FPGA: on-chip memory partition factor (banks). */
    int fpgaPartition = 1;

    /** Render as the paper's nested-vector encoding (Figure 3e style). */
    std::string toString() const;
};

} // namespace ft

#endif // FLEXTENSOR_SCHEDULE_CONFIG_H
