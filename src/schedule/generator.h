/**
 * @file
 * Per-hardware schedule generators (Section 5.3 of the paper).
 *
 * Each generator lowers (anchor compute op, config) to an annotated loop
 * nest following the target's fixed schedule skeleton:
 *  - CPU:  multi-level tiling, outer-loop fusion + parallelization,
 *          innermost-loop vectorization, register blocking (Figure 4a);
 *  - GPU:  block/thread binding, virtual threads, shared-memory caching of
 *          inputs, register tile for outputs (Figure 4b);
 *  - FPGA: round/PE decomposition feeding the three-stage read-compute-write
 *          pipeline with row buffering and memory partitioning (Figure 4c).
 *
 * The returned features drive the analytical device models in sim/.
 */
#ifndef FLEXTENSOR_SCHEDULE_GENERATOR_H
#define FLEXTENSOR_SCHEDULE_GENERATOR_H

#include "ir/operation.h"
#include "schedule/config.h"
#include "schedule/loop_nest.h"
#include "sim/hw_spec.h"

namespace ft {

/** Tiling depths used by each target's skeleton. */
inline constexpr int kGpuSpatialLevels = 4;
inline constexpr int kGpuReduceLevels = 3;
inline constexpr int kCpuSpatialLevels = 3;
inline constexpr int kCpuReduceLevels = 2;
inline constexpr int kFpgaSpatialLevels = 2;
inline constexpr int kFpgaReduceLevels = 2;

/** Lower a config for a CUDA-style GPU. */
Scheduled generateGpu(const Operation &anchor, const OpConfig &config,
                      const GpuSpec &spec);

/** Lower a config for a multicore CPU. */
Scheduled generateCpu(const Operation &anchor, const OpConfig &config,
                      const CpuSpec &spec);

/** Lower a config for the FPGA three-stage pipeline. */
Scheduled generateFpga(const Operation &anchor, const OpConfig &config,
                       const FpgaSpec &spec);

/** Dispatch on target kind. */
Scheduled generate(const Operation &anchor, const OpConfig &config,
                   const Target &target);

/**
 * generate*() into a caller-owned Scheduled, reusing its loop-nest and
 * feature storage across calls — the evaluation hot loop lowers
 * thousands of configs per run, and the reused buffers keep that
 * allocation-free once warm. `out` is fully overwritten.
 */
void generateGpuInto(const Operation &anchor, const OpConfig &config,
                     const GpuSpec &spec, Scheduled &out);
void generateCpuInto(const Operation &anchor, const OpConfig &config,
                     const CpuSpec &spec, Scheduled &out);
void generateFpgaInto(const Operation &anchor, const OpConfig &config,
                      const FpgaSpec &spec, Scheduled &out);
void generateInto(const Operation &anchor, const OpConfig &config,
                  const Target &target, Scheduled &out);

/**
 * A default (untuned but valid) config for the target: splits every loop
 * with trailing factors of 1. Used as a fallback and as the naive baseline.
 */
OpConfig defaultConfig(const Operation &anchor, const Target &target);

} // namespace ft

#endif // FLEXTENSOR_SCHEDULE_GENERATOR_H
