#include "schedule/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/static_analyzer.h"
#include "support/journal.h"
#include "support/logging.h"

namespace ft {

namespace {

/** Journal kind tag for tuning-cache files (format v3). */
constexpr char kCacheKind[] = "tcache";

void
appendSplits(std::ostringstream &oss,
             const std::vector<std::vector<int64_t>> &splits)
{
    for (size_t i = 0; i < splits.size(); ++i) {
        if (i)
            oss << ";";
        for (size_t j = 0; j < splits[i].size(); ++j) {
            if (j)
                oss << ",";
            oss << splits[i][j];
        }
    }
}

std::optional<std::vector<std::vector<int64_t>>>
parseSplits(const std::string &text)
{
    std::vector<std::vector<int64_t>> out;
    if (text.empty())
        return out;
    std::istringstream rows(text);
    std::string row;
    while (std::getline(rows, row, ';')) {
        std::vector<int64_t> factors;
        std::istringstream cells(row);
        std::string cell;
        while (std::getline(cells, cell, ',')) {
            try {
                factors.push_back(std::stoll(cell));
            } catch (...) {
                return std::nullopt;
            }
        }
        if (factors.empty())
            return std::nullopt;
        out.push_back(std::move(factors));
    }
    return out;
}

/** Split "key=value" fields separated by '|'. */
std::map<std::string, std::string>
parseFields(const std::string &line)
{
    std::map<std::string, std::string> out;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, '|')) {
        auto eq = field.find('=');
        if (eq == std::string::npos) {
            out[field] = "";
        } else {
            out[field.substr(0, eq)] = field.substr(eq + 1);
        }
    }
    return out;
}

} // namespace

std::string
serializeConfig(const OpConfig &config)
{
    std::ostringstream oss;
    oss << "v1|s=";
    appendSplits(oss, config.spatialSplits);
    oss << "|r=";
    appendSplits(oss, config.reduceSplits);
    oss << "|reorder=" << config.reorderChoice
        << "|fuse=" << config.fuseCount
        << "|unroll=" << config.unrollDepth
        << "|vec=" << config.vectorizeLen
        << "|cacheat=" << config.cacheAtReduceLevel
        << "|rows=" << config.fpgaBufferRows
        << "|part=" << config.fpgaPartition;
    return oss.str();
}

std::optional<OpConfig>
parseConfig(const std::string &line)
{
    auto fields = parseFields(line);
    if (!fields.count("v1"))
        return std::nullopt;
    OpConfig config;
    auto spatial = parseSplits(fields["s"]);
    auto reduce = parseSplits(fields["r"]);
    if (!spatial || !reduce)
        return std::nullopt;
    config.spatialSplits = std::move(*spatial);
    config.reduceSplits = std::move(*reduce);
    try {
        auto get_int = [&](const char *key, int fallback) {
            auto it = fields.find(key);
            return it == fields.end() ? fallback : std::stoi(it->second);
        };
        config.reorderChoice = get_int("reorder", 0);
        config.fuseCount = get_int("fuse", 1);
        config.unrollDepth = get_int("unroll", 0);
        config.vectorizeLen = get_int("vec", 8);
        config.cacheAtReduceLevel = get_int("cacheat", 0);
        config.fpgaBufferRows = get_int("rows", 1);
        config.fpgaPartition = get_int("part", 1);
    } catch (...) {
        return std::nullopt;
    }
    return config;
}

std::string
tuningKeyFor(const Operation &anchor, const std::string &device)
{
    FT_ASSERT(!anchor->isPlaceholder(), "tuning key of placeholder");
    const auto *c = static_cast<const ComputeOp *>(anchor.get());
    std::ostringstream oss;
    oss << anchor->name() << ":";
    for (const auto &iv : c->axis())
        oss << iv->extent << ",";
    oss << "r:";
    for (const auto &iv : c->reduceAxis())
        oss << iv->extent << ",";
    oss << "@" << device;
    return oss.str();
}

std::string
tuningKey(const Tensor &output, const std::string &device)
{
    MiniGraph graph(output);
    return tuningKeyFor(anchorOp(graph), device);
}

void
TuningCache::putLocked(TuningRecord record)
{
    auto it = records_.find(record.key);
    if (it == records_.end() || it->second.gflops < record.gflops)
        records_[record.key] = std::move(record);
}

void
TuningCache::put(const TuningRecord &record)
{
    std::lock_guard<std::mutex> lock(mu_);
    putLocked(record);
}

std::optional<TuningRecord>
TuningCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(key);
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

size_t
TuningCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

namespace {

/** One cache record as a frame payload: "key\tgflops\tconfig". */
std::optional<TuningRecord>
parseCacheRecord(const std::string &line)
{
    auto tab1 = line.find('\t');
    auto tab2 = line.find('\t', tab1 + 1);
    if (tab1 == std::string::npos || tab2 == std::string::npos)
        return std::nullopt;
    TuningRecord record;
    record.key = line.substr(0, tab1);
    try {
        record.gflops = std::stod(line.substr(tab1 + 1, tab2 - tab1 - 1));
    } catch (...) {
        return std::nullopt;
    }
    auto config = parseConfig(line.substr(tab2 + 1));
    if (!config)
        return std::nullopt;
    record.config = std::move(*config);
    return record;
}

} // namespace

bool
TuningCache::save(const std::string &path) const
{
    // Format v3: a CRC32-framed journal, one record per frame, committed
    // atomically (temp file + rename) so readers never observe a partial
    // file. Unlike the v2 count-footer format — which could only detect
    // truncation and discard everything — per-frame checksums let load()
    // recover every record before a torn tail.
    JournalWriter writer(kCacheKind);
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[key, record] : records_) {
            std::ostringstream oss;
            oss << key << "\t" << record.gflops << "\t"
                << serializeConfig(record.config);
            writer.append(oss.str());
        }
    }
    return writer.commit(path);
}

bool
TuningCache::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    in.close();

    if (looksLikeJournal(bytes)) {
        JournalContents journal = parseJournal(bytes);
        if (!journal.valid || journal.kind != kCacheKind) {
            warn("tuning cache ", path, " is not a usable journal (",
                 journal.diag.empty() ? "wrong journal kind" : journal.diag,
                 "); starting with an empty cache");
            return true;
        }
        if (journal.torn) {
            // Torn tail: every intact frame before the tear is real
            // data — keep it. Repair the file so future appends and
            // readers see a clean journal.
            warn("tuning cache ", path, " has a torn tail (", journal.diag,
                 "); recovered ", journal.records.size(),
                 " records before the tear");
            if (!truncateToValid(path, journal))
                warn("could not repair torn tuning cache ", path);
        }
        for (const std::string &payload : journal.records) {
            auto record = parseCacheRecord(payload);
            if (!record) {
                warn("skipping unparseable tuning record frame: ", payload);
                continue;
            }
            put(*record);
        }
        return true;
    }

    // Legacy formats. v2: header + record-count footer — a missing
    // footer or count mismatch means truncation mid-write (or
    // corruption), and the whole file is discarded with a warning
    // instead of poisoning a running service. v1 (no header) keeps the
    // lenient skip-bad-lines behavior.
    std::vector<TuningRecord> staged;
    bool versioned = false, first = true, corrupt = false;
    bool saw_footer = false;
    size_t declared = 0;
    std::string line;
    std::istringstream text(bytes);
    while (std::getline(text, line)) {
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line == "#flextensor-cache v2") {
                versioned = true;
                continue;
            }
        }
        if (line[0] == '#') {
            if (versioned && line.rfind("#count=", 0) == 0) {
                try {
                    declared = std::stoull(line.substr(7));
                    saw_footer = true;
                } catch (...) {
                    corrupt = true;
                }
            }
            continue;
        }
        auto record = parseCacheRecord(line);
        if (!record) {
            warn("skipping malformed tuning record: ", line);
            corrupt = true;
            continue;
        }
        staged.push_back(std::move(*record));
    }
    if (versioned &&
        (corrupt || !saw_footer || declared != staged.size())) {
        warn("tuning cache ", path,
             " is truncated or corrupt; starting with an empty cache");
        return true;
    }
    for (const TuningRecord &record : staged)
        put(record);
    return true;
}

} // namespace ft
