#include "schedule/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/static_analyzer.h"
#include "support/logging.h"

namespace ft {

namespace {

void
appendSplits(std::ostringstream &oss,
             const std::vector<std::vector<int64_t>> &splits)
{
    for (size_t i = 0; i < splits.size(); ++i) {
        if (i)
            oss << ";";
        for (size_t j = 0; j < splits[i].size(); ++j) {
            if (j)
                oss << ",";
            oss << splits[i][j];
        }
    }
}

std::optional<std::vector<std::vector<int64_t>>>
parseSplits(const std::string &text)
{
    std::vector<std::vector<int64_t>> out;
    if (text.empty())
        return out;
    std::istringstream rows(text);
    std::string row;
    while (std::getline(rows, row, ';')) {
        std::vector<int64_t> factors;
        std::istringstream cells(row);
        std::string cell;
        while (std::getline(cells, cell, ',')) {
            try {
                factors.push_back(std::stoll(cell));
            } catch (...) {
                return std::nullopt;
            }
        }
        if (factors.empty())
            return std::nullopt;
        out.push_back(std::move(factors));
    }
    return out;
}

/** Split "key=value" fields separated by '|'. */
std::map<std::string, std::string>
parseFields(const std::string &line)
{
    std::map<std::string, std::string> out;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, '|')) {
        auto eq = field.find('=');
        if (eq == std::string::npos) {
            out[field] = "";
        } else {
            out[field.substr(0, eq)] = field.substr(eq + 1);
        }
    }
    return out;
}

} // namespace

std::string
serializeConfig(const OpConfig &config)
{
    std::ostringstream oss;
    oss << "v1|s=";
    appendSplits(oss, config.spatialSplits);
    oss << "|r=";
    appendSplits(oss, config.reduceSplits);
    oss << "|reorder=" << config.reorderChoice
        << "|fuse=" << config.fuseCount
        << "|unroll=" << config.unrollDepth
        << "|vec=" << config.vectorizeLen
        << "|cacheat=" << config.cacheAtReduceLevel
        << "|rows=" << config.fpgaBufferRows
        << "|part=" << config.fpgaPartition;
    return oss.str();
}

std::optional<OpConfig>
parseConfig(const std::string &line)
{
    auto fields = parseFields(line);
    if (!fields.count("v1"))
        return std::nullopt;
    OpConfig config;
    auto spatial = parseSplits(fields["s"]);
    auto reduce = parseSplits(fields["r"]);
    if (!spatial || !reduce)
        return std::nullopt;
    config.spatialSplits = std::move(*spatial);
    config.reduceSplits = std::move(*reduce);
    try {
        auto get_int = [&](const char *key, int fallback) {
            auto it = fields.find(key);
            return it == fields.end() ? fallback : std::stoi(it->second);
        };
        config.reorderChoice = get_int("reorder", 0);
        config.fuseCount = get_int("fuse", 1);
        config.unrollDepth = get_int("unroll", 0);
        config.vectorizeLen = get_int("vec", 8);
        config.cacheAtReduceLevel = get_int("cacheat", 0);
        config.fpgaBufferRows = get_int("rows", 1);
        config.fpgaPartition = get_int("part", 1);
    } catch (...) {
        return std::nullopt;
    }
    return config;
}

std::string
tuningKeyFor(const Operation &anchor, const std::string &device)
{
    FT_ASSERT(!anchor->isPlaceholder(), "tuning key of placeholder");
    const auto *c = static_cast<const ComputeOp *>(anchor.get());
    std::ostringstream oss;
    oss << anchor->name() << ":";
    for (const auto &iv : c->axis())
        oss << iv->extent << ",";
    oss << "r:";
    for (const auto &iv : c->reduceAxis())
        oss << iv->extent << ",";
    oss << "@" << device;
    return oss.str();
}

std::string
tuningKey(const Tensor &output, const std::string &device)
{
    MiniGraph graph(output);
    return tuningKeyFor(anchorOp(graph), device);
}

void
TuningCache::putLocked(TuningRecord record)
{
    auto it = records_.find(record.key);
    if (it == records_.end() || it->second.gflops < record.gflops)
        records_[record.key] = std::move(record);
}

void
TuningCache::put(const TuningRecord &record)
{
    std::lock_guard<std::mutex> lock(mu_);
    putLocked(record);
}

std::optional<TuningRecord>
TuningCache::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(key);
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

size_t
TuningCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

bool
TuningCache::save(const std::string &path) const
{
    // Write-then-rename so readers never observe a partial file and a
    // crashed writer cannot truncate an existing cache.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            return false;
        std::lock_guard<std::mutex> lock(mu_);
        // Header + record-count footer let load() distinguish a complete
        // cache from one truncated by a crashed writer or a bad disk.
        out << "#flextensor-cache v2\n";
        for (const auto &[key, record] : records_) {
            out << key << "\t" << record.gflops << "\t"
                << serializeConfig(record.config) << "\n";
        }
        out << "#count=" << records_.size() << "\n";
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
TuningCache::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    // Records are staged and merged only once the file proves complete:
    // a v2 file whose footer is missing or whose count disagrees was
    // truncated mid-write (or corrupted), and is discarded with a
    // warning instead of poisoning a running service. Legacy files
    // (no header) keep the lenient skip-bad-lines behavior.
    std::vector<TuningRecord> staged;
    bool versioned = false, first = true, corrupt = false;
    bool saw_footer = false;
    size_t declared = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (first) {
            first = false;
            if (line == "#flextensor-cache v2") {
                versioned = true;
                continue;
            }
        }
        if (line[0] == '#') {
            if (versioned && line.rfind("#count=", 0) == 0) {
                try {
                    declared = std::stoull(line.substr(7));
                    saw_footer = true;
                } catch (...) {
                    corrupt = true;
                }
            }
            continue;
        }
        auto tab1 = line.find('\t');
        auto tab2 = line.find('\t', tab1 + 1);
        if (tab1 == std::string::npos || tab2 == std::string::npos) {
            warn("skipping malformed tuning record: ", line);
            corrupt = true;
            continue;
        }
        TuningRecord record;
        record.key = line.substr(0, tab1);
        try {
            record.gflops =
                std::stod(line.substr(tab1 + 1, tab2 - tab1 - 1));
        } catch (...) {
            warn("skipping tuning record with bad value: ", line);
            corrupt = true;
            continue;
        }
        auto config = parseConfig(line.substr(tab2 + 1));
        if (!config) {
            warn("skipping tuning record with bad config: ", line);
            corrupt = true;
            continue;
        }
        record.config = std::move(*config);
        staged.push_back(std::move(record));
    }
    if (versioned &&
        (corrupt || !saw_footer || declared != staged.size())) {
        warn("tuning cache ", path,
             " is truncated or corrupt; starting with an empty cache");
        return true;
    }
    for (const TuningRecord &record : staged)
        put(record);
    return true;
}

} // namespace ft
