#include "schedule/generator.h"

#include <algorithm>

#include "analysis/flops.h"
#include "analysis/verify/verify.h"
#include "schedule/generator_util.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace ft {

void
generateCpuInto(const Operation &anchor, const OpConfig &config,
                const CpuSpec &spec, Scheduled &out)
{
    FT_ASSERT(!anchor->isPlaceholder(), "cannot schedule a placeholder");
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    gen::checkSplits(op, config, kCpuSpatialLevels, kCpuReduceLevels);

    out.nest.op = anchor;
    out.nest.loops.clear();
    out.features = NestFeatures{};

    // Spatial levels: [outer (parallel candidates), mid, inner];
    // reduce levels: [outer, inner].
    std::vector<std::vector<SubLoop>> sp, rd;
    for (size_t i = 0; i < op->axis().size(); ++i)
        sp.push_back(splitLoop(op->axis()[i], config.spatialSplits[i], "s"));
    for (size_t i = 0; i < op->reduceAxis().size(); ++i)
        rd.push_back(splitLoop(op->reduceAxis()[i], config.reduceSplits[i],
                               "r"));

    int fuse = std::clamp<int>(config.fuseCount, 1,
                               static_cast<int>(sp.size()));
    auto &loops = out.nest.loops;
    // The first `fuse` outer loops form the fused parallel hyper-loop.
    for (int i = 0; i < static_cast<int>(sp.size()); ++i) {
        sp[i][0].anno =
            i < fuse ? LoopAnno::Parallel : LoopAnno::Serial;
        loops.push_back(sp[i][0]);
    }
    for (const auto &row : sp)
        loops.push_back(row[1]);
    for (const auto &row : rd)
        loops.push_back(row[0]);

    // Inner block: register/L1 tile. Reorder choice arranges the inner
    // spatial tile against the inner reduce steps.
    std::vector<SubLoop> si, ki;
    for (const auto &row : sp)
        si.push_back(row[2]);
    for (const auto &row : rd)
        ki.push_back(row[1]);

    std::vector<SubLoop> inner;
    switch (config.reorderChoice % kNumReorderChoices) {
      case 0:
        inner.insert(inner.end(), ki.begin(), ki.end());
        inner.insert(inner.end(), si.begin(), si.end());
        break;
      case 1:
        inner.insert(inner.end(), si.begin(), si.end());
        inner.insert(inner.end(), ki.begin(), ki.end());
        break;
      case 2: {
        size_t a = 0, b = 0;
        while (a < ki.size() || b < si.size()) {
            if (a < ki.size())
                inner.push_back(ki[a++]);
            if (b < si.size())
                inner.push_back(si[b++]);
        }
        break;
      }
      default: {
        // Keep the innermost spatial loop last but hoist the reduce chain
        // directly around it (good for FMA accumulation).
        inner.insert(inner.end(), si.begin(), si.end());
        if (!inner.empty()) {
            SubLoop last = inner.back();
            inner.pop_back();
            inner.insert(inner.end(), ki.begin(), ki.end());
            inner.push_back(last);
        } else {
            inner.insert(inner.end(), ki.begin(), ki.end());
        }
        break;
      }
    }
    // The innermost spatial sub-loop is the vectorized one.
    for (auto it = inner.rbegin(); it != inner.rend(); ++it) {
        if (it->origin->kind == IterKind::Spatial) {
            it->anno = LoopAnno::Vectorize;
            break;
        }
    }
    for (int u = 0;
         u < config.unrollDepth && u < static_cast<int>(inner.size()); ++u) {
        auto &l = inner[inner.size() - 1 - u];
        if (l.anno == LoopAnno::Serial)
            l.anno = LoopAnno::Unroll;
    }
    loops.insert(loops.end(), inner.begin(), inner.end());
    gen::recordGuardedAxes(op, out.nest);

    // ------------------------------------------------------------------
    // Features.
    NestFeatures &f = out.features;
    f.totalFlops = flopsOf(anchor);
    f.outputElems = product(op->outputShape());
    f.parallelExtent = out.nest.extentOf(LoopAnno::Parallel);

    // Effective vector width: lanes actually filled by the innermost
    // spatial sub-loop, capped by the requested length.
    int64_t inner_sp = 1;
    for (const auto &l : inner) {
        if (l.anno == LoopAnno::Vectorize)
            inner_sp = l.extent;
    }
    f.vecLen = static_cast<int>(
        std::min<int64_t>(config.vectorizeLen,
                          largestPowerOfTwoDivisor(inner_sp)));
    f.vecLen = std::max(f.vecLen, 1);

    f.unrollSteps = 1;
    for (const auto &l : inner) {
        if (l.anno == LoopAnno::Unroll)
            f.unrollSteps *= l.extent;
    }

    // L1 tile: the inner block (si x ki) footprint.
    auto l1_free = [](const SubLoop &l) { return l.level >= 2 ||
        (l.origin->kind == IterKind::Reduce && l.level >= 1); };
    VarRanges l1_ranges = gen::rangesWithFree(op, loops, l1_free);
    f.l1TileBytes = gen::footprintBytes(gen::inputFootprints(op, l1_ranges));

    // L2 tile: everything below the parallel level.
    auto l2_free = [](const SubLoop &l) {
        return !(l.origin->kind == IterKind::Spatial && l.level == 0);
    };
    VarRanges l2_ranges = gen::rangesWithFree(op, loops, l2_free);
    f.l2TileBytes = gen::footprintBytes(gen::inputFootprints(op, l2_ranges));

    // DRAM traffic: per-parallel-task footprint times task count, floored
    // by tensor size and discounted by L3 reuse for small tensors.
    auto task_fps = gen::inputFootprints(op, l2_ranges);
    int64_t tasks = 1;
    for (const auto &row : sp)
        tasks *= row[0].extent;
    int64_t dram = 0;
    for (const auto &fp : task_fps) {
        int64_t tensor_bytes = 4;
        for (int64_t d : fp.accessNode->source->outputShape())
            tensor_bytes *= d;
        int64_t naive = tasks * fp.cells * 4;
        if (tensor_bytes < spec.l3Bytes / 2)
            dram += std::max<int64_t>(tensor_bytes, naive / 16);
        else
            dram += naive;
    }
    dram += f.outputElems * 4;
    f.cpuDramBytes = dram;

    // No CPU device limit gates validity; the shim keeps valid == true.
    verify::applyResourceValidity(out, Target::forCpu(spec));
}

} // namespace ft
