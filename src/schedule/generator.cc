#include "schedule/generator.h"

#include "support/logging.h"

namespace ft {

Scheduled
generate(const Operation &anchor, const OpConfig &config,
         const Target &target)
{
    switch (target.kind) {
      case DeviceKind::Gpu:
        return generateGpu(anchor, config, *target.gpu);
      case DeviceKind::Cpu:
        return generateCpu(anchor, config, *target.cpu);
      case DeviceKind::Fpga:
        return generateFpga(anchor, config, *target.fpga);
    }
    panic("unreachable");
}

OpConfig
defaultConfig(const Operation &anchor, const Target &target)
{
    FT_ASSERT(!anchor->isPlaceholder(), "defaultConfig of placeholder");
    const auto *op = static_cast<const ComputeOp *>(anchor.get());

    int sl = kGpuSpatialLevels, rl = kGpuReduceLevels;
    if (target.kind == DeviceKind::Cpu) {
        sl = kCpuSpatialLevels;
        rl = kCpuReduceLevels;
    } else if (target.kind == DeviceKind::Fpga) {
        sl = kFpgaSpatialLevels;
        rl = kFpgaReduceLevels;
    }

    OpConfig config;
    for (const auto &iv : op->axis()) {
        std::vector<int64_t> row(sl, 1);
        row[0] = iv->extent;
        config.spatialSplits.push_back(std::move(row));
    }
    for (const auto &iv : op->reduceAxis()) {
        std::vector<int64_t> row(rl, 1);
        row[0] = iv->extent;
        config.reduceSplits.push_back(std::move(row));
    }
    return config;
}

} // namespace ft
