#include "schedule/generator.h"

#include "support/logging.h"

namespace ft {

Scheduled
generate(const Operation &anchor, const OpConfig &config,
         const Target &target)
{
    Scheduled out;
    generateInto(anchor, config, target, out);
    return out;
}

void
generateInto(const Operation &anchor, const OpConfig &config,
             const Target &target, Scheduled &out)
{
    switch (target.kind) {
      case DeviceKind::Gpu:
        generateGpuInto(anchor, config, *target.gpu, out);
        return;
      case DeviceKind::Cpu:
        generateCpuInto(anchor, config, *target.cpu, out);
        return;
      case DeviceKind::Fpga:
        generateFpgaInto(anchor, config, *target.fpga, out);
        return;
    }
    panic("unreachable");
}

Scheduled
generateGpu(const Operation &anchor, const OpConfig &config,
            const GpuSpec &spec)
{
    Scheduled out;
    generateGpuInto(anchor, config, spec, out);
    return out;
}

Scheduled
generateCpu(const Operation &anchor, const OpConfig &config,
            const CpuSpec &spec)
{
    Scheduled out;
    generateCpuInto(anchor, config, spec, out);
    return out;
}

Scheduled
generateFpga(const Operation &anchor, const OpConfig &config,
             const FpgaSpec &spec)
{
    Scheduled out;
    generateFpgaInto(anchor, config, spec, out);
    return out;
}

OpConfig
defaultConfig(const Operation &anchor, const Target &target)
{
    FT_ASSERT(!anchor->isPlaceholder(), "defaultConfig of placeholder");
    const auto *op = static_cast<const ComputeOp *>(anchor.get());

    int sl = kGpuSpatialLevels, rl = kGpuReduceLevels;
    if (target.kind == DeviceKind::Cpu) {
        sl = kCpuSpatialLevels;
        rl = kCpuReduceLevels;
    } else if (target.kind == DeviceKind::Fpga) {
        sl = kFpgaSpatialLevels;
        rl = kFpgaReduceLevels;
    }

    OpConfig config;
    for (const auto &iv : op->axis()) {
        std::vector<int64_t> row(sl, 1);
        row[0] = iv->extent;
        config.spatialSplits.push_back(std::move(row));
    }
    for (const auto &iv : op->reduceAxis()) {
        std::vector<int64_t> row(rl, 1);
        row[0] = iv->extent;
        config.reduceSplits.push_back(std::move(row));
    }
    return config;
}

} // namespace ft
