#include "schedule/config.h"

#include <sstream>

namespace ft {

namespace {

void
printSplits(std::ostringstream &oss,
            const std::vector<std::vector<int64_t>> &splits)
{
    for (size_t i = 0; i < splits.size(); ++i) {
        if (i)
            oss << ", ";
        oss << "[";
        for (size_t j = 0; j < splits[i].size(); ++j) {
            if (j)
                oss << ", ";
            oss << splits[i][j];
        }
        oss << "]";
    }
}

} // namespace

std::string
OpConfig::toString() const
{
    std::ostringstream oss;
    oss << "[splits: ";
    printSplits(oss, spatialSplits);
    if (!reduceSplits.empty()) {
        oss << " | rsplits: ";
        printSplits(oss, reduceSplits);
    }
    oss << " | reorder " << reorderChoice << " | fuse " << fuseCount
        << " | unroll " << unrollDepth << " | vec " << vectorizeLen;
    if (cacheAtReduceLevel != 0)
        oss << " | cache_at " << cacheAtReduceLevel;
    if (fpgaBufferRows != 1 || fpgaPartition != 1) {
        oss << " | buffer " << fpgaBufferRows << " | partition "
            << fpgaPartition;
    }
    oss << "]";
    return oss.str();
}

} // namespace ft
