#include "schedule/generator.h"

#include <algorithm>

#include "analysis/flops.h"
#include "analysis/verify/verify.h"
#include "schedule/generator_util.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace ft {

void
generateFpgaInto(const Operation &anchor, const OpConfig &config,
                 const FpgaSpec &spec, Scheduled &out)
{
    FT_ASSERT(!anchor->isPlaceholder(), "cannot schedule a placeholder");
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    gen::checkSplits(op, config, kFpgaSpatialLevels, kFpgaReduceLevels);

    out.nest.op = anchor;
    out.nest.loops.clear();
    out.features = NestFeatures{};

    // Spatial levels: [round, pe]; reduce levels: [stream, inner]. Outer
    // reduce chunks stream through the pipeline as extra rounds with the
    // partial sums held on chip; the inner reduce runs inside each PE's
    // pipelined datapath.
    std::vector<std::vector<SubLoop>> sp, rd;
    for (size_t i = 0; i < op->axis().size(); ++i)
        sp.push_back(splitLoop(op->axis()[i], config.spatialSplits[i], "s"));
    for (size_t i = 0; i < op->reduceAxis().size(); ++i)
        rd.push_back(splitLoop(op->reduceAxis()[i], config.reduceSplits[i],
                               "r"));

    auto &loops = out.nest.loops;
    for (const auto &row : sp)
        loops.push_back(row[0]);
    for (const auto &row : rd)
        loops.push_back(row[0]);
    for (auto &row : sp) {
        row[1].anno = LoopAnno::PE;
        loops.push_back(row[1]);
    }
    for (const auto &row : rd)
        loops.push_back(row[1]);
    gen::recordGuardedAxes(op, out.nest);

    // ------------------------------------------------------------------
    // Features for the three-stage pipeline model (Section 5.2):
    //   T = rounds * max(R, C, W)
    NestFeatures &f = out.features;
    f.totalFlops = flopsOf(anchor);
    f.outputElems = product(op->outputShape());
    f.pe = out.nest.extentOf(LoopAnno::PE);
    f.partition = std::max(config.fpgaPartition, 1);

    int64_t rounds = 1;
    for (const auto &row : sp)
        rounds *= row[0].extent;
    for (const auto &row : rd)
        rounds *= row[0].extent;
    f.rounds = rounds;
    f.flopsPerRound = f.totalFlops / static_cast<double>(rounds);

    // Per-round input tile: round and reduce-stream loops pinned, PE
    // lanes and the inner reduction free.
    auto round_free = [](const SubLoop &l) { return l.level != 0; };
    VarRanges tile_ranges = gen::rangesWithFree(op, loops, round_free);
    auto tile_fps = gen::inputFootprints(op, tile_ranges);
    int64_t tile_bytes = gen::footprintBytes(tile_fps);
    // The first body access is the streamed activation (weights stay
    // resident on chip); row buffering applies to it alone.
    int64_t streamed_bytes =
        tile_fps.empty() ? 0 : tile_fps.front().cells * 4;

    // Row buffering: halo re-reads between rounds shrink as more rows of
    // the streamed input are kept on chip, at the cost of BRAM capacity.
    int rows = std::max(config.fpgaBufferRows, 1);
    f.readBytesPerRound =
        static_cast<double>(tile_bytes) +
        static_cast<double>(streamed_bytes) * 2.0 / (rows + 1.0);
    f.writeBytesPerRound =
        static_cast<double>(f.outputElems) * 4.0 / rounds;
    f.bufferBytes = tile_bytes + streamed_bytes * (rows - 1);

    verify::applyResourceValidity(out, Target::forFpga(spec));
}

} // namespace ft
