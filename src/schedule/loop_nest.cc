#include "schedule/loop_nest.h"

#include <algorithm>

#include "support/logging.h"
#include "support/math_util.h"

namespace ft {

bool
LoopNest::isGuarded(const IterVarNode *origin) const
{
    for (const IterVarNode *g : guardedAxes) {
        if (g == origin)
            return true;
    }
    return false;
}

int64_t
LoopNest::extentOf(LoopAnno anno) const
{
    int64_t p = 1;
    for (const auto &l : loops) {
        if (l.anno == anno)
            p *= l.extent;
    }
    return p;
}

std::vector<SubLoop>
splitLoop(const IterVar &iv, const std::vector<int64_t> &factors,
          const std::string &suffix_base)
{
    FT_ASSERT(!factors.empty(), "splitLoop with no factors");
    FT_ASSERT(product(factors) >= iv->extent, "split of ", iv->name,
              " multiplies below extent ", iv->extent);
    std::vector<SubLoop> out(factors.size());
    int64_t stride = 1;
    for (size_t lvl = factors.size(); lvl-- > 0;) {
        SubLoop &l = out[lvl];
        l.name = iv->name + "." + suffix_base + std::to_string(lvl);
        l.extent = factors[lvl];
        l.origin = iv.get();
        l.stride = stride;
        l.level = static_cast<int>(lvl);
        stride *= factors[lvl];
    }
    return out;
}

namespace {

int64_t
evalIntRec(const Expr &e,
           const std::vector<std::pair<const IterVarNode *, int64_t>> &env)
{
    switch (e->kind) {
      case ExprKind::IntImm:
        return e->intValue;
      case ExprKind::Var: {
        for (const auto &[var, value] : env) {
            if (var == e->var.get())
                return value;
        }
        return 0; // unbound variables default to zero
      }
      case ExprKind::Add:
        return evalIntRec(e->a, env) + evalIntRec(e->b, env);
      case ExprKind::Sub:
        return evalIntRec(e->a, env) - evalIntRec(e->b, env);
      case ExprKind::Mul:
        return evalIntRec(e->a, env) * evalIntRec(e->b, env);
      case ExprKind::Div: {
        int64_t b = evalIntRec(e->b, env);
        FT_ASSERT(b != 0, "integer division by zero");
        return evalIntRec(e->a, env) / b;
      }
      case ExprKind::Mod: {
        int64_t b = evalIntRec(e->b, env);
        FT_ASSERT(b > 0, "integer modulo by non-positive");
        int64_t r = evalIntRec(e->a, env) % b;
        return r < 0 ? r + b : r;
      }
      case ExprKind::Min:
        return std::min(evalIntRec(e->a, env), evalIntRec(e->b, env));
      case ExprKind::Max:
        return std::max(evalIntRec(e->a, env), evalIntRec(e->b, env));
      case ExprKind::CmpLT:
        return evalIntRec(e->a, env) < evalIntRec(e->b, env) ? 1 : 0;
      case ExprKind::CmpLE:
        return evalIntRec(e->a, env) <= evalIntRec(e->b, env) ? 1 : 0;
      case ExprKind::CmpEQ:
        return evalIntRec(e->a, env) == evalIntRec(e->b, env) ? 1 : 0;
      case ExprKind::And:
        return evalIntRec(e->a, env) && evalIntRec(e->b, env) ? 1 : 0;
      case ExprKind::Or:
        return evalIntRec(e->a, env) || evalIntRec(e->b, env) ? 1 : 0;
      default:
        panic("evalIntExpr: float-typed node in index expression");
    }
}

} // namespace

int64_t
evalIntExpr(const Expr &e,
            const std::vector<std::pair<const IterVarNode *, int64_t>> &env)
{
    return evalIntRec(e, env);
}

int64_t
linearCoefficient(const Expr &e, const IterVarNode *var)
{
    std::vector<std::pair<const IterVarNode *, int64_t>> env0, env1;
    env1.emplace_back(var, 1);
    return evalIntExpr(e, env1) - evalIntExpr(e, env0);
}

} // namespace ft
