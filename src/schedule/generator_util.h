/**
 * @file
 * Shared helpers for the schedule generators (internal header).
 */
#ifndef FLEXTENSOR_SCHEDULE_GENERATOR_UTIL_H
#define FLEXTENSOR_SCHEDULE_GENERATOR_UTIL_H

#include <functional>
#include <vector>

#include "analysis/bounds.h"
#include "ir/operation.h"
#include "schedule/loop_nest.h"

namespace ft {
namespace gen {

/** Distinct tensor-access nodes in the body of a compute op. */
std::vector<const ExprNode *> bodyAccesses(const ComputeOp *op);

/**
 * Build variable ranges where sub-loops satisfying `isFree` span their full
 * range and all others are pinned to zero. The range of an original
 * variable is the stride-weighted sum of its free sub-loops.
 */
VarRanges rangesWithFree(const ComputeOp *op,
                         const std::vector<SubLoop> &loops,
                         const std::function<bool(const SubLoop &)> &isFree);

/** Footprint of one input access under the given ranges, in elements. */
struct InputFootprint
{
    const ExprNode *accessNode;
    int64_t cells;
};

/** Footprints of all body accesses under the given ranges. */
std::vector<InputFootprint> inputFootprints(const ComputeOp *op,
                                            const VarRanges &ranges);

/** Sum of the footprints, in bytes of fp32. */
int64_t footprintBytes(const std::vector<InputFootprint> &fps);

/**
 * Validate that split rows match the op's loops and multiply to at
 * least each loop's extent (exactly for divisible splits; an overshoot
 * is an imperfect tile the executors guard).
 */
void checkSplits(const ComputeOp *op, const OpConfig &config,
                 int spatial_levels, int reduce_levels);

/**
 * Record on the nest every original axis whose sub-loops overshoot its
 * extent (see LoopNest::guardedAxes). Clears any previous recording, so
 * the nest-reusing generate*Into paths stay correct.
 */
void recordGuardedAxes(const ComputeOp *op, LoopNest &nest);

} // namespace gen
} // namespace ft

#endif // FLEXTENSOR_SCHEDULE_GENERATOR_UTIL_H
