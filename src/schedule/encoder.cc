#include "schedule/encoder.h"

#include <algorithm>
#include <cmath>

#include "support/math_util.h"

namespace ft {

std::vector<std::vector<int64_t>>
encodeConfig(const OpConfig &config)
{
    std::vector<std::vector<int64_t>> rows;
    for (const auto &s : config.spatialSplits)
        rows.push_back(s);
    for (const auto &s : config.reduceSplits)
        rows.push_back(s);
    rows.push_back({config.reorderChoice});
    rows.push_back({config.fuseCount});
    rows.push_back({config.unrollDepth});
    rows.push_back({config.vectorizeLen});
    rows.push_back({config.cacheAtReduceLevel});
    rows.push_back({config.fpgaBufferRows, config.fpgaPartition});
    return rows;
}

std::vector<double>
configFeatures(const OpConfig &config)
{
    std::vector<double> out;
    configFeaturesInto(config, out);
    return out;
}

void
configFeaturesInto(const OpConfig &config, std::vector<double> &out)
{
    auto push_splits = [&](const std::vector<std::vector<int64_t>> &splits) {
        for (const auto &row : splits) {
            double total = std::log2(
                static_cast<double>(std::max<int64_t>(product(row), 2)));
            for (int64_t f : row)
                out.push_back(std::log2(static_cast<double>(f) + 1.0) /
                              total);
        }
    };
    push_splits(config.spatialSplits);
    push_splits(config.reduceSplits);
    out.push_back(config.reorderChoice /
                  static_cast<double>(kNumReorderChoices));
    out.push_back(config.fuseCount / 8.0);
    out.push_back(config.unrollDepth / 4.0);
    out.push_back(std::log2(config.vectorizeLen + 1.0) / 5.0);
    // cacheAtReduceLevel is intentionally not encoded here: when the knob
    // is in the space, ScheduleSpace::features already exposes it through
    // the per-subspace index part of the feature vector.
    out.push_back(std::log2(config.fpgaBufferRows + 1.0) / 5.0);
    out.push_back(std::log2(config.fpgaPartition + 1.0) / 5.0);
}

} // namespace ft
