/**
 * @file
 * The transformed loop nest a schedule produces, plus the static features
 * the performance models consume.
 *
 * Splitting a loop of extent L into factors [f1, ..., fn] yields n sub-loops
 * with strides (f2*...*fn, ..., fn, 1); the original index is the stride-
 * weighted sum of the sub-loop variables. The nest preserves semantics by
 * construction — the interpreter in exec/ executes it directly and is
 * checked against the reference executor in tests.
 */
#ifndef FLEXTENSOR_SCHEDULE_LOOP_NEST_H
#define FLEXTENSOR_SCHEDULE_LOOP_NEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/operation.h"
#include "schedule/config.h"

namespace ft {

/** How a sub-loop is realized on the target. */
enum class LoopAnno {
    Serial,
    Parallel,  ///< CPU worker threads (collapsed with adjacent Parallel)
    Vectorize, ///< CPU SIMD lanes
    Unroll,
    BlockX,    ///< GPU: bound to the block grid (fused across axes)
    VThread,   ///< GPU: virtual thread (ILP) level
    ThreadX,   ///< GPU: bound to threads within a block
    PE         ///< FPGA: spatially replicated processing elements
};

/** One loop of the transformed nest (outer-to-inner order in LoopNest). */
struct SubLoop
{
    std::string name;
    int64_t extent;
    LoopAnno anno = LoopAnno::Serial;
    /** Original iteration variable this sub-loop was split from. */
    const IterVarNode *origin = nullptr;
    /** Contribution of this sub-loop to the original index. */
    int64_t stride = 1;
    /** Tiling level within its original loop (0 = outermost). */
    int level = 0;
};

/** A fully lowered schedule for one compute node. */
struct LoopNest
{
    Operation op;               ///< the scheduled compute node
    std::vector<SubLoop> loops; ///< outer to inner

    /**
     * Original axes whose sub-loops overshoot the axis extent (an
     * "imperfect tile": the split factors multiply past the extent, as
     * happens when one schedule serves a whole shape family and a
     * dynamic dimension is not divisible by the tile). Executors and
     * emitters guard the loop body with `value < extent` for exactly
     * these axes; the bounds prover clamps their realized ranges under
     * the same contract.
     */
    std::vector<const IterVarNode *> guardedAxes;

    /** Whether `origin` is one of the guarded (imperfectly tiled) axes. */
    bool isGuarded(const IterVarNode *origin) const;

    /** Product of the extents of loops with the given annotation. */
    int64_t extentOf(LoopAnno anno) const;
};

/** Static features extracted by the generators for the models. */
struct NestFeatures
{
    bool valid = true;
    std::string invalidReason;

    double totalFlops = 0.0;
    int64_t outputElems = 0;
    int64_t unrollSteps = 1;

    // GPU.
    int64_t grid = 1;
    int64_t threadsPerBlock = 1;
    int64_t vthreads = 1;
    int64_t workPerThread = 1;
    int64_t regsPerThread = 32;
    int64_t sharedBytesPerBlock = 0;
    int64_t dramBytes = 0;
    double coalesceFactor = 1.0;
    double bankConflictPenalty = 1.0;

    // CPU.
    int64_t parallelExtent = 1;
    int vecLen = 1;
    int64_t l1TileBytes = 0;
    int64_t l2TileBytes = 0;
    int64_t cpuDramBytes = 0;

    // FPGA.
    int64_t pe = 1;
    int64_t bufferBytes = 0;
    int partition = 1;
    double readBytesPerRound = 0.0;
    double writeBytesPerRound = 0.0;
    double flopsPerRound = 0.0;
    int64_t rounds = 1;
};

/** A lowered schedule plus its model features. */
struct Scheduled
{
    LoopNest nest;
    NestFeatures features;
};

/**
 * Expand one original loop into sub-loops per the split factors.
 * Returns sub-loops outer-to-inner with correct strides. The factors
 * must multiply to at least the extent; an overshoot yields an
 * imperfect tile whose out-of-range iterations the executors guard off
 * (the generators record such axes in LoopNest::guardedAxes).
 */
std::vector<SubLoop> splitLoop(const IterVar &iv,
                               const std::vector<int64_t> &factors,
                               const std::string &suffix_base);

/**
 * Evaluate an integer (index) expression given original-variable values.
 * Access/FloatImm nodes must not appear.
 */
int64_t evalIntExpr(const Expr &e,
                    const std::vector<std::pair<const IterVarNode *,
                                                int64_t>> &env);

/**
 * Coefficient of `var` in the (affine) integer expression, measured by
 * finite difference with all other variables at zero.
 */
int64_t linearCoefficient(const Expr &e, const IterVarNode *var);

} // namespace ft

#endif // FLEXTENSOR_SCHEDULE_LOOP_NEST_H
