/**
 * @file
 * Schedule-point encoding (Figure 3e of the paper).
 *
 * Every schedule-space point is encoded as a nested integer vector: one row
 * of split factors per loop, then the scalar primitive choices. The flat
 * float encoding feeds the Q-network and the gradient-boosted cost model.
 */
#ifndef FLEXTENSOR_SCHEDULE_ENCODER_H
#define FLEXTENSOR_SCHEDULE_ENCODER_H

#include <cstdint>
#include <vector>

#include "schedule/config.h"

namespace ft {

/** Paper-style nested integer encoding of a config. */
std::vector<std::vector<int64_t>> encodeConfig(const OpConfig &config);

/**
 * Flat, roughly unit-scaled feature vector of a config (log2 of split
 * factors normalized by the loop's log2 extent, plus the scalar knobs).
 */
std::vector<double> configFeatures(const OpConfig &config);

/** configFeatures() appended to a caller-owned buffer (no allocation
 *  once the buffer has grown to capacity). */
void configFeaturesInto(const OpConfig &config, std::vector<double> &out);

} // namespace ft

#endif // FLEXTENSOR_SCHEDULE_ENCODER_H
