#include "schedule/generator.h"

#include <algorithm>
#include <cmath>

#include "analysis/flops.h"
#include "analysis/verify/verify.h"
#include "schedule/generator_util.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace ft {

namespace {

/**
 * Arrange the innermost loop block per the reorder choice.
 * `si` are the per-axis inner spatial sub-loops, `ki` the innermost reduce
 * sub-loops.
 */
std::vector<SubLoop>
innerOrder(int choice, const std::vector<SubLoop> &si,
           const std::vector<SubLoop> &ki)
{
    std::vector<SubLoop> out;
    switch (choice % kNumReorderChoices) {
      case 0: // reduce taps outside, spatial register tile innermost
        out.insert(out.end(), ki.begin(), ki.end());
        out.insert(out.end(), si.begin(), si.end());
        break;
      case 1: // spatial outside, reduce innermost (accumulator chains)
        out.insert(out.end(), si.begin(), si.end());
        out.insert(out.end(), ki.begin(), ki.end());
        break;
      case 2: { // interleave, starting with reduce
        size_t a = 0, b = 0;
        while (a < ki.size() || b < si.size()) {
            if (a < ki.size())
                out.push_back(ki[a++]);
            if (b < si.size())
                out.push_back(si[b++]);
        }
        break;
      }
      default: { // interleave, starting with spatial
        size_t a = 0, b = 0;
        while (a < ki.size() || b < si.size()) {
            if (b < si.size())
                out.push_back(si[b++]);
            if (a < ki.size())
                out.push_back(ki[a++]);
        }
        break;
      }
    }
    return out;
}

} // namespace

void
generateGpuInto(const Operation &anchor, const OpConfig &config,
                const GpuSpec &spec, Scheduled &out)
{
    FT_ASSERT(!anchor->isPlaceholder(), "cannot schedule a placeholder");
    const auto *op = static_cast<const ComputeOp *>(anchor.get());
    gen::checkSplits(op, config, kGpuSpatialLevels, kGpuReduceLevels);

    out.nest.op = anchor;
    out.nest.loops.clear();
    out.features = NestFeatures{};

    // Split every loop. Spatial levels: [block, vthread, thread, inner];
    // reduce levels: [outer, mid, inner].
    std::vector<std::vector<SubLoop>> sp, rd;
    for (size_t i = 0; i < op->axis().size(); ++i)
        sp.push_back(splitLoop(op->axis()[i], config.spatialSplits[i], "s"));
    for (size_t i = 0; i < op->reduceAxis().size(); ++i)
        rd.push_back(splitLoop(op->reduceAxis()[i], config.reduceSplits[i],
                               "r"));

    auto &loops = out.nest.loops;
    std::vector<SubLoop> si, ki;
    for (auto &row : sp) {
        row[0].anno = LoopAnno::BlockX;
        row[1].anno = LoopAnno::VThread;
        row[2].anno = LoopAnno::ThreadX;
        si.push_back(row[3]);
    }
    for (auto &row : rd) {
        ki.push_back(row[2]);
    }
    for (const auto &row : sp)
        loops.push_back(row[0]);
    for (const auto &row : sp)
        loops.push_back(row[1]);
    for (const auto &row : sp)
        loops.push_back(row[2]);
    for (const auto &row : rd)
        loops.push_back(row[0]);
    for (const auto &row : rd)
        loops.push_back(row[1]);
    std::vector<SubLoop> inner = innerOrder(config.reorderChoice, si, ki);
    for (int u = 0;
         u < config.unrollDepth && u < static_cast<int>(inner.size()); ++u) {
        inner[inner.size() - 1 - u].anno = LoopAnno::Unroll;
    }
    loops.insert(loops.end(), inner.begin(), inner.end());
    gen::recordGuardedAxes(op, out.nest);

    // ------------------------------------------------------------------
    // Features.
    NestFeatures &f = out.features;
    f.totalFlops = flopsOf(anchor);
    f.outputElems = product(op->outputShape());

    f.grid = out.nest.extentOf(LoopAnno::BlockX);
    f.threadsPerBlock = out.nest.extentOf(LoopAnno::ThreadX);
    f.vthreads = out.nest.extentOf(LoopAnno::VThread);

    int64_t regTile = 1;
    for (const auto &l : si)
        regTile *= l.extent;
    int64_t reduceWork = 1;
    for (const auto &row : rd)
        for (const auto &l : row)
            reduceWork *= l.extent;
    f.workPerThread = f.vthreads * regTile * reduceWork;
    f.regsPerThread = 16 + 2 * regTile + 4 * config.unrollDepth;
    f.unrollSteps = 1;
    for (int u = 0;
         u < config.unrollDepth && u < static_cast<int>(inner.size()); ++u) {
        f.unrollSteps *= inner[inner.size() - 1 - u].extent;
    }

    // Shared-memory tiles: inputs are staged per block at the configured
    // reduce depth (compute_at). Reduce levels at or above the staging
    // depth are pinned (the tile is reloaded for each of their
    // iterations); deeper levels and all sub-block spatial loops are free.
    const int cache_at =
        std::clamp(config.cacheAtReduceLevel, 0, kGpuReduceLevels - 2);
    auto shared_free = [cache_at](const SubLoop &l) {
        if (l.anno == LoopAnno::BlockX)
            return false;
        if (l.origin->kind == IterKind::Reduce)
            return l.level > cache_at;
        return true;
    };
    VarRanges tile_ranges = gen::rangesWithFree(op, loops, shared_free);
    auto tile_fps = gen::inputFootprints(op, tile_ranges);
    f.sharedBytesPerBlock = gen::footprintBytes(tile_fps);

    // DRAM traffic: per-block footprint over the whole reduction, times
    // the grid; small tensors are assumed to be served mostly from L2.
    // Staging deeper than the default point (compute_at level > 0) pays a
    // reload penalty proportional to the extra staging rounds.
    auto block_free = [](const SubLoop &l) {
        return l.anno != LoopAnno::BlockX;
    };
    VarRanges block_ranges = gen::rangesWithFree(op, loops, block_free);
    auto block_fps = gen::inputFootprints(op, block_ranges);
    double reload = 1.0;
    if (cache_at > 0) {
        int64_t mid_reduce = 1;
        for (const auto &row : rd) {
            for (const auto &l : row) {
                if (l.level > 0 && l.level <= cache_at)
                    mid_reduce *= l.extent;
            }
        }
        reload = std::sqrt(static_cast<double>(mid_reduce));
    }
    int64_t dram = 0;
    for (const auto &fp : block_fps) {
        int64_t tensor_bytes = 4;
        for (int64_t d : fp.accessNode->source->outputShape())
            tensor_bytes *= d;
        int64_t naive = static_cast<int64_t>(
            static_cast<double>(f.grid) * fp.cells * 4 * reload);
        if (tensor_bytes < spec.l2Bytes / 2) {
            dram += std::max<int64_t>(tensor_bytes, naive / 8);
        } else {
            dram += std::min<int64_t>(naive,
                                      8 * tensor_bytes); // L2 floor on reuse
        }
    }
    dram += f.outputElems * 4; // result write-back
    f.dramBytes = dram;

    // Coalescing: the innermost thread-bound spatial axis should appear
    // with unit coefficient in the last index of each access.
    const IterVarNode *inner_thread_axis =
        op->axis().empty() ? nullptr : op->axis().back().get();
    if (inner_thread_axis) {
        int total = 0, good = 0;
        for (const ExprNode *acc : gen::bodyAccesses(op)) {
            ++total;
            if (acc->indices.empty())
                continue;
            if (linearCoefficient(acc->indices.back(), inner_thread_axis) ==
                1) {
                ++good;
            }
        }
        double frac = total ? static_cast<double>(good) / total : 1.0;
        f.coalesceFactor = 0.4 + 0.6 * frac;
    }

    // Shared-memory bank conflicts: a power-of-32 leading stride in the
    // staged tile serializes warp lanes.
    if (!tile_fps.empty()) {
        const auto &acc = *tile_fps.front().accessNode;
        if (!acc.indices.empty()) {
            Interval last =
                boundsOf(acc.indices.back(), tile_ranges);
            int64_t width = last.extent();
            if (width >= 32 && width % 32 == 0)
                f.bankConflictPenalty = 1.25;
        }
    }

    // Validity: the verifier's resource lint owns the device-limit
    // checks; the shim derives valid/invalidReason exactly as the old
    // inline if-chain did.
    verify::applyResourceValidity(out, Target::forGpu(spec));
}

} // namespace ft
