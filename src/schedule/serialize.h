/**
 * @file
 * Serialization of schedule configs and tuning records.
 *
 * Production auto-schedulers keep a tuning cache: the best schedule found
 * for each (operator, shape, device) is logged so later sessions reuse it
 * instead of re-exploring. This module provides a line-oriented text
 * format for OpConfig and a TuningCache with file round-trip.
 */
#ifndef FLEXTENSOR_SCHEDULE_SERIALIZE_H
#define FLEXTENSOR_SCHEDULE_SERIALIZE_H

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "ir/graph.h"
#include "schedule/config.h"

namespace ft {

/** Render a config as a single parseable line. */
std::string serializeConfig(const OpConfig &config);

/** Parse a line produced by serializeConfig. Returns nullopt on error. */
std::optional<OpConfig> parseConfig(const std::string &line);

/**
 * Stable identity of a tuning task: operator name, output shape, loop
 * extents, and device. Two structurally identical operators share a key.
 */
std::string tuningKey(const Tensor &output, const std::string &device);

/** Key for one specific compute node (graph-level scheduling). */
std::string tuningKeyFor(const Operation &anchor,
                         const std::string &device);

/** One cached tuning result. */
struct TuningRecord
{
    std::string key;
    OpConfig config;
    double gflops = 0.0;
};

/**
 * A persistent best-schedule store keyed by tuningKey.
 *
 * Safe for concurrent lookup/store from multiple tuning threads (an
 * internal mutex guards the record map). save() writes a CRC32-framed
 * journal (support/journal.h) via a temp file plus atomic rename, so a
 * crashed or interrupted writer can never leave a truncated cache
 * behind, and load() recovers every intact record before a torn tail.
 * Legacy v2 (count-footer) and v1 (headerless) files are still read.
 */
class TuningCache
{
  public:
    /** Record a result; keeps only the best per key. */
    void put(const TuningRecord &record);

    /** Best known record for the key, if any. */
    std::optional<TuningRecord> lookup(const std::string &key) const;

    /** Number of cached entries. */
    size_t size() const;

    /**
     * Write all records as a journal (one frame per record). The file
     * is replaced atomically: bytes go to `path + ".tmp"`, then rename.
     */
    bool save(const std::string &path) const;

    /** Merge records from a file; returns false when unreadable. */
    bool load(const std::string &path);

  private:
    void putLocked(TuningRecord record);

    mutable std::mutex mu_;
    std::map<std::string, TuningRecord> records_;
};

} // namespace ft

#endif // FLEXTENSOR_SCHEDULE_SERIALIZE_H
