/**
 * @file
 * Structured tracing for exploration runs: a per-run JSONL event
 * timeline.
 *
 * Each event is one JSON object per line with a fixed field order:
 *
 *   {"i":<index>,"t":"<type>","name":"<name>","sim":<seconds>,...}
 *
 * Types: "M" run metadata (no sim clock), "B"/"E" span begin/end, and
 * "P" point events. Everything in the payload is deterministic for a
 * fixed seed: timestamps are the *simulated* exploration clock (never
 * the wall clock) and ordering is a monotonic per-recorder event index,
 * so two runs of the same seed produce byte-identical timelines.
 * Doubles are rendered with the shortest representation that
 * round-trips (std::to_chars), which is also byte-stable.
 *
 * The recorder buffers serialized lines in memory (a full tuning run is
 * a few thousand events) and writes the file once at the end; append is
 * mutex-protected so concurrent scoring threads may emit safely.
 */
#ifndef FLEXTENSOR_OBS_TRACE_H
#define FLEXTENSOR_OBS_TRACE_H

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ft {

/** Shortest round-tripping decimal rendering of a double. */
std::string formatTraceDouble(double v);

/** One pre-rendered event attribute (key plus JSON value text). */
struct TraceField
{
    std::string key;
    std::string json;
};

/** Attribute constructors; values render immediately. */
TraceField tstr(std::string_view key, std::string_view value);
TraceField tint(std::string_view key, int64_t value);
TraceField treal(std::string_view key, double value);
TraceField tbool(std::string_view key, bool value);

class TraceRecorder
{
  public:
    TraceRecorder() = default;
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Run-level metadata (method, seed, device, ...); no sim clock. */
    void meta(std::string_view name,
              std::initializer_list<TraceField> fields = {});

    /** Open a span at simulated time `sim`. */
    void begin(std::string_view name, double sim,
               std::initializer_list<TraceField> fields = {});

    /** Close the innermost open span named `name`. */
    void end(std::string_view name, double sim,
             std::initializer_list<TraceField> fields = {});

    /** Instantaneous event. */
    void point(std::string_view name, double sim,
               std::initializer_list<TraceField> fields = {});

    uint64_t eventCount() const;

    /** All serialized lines, in event order. */
    std::vector<std::string> lines() const;

    /** The whole timeline as one newline-terminated JSONL string. */
    std::string toJsonl() const;

    /** Write the timeline to `path` (truncates). False on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    void emit(char type, std::string_view name, const double *sim,
              std::initializer_list<TraceField> fields);

    mutable std::mutex mu_;
    std::vector<std::string> lines_;
};

/** One parsed trace event (see parseTraceLine). */
struct ParsedTraceEvent
{
    uint64_t index = 0;
    char type = 'P'; ///< 'M', 'B', 'E', or 'P'
    std::string name;
    double sim = 0.0;
    /** Remaining attributes as raw text (strings unescaped). */
    std::map<std::string, std::string> fields;

    bool has(const std::string &key) const { return fields.count(key) > 0; }
    std::string str(const std::string &key, std::string def = "") const;
    int64_t integer(const std::string &key, int64_t def = 0) const;
    double real(const std::string &key, double def = 0.0) const;
};

/**
 * Parse one line written by TraceRecorder. Accepts exactly the flat
 * object subset the recorder emits; returns nullopt on anything else.
 */
std::optional<ParsedTraceEvent> parseTraceLine(const std::string &line);

/** Parse a whole JSONL file; nullopt when unreadable or any line is
 *  malformed. */
std::optional<std::vector<ParsedTraceEvent>>
loadTraceFile(const std::string &path);

} // namespace ft

#endif // FLEXTENSOR_OBS_TRACE_H
