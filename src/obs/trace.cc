#include "obs/trace.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ft {

std::string
formatTraceDouble(double v)
{
    if (!std::isfinite(v))
        return v > 0 ? "1e9999" : (v < 0 ? "-1e9999" : "0");
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec; // 64 bytes always suffice for the shortest form
    return std::string(buf, end);
}

namespace {

/** JSON string escaping for the characters our payloads can contain. */
std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

TraceField
tstr(std::string_view key, std::string_view value)
{
    return {std::string(key), "\"" + escapeJson(value) + "\""};
}

TraceField
tint(std::string_view key, int64_t value)
{
    return {std::string(key), std::to_string(value)};
}

TraceField
treal(std::string_view key, double value)
{
    return {std::string(key), formatTraceDouble(value)};
}

TraceField
tbool(std::string_view key, bool value)
{
    return {std::string(key), value ? "true" : "false"};
}

void
TraceRecorder::emit(char type, std::string_view name, const double *sim,
                    std::initializer_list<TraceField> fields)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string line;
    line.reserve(64);
    line += "{\"i\":";
    line += std::to_string(lines_.size());
    line += ",\"t\":\"";
    line += type;
    line += "\",\"name\":\"";
    line += escapeJson(name);
    line += "\"";
    if (sim) {
        line += ",\"sim\":";
        line += formatTraceDouble(*sim);
    }
    for (const TraceField &f : fields) {
        line += ",\"";
        line += escapeJson(f.key);
        line += "\":";
        line += f.json;
    }
    line += "}";
    lines_.push_back(std::move(line));
}

void
TraceRecorder::meta(std::string_view name,
                    std::initializer_list<TraceField> fields)
{
    emit('M', name, nullptr, fields);
}

void
TraceRecorder::begin(std::string_view name, double sim,
                     std::initializer_list<TraceField> fields)
{
    emit('B', name, &sim, fields);
}

void
TraceRecorder::end(std::string_view name, double sim,
                   std::initializer_list<TraceField> fields)
{
    emit('E', name, &sim, fields);
}

void
TraceRecorder::point(std::string_view name, double sim,
                     std::initializer_list<TraceField> fields)
{
    emit('P', name, &sim, fields);
}

uint64_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lines_.size();
}

std::vector<std::string>
TraceRecorder::lines() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
}

std::string
TraceRecorder::toJsonl() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const std::string &line : lines_) {
        out += line;
        out += "\n";
    }
    return out;
}

bool
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << toJsonl();
    return static_cast<bool>(out);
}

std::string
ParsedTraceEvent::str(const std::string &key, std::string def) const
{
    auto it = fields.find(key);
    return it == fields.end() ? def : it->second;
}

int64_t
ParsedTraceEvent::integer(const std::string &key, int64_t def) const
{
    auto it = fields.find(key);
    if (it == fields.end())
        return def;
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

double
ParsedTraceEvent::real(const std::string &key, double def) const
{
    auto it = fields.find(key);
    if (it == fields.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

namespace {

/** Minimal parser for the flat objects TraceRecorder writes. */
class LineParser
{
  public:
    explicit LineParser(const std::string &s) : s_(s) {}

    bool consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool atEnd() const { return pos_ >= s_.size(); }
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    /** Parse a quoted string with the recorder's escape set. */
    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        return false;
                    out += static_cast<char>(std::strtol(
                        s_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    break;
                  }
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;
    }

    /** A number / true / false literal, captured as raw text. */
    bool parseLiteral(std::string &out)
    {
        size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}')
            ++pos_;
        out = s_.substr(start, pos_ - start);
        return !out.empty();
    }

  private:
    const std::string &s_;
    size_t pos_ = 0;
};

} // namespace

std::optional<ParsedTraceEvent>
parseTraceLine(const std::string &line)
{
    LineParser p(line);
    if (!p.consume('{'))
        return std::nullopt;
    ParsedTraceEvent event;
    bool first = true;
    bool saw_index = false, saw_type = false, saw_name = false;
    while (!p.consume('}')) {
        if (!first && !p.consume(','))
            return std::nullopt;
        first = false;
        std::string key;
        if (!p.parseString(key) || !p.consume(':'))
            return std::nullopt;
        std::string value;
        bool quoted = p.peek() == '"';
        if (quoted) {
            if (!p.parseString(value))
                return std::nullopt;
        } else if (!p.parseLiteral(value)) {
            return std::nullopt;
        }
        if (key == "i") {
            event.index = std::strtoull(value.c_str(), nullptr, 10);
            saw_index = true;
        } else if (key == "t") {
            if (value.size() != 1)
                return std::nullopt;
            event.type = value[0];
            saw_type = true;
        } else if (key == "name") {
            event.name = value;
            saw_name = true;
        } else if (key == "sim" && !quoted) {
            event.sim = std::strtod(value.c_str(), nullptr);
            event.fields.emplace(key, std::move(value));
        } else {
            event.fields.emplace(key, std::move(value));
        }
    }
    if (!p.atEnd() || !saw_index || !saw_type || !saw_name)
        return std::nullopt;
    return event;
}

std::optional<std::vector<ParsedTraceEvent>>
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::vector<ParsedTraceEvent> events;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto event = parseTraceLine(line);
        if (!event)
            return std::nullopt;
        events.push_back(std::move(*event));
    }
    return events;
}

} // namespace ft
