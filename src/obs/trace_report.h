/**
 * @file
 * Folding a trace timeline into a run report: a per-phase time
 * breakdown (simulated seconds and event counts per span name) and the
 * best-GFLOPS-vs-trials curve — the data series behind the paper's
 * Fig. 7 (performance vs. optimization time).
 *
 * Span nesting is allowed (a `step` span contains `batch_evaluate`
 * spans); each phase accumulates its own begin→end sim-clock deltas, so
 * nested phases are reported independently rather than subtracted from
 * their parent.
 */
#ifndef FLEXTENSOR_OBS_TRACE_REPORT_H
#define FLEXTENSOR_OBS_TRACE_REPORT_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace ft {

/** Accumulated time and event counts of one span/point name. */
struct PhaseBreakdown
{
    std::string name;
    uint64_t spans = 0;      ///< completed begin/end pairs
    uint64_t points = 0;     ///< point events of this name
    double simSeconds = 0.0; ///< sum of span durations on the sim clock
    /** Sum of wall nanoseconds carried on end events (`ns` attribute;
     *  emitted by wall-profiled runs for `eval.decode`, `eval.lower`,
     *  and `q_forward_batch`). Zero for unprofiled traces. */
    uint64_t wallNs = 0;
};

/** Admission-control activity folded from `admission.*` point events. */
struct ServeBreakdown
{
    uint64_t admitted = 0;
    uint64_t shed = 0;           ///< queue-full + deadline sheds
    uint64_t brownouts = 0;      ///< requests deflected to cache-only
    uint64_t breakerRejects = 0; ///< requests refused by an open breaker
    uint64_t breakerOpens = 0;
    uint64_t breakerCloses = 0;
    /** Queue-depth-at-decision occurrences, sorted by depth. */
    std::vector<std::pair<int64_t, uint64_t>> queueDepths;
    /** Rejection reasons by structured code (FT-ADM-*), sorted. */
    std::vector<std::pair<std::string, uint64_t>> reasons;

    bool any() const
    {
        return admitted || shed || brownouts || breakerRejects ||
               breakerOpens || breakerCloses;
    }
};

/** One fused subgraph folded from a `graph.subgraph` span. */
struct GraphSubgraph
{
    std::string name; ///< anchor (or first member) name
    int64_t members = 0;
    bool tuned = false;   ///< went through an explorer (has an anchor)
    double seconds = 0.0; ///< stitched group estimate
    int64_t trafficBytes = 0;
    int64_t ephemeralBytes = 0;
};

/** Graph-level scheduling folded from `graph_run`/`graph.*` events. */
struct GraphBreakdown
{
    uint64_t runs = 0; ///< graph_run meta events
    std::string dag;
    uint64_t fingerprint = 0;
    int64_t nodes = 0;  ///< compute nodes in the DAG
    int64_t groups = 0; ///< fusion groups the partitioner chose
    int64_t trafficBytes = 0;
    int64_t ephemeralBytes = 0;
    std::vector<GraphSubgraph> subgraphs;

    bool any() const { return runs > 0; }
};

/** Learned-cost-model activity folded from `costmodel.*` events. */
struct CostModelBreakdown
{
    uint64_t warmStarts = 0;  ///< explorer seedings ranked by the model
    uint64_t pruneEvents = 0; ///< costmodel.prune point events
    uint64_t kept = 0;        ///< candidates surviving pruning
    uint64_t dropped = 0;     ///< candidates pruned away
    uint64_t refits = 0;      ///< completed costmodel.train spans

    bool any() const { return warmStarts || pruneEvents || refits; }
};

/** One certified schedule/partition folded from a `certificate` point. */
struct CertificateEntry
{
    std::string op;      ///< operator (or DAG) the certificate covers
    std::string verdict; ///< Proven / Refuted / Unknown
    int64_t obligations = 0;
    int64_t refuted = 0; ///< refuted obligations (or groups, for DAGs)
    int64_t unknown = 0; ///< undecided obligations (or groups)
};

/** Legality-certificate activity folded from `certificate` events. */
struct CertificateBreakdown
{
    uint64_t proven = 0;  ///< certificates with every obligation proven
    uint64_t refuted = 0; ///< certificates refuting >= 1 obligation
    uint64_t unknown = 0; ///< certificates left undecided
    std::vector<CertificateEntry> entries; ///< in emission order

    bool any() const { return proven || refuted || unknown; }
};

/** Everything trace_report derives from one timeline. */
struct TraceReport
{
    /** Run metadata (empty when the trace lacks a meta event). */
    std::string op, device, method;
    uint64_t seed = 0;

    uint64_t events = 0; ///< total timeline events
    int trials = 0;      ///< eval commits seen
    double bestGflops = 0.0;
    double simSeconds = 0.0; ///< sim clock of the last event

    /** Sorted by descending simSeconds, then name. */
    std::vector<PhaseBreakdown> phases;

    /**
     * Verifier rejections by diagnostic code, folded from
     * "verify.reject" point events (sorted by code). Empty for traces
     * recorded without wall profiling or with no rejected schedules.
     */
    std::vector<std::pair<std::string, uint64_t>> verifyRejects;

    /** (trial index 1.., best-so-far GFLOPS) — the Fig. 7 series. */
    std::vector<std::pair<int, double>> curve;

    /** Admission-control section (empty for pure exploration traces). */
    ServeBreakdown serve;

    /** Graph-scheduling section (empty for single-op traces). */
    GraphBreakdown graph;

    /** Cost-model section (empty when no model was attached). */
    CostModelBreakdown costModel;

    /** Certificate section (empty unless a run requested --certify). */
    CertificateBreakdown certificates;
};

/** Fold parsed events into a report. */
TraceReport foldTrace(const std::vector<ParsedTraceEvent> &events);

/** Load + fold a JSONL trace file; nullopt when unreadable/malformed. */
std::optional<TraceReport> loadTraceReport(const std::string &path);

/** Human-readable rendering (the `trace-report` tool's output). */
std::string renderTraceReport(const TraceReport &report,
                              int curvePoints = 12);

/** Machine-readable JSON (full curve; for regenerating Fig. 7). */
std::string traceReportJson(const TraceReport &report);

} // namespace ft

#endif // FLEXTENSOR_OBS_TRACE_REPORT_H
