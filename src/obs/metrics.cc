#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace ft {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    FT_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    size_t bucket =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin();
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is C++20; keep the CAS loop for older
    // libstdc++ configurations and TSan friendliness.
    double old = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(old, old + v,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<uint64_t>
Histogram::counts() const
{
    std::vector<uint64_t> out(bounds_.size() + 1);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return 0;
}

double
MetricsSnapshot::gauge(const std::string &name) const
{
    for (const auto &[n, v] : gauges) {
        if (n == name)
            return v;
    }
    return 0.0;
}

std::string
MetricsSnapshot::toString() const
{
    std::ostringstream oss;
    for (const auto &[name, v] : counters)
        oss << "  " << name << " = " << v << "\n";
    for (const auto &[name, v] : gauges) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", v);
        oss << "  " << name << " = " << buf << "\n";
    }
    for (const Hist &h : histograms) {
        oss << "  " << h.name << " (n=" << h.total;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", h.sum);
        oss << ", sum=" << buf << "):";
        for (size_t i = 0; i < h.counts.size(); ++i) {
            if (h.counts[i] == 0)
                continue;
            if (i < h.bounds.size())
                std::snprintf(buf, sizeof(buf), " le%g=%llu", h.bounds[i],
                              (unsigned long long)h.counts[i]);
            else
                std::snprintf(buf, sizeof(buf), " inf=%llu",
                              (unsigned long long)h.counts[i]);
            oss << buf;
        }
        oss << "\n";
    }
    return oss.str();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot out;
    out.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.counters.emplace_back(name, c->value());
    out.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        out.gauges.emplace_back(name, g->value());
    out.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        MetricsSnapshot::Hist hist;
        hist.name = name;
        hist.bounds = h->bounds();
        hist.counts = h->counts();
        hist.total = h->total();
        hist.sum = h->sum();
        out.histograms.push_back(std::move(hist));
    }
    return out;
}

} // namespace ft
