/**
 * @file
 * Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
 * histograms for the exploration and serving layers.
 *
 * Instruments are plain atomics, so updating one is a single relaxed
 * read-modify-write with no lock; the registry mutex is taken only when
 * an instrument is first created and when a snapshot is read. Code that
 * may run without metrics holds a nullable `MetricsRegistry *` (see
 * ObsContext) and skips the update entirely when it is null, so the
 * disabled path costs one branch.
 *
 * snapshot() reads every instrument under the registry mutex, so a
 * reader never sees a torn value and never races instrument creation;
 * concurrent updates are individually atomic, which is the consistency
 * the serving layer's `stats` output needs.
 */
#ifndef FLEXTENSOR_OBS_METRICS_H
#define FLEXTENSOR_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ft {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
 * last bucket counts the rest. Bounds are fixed at creation so observe()
 * is a search plus one atomic increment.
 */
class Histogram
{
  public:
    /** @param bounds ascending inclusive upper bounds (may be empty). */
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts (bounds().size() + 1 entries). */
    std::vector<uint64_t> counts() const;
    uint64_t total() const { return total_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_;
    std::atomic<uint64_t> total_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of every instrument in a registry. */
struct MetricsSnapshot
{
    struct Hist
    {
        std::string name;
        std::vector<double> bounds;
        std::vector<uint64_t> counts;
        uint64_t total = 0;
        double sum = 0.0;
    };

    /** Sorted by name (std::map iteration order). */
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<Hist> histograms;

    /** Value of a counter/gauge, or 0 when absent. */
    uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;

    /** Multi-line human-readable rendering (CLI `--metrics`). */
    std::string toString() const;
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create; the returned reference stays valid for the
     *  registry's lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** `bounds` is used only on first creation of `name`. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Handle lookup that tolerates a disabled (null) registry. */
inline Counter *
maybeCounter(MetricsRegistry *m, const std::string &name)
{
    return m ? &m->counter(name) : nullptr;
}

inline Gauge *
maybeGauge(MetricsRegistry *m, const std::string &name)
{
    return m ? &m->gauge(name) : nullptr;
}

inline Histogram *
maybeHistogram(MetricsRegistry *m, const std::string &name,
               std::vector<double> bounds)
{
    return m ? &m->histogram(name, std::move(bounds)) : nullptr;
}

} // namespace ft

#endif // FLEXTENSOR_OBS_METRICS_H
