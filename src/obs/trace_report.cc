#include "obs/trace_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace ft {

TraceReport
foldTrace(const std::vector<ParsedTraceEvent> &events)
{
    TraceReport out;
    out.events = events.size();

    struct PhaseAcc
    {
        uint64_t spans = 0;
        uint64_t points = 0;
        double simSeconds = 0.0;
        uint64_t wallNs = 0;
        std::vector<double> openBegins; ///< stack: nested same-name spans
    };
    std::map<std::string, PhaseAcc> phases;
    std::map<std::string, uint64_t> rejects;
    std::map<int64_t, uint64_t> queueDepths;
    std::map<std::string, uint64_t> admReasons;

    // "code=FT-ADM-... depth=N why=..." -> the code token.
    auto reasonCode = [](const std::string &reason) -> std::string {
        const std::string prefix = "code=";
        if (reason.rfind(prefix, 0) != 0)
            return reason.empty() ? "?" : reason;
        const size_t end = reason.find(' ', prefix.size());
        return reason.substr(prefix.size(), end == std::string::npos
                                                ? std::string::npos
                                                : end - prefix.size());
    };
    auto admissionDepth = [&](const ParsedTraceEvent &e) {
        if (e.has("depth"))
            ++queueDepths[e.integer("depth")];
    };

    for (const ParsedTraceEvent &e : events) {
        if (e.type != 'M')
            out.simSeconds = std::max(out.simSeconds, e.sim);
        switch (e.type) {
          case 'M':
            if (e.name == "run") {
                out.op = e.str("op");
                out.device = e.str("device");
                out.method = e.str("method");
                out.seed = static_cast<uint64_t>(e.integer("seed"));
            } else if (e.name == "family_run") {
                // Family runs label the timeline with the family name
                // in place of a single operator.
                out.op = e.str("family");
                out.device = e.str("device");
                out.method = e.str("method");
                out.seed = static_cast<uint64_t>(e.integer("seed"));
            } else if (e.name == "graph_run") {
                ++out.graph.runs;
                out.graph.dag = e.str("dag");
                out.graph.fingerprint =
                    static_cast<uint64_t>(e.integer("fingerprint"));
                out.graph.nodes = e.integer("nodes");
                if (out.device.empty())
                    out.device = e.str("device");
                if (out.method.empty())
                    out.method = e.str("method");
            }
            break;
          case 'B':
            phases[e.name].openBegins.push_back(e.sim);
            if (e.name == "graph.subgraph") {
                GraphSubgraph sub;
                sub.name = e.str("group");
                sub.members = e.integer("members");
                out.graph.subgraphs.push_back(std::move(sub));
            }
            break;
          case 'E': {
            PhaseAcc &acc = phases[e.name];
            if (!acc.openBegins.empty()) {
                acc.simSeconds += e.sim - acc.openBegins.back();
                acc.openBegins.pop_back();
                ++acc.spans;
                int64_t ns = e.integer("ns");
                if (ns > 0)
                    acc.wallNs += static_cast<uint64_t>(ns);
            }
            if (e.name == "costmodel.train") {
                ++out.costModel.refits;
            } else if (e.name == "graph.partition") {
                out.graph.groups = e.integer("groups");
                out.graph.trafficBytes = e.integer("traffic_bytes");
                out.graph.ephemeralBytes = e.integer("ephemeral_bytes");
            } else if (e.name == "graph.subgraph" &&
                       !out.graph.subgraphs.empty()) {
                GraphSubgraph &sub = out.graph.subgraphs.back();
                sub.tuned = e.str("tuned") == "true";
                sub.seconds = e.real("seconds");
                sub.trafficBytes = e.integer("traffic_bytes");
                sub.ephemeralBytes = e.integer("ephemeral_bytes");
            }
            break;
          }
          case 'P': {
            ++phases[e.name].points;
            if (e.name == "eval") {
                ++out.trials;
                double best = e.real("best");
                out.bestGflops = std::max(out.bestGflops, best);
                out.curve.emplace_back(out.trials, best);
            } else if (e.name == "verify.reject") {
                ++rejects[e.str("code")];
            } else if (e.name == "admission.admit") {
                ++out.serve.admitted;
                admissionDepth(e);
            } else if (e.name == "admission.shed") {
                ++out.serve.shed;
                admissionDepth(e);
                ++admReasons[reasonCode(e.str("reason"))];
            } else if (e.name == "admission.brownout") {
                ++out.serve.brownouts;
                admissionDepth(e);
                ++admReasons[reasonCode(e.str("reason"))];
            } else if (e.name == "admission.breaker_reject") {
                ++out.serve.breakerRejects;
                admissionDepth(e);
                ++admReasons[reasonCode(e.str("reason"))];
            } else if (e.name == "admission.breaker_open") {
                ++out.serve.breakerOpens;
            } else if (e.name == "admission.breaker_close") {
                ++out.serve.breakerCloses;
            } else if (e.name == "certificate") {
                CertificateEntry entry;
                entry.op = e.str("op");
                entry.verdict = e.str("verdict");
                entry.obligations = e.integer("obligations");
                entry.refuted = e.integer("refuted");
                entry.unknown = e.integer("unknown");
                if (entry.verdict == "proven")
                    ++out.certificates.proven;
                else if (entry.verdict == "refuted")
                    ++out.certificates.refuted;
                else
                    ++out.certificates.unknown;
                out.certificates.entries.push_back(std::move(entry));
            } else if (e.name == "costmodel.warm_start") {
                ++out.costModel.warmStarts;
            } else if (e.name == "costmodel.prune") {
                ++out.costModel.pruneEvents;
                const int64_t considered = e.integer("considered");
                const int64_t kept = e.integer("kept");
                out.costModel.kept += static_cast<uint64_t>(kept);
                if (considered > kept)
                    out.costModel.dropped +=
                        static_cast<uint64_t>(considered - kept);
            }
            break;
          }
          default:
            break;
        }
    }

    for (auto &[name, acc] : phases) {
        PhaseBreakdown p;
        p.name = name;
        p.spans = acc.spans;
        p.points = acc.points;
        p.simSeconds = acc.simSeconds;
        p.wallNs = acc.wallNs;
        out.phases.push_back(std::move(p));
    }
    std::sort(out.phases.begin(), out.phases.end(),
              [](const PhaseBreakdown &a, const PhaseBreakdown &b) {
                  if (a.simSeconds != b.simSeconds)
                      return a.simSeconds > b.simSeconds;
                  return a.name < b.name;
              });
    for (const auto &[code, count] : rejects)
        out.verifyRejects.emplace_back(code, count);
    for (const auto &[depth, count] : queueDepths)
        out.serve.queueDepths.emplace_back(depth, count);
    for (const auto &[code, count] : admReasons)
        out.serve.reasons.emplace_back(code, count);
    return out;
}

std::optional<TraceReport>
loadTraceReport(const std::string &path)
{
    auto events = loadTraceFile(path);
    if (!events)
        return std::nullopt;
    return foldTrace(*events);
}

std::string
renderTraceReport(const TraceReport &report, int curvePoints)
{
    std::ostringstream oss;
    char buf[160];
    oss << "run: " << (report.op.empty() ? "?" : report.op) << " on "
        << (report.device.empty() ? "?" : report.device) << " with "
        << (report.method.empty() ? "?" : report.method) << " (seed "
        << report.seed << ")\n";
    std::snprintf(buf, sizeof(buf),
                  "%llu events, %d trials, best %.1f GFLOPS, "
                  "%.1f simulated seconds\n",
                  (unsigned long long)report.events, report.trials,
                  report.bestGflops, report.simSeconds);
    oss << buf;

    oss << "\nper-phase breakdown (simulated clock):\n";
    // The wall-ms column appears only for wall-profiled traces, so
    // unprofiled reports render exactly as before.
    bool any_wall = false;
    for (const PhaseBreakdown &p : report.phases)
        any_wall = any_wall || p.wallNs > 0;
    std::snprintf(buf, sizeof(buf), "%-18s %8s %8s %12s %7s", "phase",
                  "spans", "points", "sim-sec", "%");
    oss << buf;
    if (any_wall) {
        std::snprintf(buf, sizeof(buf), " %10s", "wall-ms");
        oss << buf;
    }
    oss << "\n";
    for (const PhaseBreakdown &p : report.phases) {
        double pct = report.simSeconds > 0.0
                         ? 100.0 * p.simSeconds / report.simSeconds
                         : 0.0;
        std::snprintf(buf, sizeof(buf), "%-18s %8llu %8llu %12.2f %6.1f%%",
                      p.name.c_str(), (unsigned long long)p.spans,
                      (unsigned long long)p.points, p.simSeconds, pct);
        oss << buf;
        if (any_wall) {
            std::snprintf(buf, sizeof(buf), " %10.2f",
                          static_cast<double>(p.wallNs) / 1e6);
            oss << buf;
        }
        oss << "\n";
    }

    if (!report.verifyRejects.empty()) {
        oss << "\nverifier rejections by code:\n";
        for (const auto &[code, count] : report.verifyRejects) {
            std::snprintf(buf, sizeof(buf), "  %-14s %8llu\n",
                          code.c_str(), (unsigned long long)count);
            oss << buf;
        }
    }

    if (report.serve.any()) {
        const ServeBreakdown &s = report.serve;
        oss << "\nserve (admission control):\n";
        std::snprintf(buf, sizeof(buf),
                      "  admitted %llu, shed %llu, brownouts %llu, "
                      "breaker rejects %llu (opened %llu, closed %llu)\n",
                      (unsigned long long)s.admitted,
                      (unsigned long long)s.shed,
                      (unsigned long long)s.brownouts,
                      (unsigned long long)s.breakerRejects,
                      (unsigned long long)s.breakerOpens,
                      (unsigned long long)s.breakerCloses);
        oss << buf;
        if (!s.reasons.empty()) {
            oss << "  rejection reasons by code:\n";
            for (const auto &[code, count] : s.reasons) {
                std::snprintf(buf, sizeof(buf), "    %-20s %8llu\n",
                              code.c_str(), (unsigned long long)count);
                oss << buf;
            }
        }
        if (!s.queueDepths.empty()) {
            oss << "  queue depth at decision:\n";
            for (const auto &[depth, count] : s.queueDepths) {
                std::snprintf(buf, sizeof(buf), "    depth %4lld %8llu\n",
                              (long long)depth,
                              (unsigned long long)count);
                oss << buf;
            }
        }
    }

    if (report.graph.any()) {
        const GraphBreakdown &g = report.graph;
        oss << "\ngraph scheduling:\n";
        std::snprintf(buf, sizeof(buf),
                      "  dag %s: %lld nodes -> %lld groups "
                      "(fingerprint %llu)\n",
                      g.dag.empty() ? "?" : g.dag.c_str(),
                      (long long)g.nodes, (long long)g.groups,
                      (unsigned long long)g.fingerprint);
        oss << buf;
        std::snprintf(buf, sizeof(buf),
                      "  modeled DRAM traffic %lld bytes, "
                      "%lld ephemeral bytes kept on chip\n",
                      (long long)g.trafficBytes,
                      (long long)g.ephemeralBytes);
        oss << buf;
        if (!g.subgraphs.empty()) {
            std::snprintf(buf, sizeof(buf),
                          "  %-14s %7s %6s %12s %14s %12s\n", "group",
                          "members", "tuned", "est-sec", "traffic-B",
                          "ephemeral-B");
            oss << buf;
            for (const GraphSubgraph &sub : g.subgraphs) {
                std::snprintf(buf, sizeof(buf),
                              "  %-14s %7lld %6s %12.3e %14lld %12lld\n",
                              sub.name.c_str(), (long long)sub.members,
                              sub.tuned ? "yes" : "no", sub.seconds,
                              (long long)sub.trafficBytes,
                              (long long)sub.ephemeralBytes);
                oss << buf;
            }
        }
    }

    if (report.costModel.any()) {
        const CostModelBreakdown &c = report.costModel;
        oss << "\nlearned cost model:\n";
        std::snprintf(buf, sizeof(buf),
                      "  warm starts %llu, refits %llu, prune events "
                      "%llu (kept %llu, dropped %llu)\n",
                      (unsigned long long)c.warmStarts,
                      (unsigned long long)c.refits,
                      (unsigned long long)c.pruneEvents,
                      (unsigned long long)c.kept,
                      (unsigned long long)c.dropped);
        oss << buf;
    }

    if (report.certificates.any()) {
        const CertificateBreakdown &c = report.certificates;
        oss << "\nlegality certificates:\n";
        std::snprintf(buf, sizeof(buf),
                      "  proven %llu, refuted %llu, unknown %llu\n",
                      (unsigned long long)c.proven,
                      (unsigned long long)c.refuted,
                      (unsigned long long)c.unknown);
        oss << buf;
        for (const CertificateEntry &entry : c.entries) {
            std::snprintf(buf, sizeof(buf),
                          "  %-20s %-8s %4lld obligations "
                          "(%lld refuted, %lld unknown)\n",
                          entry.op.empty() ? "?" : entry.op.c_str(),
                          entry.verdict.c_str(),
                          (long long)entry.obligations,
                          (long long)entry.refuted,
                          (long long)entry.unknown);
            oss << buf;
        }
    }

    if (!report.curve.empty() && curvePoints > 0) {
        oss << "\nbest GFLOPS vs. trials (Fig. 7 series):\n";
        // Sample evenly, always keeping the final point.
        size_t n = report.curve.size();
        size_t step = std::max<size_t>(1, n / (size_t)curvePoints);
        for (size_t i = 0; i < n; i += step) {
            size_t j = std::min(i + step - 1, n - 1);
            if (i + step >= n)
                j = n - 1;
            std::snprintf(buf, sizeof(buf), "  trial %4d  %10.1f\n",
                          report.curve[j].first, report.curve[j].second);
            oss << buf;
            if (j == n - 1)
                break;
        }
    }
    return oss.str();
}

std::string
traceReportJson(const TraceReport &report)
{
    std::ostringstream oss;
    oss << "{\"op\":\"" << report.op << "\",\"device\":\"" << report.device
        << "\",\"method\":\"" << report.method << "\",\"seed\":"
        << report.seed << ",\"events\":" << report.events
        << ",\"trials\":" << report.trials
        << ",\"bestGflops\":" << formatTraceDouble(report.bestGflops)
        << ",\"simSeconds\":" << formatTraceDouble(report.simSeconds)
        << ",\"phases\":[";
    for (size_t i = 0; i < report.phases.size(); ++i) {
        const PhaseBreakdown &p = report.phases[i];
        if (i)
            oss << ",";
        oss << "{\"name\":\"" << p.name << "\",\"spans\":" << p.spans
            << ",\"points\":" << p.points
            << ",\"simSeconds\":" << formatTraceDouble(p.simSeconds)
            << ",\"wallNs\":" << p.wallNs << "}";
    }
    oss << "]";
    // Sections below are emitted only when non-empty: a pure
    // exploration trace's JSON has no "serve"/"graph"/"verifyRejects"/
    // "costmodel"/"certificates" keys at all.
    if (!report.verifyRejects.empty()) {
        oss << ",\"verifyRejects\":{";
        for (size_t i = 0; i < report.verifyRejects.size(); ++i) {
            if (i)
                oss << ",";
            oss << "\"" << report.verifyRejects[i].first
                << "\":" << report.verifyRejects[i].second;
        }
        oss << "}";
    }
    const ServeBreakdown &s = report.serve;
    if (s.any()) {
        oss << ",\"serve\":{";
        oss << "\"admitted\":" << s.admitted << ",\"shed\":" << s.shed
            << ",\"brownouts\":" << s.brownouts
            << ",\"breakerRejects\":" << s.breakerRejects
            << ",\"breakerOpens\":" << s.breakerOpens
            << ",\"breakerCloses\":" << s.breakerCloses
            << ",\"reasons\":{";
        for (size_t i = 0; i < s.reasons.size(); ++i) {
            if (i)
                oss << ",";
            oss << "\"" << s.reasons[i].first
                << "\":" << s.reasons[i].second;
        }
        oss << "},\"queueDepths\":[";
        for (size_t i = 0; i < s.queueDepths.size(); ++i) {
            if (i)
                oss << ",";
            oss << "[" << s.queueDepths[i].first << ","
                << s.queueDepths[i].second << "]";
        }
        oss << "]}";
    }
    const GraphBreakdown &g = report.graph;
    if (g.any()) {
        oss << ",\"graph\":{";
        oss << "\"runs\":" << g.runs << ",\"dag\":\"" << g.dag
            << "\",\"fingerprint\":" << g.fingerprint
            << ",\"nodes\":" << g.nodes << ",\"groups\":" << g.groups
            << ",\"trafficBytes\":" << g.trafficBytes
            << ",\"ephemeralBytes\":" << g.ephemeralBytes
            << ",\"subgraphs\":[";
        for (size_t i = 0; i < g.subgraphs.size(); ++i) {
            const GraphSubgraph &sub = g.subgraphs[i];
            if (i)
                oss << ",";
            oss << "{\"name\":\"" << sub.name
                << "\",\"members\":" << sub.members
                << ",\"tuned\":" << (sub.tuned ? "true" : "false")
                << ",\"seconds\":" << formatTraceDouble(sub.seconds)
                << ",\"trafficBytes\":" << sub.trafficBytes
                << ",\"ephemeralBytes\":" << sub.ephemeralBytes << "}";
        }
        oss << "]}";
    }
    if (report.costModel.any()) {
        const CostModelBreakdown &c = report.costModel;
        oss << ",\"costmodel\":{\"warmStarts\":" << c.warmStarts
            << ",\"refits\":" << c.refits
            << ",\"pruneEvents\":" << c.pruneEvents
            << ",\"kept\":" << c.kept << ",\"dropped\":" << c.dropped
            << "}";
    }
    if (report.certificates.any()) {
        const CertificateBreakdown &c = report.certificates;
        oss << ",\"certificates\":{\"proven\":" << c.proven
            << ",\"refuted\":" << c.refuted
            << ",\"unknown\":" << c.unknown << ",\"entries\":[";
        for (size_t i = 0; i < c.entries.size(); ++i) {
            const CertificateEntry &entry = c.entries[i];
            if (i)
                oss << ",";
            oss << "{\"op\":\"" << entry.op << "\",\"verdict\":\""
                << entry.verdict
                << "\",\"obligations\":" << entry.obligations
                << ",\"refuted\":" << entry.refuted
                << ",\"unknown\":" << entry.unknown << "}";
        }
        oss << "]}";
    }
    oss << ",\"curve\":[";
    for (size_t i = 0; i < report.curve.size(); ++i) {
        if (i)
            oss << ",";
        oss << "[" << report.curve[i].first << ","
            << formatTraceDouble(report.curve[i].second) << "]";
    }
    oss << "]}";
    return oss.str();
}

} // namespace ft
