/**
 * @file
 * ObsContext: the nullable pair of observability sinks threaded through
 * the exploration and serving layers.
 *
 * Both pointers are optional and not owned. Code holding a context
 * guards every emission with a null check, so a disabled context costs
 * one branch per site and — crucially — observation never changes
 * behavior: with or without sinks attached, explorer results (history,
 * best point, simulated clock, RNG stream) are bit-identical.
 */
#ifndef FLEXTENSOR_OBS_OBS_H
#define FLEXTENSOR_OBS_OBS_H

namespace ft {

class TraceRecorder;
class MetricsRegistry;

struct ObsContext
{
    TraceRecorder *trace = nullptr;     ///< per-run JSONL timeline
    MetricsRegistry *metrics = nullptr; ///< counters/gauges/histograms

    /**
     * Opt-in wall-clock profiling of the evaluation hot path. When set,
     * per-component wall nanoseconds flow into `*.ns` counters and (on
     * the single-threaded path) `eval.decode`/`eval.lower` trace spans.
     * Off by default because wall timestamps are inherently
     * nondeterministic; simulated-clock traces stay byte-identical only
     * while this is false.
     */
    bool wallProfile = false;

    bool enabled() const { return trace != nullptr || metrics != nullptr; }
};

} // namespace ft

#endif // FLEXTENSOR_OBS_OBS_H
