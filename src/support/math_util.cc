#include "support/math_util.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace ft {

std::vector<int64_t>
divisorsOf(int64_t n)
{
    FT_ASSERT(n >= 1, "divisorsOf requires n >= 1, got ", n);
    std::vector<int64_t> small, big;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                big.push_back(n / d);
        }
    }
    small.insert(small.end(), big.rbegin(), big.rend());
    return small;
}

namespace {

void
factorizeRec(int64_t n, int parts, std::vector<int64_t> &cur,
             std::vector<std::vector<int64_t>> &out)
{
    if (parts == 1) {
        cur.push_back(n);
        out.push_back(cur);
        cur.pop_back();
        return;
    }
    for (int64_t d : divisorsOf(n)) {
        cur.push_back(d);
        factorizeRec(n / d, parts - 1, cur, out);
        cur.pop_back();
    }
}

} // namespace

std::vector<std::vector<int64_t>>
factorizations(int64_t n, int parts)
{
    FT_ASSERT(n >= 1 && parts >= 1,
              "factorizations requires n >= 1 and parts >= 1");
    std::vector<std::vector<int64_t>> out;
    std::vector<int64_t> cur;
    factorizeRec(n, parts, cur, out);
    return out;
}

int64_t
product(const std::vector<int64_t> &v)
{
    int64_t p = 1;
    for (int64_t x : v)
        p *= x;
    return p;
}

int64_t
largestPowerOfTwoDivisor(int64_t n)
{
    FT_ASSERT(n >= 1, "largestPowerOfTwoDivisor requires n >= 1");
    return n & (-n);
}

double
geomean(const std::vector<double> &v)
{
    FT_ASSERT(!v.empty(), "geomean of empty list");
    double acc = 0.0;
    for (double x : v) {
        FT_ASSERT(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

} // namespace ft
