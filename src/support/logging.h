/**
 * @file
 * Status-message and error helpers in the gem5 style.
 *
 * `fatal` terminates because of a user error (bad configuration, invalid
 * argument); `panic` terminates because of an internal invariant violation
 * (a FlexTensor bug). `inform` and `warn` report status without stopping.
 */
#ifndef FLEXTENSOR_SUPPORT_LOGGING_H
#define FLEXTENSOR_SUPPORT_LOGGING_H

#include <sstream>
#include <string>

namespace ft {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warning = 1, Info = 2, Debug = 3 };

/** Set the global verbosity. Messages above this level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report a user-facing error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Report an internal invariant violation and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("", 0, detail::concat(std::forward<Args>(args)...));
}

/** Informative status message (LogLevel::Info). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Something is suspicious but execution can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Debug-level trace message. */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

/** Panic when a condition that must hold does not. */
#define FT_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::ft::detail::panicImpl(__FILE__, __LINE__,                   \
                ::ft::detail::concat("assertion failed: " #cond " ",      \
                                     ##__VA_ARGS__));                     \
        }                                                                 \
    } while (0)

} // namespace ft

#endif // FLEXTENSOR_SUPPORT_LOGGING_H
