/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (simulated annealing, Q-learning exploration,
 * network initialization, random search) draw from an explicit Rng instance
 * so that every experiment is reproducible from a seed.
 */
#ifndef FLEXTENSOR_SUPPORT_RNG_H
#define FLEXTENSOR_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ft {

/** Complete generator state, exposed for checkpoint/resume. */
struct RngState
{
    uint64_t s[4] = {0, 0, 0, 0};
    bool haveSpare = false; ///< Box-Muller spare normal is banked
    double spare = 0.0;
};

/**
 * xoshiro256** generator seeded via SplitMix64.
 *
 * Small, fast, and high quality; good enough for search heuristics and
 * weight initialization. Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Standard normal sample (Box-Muller). */
    double normal();

    /** Normal sample with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Pick a uniformly random index of a non-empty container size. */
    std::size_t index(std::size_t size);

    /** Snapshot the full generator state (checkpointing). */
    RngState state() const;

    /** Restore a state captured by state(); resumes the exact stream. */
    void setState(const RngState &state);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace ft

#endif // FLEXTENSOR_SUPPORT_RNG_H
