#include "support/journal.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.h"

namespace ft {

namespace {

constexpr char kMagic[] = "ftjrnl";
constexpr int kVersion = 1;

/** Byte-at-a-time table for the reflected IEEE polynomial 0xEDB88320. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

/** Structured one-line diagnostic: "code=<c> path=- offset=<n> why=...". */
std::string
diagLine(const char *code, size_t offset, const std::string &why,
         size_t frames)
{
    std::ostringstream oss;
    oss << "code=" << code << " offset=" << offset << " frames=" << frames
        << " why=\"" << why << "\"";
    return oss.str();
}

} // namespace

uint32_t
crc32(std::string_view bytes, uint32_t seed)
{
    const auto &table = crcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (unsigned char ch : bytes)
        c = table[(c ^ ch) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

bool
looksLikeJournal(std::string_view bytes)
{
    const std::string_view magic("ftjrnl ");
    return bytes.substr(0, magic.size()) == magic;
}

std::string
journalHeader(const std::string &kind)
{
    std::ostringstream oss;
    oss << kMagic << " v" << kVersion << " " << kind << "\n";
    return oss.str();
}

std::string
journalFrame(std::string_view payload)
{
    std::ostringstream oss;
    oss << "f " << payload.size() << " " << hex32(crc32(payload)) << "\n";
    oss.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    oss << "\n";
    return oss.str();
}

JournalContents
parseJournal(std::string_view bytes)
{
    JournalContents out;
    if (!looksLikeJournal(bytes)) {
        out.diag = diagLine("FT-JRNL-NOHDR", 0, "missing journal magic", 0);
        return out;
    }
    // Header line: "ftjrnl v1 <kind>\n".
    const size_t eol = bytes.find('\n');
    if (eol == std::string_view::npos) {
        out.diag = diagLine("FT-JRNL-NOHDR", 0, "unterminated header", 0);
        return out;
    }
    {
        std::istringstream hdr{std::string(bytes.substr(0, eol))};
        std::string magic, version;
        hdr >> magic >> version >> out.kind;
        if (magic != kMagic || version != "v1" || out.kind.empty()) {
            out.diag = diagLine("FT-JRNL-NOHDR", 0,
                                "unrecognized journal header version", 0);
            return out;
        }
    }
    out.valid = true;
    size_t pos = eol + 1;
    out.validBytes = pos;

    auto tear = [&](const char *code, const std::string &why) {
        out.torn = true;
        out.diag = diagLine(code, pos, why, out.records.size());
    };

    while (pos < bytes.size()) {
        const size_t frame_eol = bytes.find('\n', pos);
        if (frame_eol == std::string_view::npos) {
            tear("FT-JRNL-TORN", "unterminated frame line");
            return out;
        }
        std::istringstream line{
            std::string(bytes.substr(pos, frame_eol - pos))};
        std::string tag, crc_hex;
        uint64_t len = 0;
        line >> tag >> len >> crc_hex;
        if (line.fail() || tag != "f" || crc_hex.size() != 8) {
            tear("FT-JRNL-FRAME", "malformed frame line");
            return out;
        }
        const size_t payload_at = frame_eol + 1;
        if (payload_at + len + 1 > bytes.size()) {
            tear("FT-JRNL-TORN", "frame payload cut short");
            return out;
        }
        std::string_view payload = bytes.substr(payload_at, len);
        if (bytes[payload_at + len] != '\n') {
            tear("FT-JRNL-FRAME", "frame payload not newline-terminated");
            return out;
        }
        uint32_t declared = 0;
        if (std::sscanf(crc_hex.c_str(), "%8x", &declared) != 1) {
            tear("FT-JRNL-FRAME", "unparseable frame checksum");
            return out;
        }
        if (crc32(payload) != declared) {
            tear("FT-JRNL-CRC", "frame checksum mismatch");
            return out;
        }
        out.records.emplace_back(payload);
        pos = payload_at + len + 1;
        out.validBytes = pos;
    }
    return out;
}

JournalContents
readJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        JournalContents out;
        out.diag = diagLine("FT-JRNL-NOFILE", 0, "cannot open file", 0);
        return out;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseJournal(buf.str());
}

bool
truncateToValid(const std::string &path, const JournalContents &contents)
{
    if (!contents.valid)
        return false;
    // Rewrite the valid prefix through a temp file + rename: equally
    // atomic as an in-place truncate, with no partial states visible.
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string bytes(contents.validBytes, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (in.gcount() != static_cast<std::streamsize>(bytes.size()))
        return false;
    in.close();
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return false;
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

JournalWriter::JournalWriter(std::string kind) : buf_(journalHeader(kind)) {}

void
JournalWriter::append(std::string_view payload)
{
    buf_ += journalFrame(payload);
    ++records_;
}

bool
JournalWriter::commit(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return false;
        out.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
journalAppend(const std::string &path, const std::string &kind,
              std::string_view payload)
{
    JournalContents existing = readJournal(path);
    if (!existing.valid || existing.kind != kind) {
        // Missing, empty, legacy, or foreign-kind file: start a fresh
        // journal atomically so the old contents never mix with frames.
        JournalWriter writer(kind);
        writer.append(payload);
        return writer.commit(path);
    }
    if (existing.torn) {
        warn("journal ", path, " has a torn tail (", existing.diag,
             "); truncating to last valid frame before append");
        if (!truncateToValid(path, existing))
            return false;
    }
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        return false;
    const std::string frame = journalFrame(payload);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.flush();
    return static_cast<bool>(out);
}

} // namespace ft
