#include "support/rng.h"

#include <cmath>

#include "support/logging.h"

namespace ft {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    FT_ASSERT(n > 0, "Rng::below requires n > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -n % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    FT_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    haveSpare_ = true;
    return u * m;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::size_t
Rng::index(std::size_t size)
{
    return static_cast<size_t>(below(size));
}

RngState
Rng::state() const
{
    RngState out;
    for (int i = 0; i < 4; ++i)
        out.s[i] = state_[i];
    out.haveSpare = haveSpare_;
    out.spare = spare_;
    return out;
}

void
Rng::setState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        state_[i] = state.s[i];
    haveSpare_ = state.haveSpare;
    spare_ = state.spare;
}

} // namespace ft
