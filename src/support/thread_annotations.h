/**
 * @file
 * Clang thread-safety-analysis annotations and annotated lock types.
 *
 * The macros expand to clang's `capability` attributes when the analysis
 * is available (clang with -Wthread-safety) and to nothing elsewhere, so
 * GCC builds are unaffected. libstdc++'s std::mutex is not annotated,
 * so the concurrent subsystems lock through the `ft::Mutex` wrapper and
 * the `ft::MutexLock` scoped guard below — the analysis then statically
 * checks every FT_GUARDED_BY / FT_REQUIRES contract in serve/ and ml/
 * (the clang CI job compiles with -Werror=thread-safety). Condition
 * waits release and re-acquire in a way the analysis cannot follow;
 * such loops (CostModel::trainerLoop) carry
 * FT_NO_THREAD_SAFETY_ANALYSIS with the contract stated in a comment.
 */
#ifndef FLEXTENSOR_SUPPORT_THREAD_ANNOTATIONS_H
#define FLEXTENSOR_SUPPORT_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define FT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FT_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define FT_CAPABILITY(x) FT_THREAD_ANNOTATION(capability(x))

/** Marks a RAII type that acquires a capability for its lifetime. */
#define FT_SCOPED_CAPABILITY FT_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with `x` held. */
#define FT_GUARDED_BY(x) FT_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by `x`. */
#define FT_PT_GUARDED_BY(x) FT_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define FT_REQUIRES(...) \
    FT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be called with the capabilities NOT held. */
#define FT_EXCLUDES(...) FT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function that acquires the listed capabilities. */
#define FT_ACQUIRE(...) \
    FT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define FT_RELEASE(...) \
    FT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Escape hatch: function body is exempt from the analysis. */
#define FT_NO_THREAD_SAFETY_ANALYSIS \
    FT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ft {

/**
 * std::mutex with the `capability` attribute so members can be declared
 * FT_GUARDED_BY(mu_). Drop-in: same lock/unlock surface, and `native()`
 * exposes the underlying std::mutex for condition variables.
 */
class FT_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() FT_ACQUIRE() { mu_.lock(); }
    void unlock() FT_RELEASE() { mu_.unlock(); }

    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/** std::lock_guard equivalent over ft::Mutex, visible to the analysis. */
class FT_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) FT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() FT_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

} // namespace ft

#endif // FLEXTENSOR_SUPPORT_THREAD_ANNOTATIONS_H
