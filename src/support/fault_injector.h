/**
 * @file
 * Deterministic measurement-fault injection.
 *
 * Real hardware measurement fails routinely: compiles error out, kernels
 * hang past the measurement budget, remote workers die, and occasional
 * runs report garbage numbers. The injector makes those events first-class
 * and reproducible: every fault decision is a pure function of
 * (seed, point key, attempt index), so a faulty run replays bit-identically
 * regardless of thread interleaving, and tests can stage each failure mode
 * on demand.
 *
 * Each point is assigned one failure mode from the profile's per-mode
 * probabilities (hashed from the seed and the point's key):
 *
 *  - Transient: the first `transientFailures` attempts error out, later
 *    attempts succeed — recoverable by retry.
 *  - Permanent: every attempt errors out — the point belongs in
 *    quarantine.
 *  - Timeout: every attempt hangs for `hangSeconds` of simulated time
 *    (cut off at the policy layer's per-trial deadline).
 *  - Outlier: the first attempt reports a corrupted value scaled by
 *    `outlierScale`; repeated measurement rejects it by median.
 */
#ifndef FLEXTENSOR_SUPPORT_FAULT_INJECTOR_H
#define FLEXTENSOR_SUPPORT_FAULT_INJECTOR_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ft {

/** Failure mode assigned to a measured point. */
enum class FaultKind { None, Transient, Permanent, Timeout, Outlier };

/** Human-readable fault-kind name. */
std::string faultKindName(FaultKind kind);

/** Per-mode probabilities and fault shape parameters. */
struct FaultProfile
{
    double transient = 0.0; ///< P(point fails transiently)
    double permanent = 0.0; ///< P(point fails on every attempt)
    double timeout = 0.0;   ///< P(point hangs on every attempt)
    double outlier = 0.0;   ///< P(point's first attempt reports garbage)
    /** Attempts that fail before a Transient point recovers. */
    int transientFailures = 1;
    /** Simulated seconds a hung measurement runs before being killed. */
    double hangSeconds = 10.0;
    /** Multiplier applied to an Outlier point's corrupted value. */
    double outlierScale = 10.0;
    uint64_t seed = 0x5eed;

    /** True when any failure mode has nonzero probability. */
    bool enabled() const
    {
        return transient > 0.0 || permanent > 0.0 || timeout > 0.0 ||
               outlier > 0.0;
    }

    /** Compact "t0.1,p0.05,..." form (request identity / logging). */
    std::string fingerprint() const;
};

/**
 * Parse "key=value,..." into a profile. Keys: transient, permanent,
 * timeout, outlier (probabilities in [0,1]); flaky (transient failure
 * count), hang (seconds), scale (outlier multiplier), seed. Returns
 * nullopt on an unknown key or unparseable value.
 */
std::optional<FaultProfile> parseFaultProfile(const std::string &spec);

/** Outcome of one injected measurement attempt. */
struct FaultOutcome
{
    FaultKind kind = FaultKind::None;
    bool failed = false;  ///< no value produced (error or hang)
    bool hung = false;    ///< ran until killed; charge hang time
    double gflops = 0.0;  ///< delivered value when !failed
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultProfile &profile);

    const FaultProfile &profile() const { return profile_; }

    /** The failure mode this point is assigned under the profile. */
    FaultKind pointMode(const std::string &key) const;

    /**
     * Fate of measurement attempt `attempt` (0-based, counted across
     * retries and repeats) of the point keyed `key` whose true
     * performance is `trueGflops`. Pure and thread-safe.
     */
    FaultOutcome apply(const std::string &key, int attempt,
                       double trueGflops) const;

    /**
     * Crash-at-byte-offset shim for durability tests: the byte offset
     * at which a write of `totalBytes` to `path` is torn, in
     * [1, totalBytes), as a pure function of (profile seed, path,
     * schedule). Iterating `schedule` yields a deterministic crash
     * schedule for the same file, so every seeded crash point is
     * replayable. totalBytes must be >= 2.
     */
    size_t crashOffsetFor(const std::string &path, size_t totalBytes,
                          uint64_t schedule = 0) const;

    /**
     * Torn-write shim: write `bytes` to `path` but stop (as a crash
     * would) after `crashAtByte` bytes, leaving a torn tail in place.
     * Unlike the production writers there is deliberately no temp
     * file + rename — this models the unsafe write the journal layer
     * must recover from.
     */
    static bool writeTorn(const std::string &path, std::string_view bytes,
                          size_t crashAtByte);

    /** Flip one bit of the file in place (bit `bitIndex` modulo the
     *  file's size in bits) — the bit-rot corruption shim. */
    static bool flipBit(const std::string &path, uint64_t bitIndex);

  private:
    FaultProfile profile_;
};

} // namespace ft

#endif // FLEXTENSOR_SUPPORT_FAULT_INJECTOR_H
