#include "support/fault_injector.h"

#include <fstream>
#include <sstream>

#include "support/logging.h"

namespace ft {

namespace {

/** SplitMix64 finalizer: one hash round over a 64-bit value. */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** FNV-1a over the key bytes. */
uint64_t
hashKey(const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Uniform double in [0, 1) from a hashed value. */
double
toUnit(uint64_t h)
{
    return (h >> 11) * 0x1.0p-53;
}

} // namespace

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::Transient: return "transient";
      case FaultKind::Permanent: return "permanent";
      case FaultKind::Timeout: return "timeout";
      case FaultKind::Outlier: return "outlier";
    }
    return "?";
}

std::string
FaultProfile::fingerprint() const
{
    std::ostringstream oss;
    oss << "t" << transient << ",p" << permanent << ",to" << timeout
        << ",o" << outlier << ",f" << transientFailures << ",h"
        << hangSeconds << ",x" << outlierScale << ",s" << seed;
    return oss.str();
}

std::optional<FaultProfile>
parseFaultProfile(const std::string &spec)
{
    FaultProfile profile;
    std::istringstream fields(spec);
    std::string field;
    while (std::getline(fields, field, ',')) {
        if (field.empty())
            continue;
        auto eq = field.find('=');
        if (eq == std::string::npos)
            return std::nullopt;
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        try {
            if (key == "transient") {
                profile.transient = std::stod(value);
            } else if (key == "permanent") {
                profile.permanent = std::stod(value);
            } else if (key == "timeout") {
                profile.timeout = std::stod(value);
            } else if (key == "outlier") {
                profile.outlier = std::stod(value);
            } else if (key == "flaky") {
                profile.transientFailures = std::stoi(value);
            } else if (key == "hang") {
                profile.hangSeconds = std::stod(value);
            } else if (key == "scale") {
                profile.outlierScale = std::stod(value);
            } else if (key == "seed") {
                profile.seed = std::stoull(value, nullptr, 0);
            } else {
                return std::nullopt;
            }
        } catch (...) {
            return std::nullopt;
        }
    }
    if (profile.transient < 0 || profile.permanent < 0 ||
        profile.timeout < 0 || profile.outlier < 0 ||
        profile.transient + profile.permanent + profile.timeout +
                profile.outlier > 1.0 ||
        profile.transientFailures < 1 || profile.hangSeconds <= 0.0) {
        return std::nullopt;
    }
    return profile;
}

FaultInjector::FaultInjector(const FaultProfile &profile) : profile_(profile)
{
    FT_ASSERT(profile.transient + profile.permanent + profile.timeout +
                      profile.outlier <= 1.0,
              "fault probabilities exceed 1");
}

FaultKind
FaultInjector::pointMode(const std::string &key) const
{
    const double u = toUnit(mix64(hashKey(key) ^ profile_.seed));
    double edge = profile_.transient;
    if (u < edge)
        return FaultKind::Transient;
    edge += profile_.permanent;
    if (u < edge)
        return FaultKind::Permanent;
    edge += profile_.timeout;
    if (u < edge)
        return FaultKind::Timeout;
    edge += profile_.outlier;
    if (u < edge)
        return FaultKind::Outlier;
    return FaultKind::None;
}

FaultOutcome
FaultInjector::apply(const std::string &key, int attempt,
                     double trueGflops) const
{
    FaultOutcome out;
    out.kind = pointMode(key);
    out.gflops = trueGflops;
    switch (out.kind) {
      case FaultKind::None:
        break;
      case FaultKind::Transient:
        out.failed = attempt < profile_.transientFailures;
        break;
      case FaultKind::Permanent:
        out.failed = true;
        break;
      case FaultKind::Timeout:
        out.failed = true;
        out.hung = true;
        break;
      case FaultKind::Outlier:
        if (attempt == 0)
            out.gflops = trueGflops * profile_.outlierScale;
        break;
    }
    return out;
}

size_t
FaultInjector::crashOffsetFor(const std::string &path, size_t totalBytes,
                              uint64_t schedule) const
{
    FT_ASSERT(totalBytes >= 2, "crash offset needs at least 2 bytes");
    const uint64_t h =
        mix64(hashKey(path) ^ profile_.seed ^ mix64(schedule + 1));
    // Offsets in [1, totalBytes): a zero-byte "write" is a no-op and a
    // full write is not a crash.
    return 1 + static_cast<size_t>(h % (totalBytes - 1));
}

bool
FaultInjector::writeTorn(const std::string &path, std::string_view bytes,
                         size_t crashAtByte)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const size_t n = crashAtByte < bytes.size() ? crashAtByte : bytes.size();
    out.write(bytes.data(), static_cast<std::streamsize>(n));
    return static_cast<bool>(out);
}

bool
FaultInjector::flipBit(const std::string &path, uint64_t bitIndex)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    if (bytes.empty())
        return false;
    const uint64_t bit = bitIndex % (bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

} // namespace ft
