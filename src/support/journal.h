/**
 * @file
 * Crash-safe record journal: the shared durable-file format behind the
 * tuning cache, exploration checkpoints, and dispatch tables.
 *
 * A journal is a versioned header line followed by CRC32-framed records:
 *
 *   ftjrnl v1 <kind>\n
 *   f <payload-bytes> <crc32-hex>\n
 *   <payload bytes>\n
 *   f ...
 *
 * The payload is arbitrary bytes (newlines allowed); the frame line
 * carries its exact length and checksum, so a reader can prove each
 * record intact without trusting the payload's own structure. Because
 * frames are self-delimiting and appended in order, a crash mid-write
 * can only produce a *torn tail*: some prefix of the file is a valid
 * journal and everything after the last intact frame is garbage.
 * parseJournal() recovers exactly that prefix and reports the tear as a
 * structured diagnostic; truncateToValid() repairs the file in place so
 * later appends start from a clean frame boundary.
 *
 * Two write modes cover the adopters' needs:
 *  - JournalWriter assembles a whole journal in memory and commits it
 *    atomically (temp file + rename) — for rewrite-style stores like
 *    the tuning cache and dispatch tables.
 *  - journalAppend() appends one frame to an existing journal file —
 *    for incremental stores like exploration checkpoints, where losing
 *    only the in-flight frame on a crash is the contract.
 */
#ifndef FLEXTENSOR_SUPPORT_JOURNAL_H
#define FLEXTENSOR_SUPPORT_JOURNAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ft {

/** IEEE CRC-32 (the zlib polynomial) of `bytes`, seedable for chains. */
uint32_t crc32(std::string_view bytes, uint32_t seed = 0);

/** True when `bytes` begin with a journal header ("ftjrnl "). */
bool looksLikeJournal(std::string_view bytes);

/** Everything a reader learns from one journal image. */
struct JournalContents
{
    /** Header parsed and version understood. When false, the file is
     *  not a journal at all (callers fall back to legacy readers). */
    bool valid = false;
    std::string kind;                 ///< adopter format tag from header
    std::vector<std::string> records; ///< intact frame payloads, in order
    /** True when bytes remain past the last intact frame (torn tail or
     *  in-place corruption; everything before it was recovered). */
    bool torn = false;
    size_t validBytes = 0; ///< byte offset of the last intact frame end
    /** One-line structured diagnostic ("code=FT-JRNL-... ...") when the
     *  image is torn or not a valid journal; empty when clean. */
    std::string diag;
};

/** Parse a journal image; never throws. Recovery semantics above. */
JournalContents parseJournal(std::string_view bytes);

/**
 * Read and parse a journal file. A missing/unreadable file yields
 * valid=false with a diagnostic; callers decide how loud to be.
 */
JournalContents readJournal(const std::string &path);

/**
 * Truncate `path` to `contents.validBytes`, discarding a torn tail so
 * the next append starts on a frame boundary. Returns false on I/O
 * error or when contents is not a valid journal.
 */
bool truncateToValid(const std::string &path,
                     const JournalContents &contents);

/** In-memory journal assembly with an atomic temp+rename commit. */
class JournalWriter
{
  public:
    /** @param kind adopter format tag written into the header (one
     *  token, no whitespace). */
    explicit JournalWriter(std::string kind);

    /** Append one framed record. */
    void append(std::string_view payload);

    /** The serialized journal so far (header + frames). */
    const std::string &bytes() const { return buf_; }

    size_t recordCount() const { return records_; }

    /**
     * Write the journal to `path` via temp file + atomic rename, the
     * same crash-safe pattern as TuningCache::save. Returns false on
     * I/O error (the temp file is removed).
     */
    bool commit(const std::string &path) const;

  private:
    std::string buf_;
    size_t records_ = 0;
};

/** Render one frame (frame line + payload + newline). */
std::string journalFrame(std::string_view payload);

/** The header line for `kind`, newline-terminated. */
std::string journalHeader(const std::string &kind);

/**
 * Append one frame to the journal at `path`. Creates the file (with a
 * header) when missing or empty; rewrites it when it holds a non-journal
 * or different-kind file; truncates a torn tail before appending so the
 * new frame lands on a valid boundary. A crash during the append leaves
 * at worst a torn tail that the next read recovers from.
 */
bool journalAppend(const std::string &path, const std::string &kind,
                   std::string_view payload);

} // namespace ft

#endif // FLEXTENSOR_SUPPORT_JOURNAL_H
