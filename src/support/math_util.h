/**
 * @file
 * Small integer/math helpers shared across FlexTensor.
 *
 * The schedule space relies heavily on divisible splits (Section 4.2 of the
 * paper), so divisor enumeration and N-part factorization live here.
 */
#ifndef FLEXTENSOR_SUPPORT_MATH_UTIL_H
#define FLEXTENSOR_SUPPORT_MATH_UTIL_H

#include <cstdint>
#include <vector>

namespace ft {

/** All positive divisors of n in increasing order. Requires n >= 1. */
std::vector<int64_t> divisorsOf(int64_t n);

/**
 * All ordered factorizations of n into exactly `parts` positive factors.
 *
 * Each result f satisfies f[0] * f[1] * ... * f[parts-1] == n. This is the
 * "divisible split" enumeration the paper uses to prune the split-factor
 * parameter space. The count grows with the number of divisors, so callers
 * should keep `parts` small (the paper uses at most 4).
 */
std::vector<std::vector<int64_t>> factorizations(int64_t n, int parts);

/** Ceiling division for non-negative integers. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Round n up to the next multiple of align. */
constexpr int64_t
roundUp(int64_t n, int64_t align)
{
    return ceilDiv(n, align) * align;
}

/** Product of all elements (1 for an empty range). */
int64_t product(const std::vector<int64_t> &v);

/** Largest power of two that divides n. Requires n >= 1. */
int64_t largestPowerOfTwoDivisor(int64_t n);

/** True when n is a power of two. */
constexpr bool
isPowerOfTwo(int64_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

/** Geometric mean of a non-empty list of positive values. */
double geomean(const std::vector<double> &v);

} // namespace ft

#endif // FLEXTENSOR_SUPPORT_MATH_UTIL_H
