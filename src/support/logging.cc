#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace ft {

namespace {

LogLevel globalLevel = LogLevel::Warning;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (file && file[0]) {
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    } else {
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    }
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (file && file[0]) {
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    } else {
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    }
    std::abort();
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warning)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace ft
