#include "dnn/network.h"

#include "ops/ops.h"
#include "support/logging.h"

namespace ft {

int
Network::numConvLayers() const
{
    int n = 0;
    for (const auto &l : layers)
        n += l.kind == LayerSpec::Kind::Conv;
    return n;
}

std::vector<std::vector<int64_t>>
layerShapes(const Network &net)
{
    std::vector<std::vector<int64_t>> shapes;
    std::vector<int64_t> cur = net.inputShape;
    FT_ASSERT(cur.size() == 4, "network input must be NCHW");
    for (const auto &l : net.layers) {
        switch (l.kind) {
          case LayerSpec::Kind::Conv: {
            int64_t oh =
                (cur[2] + 2 * l.padding - l.kernel) / l.stride + 1;
            int64_t ow =
                (cur[3] + 2 * l.padding - l.kernel) / l.stride + 1;
            cur = {cur[0], l.outChannels, oh, ow};
            break;
          }
          case LayerSpec::Kind::MaxPool: {
            int64_t oh = (cur[2] - l.kernel) / l.stride + 1;
            int64_t ow = (cur[3] - l.kernel) / l.stride + 1;
            cur = {cur[0], cur[1], oh, ow};
            break;
          }
          case LayerSpec::Kind::Dense: {
            int64_t features = cur.size() == 4 ? cur[1] * cur[2] * cur[3]
                                               : cur[1];
            cur = {cur[0], l.units};
            (void)features;
            break;
          }
        }
        shapes.push_back(cur);
    }
    return shapes;
}

std::vector<FusedOp>
partitionAndFuse(const Network &net)
{
    std::vector<FusedOp> out;
    std::vector<int64_t> cur = net.inputShape;
    FT_ASSERT(cur.size() == 4, "network input must be NCHW");

    for (const auto &l : net.layers) {
        switch (l.kind) {
          case LayerSpec::Kind::Conv: {
            Tensor input = placeholder(l.name + ".in", cur);
            Tensor weight = placeholder(
                l.name + ".w", {l.outChannels, cur[1], l.kernel, l.kernel});
            ops::ConvParams p;
            p.stride = l.stride;
            p.padding = l.padding;
            Tensor conv = ops::conv2d(input, weight, p);

            FusedOp fused;
            fused.name = l.name;
            fused.output = conv;
            fused.fusedElementwise = (l.bias ? 1 : 0) + (l.relu ? 1 : 0);
            fused.outputBytes = conv.numel() * 4;
            out.push_back(std::move(fused));
            cur = conv.shape();
            break;
          }
          case LayerSpec::Kind::MaxPool: {
            Tensor input = placeholder(l.name + ".in", cur);
            Tensor pooled = ops::maxPool2d(input, l.kernel, l.stride);
            FusedOp fused;
            fused.name = l.name;
            fused.output = pooled;
            fused.outputBytes = pooled.numel() * 4;
            fused.schedulable = false; // bandwidth-bound data movement
            out.push_back(std::move(fused));
            cur = pooled.shape();
            break;
          }
          case LayerSpec::Kind::Dense: {
            int64_t features = cur.size() == 4 ? cur[1] * cur[2] * cur[3]
                                               : cur[1];
            Tensor input = placeholder(l.name + ".in", {cur[0], features});
            Tensor weight =
                placeholder(l.name + ".w", {l.units, features});
            Tensor dense = ops::dense(input, weight);
            FusedOp fused;
            fused.name = l.name;
            fused.output = dense;
            fused.fusedElementwise = (l.bias ? 1 : 0) + (l.relu ? 1 : 0);
            fused.outputBytes = dense.numel() * 4;
            out.push_back(std::move(fused));
            cur = {cur[0], l.units};
            break;
          }
        }
    }
    return out;
}

} // namespace ft
