#include "dnn/e2e.h"

#include "analysis/flops.h"
#include "graph/dag.h"
#include "graph/partition.h"
#include "graph/schedule_dag.h"
#include "support/logging.h"

namespace ft {

const char *
fuseModeName(FuseMode mode)
{
    switch (mode) {
      case FuseMode::None:
        return "none";
      case FuseMode::Epilogue:
        return "epilogue";
      case FuseMode::Graph:
        return "graph";
    }
    return "epilogue";
}

namespace {

double
deviceBandwidthGBs(const Target &target)
{
    switch (target.kind) {
      case DeviceKind::Gpu:
        return target.gpu->memBwGBs;
      case DeviceKind::Cpu:
        return target.cpu->memBwGBs;
      case DeviceKind::Fpga:
        return target.fpga->ddrBwGBs;
    }
    return 1.0;
}

} // namespace

NetworkReport
scheduleNetwork(const Network &net, const Target &target,
                const E2eOptions &options)
{
    NetworkReport report;
    report.network = net.name;
    report.device = target.deviceName();
    report.fuseMode = options.fuse;

    // Traffic accounting is shared across modes: the epilogue-only
    // partition is the baseline every mode is compared against.
    graph::ComputeDag dag = graph::dagFromNetwork(net);
    report.baselineTrafficBytes =
        graph::epiloguePartition(dag, target).totalTrafficBytes;

    if (options.fuse == FuseMode::Graph) {
        TuneOptions tune_options;
        tune_options.method = options.method;
        tune_options.explore = options.explore;
        tune_options.cache = options.cache;
        graph::DagTuneReport tuned =
            graph::tuneDag(dag, target, tune_options);
        report.totalSeconds = tuned.totalSeconds;
        report.simExploreSeconds = tuned.simExploreSeconds;
        report.modeledTrafficBytes = tuned.trafficBytes;
        report.ephemeralBytes = tuned.ephemeralBytes;
        report.trafficSavedBytes =
            report.baselineTrafficBytes - report.modeledTrafficBytes;
        for (const auto &sub : tuned.groups) {
            LayerReport layer;
            layer.name = sub.name;
            layer.seconds = sub.seconds;
            layer.gflops = sub.tuned ? sub.report.gflops : 0.0;
            layer.tuned = sub.tuned;
            report.layers.push_back(std::move(layer));
        }
        return report;
    }

    {
        graph::Partition chosen =
            options.fuse == FuseMode::None
                ? graph::nonePartition(dag, target)
                : graph::epiloguePartition(dag, target);
        report.modeledTrafficBytes = chosen.totalTrafficBytes;
        report.ephemeralBytes = chosen.ephemeralBytes;
        report.trafficSavedBytes =
            report.baselineTrafficBytes - report.modeledTrafficBytes;
    }

    const bool fuse_elt =
        options.fuseElementwise && options.fuse != FuseMode::None;
    const double bw = deviceBandwidthGBs(target) * 1e9;
    auto fused_ops = partitionAndFuse(net);

    // Algorithm 1: traverse the (sequential) graph bottom-up and schedule
    // each node, then assemble the whole-graph cost.
    for (const auto &fused : fused_ops) {
        LayerReport layer;
        layer.name = fused.name;

        if (!fused.schedulable) {
            // Bandwidth-bound data movement (pooling): bytes in + out.
            int64_t in_bytes = 0;
            MiniGraph g(fused.output);
            for (const auto &op : g.postOrder()) {
                if (op->isPlaceholder()) {
                    int64_t n = 4;
                    for (int64_t d : op->outputShape())
                        n *= d;
                    in_bytes += n;
                }
            }
            layer.seconds = static_cast<double>(in_bytes +
                                                fused.outputBytes) /
                            bw;
        } else {
            TuneOptions tune_options;
            tune_options.method = options.method;
            tune_options.explore = options.explore;
            tune_options.cache = options.cache;
            TuneReport tuned = tune(fused.output, target, tune_options);
            layer.seconds = tuned.kernelSeconds;
            layer.gflops = tuned.gflops;
            layer.tuned = true;
            report.simExploreSeconds += tuned.simExploreSeconds;

            if (!fuse_elt) {
                // Unfused ablation: each epilogue op re-reads and
                // re-writes the activation.
                layer.seconds += fused.fusedElementwise * 2.0 *
                                 static_cast<double>(fused.outputBytes) /
                                 bw;
            }
        }
        report.totalSeconds += layer.seconds;
        report.layers.push_back(std::move(layer));
    }
    return report;
}

} // namespace ft
