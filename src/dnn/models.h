/**
 * @file
 * The two real-world DNNs of Section 6.6: YOLO-v1 (24 convolution layers,
 * 30 layers total) and OverFeat-fast (5 convolution layers, 8 total),
 * both at batch size 1.
 */
#ifndef FLEXTENSOR_DNN_MODELS_H
#define FLEXTENSOR_DNN_MODELS_H

#include "dnn/network.h"

namespace ft {

/** YOLO-v1 detection network (Redmon et al. 2016), 448x448 input. */
Network yoloV1(int64_t batch = 1);

/** OverFeat fast model (Sermanet et al. 2014), 231x231 input. */
Network overFeat(int64_t batch = 1);

} // namespace ft

#endif // FLEXTENSOR_DNN_MODELS_H
