#include "dnn/models.h"

namespace ft {

namespace {

LayerSpec
conv(std::string name, int64_t k, int64_t kernel, int64_t stride = 1)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::Conv;
    l.name = std::move(name);
    l.outChannels = k;
    l.kernel = kernel;
    l.stride = stride;
    l.padding = kernel / 2;
    return l;
}

LayerSpec
pool(std::string name, int64_t kernel = 2, int64_t stride = 2)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::MaxPool;
    l.name = std::move(name);
    l.kernel = kernel;
    l.stride = stride;
    return l;
}

LayerSpec
dense(std::string name, int64_t units, bool relu = true)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::Dense;
    l.name = std::move(name);
    l.units = units;
    l.relu = relu;
    return l;
}

} // namespace

Network
yoloV1(int64_t batch)
{
    Network net;
    net.name = "YOLO-v1";
    net.inputShape = {batch, 3, 448, 448};
    auto &L = net.layers;

    // Block 1.
    L.push_back(conv("conv1", 64, 7, 2));
    L.push_back(pool("pool1"));
    // Block 2.
    L.push_back(conv("conv2", 192, 3));
    L.push_back(pool("pool2"));
    // Block 3.
    L.push_back(conv("conv3", 128, 1));
    L.push_back(conv("conv4", 256, 3));
    L.push_back(conv("conv5", 256, 1));
    L.push_back(conv("conv6", 512, 3));
    L.push_back(pool("pool3"));
    // Block 4: four (1x1x256, 3x3x512) pairs, then 1x1x512, 3x3x1024.
    for (int i = 0; i < 4; ++i) {
        L.push_back(conv("conv" + std::to_string(7 + 2 * i), 256, 1));
        L.push_back(conv("conv" + std::to_string(8 + 2 * i), 512, 3));
    }
    L.push_back(conv("conv15", 512, 1));
    L.push_back(conv("conv16", 1024, 3));
    L.push_back(pool("pool4"));
    // Block 5: two (1x1x512, 3x3x1024) pairs, 3x3x1024, 3x3x1024 s2.
    for (int i = 0; i < 2; ++i) {
        L.push_back(conv("conv" + std::to_string(17 + 2 * i), 512, 1));
        L.push_back(conv("conv" + std::to_string(18 + 2 * i), 1024, 3));
    }
    L.push_back(conv("conv21", 1024, 3));
    L.push_back(conv("conv22", 1024, 3, 2));
    // Block 6.
    L.push_back(conv("conv23", 1024, 3));
    L.push_back(conv("conv24", 1024, 3));
    // Head.
    L.push_back(dense("fc1", 4096));
    L.push_back(dense("fc2", 1470, /*relu=*/false));
    return net;
}

Network
overFeat(int64_t batch)
{
    Network net;
    net.name = "OverFeat";
    net.inputShape = {batch, 3, 231, 231};
    auto &L = net.layers;

    LayerSpec c1 = conv("conv1", 96, 11, 4);
    c1.padding = 0;
    L.push_back(c1);
    L.push_back(pool("pool1"));
    LayerSpec c2 = conv("conv2", 256, 5);
    c2.padding = 0;
    L.push_back(c2);
    L.push_back(pool("pool2"));
    L.push_back(conv("conv3", 512, 3));
    L.push_back(conv("conv4", 1024, 3));
    L.push_back(conv("conv5", 1024, 3));
    L.push_back(pool("pool3"));
    L.push_back(dense("fc1", 3072));
    L.push_back(dense("fc2", 4096));
    L.push_back(dense("fc3", 1000, /*relu=*/false));
    return net;
}

} // namespace ft
