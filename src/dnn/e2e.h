/**
 * @file
 * End-to-end network scheduling (Section 6.6 and Algorithm 1).
 *
 * Every fused operator is tuned bottom-up with the chosen exploration
 * method; unschedulable data-movement layers (pooling) are charged their
 * bandwidth cost; fused elementwise epilogues are free, while the unfused
 * ablation pays one memory round trip per epilogue op.
 */
#ifndef FLEXTENSOR_DNN_E2E_H
#define FLEXTENSOR_DNN_E2E_H

#include "dnn/models.h"
#include "explore/tuner.h"

namespace ft {

/** Per-layer outcome of end-to-end scheduling. */
struct LayerReport
{
    std::string name;
    double seconds = 0.0;
    double gflops = 0.0;
    bool tuned = false; ///< false for bandwidth-bound layers
};

/** How aggressively the network is partitioned before tuning. */
enum class FuseMode
{
    None,     ///< every op is its own group (epilogues pay round trips)
    Epilogue, ///< legacy: elementwise epilogues sink into their producer
    Graph,    ///< graph-level: roofline-guided beam partition (src/graph)
};

/** Stable lowercase name of a fuse mode (CLI/JSON spelling). */
const char *fuseModeName(FuseMode mode);

/** Whole-network outcome. */
struct NetworkReport
{
    std::string network;
    std::string device;
    FuseMode fuseMode = FuseMode::Epilogue;
    double totalSeconds = 0.0;
    double simExploreSeconds = 0.0;
    /** Modeled tier-3 traffic of the chosen partition. */
    int64_t modeledTrafficBytes = 0;
    /** Traffic of the epilogue-only partition (the comparison baseline). */
    int64_t baselineTrafficBytes = 0;
    /** baseline - modeled; positive when graph fusion saves DRAM trips. */
    int64_t trafficSavedBytes = 0;
    /** Intermediate bytes kept on chip by the chosen partition. */
    int64_t ephemeralBytes = 0;
    std::vector<LayerReport> layers;
};

/** Options for end-to-end scheduling. */
struct E2eOptions
{
    Method method = Method::QMethod;
    ExploreOptions explore;
    FuseMode fuse = FuseMode::Epilogue;
    bool fuseElementwise = true; ///< ablation: pay epilogue round trips
    /**
     * Optional tuning cache shared across layers. Networks repeat layer
     * shapes (YOLO-v1's block 4 contains four identical conv pairs), so
     * repeated layers are served without re-exploration.
     */
    TuningCache *cache = nullptr;
};

/** Tune every layer of a network and accumulate predicted runtime. */
NetworkReport scheduleNetwork(const Network &net, const Target &target,
                              const E2eOptions &options = {});

} // namespace ft

#endif // FLEXTENSOR_DNN_E2E_H
