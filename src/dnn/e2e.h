/**
 * @file
 * End-to-end network scheduling (Section 6.6 and Algorithm 1).
 *
 * Every fused operator is tuned bottom-up with the chosen exploration
 * method; unschedulable data-movement layers (pooling) are charged their
 * bandwidth cost; fused elementwise epilogues are free, while the unfused
 * ablation pays one memory round trip per epilogue op.
 */
#ifndef FLEXTENSOR_DNN_E2E_H
#define FLEXTENSOR_DNN_E2E_H

#include "dnn/models.h"
#include "explore/tuner.h"

namespace ft {

/** Per-layer outcome of end-to-end scheduling. */
struct LayerReport
{
    std::string name;
    double seconds = 0.0;
    double gflops = 0.0;
    bool tuned = false; ///< false for bandwidth-bound layers
};

/** Whole-network outcome. */
struct NetworkReport
{
    std::string network;
    std::string device;
    double totalSeconds = 0.0;
    double simExploreSeconds = 0.0;
    std::vector<LayerReport> layers;
};

/** Options for end-to-end scheduling. */
struct E2eOptions
{
    Method method = Method::QMethod;
    ExploreOptions explore;
    bool fuseElementwise = true; ///< ablation: pay epilogue round trips
    /**
     * Optional tuning cache shared across layers. Networks repeat layer
     * shapes (YOLO-v1's block 4 contains four identical conv pairs), so
     * repeated layers are served without re-exploration.
     */
    TuningCache *cache = nullptr;
};

/** Tune every layer of a network and accumulate predicted runtime. */
NetworkReport scheduleNetwork(const Network &net, const Target &target,
                              const E2eOptions &options = {});

} // namespace ft

#endif // FLEXTENSOR_DNN_E2E_H
