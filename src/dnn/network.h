/**
 * @file
 * Whole-network representation for the end-to-end case study (Section 6.6).
 *
 * FlexTensor handles full DNNs by partitioning them into sub-graphs and
 * fusing elementwise epilogues (bias, ReLU) into the producing operator;
 * the fused operators are then scheduled one by one in bottom-up order
 * (Algorithm 1). This module provides the layer-graph representation and
 * the fusion pass; dnn/models.cc defines YOLO-v1 and OverFeat.
 */
#ifndef FLEXTENSOR_DNN_NETWORK_H
#define FLEXTENSOR_DNN_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/operation.h"

namespace ft {

/** One layer of a sequential CNN. */
struct LayerSpec
{
    enum class Kind { Conv, MaxPool, Dense };

    Kind kind = Kind::Conv;
    std::string name;

    // Conv fields.
    int64_t outChannels = 0;
    int64_t kernel = 0;
    int64_t stride = 1;
    int64_t padding = 0;
    bool bias = true;
    bool relu = true;

    // MaxPool fields (kernel/stride shared with conv fields).

    // Dense fields.
    int64_t units = 0;
};

/** A sequential network: input shape plus an ordered layer list. */
struct Network
{
    std::string name;
    std::vector<int64_t> inputShape; ///< NCHW
    std::vector<LayerSpec> layers;

    /** Number of convolution layers. */
    int numConvLayers() const;
};

/**
 * A fused schedulable unit after sub-graph partitioning: one anchor
 * operator (conv or dense) with its fused elementwise epilogue ops.
 */
struct FusedOp
{
    std::string name;
    Tensor output;       ///< graph rooted at the anchor (pre-epilogue)
    int fusedElementwise = 0; ///< epilogue ops folded into the kernel
    int64_t outputBytes = 0;  ///< for the unfused-roundtrip ablation
    bool schedulable = true;  ///< false for pure-memory ops (pooling)
};

/**
 * Partition a network into fused operators: each conv/dense layer absorbs
 * its bias/ReLU epilogue; pooling layers become unschedulable memory ops.
 */
std::vector<FusedOp> partitionAndFuse(const Network &net);

/** Output shape of the network layer by layer (sanity checking). */
std::vector<std::vector<int64_t>> layerShapes(const Network &net);

} // namespace ft

#endif // FLEXTENSOR_DNN_NETWORK_H
