/**
 * @file
 * Minimal dense neural network: the Q-value predictor of Section 5.1.
 *
 * The paper's network is four fully-connected layers with ReLU activations,
 * trained online with AdaDelta against a target network. This module
 * implements exactly that: Linear layers with per-parameter AdaDelta state,
 * an Mlp wrapper, and single-output backpropagation (Q-learning updates
 * touch one action's Q-value per sample).
 */
#ifndef FLEXTENSOR_NN_MLP_H
#define FLEXTENSOR_NN_MLP_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ft {

class Rng;

/** AdaDelta hyperparameters (Zeiler 2012). */
struct AdaDeltaOptions
{
    double rho = 0.95;
    double eps = 1e-6;
};

/**
 * Caller-owned working buffers for the batched/scratch Mlp passes.
 * Reusing one of these across calls makes inference and training
 * allocation-free once the buffers have grown to capacity; concurrent
 * callers must each own their own scratch.
 */
struct MlpScratch
{
    std::vector<float> a, b;              ///< ping-pong activation planes
    std::vector<std::vector<float>> acts; ///< per-layer inputs (backward)
    std::vector<float> dy, dx;            ///< backward gradient buffers
    std::vector<float> xt;  ///< transposed input plane (batched passes)
    std::vector<float> out; ///< row-major batch output
    std::vector<float> col; ///< one sample's activations (batch backward)
};

/** A parameter tensor with gradient and AdaDelta accumulators. */
struct Param
{
    std::vector<float> value;
    std::vector<float> grad;
    std::vector<float> accGradSq; ///< E[g^2]
    std::vector<float> accDeltaSq; ///< E[dx^2]

    /** Allocate `n` parameters initialized to zero. */
    void resize(std::size_t n);

    /** Zero the gradient buffer. */
    void zeroGrad();

    /** Apply one AdaDelta update and clear the gradient. */
    void step(const AdaDeltaOptions &opt);
};

/** One fully-connected layer: y = W x + b. */
class Linear
{
  public:
    Linear(int in_dim, int out_dim, Rng &rng);

    int inDim() const { return inDim_; }
    int outDim() const { return outDim_; }

    /** Forward pass; caches nothing (caller keeps activations). */
    std::vector<float> forward(const std::vector<float> &x) const;

    /**
     * Blocked batch forward: `x` is m row-major samples (m x inDim),
     * `y` receives m x outDim. Each weight row is streamed across the
     * whole batch (SIMD/cache friendly), and every sample's dot product
     * accumulates in the same order as forward(), so row s of the
     * result is bit-identical to forward(sample s).
     */
    void forwardBatch(const float *x, int m, float *y) const;

    /**
     * forwardBatch() on transposed planes: `xT` is inDim x m (sample s
     * is column s), `yT` receives outDim x m. The inner loop runs
     * across the m sample lanes — contiguous loads, no loop-carried
     * dependency — so it vectorizes, while each sample's accumulation
     * still walks i in ascending order from the bias: column s equals
     * forward(sample s) bit for bit.
     */
    void forwardBatchT(const float *xT, int m, float *yT) const;

    /**
     * Backward pass: given dL/dy and the forward input, accumulate
     * parameter gradients and return dL/dx.
     */
    std::vector<float> backward(const std::vector<float> &dy,
                                const std::vector<float> &x);

    /** backward() into a caller-owned buffer (dx: inDim floats). */
    void backwardInto(const float *dy, const float *x, float *dx);

    void zeroGrad();
    void step(const AdaDeltaOptions &opt);

    /** Copy parameter values (not optimizer state) from another layer. */
    void copyValuesFrom(const Linear &other);

    /** Raw parameter tensors {weights, bias} for checkpointing. */
    std::array<Param *, 2> params() { return {&w_, &b_}; }
    std::array<const Param *, 2> params() const { return {&w_, &b_}; }

  private:
    int inDim_, outDim_;
    Param w_; ///< row-major (out x in)
    Param b_;
};

/**
 * A ReLU MLP: Linear -> ReLU -> ... -> Linear (no activation on output).
 */
class Mlp
{
  public:
    /** dims = {input, hidden..., output}; weights ~ He initialization. */
    Mlp(const std::vector<int> &dims, Rng &rng);

    int inputDim() const;
    int outputDim() const;

    /** Forward pass returning the output vector. */
    std::vector<float> forward(const std::vector<float> &x) const;

    /**
     * Batched forward: `x` is m row-major samples (m x inputDim). The
     * returned pointer (into `scratch`, valid until the next use of it)
     * holds m x outputDim values; row s is bit-identical to
     * forward(sample s). `x` must not alias the scratch buffers.
     */
    const float *forwardBatch(const float *x, int m,
                              MlpScratch &scratch) const;

    /**
     * Accumulate gradients for a single (input, action, target) sample:
     * loss = (output[action] - target)^2. Returns the loss.
     */
    double accumulateGrad(const std::vector<float> &x, int action,
                          float target);

    /** accumulateGrad() reusing caller-owned buffers. */
    double accumulateGrad(const std::vector<float> &x, int action,
                          float target, MlpScratch &scratch);

    /**
     * accumulateGrad() over a whole batch: `x` is m row-major samples,
     * `actions`/`targets` hold one entry per sample. The forward pass
     * runs once, batched across the sample lanes; gradients then
     * accumulate sample by sample in index order, so the parameter
     * gradients (and the returned summed loss) are bit-identical to m
     * successive accumulateGrad() calls.
     */
    double accumulateGradBatch(const float *x, int m, const int *actions,
                               const float *targets, MlpScratch &scratch);

    void zeroGrad();
    void step(const AdaDeltaOptions &opt);

    /** Copy parameter values from another network (target-net sync). */
    void copyValuesFrom(const Mlp &other);

    /**
     * Flatten every parameter's values and AdaDelta accumulators
     * (E[g^2], E[dx^2]) into one vector for checkpointing. Gradients are
     * excluded: training rounds start with zeroGrad().
     */
    std::vector<float> checkpointState() const;

    /** Restore a checkpointState() snapshot; false on a shape mismatch. */
    bool restoreCheckpointState(const std::vector<float> &state);

  private:
    std::vector<Linear> layers_;
};

} // namespace ft

#endif // FLEXTENSOR_NN_MLP_H
