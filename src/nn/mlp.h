/**
 * @file
 * Minimal dense neural network: the Q-value predictor of Section 5.1.
 *
 * The paper's network is four fully-connected layers with ReLU activations,
 * trained online with AdaDelta against a target network. This module
 * implements exactly that: Linear layers with per-parameter AdaDelta state,
 * an Mlp wrapper, and single-output backpropagation (Q-learning updates
 * touch one action's Q-value per sample).
 */
#ifndef FLEXTENSOR_NN_MLP_H
#define FLEXTENSOR_NN_MLP_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ft {

class Rng;

/** AdaDelta hyperparameters (Zeiler 2012). */
struct AdaDeltaOptions
{
    double rho = 0.95;
    double eps = 1e-6;
};

/** A parameter tensor with gradient and AdaDelta accumulators. */
struct Param
{
    std::vector<float> value;
    std::vector<float> grad;
    std::vector<float> accGradSq; ///< E[g^2]
    std::vector<float> accDeltaSq; ///< E[dx^2]

    /** Allocate `n` parameters initialized to zero. */
    void resize(std::size_t n);

    /** Zero the gradient buffer. */
    void zeroGrad();

    /** Apply one AdaDelta update and clear the gradient. */
    void step(const AdaDeltaOptions &opt);
};

/** One fully-connected layer: y = W x + b. */
class Linear
{
  public:
    Linear(int in_dim, int out_dim, Rng &rng);

    int inDim() const { return inDim_; }
    int outDim() const { return outDim_; }

    /** Forward pass; caches nothing (caller keeps activations). */
    std::vector<float> forward(const std::vector<float> &x) const;

    /**
     * Backward pass: given dL/dy and the forward input, accumulate
     * parameter gradients and return dL/dx.
     */
    std::vector<float> backward(const std::vector<float> &dy,
                                const std::vector<float> &x);

    void zeroGrad();
    void step(const AdaDeltaOptions &opt);

    /** Copy parameter values (not optimizer state) from another layer. */
    void copyValuesFrom(const Linear &other);

    /** Raw parameter tensors {weights, bias} for checkpointing. */
    std::array<Param *, 2> params() { return {&w_, &b_}; }
    std::array<const Param *, 2> params() const { return {&w_, &b_}; }

  private:
    int inDim_, outDim_;
    Param w_; ///< row-major (out x in)
    Param b_;
};

/**
 * A ReLU MLP: Linear -> ReLU -> ... -> Linear (no activation on output).
 */
class Mlp
{
  public:
    /** dims = {input, hidden..., output}; weights ~ He initialization. */
    Mlp(const std::vector<int> &dims, Rng &rng);

    int inputDim() const;
    int outputDim() const;

    /** Forward pass returning the output vector. */
    std::vector<float> forward(const std::vector<float> &x) const;

    /**
     * Accumulate gradients for a single (input, action, target) sample:
     * loss = (output[action] - target)^2. Returns the loss.
     */
    double accumulateGrad(const std::vector<float> &x, int action,
                          float target);

    void zeroGrad();
    void step(const AdaDeltaOptions &opt);

    /** Copy parameter values from another network (target-net sync). */
    void copyValuesFrom(const Mlp &other);

    /**
     * Flatten every parameter's values and AdaDelta accumulators
     * (E[g^2], E[dx^2]) into one vector for checkpointing. Gradients are
     * excluded: training rounds start with zeroGrad().
     */
    std::vector<float> checkpointState() const;

    /** Restore a checkpointState() snapshot; false on a shape mismatch. */
    bool restoreCheckpointState(const std::vector<float> &state);

  private:
    std::vector<Linear> layers_;
};

} // namespace ft

#endif // FLEXTENSOR_NN_MLP_H
