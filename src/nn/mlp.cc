#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/rng.h"

namespace ft {

void
Param::resize(std::size_t n)
{
    value.assign(n, 0.0f);
    grad.assign(n, 0.0f);
    accGradSq.assign(n, 0.0f);
    accDeltaSq.assign(n, 0.0f);
}

void
Param::zeroGrad()
{
    std::fill(grad.begin(), grad.end(), 0.0f);
}

void
Param::step(const AdaDeltaOptions &opt)
{
    const float rho = static_cast<float>(opt.rho);
    const float eps = static_cast<float>(opt.eps);
    for (size_t i = 0; i < value.size(); ++i) {
        float g = grad[i];
        accGradSq[i] = rho * accGradSq[i] + (1.0f - rho) * g * g;
        float dx = -std::sqrt(accDeltaSq[i] + eps) /
                   std::sqrt(accGradSq[i] + eps) * g;
        accDeltaSq[i] = rho * accDeltaSq[i] + (1.0f - rho) * dx * dx;
        value[i] += dx;
        grad[i] = 0.0f;
    }
}

Linear::Linear(int in_dim, int out_dim, Rng &rng)
    : inDim_(in_dim), outDim_(out_dim)
{
    FT_ASSERT(in_dim > 0 && out_dim > 0, "Linear dims must be positive");
    w_.resize(static_cast<size_t>(in_dim) * out_dim);
    b_.resize(static_cast<size_t>(out_dim));
    const double scale = std::sqrt(2.0 / in_dim); // He init for ReLU nets
    for (auto &v : w_.value)
        v = static_cast<float>(rng.normal(0.0, scale));
}

std::vector<float>
Linear::forward(const std::vector<float> &x) const
{
    FT_ASSERT(static_cast<int>(x.size()) == inDim_, "Linear input dim");
    std::vector<float> y(outDim_);
    for (int o = 0; o < outDim_; ++o) {
        float acc = b_.value[o];
        const float *row = &w_.value[static_cast<size_t>(o) * inDim_];
        for (int i = 0; i < inDim_; ++i)
            acc += row[i] * x[i];
        y[o] = acc;
    }
    return y;
}

std::vector<float>
Linear::backward(const std::vector<float> &dy, const std::vector<float> &x)
{
    FT_ASSERT(static_cast<int>(dy.size()) == outDim_, "Linear grad dim");
    std::vector<float> dx(inDim_, 0.0f);
    for (int o = 0; o < outDim_; ++o) {
        float g = dy[o];
        if (g == 0.0f)
            continue;
        b_.grad[o] += g;
        float *wrow = &w_.grad[static_cast<size_t>(o) * inDim_];
        const float *vrow = &w_.value[static_cast<size_t>(o) * inDim_];
        for (int i = 0; i < inDim_; ++i) {
            wrow[i] += g * x[i];
            dx[i] += g * vrow[i];
        }
    }
    return dx;
}

void
Linear::zeroGrad()
{
    w_.zeroGrad();
    b_.zeroGrad();
}

void
Linear::step(const AdaDeltaOptions &opt)
{
    w_.step(opt);
    b_.step(opt);
}

void
Linear::copyValuesFrom(const Linear &other)
{
    FT_ASSERT(inDim_ == other.inDim_ && outDim_ == other.outDim_,
              "layer shape mismatch");
    w_.value = other.w_.value;
    b_.value = other.b_.value;
}

Mlp::Mlp(const std::vector<int> &dims, Rng &rng)
{
    FT_ASSERT(dims.size() >= 2, "Mlp needs at least input and output dims");
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
}

int
Mlp::inputDim() const
{
    return layers_.front().inDim();
}

int
Mlp::outputDim() const
{
    return layers_.back().outDim();
}

std::vector<float>
Mlp::forward(const std::vector<float> &x) const
{
    std::vector<float> h = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
        h = layers_[l].forward(h);
        if (l + 1 < layers_.size()) {
            for (auto &v : h)
                v = v > 0.0f ? v : 0.0f;
        }
    }
    return h;
}

double
Mlp::accumulateGrad(const std::vector<float> &x, int action, float target)
{
    FT_ASSERT(action >= 0 && action < outputDim(), "action out of range");
    // Forward with cached activations.
    std::vector<std::vector<float>> acts; // inputs to each layer
    acts.push_back(x);
    for (size_t l = 0; l < layers_.size(); ++l) {
        auto h = layers_[l].forward(acts.back());
        if (l + 1 < layers_.size()) {
            for (auto &v : h)
                v = v > 0.0f ? v : 0.0f;
        }
        acts.push_back(std::move(h));
    }
    const float q = acts.back()[action];
    const float err = q - target;

    // Backward: dL/dq on the chosen output only.
    std::vector<float> dy(outputDim(), 0.0f);
    dy[action] = 2.0f * err;
    for (size_t l = layers_.size(); l-- > 0;) {
        std::vector<float> dx = layers_[l].backward(dy, acts[l]);
        if (l > 0) {
            // Through the ReLU that produced acts[l].
            for (size_t i = 0; i < dx.size(); ++i) {
                if (acts[l][i] <= 0.0f)
                    dx[i] = 0.0f;
            }
        }
        dy = std::move(dx);
    }
    return static_cast<double>(err) * err;
}

void
Mlp::zeroGrad()
{
    for (auto &l : layers_)
        l.zeroGrad();
}

void
Mlp::step(const AdaDeltaOptions &opt)
{
    for (auto &l : layers_)
        l.step(opt);
}

void
Mlp::copyValuesFrom(const Mlp &other)
{
    FT_ASSERT(layers_.size() == other.layers_.size(), "depth mismatch");
    for (size_t l = 0; l < layers_.size(); ++l)
        layers_[l].copyValuesFrom(other.layers_[l]);
}

std::vector<float>
Mlp::checkpointState() const
{
    std::vector<float> out;
    for (const auto &layer : layers_) {
        for (const Param *p : layer.params()) {
            out.insert(out.end(), p->value.begin(), p->value.end());
            out.insert(out.end(), p->accGradSq.begin(), p->accGradSq.end());
            out.insert(out.end(), p->accDeltaSq.begin(),
                       p->accDeltaSq.end());
        }
    }
    return out;
}

bool
Mlp::restoreCheckpointState(const std::vector<float> &state)
{
    size_t need = 0;
    for (const auto &layer : layers_) {
        for (const Param *p : layer.params())
            need += 3 * p->value.size();
    }
    if (state.size() != need)
        return false;
    size_t pos = 0;
    auto take = [&](std::vector<float> &dst) {
        std::copy(state.begin() + pos, state.begin() + pos + dst.size(),
                  dst.begin());
        pos += dst.size();
    };
    for (auto &layer : layers_) {
        for (Param *p : layer.params()) {
            take(p->value);
            take(p->accGradSq);
            take(p->accDeltaSq);
        }
    }
    return true;
}

} // namespace ft
