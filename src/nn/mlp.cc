#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/rng.h"

/**
 * Runtime-dispatched AVX2 clones for the hot lane-parallel kernels.
 * "avx2" deliberately does NOT imply FMA, so the wide clone issues the
 * same separate mul+add (identical IEEE rounding) as the baseline —
 * only 8 lanes at a time instead of 4. On non-ELF/x86 builds the macro
 * is a no-op and the default code path is the only one. Sanitizer
 * builds also disable it: target_clones dispatches through a GNU
 * ifunc, whose resolver runs during relocation before the sanitizer
 * runtime is initialized and crashes the process at startup.
 */
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FT_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FT_SANITIZED 1
#endif
#endif

#if !defined(FT_SANITIZED) && defined(__x86_64__) && defined(__ELF__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FT_LANE_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define FT_LANE_CLONES
#endif

namespace ft {

void
Param::resize(std::size_t n)
{
    value.assign(n, 0.0f);
    grad.assign(n, 0.0f);
    accGradSq.assign(n, 0.0f);
    accDeltaSq.assign(n, 0.0f);
}

void
Param::zeroGrad()
{
    std::fill(grad.begin(), grad.end(), 0.0f);
}

FT_LANE_CLONES
void
Param::step(const AdaDeltaOptions &opt)
{
    const float rho = static_cast<float>(opt.rho);
    const float eps = static_cast<float>(opt.eps);
    for (size_t i = 0; i < value.size(); ++i) {
        float g = grad[i];
        accGradSq[i] = rho * accGradSq[i] + (1.0f - rho) * g * g;
        float dx = -std::sqrt(accDeltaSq[i] + eps) /
                   std::sqrt(accGradSq[i] + eps) * g;
        accDeltaSq[i] = rho * accDeltaSq[i] + (1.0f - rho) * dx * dx;
        value[i] += dx;
        grad[i] = 0.0f;
    }
}

Linear::Linear(int in_dim, int out_dim, Rng &rng)
    : inDim_(in_dim), outDim_(out_dim)
{
    FT_ASSERT(in_dim > 0 && out_dim > 0, "Linear dims must be positive");
    w_.resize(static_cast<size_t>(in_dim) * out_dim);
    b_.resize(static_cast<size_t>(out_dim));
    const double scale = std::sqrt(2.0 / in_dim); // He init for ReLU nets
    for (auto &v : w_.value)
        v = static_cast<float>(rng.normal(0.0, scale));
}

std::vector<float>
Linear::forward(const std::vector<float> &x) const
{
    FT_ASSERT(static_cast<int>(x.size()) == inDim_, "Linear input dim");
    std::vector<float> y(outDim_);
    forwardBatch(x.data(), 1, y.data());
    return y;
}

FT_LANE_CLONES
void
Linear::forwardBatch(const float *x, int m, float *y) const
{
    // One weight row is loaded once and swept across every sample; the
    // per-sample dot product stays i-ascending starting from the bias,
    // so each output value is bit-identical to the scalar forward().
    for (int o = 0; o < outDim_; ++o) {
        const float *row = &w_.value[static_cast<size_t>(o) * inDim_];
        const float bias = b_.value[o];
        for (int s = 0; s < m; ++s) {
            const float *xs = x + static_cast<size_t>(s) * inDim_;
            float acc = bias;
            for (int i = 0; i < inDim_; ++i)
                acc += row[i] * xs[i];
            y[static_cast<size_t>(s) * outDim_ + o] = acc;
        }
    }
}

FT_LANE_CLONES
void
Linear::forwardBatchT(const float *xT, int m, float *yT) const
{
    // Sample lanes are independent, so the s loop has no loop-carried
    // dependency and both operands are contiguous — the compiler turns
    // it into plain SIMD mul+add. Lane s still accumulates bias first,
    // then i ascending: the same operation sequence (and rounding) as
    // forward(sample s).
    if (m == 4) {
        // The inference batch (one row per SA start) is almost always 4
        // samples. With the lane count fixed, the four accumulators live
        // in one SIMD register across the whole i loop — no per-i store
        // or trip-count checks — while each lane still runs the same
        // bias-then-i-ascending sequence.
        for (int o = 0; o < outDim_; ++o) {
            const float bias = b_.value[o];
            float a0 = bias, a1 = bias, a2 = bias, a3 = bias;
            const float *row = &w_.value[static_cast<size_t>(o) * inDim_];
            for (int i = 0; i < inDim_; ++i) {
                const float wi = row[i];
                const float *xi = xT + static_cast<size_t>(i) * 4;
                a0 += wi * xi[0];
                a1 += wi * xi[1];
                a2 += wi * xi[2];
                a3 += wi * xi[3];
            }
            float *yo = yT + static_cast<size_t>(o) * 4;
            yo[0] = a0;
            yo[1] = a1;
            yo[2] = a2;
            yo[3] = a3;
        }
        return;
    }
    for (int o = 0; o < outDim_; ++o) {
        float *yo = yT + static_cast<size_t>(o) * m;
        const float bias = b_.value[o];
        for (int s = 0; s < m; ++s)
            yo[s] = bias;
        const float *row = &w_.value[static_cast<size_t>(o) * inDim_];
        for (int i = 0; i < inDim_; ++i) {
            const float wi = row[i];
            const float *xi = xT + static_cast<size_t>(i) * m;
            for (int s = 0; s < m; ++s)
                yo[s] += wi * xi[s];
        }
    }
}

std::vector<float>
Linear::backward(const std::vector<float> &dy, const std::vector<float> &x)
{
    FT_ASSERT(static_cast<int>(dy.size()) == outDim_, "Linear grad dim");
    FT_ASSERT(static_cast<int>(x.size()) == inDim_, "Linear input dim");
    std::vector<float> dx(inDim_);
    backwardInto(dy.data(), x.data(), dx.data());
    return dx;
}

FT_LANE_CLONES
void
Linear::backwardInto(const float *dy, const float *x, float *dx)
{
    std::fill(dx, dx + inDim_, 0.0f);
    for (int o = 0; o < outDim_; ++o) {
        float g = dy[o];
        if (g == 0.0f)
            continue;
        b_.grad[o] += g;
        float *wrow = &w_.grad[static_cast<size_t>(o) * inDim_];
        const float *vrow = &w_.value[static_cast<size_t>(o) * inDim_];
        for (int i = 0; i < inDim_; ++i) {
            wrow[i] += g * x[i];
            dx[i] += g * vrow[i];
        }
    }
}

void
Linear::zeroGrad()
{
    w_.zeroGrad();
    b_.zeroGrad();
}

void
Linear::step(const AdaDeltaOptions &opt)
{
    w_.step(opt);
    b_.step(opt);
}

void
Linear::copyValuesFrom(const Linear &other)
{
    FT_ASSERT(inDim_ == other.inDim_ && outDim_ == other.outDim_,
              "layer shape mismatch");
    w_.value = other.w_.value;
    b_.value = other.b_.value;
}

Mlp::Mlp(const std::vector<int> &dims, Rng &rng)
{
    FT_ASSERT(dims.size() >= 2, "Mlp needs at least input and output dims");
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
}

int
Mlp::inputDim() const
{
    return layers_.front().inDim();
}

int
Mlp::outputDim() const
{
    return layers_.back().outDim();
}

std::vector<float>
Mlp::forward(const std::vector<float> &x) const
{
    FT_ASSERT(static_cast<int>(x.size()) == inputDim(), "Mlp input dim");
    MlpScratch scratch;
    const float *y = forwardBatch(x.data(), 1, scratch);
    return std::vector<float>(y, y + outputDim());
}

const float *
Mlp::forwardBatch(const float *x, int m, MlpScratch &scratch) const
{
    if (m <= 1) {
        const float *in = x;
        for (size_t l = 0; l < layers_.size(); ++l) {
            // Ping-pong between the two scratch planes so layer l reads
            // the plane layer l-1 wrote.
            std::vector<float> &out = (l % 2 == 0) ? scratch.a : scratch.b;
            out.resize(static_cast<size_t>(m) * layers_[l].outDim());
            layers_[l].forwardBatch(in, m, out.data());
            if (l + 1 < layers_.size()) {
                for (auto &v : out)
                    v = v > 0.0f ? v : 0.0f;
            }
            in = out.data();
        }
        return in;
    }
    // Batched: run the layers on transposed planes so every inner loop
    // sweeps the m sample lanes, then transpose the last plane back to
    // the row-major layout callers expect. The transposes are O(m*dim)
    // copies — noise next to the O(m*in*out) layer math they unlock.
    scratch.xt.resize(static_cast<size_t>(m) * inputDim());
    for (int s = 0; s < m; ++s) {
        for (int i = 0; i < inputDim(); ++i)
            scratch.xt[static_cast<size_t>(i) * m + s] =
                x[static_cast<size_t>(s) * inputDim() + i];
    }
    const float *in = scratch.xt.data();
    for (size_t l = 0; l < layers_.size(); ++l) {
        std::vector<float> &out = (l % 2 == 0) ? scratch.a : scratch.b;
        out.resize(static_cast<size_t>(m) * layers_[l].outDim());
        layers_[l].forwardBatchT(in, m, out.data());
        if (l + 1 < layers_.size()) {
            for (auto &v : out)
                v = v > 0.0f ? v : 0.0f;
        }
        in = out.data();
    }
    const int od = outputDim();
    scratch.out.resize(static_cast<size_t>(m) * od);
    for (int s = 0; s < m; ++s) {
        for (int o = 0; o < od; ++o)
            scratch.out[static_cast<size_t>(s) * od + o] =
                in[static_cast<size_t>(o) * m + s];
    }
    return scratch.out.data();
}

double
Mlp::accumulateGrad(const std::vector<float> &x, int action, float target)
{
    MlpScratch scratch;
    return accumulateGrad(x, action, target, scratch);
}

double
Mlp::accumulateGrad(const std::vector<float> &x, int action, float target,
                    MlpScratch &scratch)
{
    FT_ASSERT(action >= 0 && action < outputDim(), "action out of range");
    // Forward with cached activations (inputs to each layer).
    auto &acts = scratch.acts;
    acts.resize(layers_.size() + 1);
    acts[0] = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
        acts[l + 1].resize(layers_[l].outDim());
        layers_[l].forwardBatch(acts[l].data(), 1, acts[l + 1].data());
        if (l + 1 < layers_.size()) {
            for (auto &v : acts[l + 1])
                v = v > 0.0f ? v : 0.0f;
        }
    }
    const float q = acts.back()[action];
    const float err = q - target;

    // Backward: dL/dq on the chosen output only.
    auto &dy = scratch.dy;
    auto &dx = scratch.dx;
    dy.assign(outputDim(), 0.0f);
    dy[action] = 2.0f * err;
    for (size_t l = layers_.size(); l-- > 0;) {
        dx.resize(layers_[l].inDim());
        layers_[l].backwardInto(dy.data(), acts[l].data(), dx.data());
        if (l > 0) {
            // Through the ReLU that produced acts[l].
            for (size_t i = 0; i < dx.size(); ++i) {
                if (acts[l][i] <= 0.0f)
                    dx[i] = 0.0f;
            }
        }
        std::swap(dy, dx);
    }
    return static_cast<double>(err) * err;
}

double
Mlp::accumulateGradBatch(const float *x, int m, const int *actions,
                         const float *targets, MlpScratch &scratch)
{
    const size_t num_layers = layers_.size();
    // Forward once for the whole batch, keeping every layer's input as
    // a transposed plane (dim x m); acts[L] is the output plane.
    auto &acts = scratch.acts;
    acts.resize(num_layers + 1);
    acts[0].resize(static_cast<size_t>(m) * inputDim());
    for (int s = 0; s < m; ++s) {
        for (int i = 0; i < inputDim(); ++i)
            acts[0][static_cast<size_t>(i) * m + s] =
                x[static_cast<size_t>(s) * inputDim() + i];
    }
    for (size_t l = 0; l < num_layers; ++l) {
        acts[l + 1].resize(static_cast<size_t>(m) * layers_[l].outDim());
        layers_[l].forwardBatchT(acts[l].data(), m, acts[l + 1].data());
        if (l + 1 < num_layers) {
            for (auto &v : acts[l + 1])
                v = v > 0.0f ? v : 0.0f;
        }
    }

    // Backward sample by sample, in index order: gradients land in the
    // parameter buffers in the same order as m scalar accumulateGrad()
    // calls, and each sample's activations (column s of the planes) are
    // the scalar pass's values bit for bit.
    double loss = 0.0;
    auto &dy = scratch.dy;
    auto &dx = scratch.dx;
    auto &col = scratch.col;
    for (int s = 0; s < m; ++s) {
        FT_ASSERT(actions[s] >= 0 && actions[s] < outputDim(),
                  "action out of range");
        const float q = acts[num_layers][static_cast<size_t>(actions[s]) * m + s];
        const float err = q - targets[s];
        loss += static_cast<double>(err) * err;
        dy.assign(outputDim(), 0.0f);
        dy[actions[s]] = 2.0f * err;
        for (size_t l = num_layers; l-- > 0;) {
            const int in_dim = layers_[l].inDim();
            col.resize(in_dim);
            for (int i = 0; i < in_dim; ++i)
                col[i] = acts[l][static_cast<size_t>(i) * m + s];
            dx.resize(in_dim);
            layers_[l].backwardInto(dy.data(), col.data(), dx.data());
            if (l > 0) {
                // Through the ReLU that produced this layer's input.
                for (int i = 0; i < in_dim; ++i) {
                    if (col[i] <= 0.0f)
                        dx[i] = 0.0f;
                }
            }
            std::swap(dy, dx);
        }
    }
    return loss;
}

void
Mlp::zeroGrad()
{
    for (auto &l : layers_)
        l.zeroGrad();
}

void
Mlp::step(const AdaDeltaOptions &opt)
{
    for (auto &l : layers_)
        l.step(opt);
}

void
Mlp::copyValuesFrom(const Mlp &other)
{
    FT_ASSERT(layers_.size() == other.layers_.size(), "depth mismatch");
    for (size_t l = 0; l < layers_.size(); ++l)
        layers_[l].copyValuesFrom(other.layers_[l]);
}

std::vector<float>
Mlp::checkpointState() const
{
    std::vector<float> out;
    for (const auto &layer : layers_) {
        for (const Param *p : layer.params()) {
            out.insert(out.end(), p->value.begin(), p->value.end());
            out.insert(out.end(), p->accGradSq.begin(), p->accGradSq.end());
            out.insert(out.end(), p->accDeltaSq.begin(),
                       p->accDeltaSq.end());
        }
    }
    return out;
}

bool
Mlp::restoreCheckpointState(const std::vector<float> &state)
{
    size_t need = 0;
    for (const auto &layer : layers_) {
        for (const Param *p : layer.params())
            need += 3 * p->value.size();
    }
    if (state.size() != need)
        return false;
    size_t pos = 0;
    auto take = [&](std::vector<float> &dst) {
        std::copy(state.begin() + pos, state.begin() + pos + dst.size(),
                  dst.begin());
        pos += dst.size();
    };
    for (auto &layer : layers_) {
        for (Param *p : layer.params()) {
            take(p->value);
            take(p->accGradSq);
            take(p->accDeltaSq);
        }
    }
    return true;
}

} // namespace ft
