#include "graph/schedule_dag.h"

#include <algorithm>

#include "graph/lower.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {
namespace graph {

DagTuneReport
tuneDag(const ComputeDag &dag, const Target &target,
        const TuneOptions &options, const PartitionOptions &partitionOptions)
{
    const ObsContext &obs = options.explore.obs;
    DagTuneReport rep;
    rep.dagName = dag.name;
    rep.device = target.deviceName();
    rep.fingerprint = dag.fingerprint();

    if (obs.trace) {
        obs.trace->meta(
            "graph_run",
            {tstr("dag", dag.name), tstr("device", rep.device),
             tstr("method", methodName(options.method)),
             tint("nodes", dag.numComputeNodes()),
             tint("fingerprint", static_cast<int64_t>(rep.fingerprint))});
        obs.trace->begin("graph.partition", 0.0);
    }
    rep.partition = partitionDag(dag, target, partitionOptions);
    rep.trafficBytes = rep.partition.totalTrafficBytes;
    rep.ephemeralBytes = rep.partition.ephemeralBytes;
    if (obs.trace) {
        obs.trace->end(
            "graph.partition", 0.0,
            {tint("groups",
                  static_cast<int64_t>(rep.partition.groups.size())),
             tint("traffic_bytes", rep.trafficBytes),
             tint("ephemeral_bytes", rep.ephemeralBytes)});
    }
    if (options.certify) {
        auto cert = std::make_shared<verify::PartitionCertificate>(
            verify::certifyPartition(dag, rep.partition, target));
        if (obs.trace) {
            obs.trace->point(
                "certificate", 0.0,
                {tstr("op", dag.name),
                 tstr("verdict", verify::verdictName(cert->verdict)),
                 tint("obligations",
                      static_cast<int64_t>(cert->groups.size())),
                 tint("refuted",
                      cert->groupCount(verify::Verdict::Refuted)),
                 tint("unknown",
                      cert->groupCount(verify::Verdict::Unknown))});
        }
        rep.certificate = std::move(cert);
    }
    if (obs.metrics)
        obs.metrics->counter("graph.runs").add();

    double sim = 0.0;
    for (const FusionGroup &group : rep.partition.groups) {
        SubgraphReport sub;
        sub.members = group.members;
        sub.anchor = group.anchor(dag);
        sub.cost = group.cost;
        sub.name = dag.nodes[sub.anchor >= 0 ? sub.anchor
                                             : group.members.front()]
                       .name;
        if (obs.trace) {
            obs.trace->begin(
                "graph.subgraph", sim,
                {tstr("group", sub.name),
                 tint("members",
                      static_cast<int64_t>(group.members.size()))});
        }

        if (sub.anchor >= 0) {
            LoweredAnchor lowered = lowerAnchor(dag, sub.anchor);
            sub.report = tune(lowered.output, target, options);
            sub.tuned = true;
            // The explorers model the anchor's compute; the roofline
            // owns the group's memory side. Charge the binding one.
            sub.seconds = std::max(sub.report.kernelSeconds,
                                   sub.cost.memSeconds);
            rep.simExploreSeconds += sub.report.simExploreSeconds;
            sim += sub.report.simExploreSeconds;
        } else {
            sub.seconds = sub.cost.seconds;
        }
        rep.totalSeconds += sub.seconds;

        if (obs.trace) {
            obs.trace->end(
                "graph.subgraph", sim,
                {tbool("tuned", sub.tuned),
                 treal("seconds", sub.seconds),
                 tint("traffic_bytes",
                      sub.cost.memInBytes + sub.cost.memOutBytes),
                 tint("ephemeral_bytes", sub.cost.ephemeralBytes)});
        }
        rep.groups.push_back(std::move(sub));
    }

    inform("graph-tuned ", dag.name, " on ", rep.device, ": ",
           rep.partition.groups.size(), " groups, ",
           rep.ephemeralBytes, " ephemeral bytes");
    return rep;
}

} // namespace graph
} // namespace ft
