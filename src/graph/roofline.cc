#include "graph/roofline.h"

#include <algorithm>

#include "support/logging.h"

namespace ft {
namespace graph {

namespace {

/** Modeled tier-2 bandwidth advantage over DRAM. */
constexpr double kOnChipBwMultiple = 8.0;

} // namespace

TierSpec
tierSpecFor(const Target &target)
{
    TierSpec t;
    switch (target.kind) {
      case DeviceKind::Gpu:
        t.tier1Bytes = target.gpu->sharedMemPerSm;
        t.tier2Bytes = target.gpu->l2Bytes;
        t.dramBwGBs = target.gpu->memBwGBs;
        t.peakGflops = target.gpu->peakGflops();
        t.launchSeconds = target.gpu->launchOverheadUs * 1e-6;
        break;
      case DeviceKind::Cpu:
        t.tier1Bytes = target.cpu->l2Bytes;
        t.tier2Bytes = target.cpu->l3Bytes;
        t.dramBwGBs = target.cpu->memBwGBs;
        t.peakGflops = target.cpu->peakGflops();
        t.launchSeconds = target.cpu->parallelOverheadUs * 1e-6;
        break;
      case DeviceKind::Fpga:
        // BRAM is both the fast and the capacity tier on the paper's
        // three-stage pipeline; splitting it 1:4 mirrors the row-buffer
        // vs. double-buffer budget of the FPGA generator.
        t.tier1Bytes = target.fpga->bramBytes / 4;
        t.tier2Bytes = target.fpga->bramBytes;
        t.dramBwGBs = target.fpga->ddrBwGBs;
        t.peakGflops = target.fpga->peakGflops();
        t.launchSeconds = 0.0;
        break;
    }
    t.onChipBwGBs = t.dramBwGBs * kOnChipBwMultiple;
    return t;
}

double
nodeFlops(const DagNode &node)
{
    switch (node.kind) {
      case NodeKind::Input:
        return 0.0;
      case NodeKind::Conv: {
        // Per output element: C*R*S multiply-accumulates.
        // inputs[1] is the weight (K, C, R, S).
        return static_cast<double>(node.numel()) * 2.0;
        // Caller note: conv needs the reduction extent; handled below.
      }
      case NodeKind::Dense:
        return static_cast<double>(node.numel()) * 2.0;
      case NodeKind::Pool:
        // k*k - 1 comparisons per output element.
        return static_cast<double>(node.numel()) *
               static_cast<double>(node.kernel * node.kernel - 1);
      case NodeKind::Bias:
      case NodeKind::Relu:
      case NodeKind::Add:
        return static_cast<double>(node.numel());
    }
    return 0.0;
}

namespace {

/** Full FLOPs of a node given its producers (conv/dense need the
 *  reduction extent, which lives on the weight operand). */
double
nodeFlopsFull(const ComputeDag &dag, int id)
{
    const DagNode &n = dag.nodes[id];
    switch (n.kind) {
      case NodeKind::Conv: {
        const DagNode &w = dag.nodes[n.inputs[1]];
        double red = static_cast<double>(w.shape[1] * w.shape[2] *
                                         w.shape[3]);
        return static_cast<double>(n.numel()) * red * 2.0;
      }
      case NodeKind::Dense: {
        const DagNode &w = dag.nodes[n.inputs[1]];
        return static_cast<double>(n.numel()) *
               static_cast<double>(w.shape[1]) * 2.0;
      }
      default:
        return nodeFlops(n);
    }
}

} // namespace

int64_t
rowSlabBytes(const DagNode &node)
{
    if (node.shape.size() == 4)
        return node.shape[0] * node.shape[1] * node.shape[3] * 4;
    // 2D (and 1D vectors): one row of dim 0.
    int64_t per_row = 1;
    for (size_t d = 1; d < node.shape.size(); ++d)
        per_row *= node.shape[d];
    return per_row * 4;
}

int64_t
numRowSlabs(const DagNode &node)
{
    return node.shape.size() == 4 ? node.shape[2] : node.shape[0];
}

int64_t
consumerWindowRows(const DagNode &consumer)
{
    return consumer.kind == NodeKind::Pool ? consumer.kernel : 1;
}

GroupCost
rooflineGroupCost(const ComputeDag &dag, const std::vector<int> &members,
                  const std::vector<bool> &ephemeral, const Target &target)
{
    FT_ASSERT(members.size() == ephemeral.size(),
              "ephemeral flags must parallel members");
    GroupCost cost;
    const TierSpec tier = tierSpecFor(target);
    const auto consumers = dag.consumers();

    auto inGroup = [&](int id) {
        return std::binary_search(members.begin(), members.end(), id);
    };

    // External reads: every distinct producer outside the group that a
    // member consumes, read once (on-chip reuse inside the group).
    std::vector<int> external;
    for (size_t m = 0; m < members.size(); ++m) {
        const DagNode &n = dag.nodes[members[m]];
        cost.flops += nodeFlopsFull(dag, members[m]);
        for (int in : n.inputs) {
            if (!inGroup(in) &&
                std::find(external.begin(), external.end(), in) ==
                    external.end())
                external.push_back(in);
        }
        if (ephemeral[m]) {
            cost.ephemeralBytes += n.bytes();
        } else {
            cost.memOutBytes += n.bytes();
        }
    }
    for (int in : external)
        cost.memInBytes += dag.nodes[in].bytes();

    // Streaming working set: per intra-group edge, the consumer-window
    // rows of the producer's slab — exactly the ring bytes the fused
    // executor retains. External operands are tiled by the anchor's
    // schedule and do not constrain fusion.
    for (size_t m = 0; m < members.size(); ++m) {
        const DagNode &producer = dag.nodes[members[m]];
        int64_t window = 0;
        for (int c : consumers[members[m]])
            if (inGroup(c))
                window = std::max(window,
                                  consumerWindowRows(dag.nodes[c]));
        if (window > 0)
            cost.workingSetBytes +=
                std::min(window, numRowSlabs(producer)) *
                rowSlabBytes(producer);
    }

    cost.feasible = cost.workingSetBytes <= tier.tier2Bytes;
    // Ephemeral traffic: free within tier 1, charged at on-chip
    // bandwidth when the working set only fits in tier 2.
    if (cost.workingSetBytes > tier.tier1Bytes)
        cost.spillBytes = 2 * cost.ephemeralBytes;

    cost.computeSeconds = cost.flops / (tier.peakGflops * 1e9);
    cost.memSeconds =
        static_cast<double>(cost.memInBytes + cost.memOutBytes) /
            (tier.dramBwGBs * 1e9) +
        static_cast<double>(cost.spillBytes) / (tier.onChipBwGBs * 1e9);
    cost.seconds = tier.launchSeconds +
                   std::max(cost.computeSeconds, cost.memSeconds);
    return cost;
}

} // namespace graph
} // namespace ft
