/**
 * @file
 * Three-tier roofline cost model for fusion groups.
 *
 * A fused group is scored as
 *
 *     seconds = launch + max(compute, dram_traffic/bw + spill_traffic/bw2)
 *
 * under a working-set capacity constraint, with three memory tiers taken
 * from the Target device model:
 *
 *   tier 1 — registers / shared memory / per-core cache: when the
 *            group's streaming working set fits here, ephemeral
 *            intermediates are free;
 *   tier 2 — chip-level cache (GPU L2, CPU L3, FPGA BRAM): a working
 *            set that only fits here pays for ephemeral traffic at the
 *            (faster) on-chip bandwidth;
 *   tier 3 — DRAM: external group inputs and non-ephemeral outputs
 *            always pay a round trip here. A working set that exceeds
 *            tier 2 makes the group infeasible — the partitioner must
 *            split it.
 *
 * The working set is the streaming model's: producing one output row
 * slab requires retaining, per intra-group edge, a window of producer
 * rows (1 for elementwise consumers, `kernel` for pooling consumers).
 * External operands are tiled by the anchor's schedule and do not count
 * against the fusion working set. The fused executor
 * (graph/fused_exec.h) allocates exactly these retention windows as
 * ring buffers and enforces the same bound at run time, so the model
 * and the execution semantics cannot drift.
 */
#ifndef FLEXTENSOR_GRAPH_ROOFLINE_H
#define FLEXTENSOR_GRAPH_ROOFLINE_H

#include <vector>

#include "graph/dag.h"
#include "sim/hw_spec.h"

namespace ft {
namespace graph {

/** The three memory tiers + compute roof of one device. */
struct TierSpec
{
    int64_t tier1Bytes = 0;  ///< registers/shared/per-core cache
    int64_t tier2Bytes = 0;  ///< chip-level cache (L2/L3/BRAM)
    double dramBwGBs = 1.0;  ///< tier-3 bandwidth
    double onChipBwGBs = 1.0;///< tier-2 bandwidth (modeled multiple of DRAM)
    double peakGflops = 1.0;
    double launchSeconds = 0.0; ///< per-group dispatch overhead
};

/** Device-model tiers for a tuning target. */
TierSpec tierSpecFor(const Target &target);

/** Roofline score of one fusion group (see file comment). */
struct GroupCost
{
    double flops = 0.0;
    int64_t memInBytes = 0;     ///< external reads (tier 3)
    int64_t memOutBytes = 0;    ///< non-ephemeral writes (tier 3)
    int64_t ephemeralBytes = 0; ///< intermediate bytes kept off DRAM
    int64_t spillBytes = 0;     ///< ephemeral traffic charged to tier 2
    int64_t workingSetBytes = 0;///< peak streaming scratch
    double computeSeconds = 0.0;
    double memSeconds = 0.0;
    double seconds = 0.0;       ///< launch + max(compute, mem)
    bool feasible = true;       ///< working set fits within tier 2
};

/** FLOPs of a single DAG node. */
double nodeFlops(const DagNode &node);

/** Bytes of one output-row slab of a node (streaming granularity). */
int64_t rowSlabBytes(const DagNode &node);

/** Number of row slabs of a node (H for NCHW, dim 0 for 2D). */
int64_t numRowSlabs(const DagNode &node);

/**
 * Rows of `producer` a consumer must retain to emit one of its own
 * output rows: 1 for elementwise, `kernel` for pooling.
 */
int64_t consumerWindowRows(const DagNode &consumer);

/**
 * Score the group formed by `members` (ascending node ids). `ephemeral`
 * flags (parallel to members) mark outputs that stay on chip.
 */
GroupCost rooflineGroupCost(const ComputeDag &dag,
                            const std::vector<int> &members,
                            const std::vector<bool> &ephemeral,
                            const Target &target);

} // namespace graph
} // namespace ft

#endif // FLEXTENSOR_GRAPH_ROOFLINE_H
