#include "graph/dag.h"

#include <sstream>

#include "support/logging.h"

namespace ft {
namespace graph {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Input: return "input";
      case NodeKind::Conv: return "conv";
      case NodeKind::Dense: return "dense";
      case NodeKind::Pool: return "pool";
      case NodeKind::Bias: return "bias";
      case NodeKind::Relu: return "relu";
      case NodeKind::Add: return "add";
    }
    return "?";
}

int64_t
DagNode::numel() const
{
    int64_t n = 1;
    for (int64_t d : shape)
        n *= d;
    return n;
}

std::vector<std::vector<int>>
ComputeDag::consumers() const
{
    std::vector<std::vector<int>> out(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i)
        for (int in : nodes[i].inputs)
            out[in].push_back(static_cast<int>(i));
    return out;
}

bool
ComputeDag::isOutput(int id) const
{
    for (const auto &n : nodes)
        for (int in : n.inputs)
            if (in == id)
                return false;
    return true;
}

int
ComputeDag::numComputeNodes() const
{
    int n = 0;
    for (const auto &node : nodes)
        n += node.kind != NodeKind::Input;
    return n;
}

namespace {

int
expectedArity(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Input: return 0;
      case NodeKind::Conv: return 2; // data, weight
      case NodeKind::Dense: return 2;
      case NodeKind::Pool: return 1;
      case NodeKind::Bias: return 2; // data, vector
      case NodeKind::Relu: return 1;
      case NodeKind::Add: return 2;
    }
    return -1;
}

bool
fail(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace

bool
ComputeDag::validate(std::string *why) const
{
    for (size_t i = 0; i < nodes.size(); ++i) {
        const DagNode &n = nodes[i];
        const std::string at = "node " + std::to_string(i) + " (" +
                               n.name + "): ";
        if (static_cast<int>(n.inputs.size()) != expectedArity(n.kind))
            return fail(why, at + "bad operand count");
        for (int in : n.inputs) {
            if (in < 0 || in >= static_cast<int>(i))
                return fail(why, at + "input " + std::to_string(in) +
                                     " breaks topological order");
        }
        if (n.shape.empty())
            return fail(why, at + "missing shape");
        for (int64_t d : n.shape)
            if (d < 1)
                return fail(why, at + "non-positive extent");

        switch (n.kind) {
          case NodeKind::Input:
            break;
          case NodeKind::Conv: {
            const DagNode &data = nodes[n.inputs[0]];
            const DagNode &weight = nodes[n.inputs[1]];
            if (data.shape.size() != 4)
                return fail(why, at + "conv data must be NCHW");
            if (weight.shape.size() != 4 ||
                weight.shape[0] != n.outChannels ||
                weight.shape[1] != data.shape[1] ||
                weight.shape[2] != n.kernel || weight.shape[3] != n.kernel)
                return fail(why, at + "conv weight shape mismatch");
            int64_t oh = (data.shape[2] + 2 * n.padding - n.kernel) /
                             n.stride + 1;
            int64_t ow = (data.shape[3] + 2 * n.padding - n.kernel) /
                             n.stride + 1;
            if (oh < 1 || ow < 1)
                return fail(why, at + "conv output would be empty");
            std::vector<int64_t> want = {data.shape[0], n.outChannels, oh,
                                         ow};
            if (n.shape != want)
                return fail(why, at + "conv output shape mismatch");
            break;
          }
          case NodeKind::Dense: {
            const DagNode &data = nodes[n.inputs[0]];
            const DagNode &weight = nodes[n.inputs[1]];
            int64_t features = 1;
            for (size_t d = 1; d < data.shape.size(); ++d)
                features *= data.shape[d];
            if (weight.shape.size() != 2 || weight.shape[0] != n.units ||
                weight.shape[1] != features)
                return fail(why, at + "dense weight shape mismatch");
            std::vector<int64_t> want = {data.shape[0], n.units};
            if (n.shape != want)
                return fail(why, at + "dense output shape mismatch");
            break;
          }
          case NodeKind::Pool: {
            const DagNode &data = nodes[n.inputs[0]];
            if (data.shape.size() != 4)
                return fail(why, at + "pool data must be NCHW");
            if (data.shape[2] < n.kernel || data.shape[3] < n.kernel)
                return fail(why, at + "pool window larger than input");
            int64_t oh = (data.shape[2] - n.kernel) / n.stride + 1;
            int64_t ow = (data.shape[3] - n.kernel) / n.stride + 1;
            std::vector<int64_t> want = {data.shape[0], data.shape[1], oh,
                                         ow};
            if (n.shape != want)
                return fail(why, at + "pool output shape mismatch");
            break;
          }
          case NodeKind::Bias: {
            const DagNode &data = nodes[n.inputs[0]];
            const DagNode &vec = nodes[n.inputs[1]];
            if (data.shape.size() < 2)
                return fail(why, at + "bias data must be NC...");
            if (vec.shape.size() != 1 || vec.shape[0] != data.shape[1])
                return fail(why, at + "bias vector shape mismatch");
            if (n.shape != data.shape)
                return fail(why, at + "bias output shape mismatch");
            break;
          }
          case NodeKind::Relu:
            if (n.shape != nodes[n.inputs[0]].shape)
                return fail(why, at + "relu output shape mismatch");
            break;
          case NodeKind::Add:
            if (nodes[n.inputs[0]].shape != nodes[n.inputs[1]].shape)
                return fail(why, at + "add operand shapes differ");
            if (n.shape != nodes[n.inputs[0]].shape)
                return fail(why, at + "add output shape mismatch");
            break;
        }
    }
    return true;
}

std::string
ComputeDag::spec() const
{
    std::ostringstream os;
    os << "dag " << name << " nodes=" << nodes.size() << "\n";
    for (size_t i = 0; i < nodes.size(); ++i) {
        const DagNode &n = nodes[i];
        os << i << " " << nodeKindName(n.kind) << " " << n.name << " in=[";
        for (size_t j = 0; j < n.inputs.size(); ++j)
            os << (j ? "," : "") << n.inputs[j];
        os << "] shape=[";
        for (size_t j = 0; j < n.shape.size(); ++j)
            os << (j ? "," : "") << n.shape[j];
        os << "]";
        if (n.kind == NodeKind::Conv)
            os << " k=" << n.kernel << " s=" << n.stride
               << " p=" << n.padding << " oc=" << n.outChannels;
        else if (n.kind == NodeKind::Pool)
            os << " k=" << n.kernel << " s=" << n.stride;
        else if (n.kind == NodeKind::Dense)
            os << " units=" << n.units;
        os << "\n";
    }
    return os.str();
}

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
ComputeDag::fingerprint() const
{
    return fnv1a64(spec());
}

ComputeDag
dagFromNetwork(const Network &net)
{
    ComputeDag dag;
    dag.name = net.name;
    FT_ASSERT(net.inputShape.size() == 4, "network input must be NCHW");

    auto push = [&](DagNode n) {
        dag.nodes.push_back(std::move(n));
        return static_cast<int>(dag.nodes.size()) - 1;
    };
    auto input = [&](std::string name, std::vector<int64_t> shape) {
        DagNode n;
        n.kind = NodeKind::Input;
        n.name = std::move(name);
        n.shape = std::move(shape);
        return push(std::move(n));
    };

    int cur = input("data", net.inputShape);
    for (const auto &l : net.layers) {
        // Copy, not a reference: pushing weight/bias inputs below can
        // reallocate dag.nodes and would leave a reference dangling.
        const std::vector<int64_t> in_shape = dag.nodes[cur].shape;
        switch (l.kind) {
          case LayerSpec::Kind::Conv: {
            int w = input(l.name + ".w",
                          {l.outChannels, in_shape[1], l.kernel, l.kernel});
            DagNode conv;
            conv.kind = NodeKind::Conv;
            conv.name = l.name;
            conv.inputs = {cur, w};
            conv.outChannels = l.outChannels;
            conv.kernel = l.kernel;
            conv.stride = l.stride;
            conv.padding = l.padding;
            int64_t oh =
                (in_shape[2] + 2 * l.padding - l.kernel) / l.stride + 1;
            int64_t ow =
                (in_shape[3] + 2 * l.padding - l.kernel) / l.stride + 1;
            conv.shape = {in_shape[0], l.outChannels, oh, ow};
            cur = push(std::move(conv));
            if (l.bias) {
                int b = input(l.name + ".b", {l.outChannels});
                DagNode bias;
                bias.kind = NodeKind::Bias;
                bias.name = l.name + ".bias";
                bias.inputs = {cur, b};
                bias.shape = dag.nodes[cur].shape;
                cur = push(std::move(bias));
            }
            if (l.relu) {
                DagNode relu;
                relu.kind = NodeKind::Relu;
                relu.name = l.name + ".relu";
                relu.inputs = {cur};
                relu.shape = dag.nodes[cur].shape;
                cur = push(std::move(relu));
            }
            break;
          }
          case LayerSpec::Kind::MaxPool: {
            DagNode pool;
            pool.kind = NodeKind::Pool;
            pool.name = l.name;
            pool.inputs = {cur};
            pool.kernel = l.kernel;
            pool.stride = l.stride;
            int64_t oh = (in_shape[2] - l.kernel) / l.stride + 1;
            int64_t ow = (in_shape[3] - l.kernel) / l.stride + 1;
            pool.shape = {in_shape[0], in_shape[1], oh, ow};
            cur = push(std::move(pool));
            break;
          }
          case LayerSpec::Kind::Dense: {
            int64_t features = 1;
            for (size_t d = 1; d < in_shape.size(); ++d)
                features *= in_shape[d];
            int w = input(l.name + ".w", {l.units, features});
            DagNode dense;
            dense.kind = NodeKind::Dense;
            dense.name = l.name;
            dense.inputs = {cur, w};
            dense.units = l.units;
            dense.shape = {in_shape[0], l.units};
            cur = push(std::move(dense));
            if (l.bias) {
                int b = input(l.name + ".b", {l.units});
                DagNode bias;
                bias.kind = NodeKind::Bias;
                bias.name = l.name + ".bias";
                bias.inputs = {cur, b};
                bias.shape = dag.nodes[cur].shape;
                cur = push(std::move(bias));
            }
            if (l.relu) {
                DagNode relu;
                relu.kind = NodeKind::Relu;
                relu.name = l.name + ".relu";
                relu.inputs = {cur};
                relu.shape = dag.nodes[cur].shape;
                cur = push(std::move(relu));
            }
            break;
          }
        }
    }

    std::string why;
    FT_ASSERT(dag.validate(&why), "dagFromNetwork produced invalid DAG: ",
              why);
    return dag;
}

} // namespace graph
} // namespace ft
