#include "graph/fused_exec.h"

#include <algorithm>

#include "support/logging.h"
#include "support/rng.h"

namespace ft {
namespace graph {

DagTensor::DagTensor(const std::vector<int64_t> &s) : shape(s)
{
    int64_t n = 1;
    for (int64_t d : s)
        n *= d;
    data.assign(static_cast<size_t>(n), 0.0f);
}

DagBuffers
makeDagInputs(const ComputeDag &dag, Rng &rng)
{
    DagBuffers buffers;
    for (size_t i = 0; i < dag.nodes.size(); ++i) {
        if (dag.nodes[i].kind != NodeKind::Input)
            continue;
        DagTensor t(dag.nodes[i].shape);
        for (float &v : t.data)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        buffers.emplace(static_cast<int>(i), std::move(t));
    }
    return buffers;
}

namespace {

/**
 * The per-element arithmetic, shared verbatim by the unfused reference
 * and the fused streaming path (the reader is the only thing that
 * differs), so any fused-vs-unfused difference is a streaming bug, not
 * a kernel divergence. Orders mirror ops/: conv accumulates over
 * (c, r, s), pooling folds r-outer/s-inner.
 */
template <class Rd>
float
convElem(const ComputeDag &dag, const DagNode &node, Rd &read, int64_t n,
         int64_t k, int64_t oh, int64_t ow)
{
    const int data = node.inputs[0], weight = node.inputs[1];
    const DagNode &d = dag.nodes[data];
    const int64_t C = d.shape[1], H = d.shape[2], W = d.shape[3];
    float acc = 0.0f;
    for (int64_t c = 0; c < C; ++c)
        for (int64_t r = 0; r < node.kernel; ++r)
            for (int64_t s = 0; s < node.kernel; ++s) {
                const int64_t ih = oh * node.stride - node.padding + r;
                const int64_t iw = ow * node.stride - node.padding + s;
                if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                    continue; // zero-padded tap contributes nothing
                acc += read.at4(data, n, c, ih, iw) *
                       read.at4(weight, k, c, r, s);
            }
    return acc;
}

template <class Rd>
float
denseElem(const ComputeDag &dag, const DagNode &node, Rd &read, int64_t n,
          int64_t j)
{
    const int data = node.inputs[0], weight = node.inputs[1];
    const int64_t features = dag.nodes[weight].shape[1];
    float acc = 0.0f;
    for (int64_t k = 0; k < features; ++k)
        acc += read.flat(data, n * features + k) *
               read.at2(weight, j, k);
    return acc;
}

template <class Rd>
float
poolElem(const ComputeDag &dag, const DagNode &node, Rd &read, int64_t n,
         int64_t c, int64_t oh, int64_t ow)
{
    const int data = node.inputs[0];
    (void)dag;
    float best = 0.0f;
    bool first = true;
    for (int64_t r = 0; r < node.kernel; ++r)
        for (int64_t s = 0; s < node.kernel; ++s) {
            const float v = read.at4(data, n, c, oh * node.stride + r,
                                     ow * node.stride + s);
            best = first ? v : std::max(best, v);
            first = false;
        }
    return best;
}

/** Reader over fully materialized buffers (the unfused reference). */
struct FullReader
{
    const ComputeDag &dag;
    const DagBuffers &buffers;

    float
    at4(int id, int64_t n, int64_t c, int64_t h, int64_t w) const
    {
        const DagTensor &t = buffers.at(id);
        return t.data[((n * t.shape[1] + c) * t.shape[2] + h) *
                          t.shape[3] +
                      w];
    }
    float
    at2(int id, int64_t i, int64_t j) const
    {
        const DagTensor &t = buffers.at(id);
        return t.data[i * t.shape[1] + j];
    }
    float
    at1(int id, int64_t i) const
    {
        return buffers.at(id).data[i];
    }
    float
    flat(int id, int64_t i) const
    {
        return buffers.at(id).data[i];
    }
};

/** Compute one full-buffer element of `node` through reader `read`. */
template <class Rd>
float
elemOf(const ComputeDag &dag, const DagNode &node, Rd &read,
       const std::vector<int64_t> &idx)
{
    switch (node.kind) {
      case NodeKind::Conv:
        return convElem(dag, node, read, idx[0], idx[1], idx[2], idx[3]);
      case NodeKind::Dense:
        return denseElem(dag, node, read, idx[0], idx[1]);
      case NodeKind::Pool:
        return poolElem(dag, node, read, idx[0], idx[1], idx[2], idx[3]);
      case NodeKind::Bias: {
        const float b = read.at1(node.inputs[1], idx[1]);
        if (idx.size() == 4)
            return read.at4(node.inputs[0], idx[0], idx[1], idx[2],
                            idx[3]) +
                   b;
        return read.at2(node.inputs[0], idx[0], idx[1]) + b;
      }
      case NodeKind::Relu: {
        const float v =
            idx.size() == 4
                ? read.at4(node.inputs[0], idx[0], idx[1], idx[2], idx[3])
                : read.at2(node.inputs[0], idx[0], idx[1]);
        return std::max(v, 0.0f);
      }
      case NodeKind::Add: {
        if (idx.size() == 4)
            return read.at4(node.inputs[0], idx[0], idx[1], idx[2],
                            idx[3]) +
                   read.at4(node.inputs[1], idx[0], idx[1], idx[2],
                            idx[3]);
        return read.at2(node.inputs[0], idx[0], idx[1]) +
               read.at2(node.inputs[1], idx[0], idx[1]);
      }
      case NodeKind::Input:
        break;
    }
    FT_ASSERT(false, "elemOf on a non-compute node");
    return 0.0f;
}

} // namespace

void
runDagNode(const ComputeDag &dag, int id, DagBuffers &buffers)
{
    const DagNode &node = dag.nodes[id];
    FT_ASSERT(node.kind != NodeKind::Input,
              "runDagNode on an Input node");
    FullReader read{dag, buffers};
    DagTensor out(node.shape);
    std::vector<int64_t> idx(node.shape.size(), 0);
    for (int64_t flat = 0; flat < out.numel(); ++flat) {
        int64_t rem = flat;
        for (int d = static_cast<int>(node.shape.size()) - 1; d >= 0; --d) {
            idx[d] = rem % node.shape[d];
            rem /= node.shape[d];
        }
        out.data[flat] = elemOf(dag, node, read, idx);
    }
    buffers[id] = std::move(out);
}

void
runDagReference(const ComputeDag &dag, DagBuffers &buffers)
{
    for (size_t i = 0; i < dag.nodes.size(); ++i) {
        if (dag.nodes[i].kind == NodeKind::Input) {
            FT_ASSERT(buffers.count(static_cast<int>(i)),
                      "Input node ", dag.nodes[i].name, " has no data");
            continue;
        }
        if (buffers.count(static_cast<int>(i)))
            continue; // precomputed (e.g. a scheduled anchor) — share it
        runDagNode(dag, static_cast<int>(i), buffers);
    }
}

namespace {

/** Streaming state of one group member. */
struct MemberState
{
    int id = -1;
    bool ring = false;      ///< ephemeral: rows live in the ring only
    bool precomputed = false; ///< full buffer existed on entry
    int64_t rows = 0;       ///< total row slabs
    int64_t slabElems = 0;  ///< elements per row slab
    int64_t cap = 0;        ///< ring capacity in rows
    int64_t done = 0;       ///< rows produced so far
    std::vector<float> ringData;
    std::vector<int> groupConsumers; ///< member indices consuming this
    std::vector<int> groupProducers; ///< member indices this consumes
};

int64_t
slabElemsOf(const DagNode &node)
{
    if (node.shape.size() == 4)
        return node.shape[0] * node.shape[1] * node.shape[3];
    int64_t n = 1;
    for (size_t d = 1; d < node.shape.size(); ++d)
        n *= node.shape[d];
    return n;
}

/** Reader over the group's mixed storage (rings + full buffers). */
struct GroupReader
{
    const ComputeDag &dag;
    DagBuffers &buffers;
    std::vector<MemberState> &states;
    const std::vector<int> &stateOf; ///< node id -> state index or -1

    float
    value(int id, int64_t row, int64_t slabOff, int64_t fullOff) const
    {
        const int s = stateOf[id];
        if (s >= 0) {
            const MemberState &st = states[s];
            FT_ASSERT(row < st.done, "read of an unproduced row");
            if (st.ring) {
                FT_ASSERT(row >= st.done - st.cap,
                          "read of an evicted ring row");
                return st.ringData[(row % st.cap) * st.slabElems +
                                   slabOff];
            }
        }
        return buffers.at(id).data[fullOff];
    }
    float
    at4(int id, int64_t n, int64_t c, int64_t h, int64_t w) const
    {
        const auto &shape = dag.nodes[id].shape;
        return value(id, h, (n * shape[1] + c) * shape[3] + w,
                     ((n * shape[1] + c) * shape[2] + h) * shape[3] + w);
    }
    float
    at2(int id, int64_t i, int64_t j) const
    {
        const auto &shape = dag.nodes[id].shape;
        return value(id, i, j, i * shape[1] + j);
    }
    float
    at1(int id, int64_t i) const
    {
        FT_ASSERT(stateOf[id] < 0, "1D tensors are always external");
        return buffers.at(id).data[i];
    }
    float
    flat(int id, int64_t i) const
    {
        const int s = stateOf[id];
        FT_ASSERT(s < 0 || !states[s].ring,
                  "flat read requires a full buffer");
        return buffers.at(id).data[i];
    }
};

/** First producer row the member needs for its output row `r`. */
int64_t
neededFrom(const DagNode &consumer, int64_t r)
{
    return consumer.kind == NodeKind::Pool ? r * consumer.stride : r;
}

/** One past the last producer row needed for output row `r`. */
int64_t
neededUntil(const DagNode &consumer, int64_t r)
{
    return consumer.kind == NodeKind::Pool
               ? r * consumer.stride + consumer.kernel
               : r + 1;
}

} // namespace

void
runFusedGroup(const ComputeDag &dag, const FusionGroup &group,
              DagBuffers &buffers, int64_t scratchCapBytes,
              FusedRunStats *stats)
{
    const auto consumers = dag.consumers();
    std::vector<int> stateOf(dag.nodes.size(), -1);
    std::vector<MemberState> states(group.members.size());

    int64_t scratchBytes = 0;
    for (size_t m = 0; m < group.members.size(); ++m) {
        const int id = group.members[m];
        const DagNode &node = dag.nodes[id];
        MemberState &st = states[m];
        st.id = id;
        st.rows = numRowSlabs(node);
        st.slabElems = slabElemsOf(node);
        st.precomputed = buffers.count(id) > 0;
        stateOf[id] = static_cast<int>(m);
        if (st.precomputed) {
            st.done = st.rows; // stream from the existing buffer
            continue;
        }
        if (group.ephemeral[m]) {
            st.ring = true;
            int64_t window = 1;
            for (int c : consumers[id])
                window = std::max(window,
                                  consumerWindowRows(dag.nodes[c]));
            st.cap = std::min(window, st.rows);
            st.ringData.assign(
                static_cast<size_t>(st.cap * st.slabElems), 0.0f);
            scratchBytes += st.cap * st.slabElems * 4;
        } else {
            buffers[id] = DagTensor(node.shape);
        }
    }
    FT_ASSERT(scratchCapBytes < 0 || scratchBytes <= scratchCapBytes,
              "fused group scratch ", scratchBytes,
              " exceeds the working-set cap ", scratchCapBytes);
    if (stats) {
        stats->scratchPeakBytes =
            std::max(stats->scratchPeakBytes, scratchBytes);
        for (size_t m = 0; m < group.members.size(); ++m)
            if (states[m].ring)
                stats->ephemeralBytes += dag.nodes[group.members[m]].bytes();
    }

    // Intra-group dataflow edges, by member index.
    for (size_t m = 0; m < group.members.size(); ++m) {
        const DagNode &node = dag.nodes[group.members[m]];
        FT_ASSERT(!node.isHeavy() || m == 0 || states[m].precomputed,
                  "heavy member must lead its group");
        for (int in : node.inputs)
            if (stateOf[in] >= 0) {
                FT_ASSERT(!node.isHeavy(),
                          "heavy anchors read external tensors only");
                states[m].groupProducers.push_back(stateOf[in]);
                states[stateOf[in]].groupConsumers.push_back(
                    static_cast<int>(m));
            }
    }

    GroupReader read{dag, buffers, states, stateOf};

    auto canProduce = [&](const MemberState &st) {
        if (st.done >= st.rows)
            return false;
        const DagNode &node = dag.nodes[st.id];
        for (int p : st.groupProducers)
            if (neededUntil(node, st.done) > states[p].done)
                return false;
        // Producing this row evicts row done - cap from the ring; every
        // in-group consumer must already be past it.
        if (st.ring && st.done >= st.cap) {
            const int64_t evicted = st.done - st.cap;
            for (int c : st.groupConsumers)
                if (neededFrom(dag.nodes[states[c].id], states[c].done) <=
                    evicted)
                    return false;
        }
        return true;
    };

    auto produceRow = [&](MemberState &st) {
        const DagNode &node = dag.nodes[st.id];
        const int64_t row = st.done;
        // Destination of one slab element: the ring slot (slab-local
        // offset) or the full buffer (row-major offset).
        float *ringRow =
            st.ring ? &st.ringData[(row % st.cap) * st.slabElems]
                    : nullptr;
        float *full = st.ring ? nullptr : buffers.at(st.id).data.data();
        if (node.shape.size() == 4) {
            const int64_t N = node.shape[0], C = node.shape[1],
                          H = node.shape[2], W = node.shape[3];
            for (int64_t n = 0; n < N; ++n)
                for (int64_t c = 0; c < C; ++c)
                    for (int64_t w = 0; w < W; ++w) {
                        const std::vector<int64_t> idx = {n, c, row, w};
                        const float v = elemOf(dag, node, read, idx);
                        if (ringRow)
                            ringRow[(n * C + c) * W + w] = v;
                        else
                            full[((n * C + c) * H + row) * W + w] = v;
                    }
        } else {
            const int64_t F = node.shape[1];
            for (int64_t j = 0; j < F; ++j) {
                const std::vector<int64_t> idx = {row, j};
                const float v = elemOf(dag, node, read, idx);
                if (ringRow)
                    ringRow[j] = v;
                else
                    full[row * F + j] = v;
            }
        }
        ++st.done;
    };

    // Round-robin the members until every row of every member exists;
    // the gates above make this a bounded-scratch streaming schedule.
    for (;;) {
        bool progress = false, allDone = true;
        for (MemberState &st : states) {
            while (canProduce(st)) {
                produceRow(st);
                progress = true;
            }
            allDone = allDone && st.done >= st.rows;
        }
        if (allDone)
            break;
        FT_ASSERT(progress, "fused group deadlocked (ring too small)");
    }
}

void
runFusedPartition(const ComputeDag &dag, const Partition &partition,
                  const Target &target, DagBuffers &buffers,
                  FusedRunStats *stats)
{
    const int64_t cap = tierSpecFor(target).tier2Bytes;
    for (const FusionGroup &group : partition.groups)
        runFusedGroup(dag, group, buffers, cap, stats);
}

} // namespace graph
} // namespace ft
