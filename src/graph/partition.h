/**
 * @file
 * Fusion partitioner: group the compute DAG so intermediates die on chip.
 *
 * A partition assigns every compute node (non-Input) to exactly one
 * fusion group. Legal groups have at most one heavy anchor (conv/dense),
 * and the anchor, when present, is the group's first member — the
 * explorers tune the anchor's schedule space and the rest of the group
 * streams through it. A member whose consumers all live in the same
 * group becomes *ephemeral*: its tensor never round-trips DRAM, which is
 * the entire point of fusing.
 *
 * Search is a beam over nodes in topological order. Each step either
 * opens a new group for the node or sinks it into a group that already
 * contains one of its producers, subject to legality: heavy nodes always
 * open groups, sinking must keep the group quotient acyclic, and the
 * group's streaming working set must stay within the device's tier-2
 * capacity (graph/roofline.h). States are ranked by the deterministic
 * tuple (modeled seconds, DRAM traffic, lexicographic assignment), so
 * compute-bound ties break toward less traffic and the search never
 * depends on container iteration order.
 *
 * `epiloguePartition` reconstructs the legacy bias/ReLU-into-anchor
 * grouping of dnn/network.h and `nonePartition` the fully unfused one;
 * all three run through the same `finalizePartition` accounting, so
 * traffic comparisons between modes compare like with like.
 */
#ifndef FLEXTENSOR_GRAPH_PARTITION_H
#define FLEXTENSOR_GRAPH_PARTITION_H

#include <string>
#include <vector>

#include "graph/dag.h"
#include "graph/roofline.h"

namespace ft {
namespace graph {

/** One fusion group of a partition. */
struct FusionGroup
{
    /** Member node ids, ascending; the heavy anchor (if any) is first. */
    std::vector<int> members;
    /** Parallel to members: output stays on chip (all consumers in-group). */
    std::vector<bool> ephemeral;
    /** Roofline score of the group. */
    GroupCost cost;

    /** Id of the heavy anchor, or -1 for an anchor-free group. */
    int anchor(const ComputeDag &dag) const;
};

/** A full partition of a DAG's compute nodes. */
struct Partition
{
    std::vector<FusionGroup> groups;
    /** Sum of per-group modeled seconds. */
    double totalSeconds = 0.0;
    /** Sum of per-group DRAM traffic (memIn + memOut). */
    int64_t totalTrafficBytes = 0;
    /** Bytes of intermediates kept off DRAM across all groups. */
    int64_t ephemeralBytes = 0;

    /** Group index of node `id`, or -1 (Input nodes live in no group). */
    int groupOf(int id) const;

  private:
    friend Partition finalizePartition(const ComputeDag &,
                                       const std::vector<int> &,
                                       const Target &);
    std::vector<int> assignment_; ///< node id -> group index (-1 for Input)
};

/** Knobs of the beam search. */
struct PartitionOptions
{
    int beamWidth = 8;
    /** Largest member count of one group. */
    int maxGroupSize = 8;
};

/**
 * Build a Partition from a node->group assignment (-1 for Input nodes):
 * orders groups by first member, recomputes exact ephemeral flags,
 * scores every group, and fills the totals. The single accounting
 * function behind every partition mode.
 */
Partition finalizePartition(const ComputeDag &dag,
                            const std::vector<int> &assignment,
                            const Target &target);

/** Beam-search the fusion partition of `dag` for `target`. */
Partition partitionDag(const ComputeDag &dag, const Target &target,
                       const PartitionOptions &options = {});

/** Legacy grouping: bias/ReLU sink into their anchor, nothing else. */
Partition epiloguePartition(const ComputeDag &dag, const Target &target);

/** Fully unfused: every compute node is its own group. */
Partition nonePartition(const ComputeDag &dag, const Target &target);

/**
 * Verify the partition invariants the fuzz tests rely on: every compute
 * node in exactly one group (Inputs in none), members ascending, at most
 * one heavy anchor per group and listed first, group quotient acyclic,
 * ephemeral tensors never consumed outside their group, and every
 * group's working set within the device's tier-2 capacity. On failure
 * fills `why` with the violation followed by `dag.spec()` for replay.
 */
bool checkPartition(const ComputeDag &dag, const Partition &partition,
                    const Target &target, std::string *why = nullptr);

} // namespace graph
} // namespace ft

#endif // FLEXTENSOR_GRAPH_PARTITION_H
