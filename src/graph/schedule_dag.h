/**
 * @file
 * Graph-level tuning: partition the DAG, tune each subgraph's anchor
 * through the existing explorers, and stitch the results.
 *
 * `tuneDag` is Algorithm 1 lifted one level: instead of scheduling a
 * fixed per-layer decomposition, it first runs the fusion partitioner
 * (beam search over the roofline model), then lowers each group's heavy
 * anchor to the same IR the per-layer path tunes — same space, same
 * explorers, same tuning-cache key — and charges each group
 * max(tuned compute, roofline memory). Anchor-free groups (standalone
 * pooling) are bandwidth-bound and take their roofline seconds directly.
 *
 * Tracing: a `graph_run` meta line, one `graph.partition` span around
 * the search, and one `graph.subgraph` span per group (the per-anchor
 * `run`/`space_build`/`report` events nest inside as usual), so
 * `trace-report` can fold graph runs like any other.
 */
#ifndef FLEXTENSOR_GRAPH_SCHEDULE_DAG_H
#define FLEXTENSOR_GRAPH_SCHEDULE_DAG_H

#include <memory>

#include "analysis/verify/certificate.h"
#include "explore/tuner.h"
#include "graph/partition.h"

namespace ft {
namespace graph {

/** Outcome of tuning one fusion group. */
struct SubgraphReport
{
    std::string name;         ///< anchor name, or first member's name
    std::vector<int> members; ///< DAG node ids in the group
    int anchor = -1;          ///< heavy node id, -1 if bandwidth-only
    bool tuned = false;       ///< anchor went through an explorer
    TuneReport report;        ///< valid when tuned
    GroupCost cost;           ///< roofline score of the group
    double seconds = 0.0;     ///< charged group time
};

/** Outcome of tuning a whole DAG. */
struct DagTuneReport
{
    std::string dagName;
    std::string device;
    uint64_t fingerprint = 0; ///< ComputeDag::fingerprint()
    Partition partition;
    std::vector<SubgraphReport> groups;
    double totalSeconds = 0.0;
    double simExploreSeconds = 0.0;
    /** Modeled DRAM traffic of the chosen partition. */
    int64_t trafficBytes = 0;
    /** Intermediate bytes that never touch DRAM. */
    int64_t ephemeralBytes = 0;
    /**
     * Fusion-legality certificate of the chosen partition (null unless
     * TuneOptions::certify). Per-anchor schedule certificates ride on
     * each group's TuneReport.
     */
    std::shared_ptr<const verify::PartitionCertificate> certificate;
};

/** Partition `dag` and tune every subgraph for `target`. */
DagTuneReport tuneDag(const ComputeDag &dag, const Target &target,
                      const TuneOptions &options = {},
                      const PartitionOptions &partitionOptions = {});

} // namespace graph
} // namespace ft

#endif // FLEXTENSOR_GRAPH_SCHEDULE_DAG_H
