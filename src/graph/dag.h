/**
 * @file
 * The compute DAG behind graph-level scheduling (Section 6.6 generalized).
 *
 * `dnn/network.h` models a network as a sequential layer list; real
 * graphs have multi-consumer tensors (residual connections, reused
 * activations). ComputeDag is the general form: nodes are operators,
 * edges are tensors, and any node may feed any number of consumers. The
 * fusion partitioner (graph/partition.h) groups nodes so intermediates
 * consumed only inside a group become ephemeral — they never touch DRAM.
 *
 * Nodes are stored in topological order (every input id is smaller than
 * the node's own id), which every pass in this module relies on.
 */
#ifndef FLEXTENSOR_GRAPH_DAG_H
#define FLEXTENSOR_GRAPH_DAG_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnn/network.h"

namespace ft {
namespace graph {

/** Operator kind of one DAG node. */
enum class NodeKind {
    Input, ///< externally supplied data (activations, weights, biases)
    Conv,  ///< 2D convolution anchor (heavy)
    Dense, ///< fully-connected anchor (heavy)
    Pool,  ///< 2D max pooling (window op, bandwidth-bound standalone)
    Bias,  ///< per-channel bias add (elementwise; second input is the vector)
    Relu,  ///< elementwise max(x, 0)
    Add,   ///< elementwise two-input add (residual connections)
};

/** Short lowercase name of a node kind ("conv", "relu", ...). */
const char *nodeKindName(NodeKind kind);

/** One operator in the DAG. */
struct DagNode
{
    NodeKind kind = NodeKind::Input;
    std::string name;
    /** Producer node ids, in operand order. Conv: [data, weight];
     *  Bias: [data, vector]; Add: [lhs, rhs]; others: [data]. */
    std::vector<int> inputs;
    /** Output shape (NCHW for spatial nodes, (N, F) after dense). */
    std::vector<int64_t> shape;

    // Conv parameters (kernel also used by Pool).
    int64_t outChannels = 0;
    int64_t kernel = 0;
    int64_t stride = 1;
    int64_t padding = 0;

    // Dense parameters.
    int64_t units = 0;

    /** True for the compute-heavy anchors the explorers tune. */
    bool isHeavy() const
    {
        return kind == NodeKind::Conv || kind == NodeKind::Dense;
    }

    /** True for elementwise nodes that sink into their producer. */
    bool isEltwise() const
    {
        return kind == NodeKind::Bias || kind == NodeKind::Relu ||
               kind == NodeKind::Add;
    }

    /** Output element count. */
    int64_t numel() const;

    /** Output bytes (fp32). */
    int64_t bytes() const { return numel() * 4; }
};

/**
 * A whole compute graph: nodes in topological order, edges implied by
 * `DagNode::inputs`. Multi-consumer tensors are simply nodes referenced
 * by several `inputs` lists.
 */
struct ComputeDag
{
    std::string name;
    std::vector<DagNode> nodes;

    /** Consumer ids of every node (ascending). */
    std::vector<std::vector<int>> consumers() const;

    /** True when node `id` has no consumers (a graph output). */
    bool isOutput(int id) const;

    /** Number of non-Input nodes. */
    int numComputeNodes() const;

    /**
     * Structural validation: topological order, operand arities, shape
     * agreement (conv/pool windows fit, Add shapes match). Returns
     * false and fills `why` on the first violation.
     */
    bool validate(std::string *why = nullptr) const;

    /**
     * Replayable one-line-per-node text form. Printed verbatim by the
     * partitioner fuzz tests when a property fails, so the offending
     * DAG can be reconstructed and replayed by hand.
     */
    std::string spec() const;

    /** 64-bit FNV-1a fingerprint of spec(); keys service-side caches. */
    uint64_t fingerprint() const;
};

/**
 * Expand a sequential Network into the general DAG form: conv/dense
 * layers become anchor nodes with explicit weight/bias Input nodes and
 * explicit Bias/Relu epilogue nodes; pooling becomes a Pool node. The
 * result is exactly the chain the legacy per-layer path schedules, now
 * in a form the fusion partitioner can regroup.
 */
ComputeDag dagFromNetwork(const Network &net);

/** 64-bit FNV-1a over a string (the fingerprint primitive). */
uint64_t fnv1a64(const std::string &s);

} // namespace graph
} // namespace ft

#endif // FLEXTENSOR_GRAPH_DAG_H
