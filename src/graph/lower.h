/**
 * @file
 * Lowering a fusion group's heavy anchor to the tensor IR.
 *
 * The explorers tune mini-graphs, not DAG nodes, so each group's anchor
 * is rebuilt as an ops/ mini-graph over placeholders named after its DAG
 * producers. The lowered anchor is the exact IR the legacy per-layer
 * path tunes (same builder, same space, same tuning-cache key), which is
 * what makes fusion a pure regrouping: the schedule search is untouched,
 * only what happens to the anchor's output changes.
 */
#ifndef FLEXTENSOR_GRAPH_LOWER_H
#define FLEXTENSOR_GRAPH_LOWER_H

#include <utility>
#include <vector>

#include "exec/buffer.h"
#include "graph/fused_exec.h"

namespace ft {
namespace graph {

/** A heavy anchor lowered to IR. */
struct LoweredAnchor
{
    /** Root of the anchor's mini-graph (the conv/dense compute node). */
    Tensor output;
    /** (DAG producer id, placeholder) per anchor operand, in order. */
    std::vector<std::pair<int, Tensor>> operands;
};

/** Lower the heavy DAG node `anchorId` (conv or dense) to IR. */
LoweredAnchor lowerAnchor(const ComputeDag &dag, int anchorId);

/**
 * Bind the anchor's placeholders to DAG input data: copies each operand
 * tensor from `buffers` into an IR Buffer (dense often reads a 4D
 * activation through a flattened 2D placeholder; the row-major data is
 * shared verbatim).
 */
BufferMap bindOperands(const LoweredAnchor &lowered,
                       const DagBuffers &buffers);

/**
 * Copy the anchor's IR output buffer (e.g. produced by a scheduled
 * nest) into the DAG buffer of node `anchorId`, so fused and unfused
 * executions share one anchor result bit-for-bit.
 */
void adoptAnchorOutput(const LoweredAnchor &lowered,
                       const BufferMap &irBuffers, int anchorId,
                       const ComputeDag &dag, DagBuffers &buffers);

} // namespace graph
} // namespace ft

#endif // FLEXTENSOR_GRAPH_LOWER_H
