#include "graph/partition.h"

#include <algorithm>
#include <map>

#include "analysis/verify/certificate.h"
#include "support/logging.h"

namespace ft {
namespace graph {

int
FusionGroup::anchor(const ComputeDag &dag) const
{
    for (int m : members)
        if (dag.nodes[m].isHeavy())
            return m;
    return -1;
}

int
Partition::groupOf(int id) const
{
    if (id < 0 || id >= static_cast<int>(assignment_.size()))
        return -1;
    return assignment_[id];
}

Partition
finalizePartition(const ComputeDag &dag, const std::vector<int> &assignment,
                  const Target &target)
{
    FT_ASSERT(assignment.size() == dag.nodes.size(),
              "assignment must cover every node");
    // Renumber groups by first member so the result is independent of
    // the labels the search happened to use.
    std::map<int, int> relabel; // old label -> first member id
    for (size_t i = 0; i < assignment.size(); ++i) {
        const bool compute = dag.nodes[i].kind != NodeKind::Input;
        FT_ASSERT(compute == (assignment[i] >= 0),
                  "compute nodes need a group, Input nodes must have none");
        if (compute && !relabel.count(assignment[i]))
            relabel[assignment[i]] = static_cast<int>(i);
    }
    std::vector<std::pair<int, int>> order; // (first member, old label)
    for (const auto &kv : relabel)
        order.push_back({kv.second, kv.first});
    std::sort(order.begin(), order.end());

    Partition part;
    part.assignment_.assign(dag.nodes.size(), -1);
    part.groups.resize(order.size());
    for (size_t g = 0; g < order.size(); ++g)
        for (size_t i = 0; i < assignment.size(); ++i)
            if (assignment[i] == order[g].second) {
                part.groups[g].members.push_back(static_cast<int>(i));
                part.assignment_[i] = static_cast<int>(g);
            }

    const auto consumers = dag.consumers();
    for (auto &group : part.groups) {
        group.ephemeral.resize(group.members.size());
        for (size_t m = 0; m < group.members.size(); ++m) {
            const int id = group.members[m];
            bool eph = !consumers[id].empty();
            for (int c : consumers[id])
                eph = eph && part.assignment_[c] == part.assignment_[id];
            group.ephemeral[m] = eph;
        }
        group.cost =
            rooflineGroupCost(dag, group.members, group.ephemeral, target);
        part.totalSeconds += group.cost.seconds;
        part.totalTrafficBytes +=
            group.cost.memInBytes + group.cost.memOutBytes;
        part.ephemeralBytes += group.cost.ephemeralBytes;
    }
    return part;
}

namespace {

/** Search state: assignment so far plus its deterministic rank. */
struct BeamState
{
    std::vector<int> assignment; ///< node id -> group label, -1 unassigned
    int numGroups = 0;
    double seconds = 0.0;
    int64_t traffic = 0;

    bool operator<(const BeamState &other) const
    {
        if (seconds != other.seconds)
            return seconds < other.seconds;
        if (traffic != other.traffic)
            return traffic < other.traffic;
        return assignment < other.assignment;
    }
};

/**
 * Score a partial assignment. All states at one step share the same set
 * of assigned nodes, so the pessimistic ephemeral rule (only nodes whose
 * consumers are all assigned in-group count) ranks them fairly.
 */
void
scorePartial(const ComputeDag &dag,
             const std::vector<std::vector<int>> &consumers,
             const Target &target, BeamState &state)
{
    std::map<int, std::vector<int>> groups;
    for (size_t i = 0; i < state.assignment.size(); ++i)
        if (state.assignment[i] >= 0)
            groups[state.assignment[i]].push_back(static_cast<int>(i));

    state.seconds = 0.0;
    state.traffic = 0;
    for (const auto &kv : groups) {
        std::vector<bool> eph(kv.second.size());
        for (size_t m = 0; m < kv.second.size(); ++m) {
            const int id = kv.second[m];
            bool e = !consumers[id].empty();
            for (int c : consumers[id])
                e = e && state.assignment[c] == state.assignment[id];
            eph[m] = e;
        }
        GroupCost cost = rooflineGroupCost(dag, kv.second, eph, target);
        state.seconds += cost.seconds;
        state.traffic += cost.memInBytes + cost.memOutBytes;
    }
}

/**
 * Would sinking `node` into group `label` keep the group quotient
 * acyclic? Adding the node creates edges producerGroup -> label for its
 * other producers; a cycle needs an existing quotient path from `label`
 * to one of those producer groups.
 */
bool
sinkKeepsAcyclic(const ComputeDag &dag, const std::vector<int> &assignment,
                 int node, int label)
{
    // Quotient edges among assigned nodes: group(u) -> group(v) for each
    // dag edge u -> v crossing groups.
    std::map<int, std::vector<int>> succ;
    for (size_t v = 0; v < assignment.size(); ++v) {
        if (assignment[v] < 0)
            continue;
        for (int u : dag.nodes[v].inputs)
            if (assignment[u] >= 0 && assignment[u] != assignment[v])
                succ[assignment[u]].push_back(assignment[v]);
    }
    std::vector<int> stack = {label}, seen;
    while (!stack.empty()) {
        int g = stack.back();
        stack.pop_back();
        if (std::find(seen.begin(), seen.end(), g) != seen.end())
            continue;
        seen.push_back(g);
        auto it = succ.find(g);
        if (it != succ.end())
            for (int next : it->second)
                stack.push_back(next);
    }
    for (int u : dag.nodes[node].inputs) {
        if (assignment[u] < 0 || assignment[u] == label)
            continue;
        if (std::find(seen.begin(), seen.end(), assignment[u]) != seen.end())
            return false;
    }
    return true;
}

} // namespace

Partition
partitionDag(const ComputeDag &dag, const Target &target,
             const PartitionOptions &options)
{
    const auto consumers = dag.consumers();
    std::vector<BeamState> beam(1);
    beam[0].assignment.assign(dag.nodes.size(), -1);

    for (size_t v = 0; v < dag.nodes.size(); ++v) {
        const DagNode &node = dag.nodes[v];
        if (node.kind == NodeKind::Input)
            continue;
        std::vector<BeamState> next;
        for (const BeamState &state : beam) {
            // Move 1: open a new group for v.
            {
                BeamState s = state;
                s.assignment[v] = s.numGroups++;
                scorePartial(dag, consumers, target, s);
                next.push_back(std::move(s));
            }
            // Move 2: sink v into a producer's group (non-heavy only —
            // heavy anchors always open their own group).
            if (node.isHeavy())
                continue;
            std::vector<int> tried;
            for (int in : node.inputs) {
                const int label = state.assignment[in];
                if (label < 0 ||
                    std::find(tried.begin(), tried.end(), label) !=
                        tried.end())
                    continue;
                tried.push_back(label);
                std::vector<int> members;
                for (size_t i = 0; i < state.assignment.size(); ++i)
                    if (state.assignment[i] == label)
                        members.push_back(static_cast<int>(i));
                if (static_cast<int>(members.size()) >= options.maxGroupSize)
                    continue;
                if (!sinkKeepsAcyclic(dag, state.assignment,
                                      static_cast<int>(v), label))
                    continue;
                members.push_back(static_cast<int>(v));
                GroupCost probe = rooflineGroupCost(
                    dag, members, std::vector<bool>(members.size(), false),
                    target);
                if (!probe.feasible)
                    continue;
                BeamState s = state;
                s.assignment[v] = label;
                scorePartial(dag, consumers, target, s);
                next.push_back(std::move(s));
            }
        }
        std::sort(next.begin(), next.end());
        if (static_cast<int>(next.size()) > options.beamWidth)
            next.resize(options.beamWidth);
        beam = std::move(next);
    }

    FT_ASSERT(!beam.empty(), "beam search lost every state");
    // Fusion-legality gate (FT-DEP-006): before any tuning happens the
    // winning assignment must carry a proven partition certificate —
    // streaming order, retention windows, ephemeral non-escape, anchor
    // uniqueness, on-chip capacity. An uncertifiable state falls back
    // to the next beam rank; the fully unfused partition backstops.
    for (const BeamState &state : beam) {
        Partition p = finalizePartition(dag, state.assignment, target);
        if (verify::certifyPartition(dag, p, target).equivalent())
            return p;
    }
    return nonePartition(dag, target);
}

Partition
epiloguePartition(const ComputeDag &dag, const Target &target)
{
    const auto consumers = dag.consumers();
    std::vector<int> assignment(dag.nodes.size(), -1);
    int groups = 0;
    for (size_t v = 0; v < dag.nodes.size(); ++v) {
        const DagNode &node = dag.nodes[v];
        if (node.kind == NodeKind::Input)
            continue;
        // Bias/ReLU sink into a heavy producer's group when they are the
        // producer's sole consumer — exactly the legacy epilogue fusion.
        if ((node.kind == NodeKind::Bias || node.kind == NodeKind::Relu) &&
            !node.inputs.empty()) {
            const int producer = node.inputs[0];
            if (assignment[producer] >= 0 &&
                consumers[producer].size() == 1) {
                assignment[v] = assignment[producer];
                continue;
            }
        }
        assignment[v] = groups++;
    }
    return finalizePartition(dag, assignment, target);
}

Partition
nonePartition(const ComputeDag &dag, const Target &target)
{
    std::vector<int> assignment(dag.nodes.size(), -1);
    int groups = 0;
    for (size_t v = 0; v < dag.nodes.size(); ++v)
        if (dag.nodes[v].kind != NodeKind::Input)
            assignment[v] = groups++;
    return finalizePartition(dag, assignment, target);
}

namespace {

bool
partitionFail(const ComputeDag &dag, std::string *why,
              const std::string &msg)
{
    if (why)
        *why = msg + "\noffending DAG:\n" + dag.spec();
    return false;
}

} // namespace

bool
checkPartition(const ComputeDag &dag, const Partition &partition,
               const Target &target, std::string *why)
{
    // Property 1: every compute node in exactly one group, Inputs in none.
    std::vector<int> owner(dag.nodes.size(), -1);
    for (size_t g = 0; g < partition.groups.size(); ++g) {
        const FusionGroup &group = partition.groups[g];
        if (group.members.empty())
            return partitionFail(dag, why,
                                 "group " + std::to_string(g) + " is empty");
        if (group.ephemeral.size() != group.members.size())
            return partitionFail(dag, why,
                                 "group " + std::to_string(g) +
                                     " ephemeral flags out of step");
        int heavy = 0;
        for (size_t m = 0; m < group.members.size(); ++m) {
            const int id = group.members[m];
            if (id < 0 || id >= static_cast<int>(dag.nodes.size()))
                return partitionFail(dag, why, "member id out of range");
            if (m > 0 && group.members[m - 1] >= id)
                return partitionFail(dag, why,
                                     "group " + std::to_string(g) +
                                         " members not ascending");
            if (dag.nodes[id].kind == NodeKind::Input)
                return partitionFail(dag, why,
                                     "Input node " + std::to_string(id) +
                                         " assigned to a group");
            if (owner[id] != -1)
                return partitionFail(dag, why,
                                     "node " + std::to_string(id) +
                                         " in two groups");
            owner[id] = static_cast<int>(g);
            if (dag.nodes[id].isHeavy()) {
                ++heavy;
                if (m != 0)
                    return partitionFail(
                        dag, why,
                        "heavy node " + std::to_string(id) +
                            " is not its group's first member");
            }
        }
        if (heavy > 1)
            return partitionFail(dag, why,
                                 "group " + std::to_string(g) +
                                     " has two heavy anchors");
    }
    for (size_t i = 0; i < dag.nodes.size(); ++i)
        if (dag.nodes[i].kind != NodeKind::Input && owner[i] == -1)
            return partitionFail(dag, why,
                                 "compute node " + std::to_string(i) +
                                     " left out of the partition");

    // Property 2: the group quotient is acyclic (Kahn's algorithm).
    const size_t numGroups = partition.groups.size();
    std::vector<std::vector<int>> succ(numGroups);
    std::vector<int> indegree(numGroups, 0);
    for (size_t v = 0; v < dag.nodes.size(); ++v) {
        if (owner[v] < 0)
            continue;
        for (int u : dag.nodes[v].inputs)
            if (owner[u] >= 0 && owner[u] != owner[v]) {
                succ[owner[u]].push_back(owner[v]);
                ++indegree[owner[v]];
            }
    }
    std::vector<int> ready;
    for (size_t g = 0; g < numGroups; ++g)
        if (indegree[g] == 0)
            ready.push_back(static_cast<int>(g));
    size_t emitted = 0;
    while (!ready.empty()) {
        int g = ready.back();
        ready.pop_back();
        ++emitted;
        for (int next : succ[g])
            if (--indegree[next] == 0)
                ready.push_back(next);
    }
    if (emitted != numGroups)
        return partitionFail(dag, why, "group quotient has a cycle");

    // Property 3: ephemeral tensors never escape their group.
    const auto consumers = dag.consumers();
    for (const FusionGroup &group : partition.groups)
        for (size_t m = 0; m < group.members.size(); ++m) {
            if (!group.ephemeral[m])
                continue;
            const int id = group.members[m];
            if (consumers[id].empty())
                return partitionFail(dag, why,
                                     "graph output " + std::to_string(id) +
                                         " marked ephemeral");
            for (int c : consumers[id])
                if (owner[c] != owner[id])
                    return partitionFail(
                        dag, why,
                        "ephemeral tensor " + std::to_string(id) +
                            " escapes to node " + std::to_string(c));
        }

    // Property 4: every group's working set fits the device.
    for (size_t g = 0; g < numGroups; ++g) {
        GroupCost cost =
            rooflineGroupCost(dag, partition.groups[g].members,
                              partition.groups[g].ephemeral, target);
        if (!cost.feasible)
            return partitionFail(
                dag, why,
                "group " + std::to_string(g) +
                    " working set exceeds tier-2 capacity (" +
                    std::to_string(cost.workingSetBytes) + " bytes)");
    }
    return true;
}

} // namespace graph
} // namespace ft
