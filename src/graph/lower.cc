#include "graph/lower.h"

#include "ops/ops.h"
#include "support/logging.h"

namespace ft {
namespace graph {

LoweredAnchor
lowerAnchor(const ComputeDag &dag, int anchorId)
{
    const DagNode &node = dag.nodes[anchorId];
    FT_ASSERT(node.isHeavy(), "lowerAnchor expects a conv/dense node");
    LoweredAnchor lowered;

    if (node.kind == NodeKind::Conv) {
        const DagNode &data = dag.nodes[node.inputs[0]];
        const DagNode &weight = dag.nodes[node.inputs[1]];
        Tensor i = placeholder(data.name, data.shape);
        Tensor w = placeholder(weight.name, weight.shape);
        ops::ConvParams p;
        p.stride = node.stride;
        p.padding = node.padding;
        lowered.output = ops::conv2d(i, w, p);
        lowered.operands = {{node.inputs[0], i}, {node.inputs[1], w}};
        return lowered;
    }

    const DagNode &data = dag.nodes[node.inputs[0]];
    const DagNode &weight = dag.nodes[node.inputs[1]];
    int64_t features = 1;
    for (size_t d = 1; d < data.shape.size(); ++d)
        features *= data.shape[d];
    // Dense reads its activation flattened; the row-major bytes are the
    // same, so the 2D placeholder shares the producer's data verbatim.
    Tensor i = placeholder(data.name, {data.shape[0], features});
    Tensor w = placeholder(weight.name, weight.shape);
    lowered.output = ops::dense(i, w);
    lowered.operands = {{node.inputs[0], i}, {node.inputs[1], w}};
    return lowered;
}

BufferMap
bindOperands(const LoweredAnchor &lowered, const DagBuffers &buffers)
{
    BufferMap bound;
    for (const auto &operand : lowered.operands) {
        const DagTensor &src = buffers.at(operand.first);
        Buffer buf(operand.second.op());
        FT_ASSERT(buf.numel() == src.numel(),
                  "operand data does not fit the placeholder");
        buf.data() = src.data;
        bound.emplace(operand.second.op().get(), std::move(buf));
    }
    return bound;
}

void
adoptAnchorOutput(const LoweredAnchor &lowered, const BufferMap &irBuffers,
                  int anchorId, const ComputeDag &dag, DagBuffers &buffers)
{
    const Buffer &out = irBuffers.at(lowered.output.op().get());
    DagTensor t(dag.nodes[anchorId].shape);
    FT_ASSERT(t.numel() == out.numel(),
              "anchor output shape mismatch during adoption");
    t.data = out.data();
    buffers[anchorId] = std::move(t);
}

} // namespace graph
} // namespace ft
