/**
 * @file
 * Functional executors for the compute DAG: the layer-by-layer unfused
 * reference and the fused streaming interpreter.
 *
 * Both paths evaluate every element with the SAME per-kind arithmetic
 * (conv accumulates over (c, r, s) in order, pooling folds its window
 * r-outer/s-inner — mirroring ops/ and exec/reference.cc), so a fused
 * group's outputs must match the unfused reference bit-for-bit. What the
 * differential tests actually exercise is everything that *differs*: the
 * fused path streams row slabs through bounded ring buffers, never
 * materializes ephemeral members, and interleaves producers with
 * consumers — any indexing, retention, or scheduling bug in that
 * machinery breaks exact equality.
 *
 * The ring capacity of an ephemeral member is its consumers' retention
 * window (graph/roofline.h `consumerWindowRows`), so the executor
 * enforces at run time exactly the working-set bound the roofline model
 * charges — the model and the execution semantics cannot drift.
 */
#ifndef FLEXTENSOR_GRAPH_FUSED_EXEC_H
#define FLEXTENSOR_GRAPH_FUSED_EXEC_H

#include <map>
#include <vector>

#include "graph/partition.h"

namespace ft {

class Rng;

namespace graph {

/** Dense row-major fp32 storage for one DAG node's output. */
struct DagTensor
{
    std::vector<int64_t> shape;
    std::vector<float> data;

    DagTensor() = default;
    explicit DagTensor(const std::vector<int64_t> &s);

    int64_t numel() const { return static_cast<int64_t>(data.size()); }
};

/** Node outputs keyed by node id. */
using DagBuffers = std::map<int, DagTensor>;

/** Random data for every Input node (deterministic in node-id order). */
DagBuffers makeDagInputs(const ComputeDag &dag, Rng &rng);

/**
 * Unfused reference: materialize node `id`'s full output from its
 * producers' full buffers.
 */
void runDagNode(const ComputeDag &dag, int id, DagBuffers &buffers);

/**
 * Run every compute node layer by layer, materializing every
 * intermediate. Nodes already present in `buffers` are kept as-is (so a
 * precomputed anchor — e.g. from a sampled schedule — is shared with the
 * fused side).
 */
void runDagReference(const ComputeDag &dag, DagBuffers &buffers);

/** Scratch accounting of a fused run. */
struct FusedRunStats
{
    /** Ring-buffer bytes of the largest group executed. */
    int64_t scratchPeakBytes = 0;
    /** Total ephemeral bytes that never touched a full buffer. */
    int64_t ephemeralBytes = 0;
};

/**
 * Execute one fusion group in streaming order. Ephemeral members live
 * only in ring buffers sized to their consumers' retention windows;
 * non-ephemeral members are materialized into `buffers`. If the group's
 * anchor is already present in `buffers` its rows are streamed from that
 * buffer instead of recomputed (scheduled-anchor mode). A positive
 * `scratchCapBytes` makes the executor fail hard if the rings exceed it.
 */
void runFusedGroup(const ComputeDag &dag, const FusionGroup &group,
                   DagBuffers &buffers, int64_t scratchCapBytes = -1,
                   FusedRunStats *stats = nullptr);

/**
 * Execute a whole partition group by group. The scratch cap is the
 * target's tier-2 capacity — the same bound the partitioner enforced —
 * so an infeasible group aborts instead of silently over-buffering.
 * After the run, `buffers` holds Inputs and non-ephemeral outputs only:
 * ephemeral tensors provably never materialized.
 */
void runFusedPartition(const ComputeDag &dag, const Partition &partition,
                       const Target &target, DagBuffers &buffers,
                       FusedRunStats *stats = nullptr);

} // namespace graph
} // namespace ft

#endif // FLEXTENSOR_GRAPH_FUSED_EXEC_H
