#include "serve/batch_eval.h"

#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {

BatchEvaluator::BatchEvaluator(Evaluator &eval, ThreadPool *pool,
                               int parallelism)
    : eval_(eval), pool_(pool), parallelism_(parallelism)
{}

int
BatchEvaluator::parallelism() const
{
    if (parallelism_ > 0)
        return parallelism_;
    return pool_ ? pool_->numThreads() : 1;
}

std::vector<double>
BatchEvaluator::evaluate(const std::vector<Point> &points)
{
    // Fresh work: the first occurrence of each not-yet-known point, in
    // submission order. Later duplicates read the committed value.
    std::vector<size_t> fresh;
    std::unordered_set<std::string> batch_keys;
    for (size_t i = 0; i < points.size(); ++i) {
        if (eval_.known(points[i]))
            continue;
        if (batch_keys.insert(points[i].key()).second)
            fresh.push_back(i);
    }

    if (!fresh.empty()) {
        const ObsContext &obs = eval_.obs();
        if (obs.trace) {
            obs.trace->begin(
                "batch_evaluate", eval_.simulatedSeconds(),
                {tint("batch", static_cast<int64_t>(points.size())),
                 tint("fresh", static_cast<int64_t>(fresh.size()))});
        }
        std::vector<double> scores(fresh.size());
        auto score = [&](size_t j) {
            scores[j] = eval_.scoreOnly(points[fresh[j]]);
        };
        if (pool_ && pool_->numThreads() > 1 && fresh.size() > 1) {
            pool_->parallelFor(fresh.size(), score);
        } else {
            for (size_t j = 0; j < fresh.size(); ++j)
                score(j);
        }

        // Parallel measurement: the batch takes ceil(n / parallelism)
        // rounds of one measureCost each, spread evenly over the curve's
        // per-point entries.
        const double n = static_cast<double>(fresh.size());
        const double rounds = std::ceil(n / parallelism());
        const double per_point = rounds * eval_.measureCost() / n;
        for (size_t j = 0; j < fresh.size(); ++j)
            eval_.commitMeasured(points[fresh[j]], scores[j], per_point);
        if (obs.trace)
            obs.trace->end("batch_evaluate", eval_.simulatedSeconds());
        if (obs.metrics) {
            obs.metrics->counter("eval.batches").add();
            obs.metrics->counter("eval.fresh_points").add(fresh.size());
            obs.metrics
                ->histogram("eval.batch_size",
                            {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
                .observe(static_cast<double>(fresh.size()));
        }
    }

    std::vector<double> out(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        out[i] = eval_.evaluate(points[i]); // all known now: cache reads
    return out;
}

double
BatchEvaluator::evaluate(const Point &p)
{
    return eval_.evaluate(p);
}

} // namespace ft
