#include "serve/batch_eval.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace ft {

BatchEvaluator::BatchEvaluator(Evaluator &eval, ThreadPool *pool,
                               int parallelism)
    : eval_(eval), pool_(pool), parallelism_(parallelism)
{}

int
BatchEvaluator::parallelism() const
{
    if (parallelism_ > 0)
        return parallelism_;
    return pool_ ? pool_->numThreads() : 1;
}

std::vector<double>
BatchEvaluator::evaluate(const std::vector<Point> &points)
{
    // Fresh work: the first occurrence of each not-yet-known point, in
    // submission order. Later duplicates read the committed value. Each
    // point is hashed exactly once; the key is reused for the dedup
    // probe, the commit, and the final cache read.
    fresh_.clear();
    batchKeys_.clear();
    keys_.resize(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        keys_[i] = points[i].key64();
        if (eval_.known(keys_[i]))
            continue;
        if (batchKeys_.insert(keys_[i]).second)
            fresh_.push_back(i);
    }

    if (!fresh_.empty()) {
        const ObsContext &obs = eval_.obs();
        if (obs.trace) {
            obs.trace->begin(
                "batch_evaluate", eval_.simulatedSeconds(),
                {tint("batch", static_cast<int64_t>(points.size())),
                 tint("fresh", static_cast<int64_t>(fresh_.size()))});
        }
        scores_.resize(fresh_.size());
        if (pool_ && pool_->numThreads() > 1 && fresh_.size() > 1) {
            const size_t workers =
                std::min<size_t>(pool_->numThreads(), fresh_.size());
            if (scratch_.size() < workers)
                scratch_.resize(workers);
            pool_->parallelFor(fresh_.size(), [&](size_t w, size_t j) {
                scores_[j] =
                    eval_.scoreOnly(points[fresh_[j]], scratch_[w]);
            });
        } else {
            if (scratch_.empty())
                scratch_.resize(1);
            for (size_t j = 0; j < fresh_.size(); ++j)
                scores_[j] =
                    eval_.scoreOnly(points[fresh_[j]], scratch_[0]);
        }

        // Parallel measurement: the batch takes ceil(n / parallelism)
        // rounds of one measureCost each, spread evenly over the curve's
        // per-point entries.
        const double n = static_cast<double>(fresh_.size());
        const double rounds = std::ceil(n / parallelism());
        const double per_point = rounds * eval_.measureCost() / n;
        for (size_t j = 0; j < fresh_.size(); ++j)
            eval_.commitMeasured(points[fresh_[j]], keys_[fresh_[j]],
                                 scores_[j], per_point);
        if (obs.trace)
            obs.trace->end("batch_evaluate", eval_.simulatedSeconds());
        if (obs.metrics) {
            obs.metrics->counter("eval.batches").add();
            obs.metrics->counter("eval.fresh_points").add(fresh_.size());
            obs.metrics
                ->histogram("eval.batch_size",
                            {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
                .observe(static_cast<double>(fresh_.size()));
        }
    }

    std::vector<double> out(points.size());
    for (size_t i = 0; i < points.size(); ++i)
        out[i] = eval_.evaluate(points[i], keys_[i]); // cache reads
    return out;
}

double
BatchEvaluator::evaluate(const Point &p)
{
    return eval_.evaluate(p);
}

} // namespace ft
