#include "serve/service.h"

#include <sstream>

#include "analysis/static_analyzer.h"
#include "support/logging.h"

namespace ft {

TuningService::TuningService(const ServiceOptions &options)
    : options_(options),
      evalPool_(options.evalThreads),
      requestPool_(options.requestThreads),
      requests_(metrics_.counter("service.requests")),
      resultCacheHits_(metrics_.counter("service.result_cache_hits")),
      persistentCacheHits_(
          metrics_.counter("service.persistent_cache_hits")),
      coalescedJoins_(metrics_.counter("service.coalesced_joins")),
      tuningRuns_(metrics_.counter("service.tuning_runs")),
      evaluations_(metrics_.counter("service.evaluations")),
      failures_(metrics_.counter("service.failures")),
      retries_(metrics_.counter("service.retries")),
      timeouts_(metrics_.counter("service.timeouts")),
      quarantined_(metrics_.counter("service.quarantined")),
      degradedReports_(metrics_.counter("service.degraded_reports"))
{}

std::string
TuningService::requestKey(const Operation &anchor, const Target &target,
                          const TuneOptions &options)
{
    std::ostringstream oss;
    const ExploreOptions &e = options.explore;
    oss << tuningKeyFor(anchor, target.deviceName()) << "#"
        << methodName(options.method)
        << "|trials=" << e.trials
        << "|starts=" << e.startingPoints
        << "|warmup=" << e.warmupPoints
        << "|seed=" << e.seed
        << "|target=" << e.targetGflops
        << "|tmpl=" << options.templateRestricted
        << "|deadline=" << e.deadlineSimSeconds
        << "|ckpt=" << e.checkpointPath;
    if (!e.seedPoints.empty()) {
        // Seeded starts steer the search, so two requests differing only
        // in their seed points must not coalesce; the 64-bit point keys
        // are a compact stand-in for the coordinate lists.
        oss << "|seeds=" << std::hex;
        for (const Point &p : e.seedPoints)
            oss << p.key64() << ",";
        oss << std::dec;
    }
    // The fault profile and retry policy shape the result; they are part
    // of the request identity.
    const ResilienceOptions &r = e.resilience;
    if (r.injector && r.injector->profile().enabled()) {
        oss << "|faults=" << r.injector->profile().fingerprint()
            << "|retries=" << r.maxRetries
            << "|backoff=" << r.backoffBaseSeconds
            << "|tdl=" << r.trialDeadlineSeconds
            << "|rep=" << r.repeats;
    }
    return oss.str();
}

const TuneReport *
TuningService::lruGet(const std::string &key)
{
    auto it = lruIndex_.find(key);
    if (it == lruIndex_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &lru_.front().second;
}

void
TuningService::lruPut(const std::string &key, const TuneReport &report)
{
    auto it = lruIndex_.find(key);
    if (it != lruIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        lru_.front().second = report;
        return;
    }
    lru_.emplace_front(key, report);
    lruIndex_[key] = lru_.begin();
    while (lru_.size() > options_.resultCacheCapacity) {
        lruIndex_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

TuneReport
TuningService::tuneAnchor(const Operation &anchor, const Target &target,
                          TuneOptions options)
{
    const std::string key = requestKey(anchor, target, options);
    requests_.add();
    metrics_.counter("service.method." + methodName(options.method)).add();
    std::promise<TuneReport> promise;
    std::shared_future<TuneReport> shared;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (const TuneReport *hit = lruGet(key)) {
            resultCacheHits_.add();
            TuneReport report = *hit;
            report.fromCache = true;
            return report;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            coalescedJoins_.add();
            shared = it->second;
        } else {
            tuningRuns_.add();
            owner = true;
            shared = promise.get_future().share();
            inflight_.emplace(key, shared);
        }
    }
    if (!owner) {
        // A joiner: the owner's in-flight run produces the report.
        return shared.get();
    }

    // This thread owns the run: route measurement through the shared
    // evaluation pool and the persistent cache through the tuner.
    if (options_.persistentCache && !options.cache)
        options.cache = options_.persistentCache;
    options.explore.evalPool = &evalPool_;
    if (options.explore.measureParallelism == 0)
        options.explore.measureParallelism = evalPool_.numThreads();
    // A request without its own registry aggregates its exploration
    // metrics into the service-wide one. Traces stay per-request: a
    // shared timeline would interleave concurrent runs.
    if (!options.explore.obs.metrics)
        options.explore.obs.metrics = &metrics_;
    TuneReport report = ft::tuneOp(anchor, target, options);
    evaluations_.add(static_cast<uint64_t>(report.trials));
    failures_.add(report.failures);
    retries_.add(report.retries);
    timeouts_.add(report.timeouts);
    quarantined_.add(report.quarantined);
    if (report.degraded)
        degradedReports_.add();
    if (report.fromCache)
        persistentCacheHits_.add();
    {
        std::lock_guard<std::mutex> lock(mu_);
        lruPut(key, report);
        inflight_.erase(key);
    }
    promise.set_value(report);
    return report;
}

TuneReport
TuningService::tune(const Tensor &output, const Target &target,
                    TuneOptions options)
{
    MiniGraph graph(output);
    return tuneAnchor(anchorOp(graph), target, std::move(options));
}

std::future<TuneReport>
TuningService::submit(const Tensor &output, const Target &target,
                      TuneOptions options)
{
    auto task = std::make_shared<std::packaged_task<TuneReport()>>(
        [this, output, target, options = std::move(options)]() mutable {
            return tune(output, target, std::move(options));
        });
    std::future<TuneReport> future = task->get_future();
    requestPool_.submit([task] { (*task)(); });
    return future;
}

ServiceStats
TuningService::stats() const
{
    ServiceStats out;
    out.evalQueueDepth = evalPool_.queueDepth();
    // One registry snapshot feeds every counter field: no torn reads,
    // no counter observed mid-update while runs complete concurrently.
    out.metrics = metrics_.snapshot();
    out.requests = out.metrics.counter("service.requests");
    out.resultCacheHits = out.metrics.counter("service.result_cache_hits");
    out.persistentCacheHits =
        out.metrics.counter("service.persistent_cache_hits");
    out.coalescedJoins = out.metrics.counter("service.coalesced_joins");
    out.tuningRuns = out.metrics.counter("service.tuning_runs");
    out.evaluations = out.metrics.counter("service.evaluations");
    out.failures = out.metrics.counter("service.failures");
    out.retries = out.metrics.counter("service.retries");
    out.timeouts = out.metrics.counter("service.timeouts");
    out.quarantined = out.metrics.counter("service.quarantined");
    out.degradedReports = out.metrics.counter("service.degraded_reports");
    std::lock_guard<std::mutex> lock(mu_);
    out.inflight = inflight_.size();
    out.resultCacheSize = lru_.size();
    return out;
}

} // namespace ft
