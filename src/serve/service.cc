#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "analysis/static_analyzer.h"
#include "support/logging.h"

namespace ft {

namespace {

/**
 * FNV-1a request fingerprinting. Same constants as Point::key64(); the
 * collision-checked identity string behind each slot makes an unlucky
 * 64-bit collision a cache miss, never a wrong answer.
 */
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void
fnvU64(uint64_t &h, uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
fnvStr(uint64_t &h, const std::string &s)
{
    fnvU64(h, s.size());
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

void
fnvReal(uint64_t &h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fnvU64(h, bits);
}

} // namespace

TuningService::TuningService(const ServiceOptions &options)
    : options_(options),
      evalPool_(options.evalThreads),
      requestPool_(options.requestThreads),
      requests_(metrics_.counter("service.requests")),
      resultCacheHits_(metrics_.counter("service.result_cache_hits")),
      persistentCacheHits_(
          metrics_.counter("service.persistent_cache_hits")),
      coalescedJoins_(metrics_.counter("service.coalesced_joins")),
      tuningRuns_(metrics_.counter("service.tuning_runs")),
      evaluations_(metrics_.counter("service.evaluations")),
      failures_(metrics_.counter("service.failures")),
      retries_(metrics_.counter("service.retries")),
      timeouts_(metrics_.counter("service.timeouts")),
      quarantined_(metrics_.counter("service.quarantined")),
      degradedReports_(metrics_.counter("service.degraded_reports")),
      familyRequests_(metrics_.counter("service.family_requests")),
      dispatchHits_(metrics_.counter("service.dispatch_hits")),
      brownoutServed_(metrics_.counter("service.brownout_served")),
      graphRequests_(metrics_.counter("service.graph_requests")),
      graphCacheHits_(metrics_.counter("service.graph_cache_hits"))
{
    if (!options_.clock) {
        options_.clock = [] {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now()
                           .time_since_epoch())
                .count();
        };
    }
    AdmissionOptions admission = options_.admission;
    if (admission.workers <= 0)
        admission.workers = std::max(1, options_.requestThreads);
    if (!admission.metrics)
        admission.metrics = &metrics_;
    admission_ = std::make_unique<AdmissionController>(admission);
    if (options_.enableCostModel) {
        costModel_ = std::make_unique<CostModel>(options_.costModel);
        if (!options_.costModel.persistPath.empty())
            costModel_->load(); // a missing/fresh journal is fine
        if (!options_.costModel.syncRefit)
            costModel_->startBackgroundRefit();
    }
    if (!options_.dispatchDir.empty())
        reloadDispatchTables();
}

uint64_t
TuningService::requestFingerprint(const Operation &anchor,
                                  const Target &target,
                                  const TuneOptions &options)
{
    FT_ASSERT(!anchor->isPlaceholder(), "request fingerprint of placeholder");
    const auto *c = static_cast<const ComputeOp *>(anchor.get());
    const ExploreOptions &e = options.explore;
    uint64_t h = kFnvOffset;
    // Operator + shape + device: the tuningKeyFor() fields, hashed from
    // the raw values instead of an assembled string.
    fnvStr(h, anchor->name());
    fnvU64(h, c->axis().size());
    for (const auto &iv : c->axis())
        fnvU64(h, static_cast<uint64_t>(iv->extent));
    fnvU64(h, c->reduceAxis().size());
    for (const auto &iv : c->reduceAxis())
        fnvU64(h, static_cast<uint64_t>(iv->extent));
    fnvStr(h, target.deviceName());
    // The options that shape the result.
    fnvU64(h, static_cast<uint64_t>(options.method));
    fnvU64(h, static_cast<uint64_t>(e.trials));
    fnvU64(h, static_cast<uint64_t>(e.startingPoints));
    fnvU64(h, static_cast<uint64_t>(e.warmupPoints));
    fnvU64(h, e.seed);
    fnvReal(h, e.targetGflops);
    fnvU64(h, options.templateRestricted ? 1 : 0);
    fnvReal(h, e.deadlineSimSeconds);
    fnvStr(h, e.checkpointPath);
    // A cost-model-guided run (warm-start and/or pruning) draws a
    // different schedule than a model-off run with the same options, so
    // neither the LRU nor coalescing may conflate the two.
    fnvU64(h, e.costModel != nullptr ? 1 : 0);
    fnvReal(h, e.prunerKeep);
    fnvU64(h, e.seedPoints.size());
    for (const Point &p : e.seedPoints)
        fnvU64(h, p.key64());
    const ResilienceOptions &r = e.resilience;
    if (r.injector && r.injector->profile().enabled()) {
        fnvStr(h, r.injector->profile().fingerprint());
        fnvU64(h, static_cast<uint64_t>(r.maxRetries));
        fnvReal(h, r.backoffBaseSeconds);
        fnvReal(h, r.trialDeadlineSeconds);
        fnvU64(h, static_cast<uint64_t>(r.repeats));
    }
    return h;
}

std::string
TuningService::requestIdentity(const Operation &anchor, const Target &target,
                               const TuneOptions &options)
{
    std::ostringstream oss;
    const ExploreOptions &e = options.explore;
    oss << tuningKeyFor(anchor, target.deviceName()) << "#"
        << methodName(options.method)
        << "|trials=" << e.trials
        << "|starts=" << e.startingPoints
        << "|warmup=" << e.warmupPoints
        << "|seed=" << e.seed
        << "|target=" << e.targetGflops
        << "|tmpl=" << options.templateRestricted
        << "|deadline=" << e.deadlineSimSeconds
        << "|ckpt=" << e.checkpointPath
        << "|cm=" << (e.costModel != nullptr)
        << "|prune=" << e.prunerKeep;
    if (!e.seedPoints.empty()) {
        // Seeded starts steer the search, so two requests differing only
        // in their seed points must not coalesce; the 64-bit point keys
        // are a compact stand-in for the coordinate lists.
        oss << "|seeds=" << std::hex;
        for (const Point &p : e.seedPoints)
            oss << p.key64() << ",";
        oss << std::dec;
    }
    // The fault profile and retry policy shape the result; they are part
    // of the request identity.
    const ResilienceOptions &r = e.resilience;
    if (r.injector && r.injector->profile().enabled()) {
        oss << "|faults=" << r.injector->profile().fingerprint()
            << "|retries=" << r.maxRetries
            << "|backoff=" << r.backoffBaseSeconds
            << "|tdl=" << r.trialDeadlineSeconds
            << "|rep=" << r.repeats;
    }
    return oss.str();
}

uint64_t
TuningService::familyFingerprint(const ShapeFamily &family,
                                 const Target &target,
                                 const FamilyTuneOptions &options)
{
    const ExploreOptions &e = options.explore;
    uint64_t h = kFnvOffset;
    fnvStr(h, family.name);
    fnvU64(h, static_cast<uint64_t>(family.var.lo));
    fnvU64(h, static_cast<uint64_t>(family.var.hi));
    fnvU64(h, static_cast<uint64_t>(family.var.bucketing));
    fnvU64(h, static_cast<uint64_t>(family.var.bucketWidth));
    fnvU64(h, static_cast<uint64_t>(family.dynamicAxis));
    fnvStr(h, target.deviceName());
    fnvU64(h, static_cast<uint64_t>(options.method));
    fnvU64(h, static_cast<uint64_t>(options.samplesPerBucket));
    fnvU64(h, static_cast<uint64_t>(e.trials));
    fnvU64(h, static_cast<uint64_t>(e.startingPoints));
    fnvU64(h, static_cast<uint64_t>(e.warmupPoints));
    fnvU64(h, e.seed);
    fnvReal(h, e.targetGflops);
    fnvReal(h, e.deadlineSimSeconds);
    fnvU64(h, options.space.templateRestricted ? 1 : 0);
    fnvU64(h, options.space.pow2Splits ? 1 : 0);
    fnvU64(h, options.space.exploreReorderUnroll ? 1 : 0);
    fnvU64(h, options.space.exploreCacheAt ? 1 : 0);
    fnvU64(h, e.costModel != nullptr ? 1 : 0);
    fnvReal(h, e.prunerKeep);
    return h;
}

std::string
TuningService::familyIdentity(const ShapeFamily &family, const Target &target,
                              const FamilyTuneOptions &options)
{
    std::ostringstream oss;
    const ExploreOptions &e = options.explore;
    oss << family.name << "[" << family.var.lo << "," << family.var.hi
        << ",b" << static_cast<int>(family.var.bucketing) << ","
        << family.var.bucketWidth << ",ax" << family.dynamicAxis << "]@"
        << target.deviceName() << "#" << methodName(options.method)
        << "|k=" << options.samplesPerBucket
        << "|trials=" << e.trials
        << "|starts=" << e.startingPoints
        << "|warmup=" << e.warmupPoints
        << "|seed=" << e.seed
        << "|target=" << e.targetGflops
        << "|deadline=" << e.deadlineSimSeconds
        << "|tmpl=" << options.space.templateRestricted
        << "|pow2=" << options.space.pow2Splits
        << "|ru=" << options.space.exploreReorderUnroll
        << "|ca=" << options.space.exploreCacheAt
        << "|cm=" << (e.costModel != nullptr)
        << "|prune=" << e.prunerKeep;
    return oss.str();
}

uint64_t
TuningService::dispatchFingerprint(const std::string &familyName,
                                   const std::string &device)
{
    uint64_t h = kFnvOffset;
    fnvStr(h, familyName);
    fnvStr(h, device);
    return h;
}

std::string
TuningService::dispatchIdentity(const std::string &familyName,
                                const std::string &device)
{
    return familyName + "@" + device;
}

const TuneReport *
TuningService::lruGet(uint64_t key, const std::string &identity)
{
    auto it = lruIndex_.find(key);
    if (it == lruIndex_.end())
        return nullptr;
    if (it->second->identity != identity)
        return nullptr; // fingerprint collision: a miss, never a wrong hit
    lru_.splice(lru_.begin(), lru_, it->second);
    return &lru_.front().report;
}

void
TuningService::lruPut(uint64_t key, const std::string &identity,
                      const TuneReport &report)
{
    auto it = lruIndex_.find(key);
    if (it != lruIndex_.end()) {
        if (it->second->identity != identity)
            return; // collision: leave the resident entry alone
        lru_.splice(lru_.begin(), lru_, it->second);
        lru_.front().report = report;
        return;
    }
    lru_.emplace_front(CachedReport{key, identity, report});
    lruIndex_[key] = lru_.begin();
    while (lru_.size() > options_.resultCacheCapacity) {
        lruIndex_.erase(lru_.back().key);
        lru_.pop_back();
    }
}

TuneReport
TuningService::tuneAnchor(const Operation &anchor, const Target &target,
                          TuneOptions options)
{
    // Inject the service's cost model before fingerprinting so the
    // model-on bit is part of the request key.
    if (costModel_ && !options.explore.costModel)
        options.explore.costModel = costModel_.get();
    const uint64_t key = requestFingerprint(anchor, target, options);
    requests_.add();
    metrics_.counter("service.method." + methodName(options.method)).add();
    // The identity string is materialized only when a fingerprint slot
    // is actually hit (collision check) or a run is registered — the
    // pure-miss probe and the fingerprint itself never assemble strings.
    std::string identity;
    auto identityOf = [&]() -> const std::string & {
        if (identity.empty())
            identity = requestIdentity(anchor, target, options);
        return identity;
    };
    std::promise<TuneReport> promise;
    std::shared_future<TuneReport> shared;
    bool owner = false;
    bool registered = false;
    {
        MutexLock lock(mu_);
        if (lruIndex_.count(key)) {
            if (const TuneReport *hit = lruGet(key, identityOf())) {
                resultCacheHits_.add();
                TuneReport report = *hit;
                report.fromCache = true;
                return report;
            }
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end() && it->second.identity == identityOf()) {
            coalescedJoins_.add();
            shared = it->second.future;
        } else {
            tuningRuns_.add();
            owner = true;
            shared = promise.get_future().share();
            if (it == inflight_.end()) {
                inflight_.emplace(key,
                                  InflightRun{identityOf(), shared});
                registered = true;
            }
            // else: fingerprint collision with a different in-flight
            // request — run standalone without coalescing.
        }
    }
    if (!owner) {
        // A joiner: the owner's in-flight run produces the report.
        return shared.get();
    }

    // This thread owns the run: route measurement through the shared
    // evaluation pool and the persistent cache through the tuner.
    if (options_.persistentCache && !options.cache)
        options.cache = options_.persistentCache;
    options.explore.evalPool = &evalPool_;
    if (options.explore.measureParallelism == 0)
        options.explore.measureParallelism = evalPool_.numThreads();
    // A request without its own registry aggregates its exploration
    // metrics into the service-wide one. Traces stay per-request: a
    // shared timeline would interleave concurrent runs.
    if (!options.explore.obs.metrics)
        options.explore.obs.metrics = &metrics_;
    TuneReport report = ft::tuneOp(anchor, target, options);
    evaluations_.add(static_cast<uint64_t>(report.trials));
    failures_.add(report.failures);
    retries_.add(report.retries);
    timeouts_.add(report.timeouts);
    quarantined_.add(report.quarantined);
    if (report.degraded)
        degradedReports_.add();
    if (report.fromCache)
        persistentCacheHits_.add();
    {
        MutexLock lock(mu_);
        lruPut(key, identityOf(), report);
        if (registered)
            inflight_.erase(key);
    }
    promise.set_value(report);
    return report;
}

TuneReport
TuningService::tune(const Tensor &output, const Target &target,
                    TuneOptions options)
{
    MiniGraph graph(output);
    return tuneAnchor(anchorOp(graph), target, std::move(options));
}

std::future<TuneReport>
TuningService::submit(const Tensor &output, const Target &target,
                      TuneOptions options)
{
    auto task = std::make_shared<std::packaged_task<TuneReport()>>(
        [this, output, target, options = std::move(options)]() mutable {
            return tune(output, target, std::move(options));
        });
    std::future<TuneReport> future = task->get_future();
    requestPool_.submit([task] { (*task)(); });
    return future;
}

FamilyTuneReport
TuningService::runFamily(const ShapeFamily &family, const Target &target,
                         FamilyTuneOptions options)
{
    const uint64_t key = familyFingerprint(family, target, options);
    const std::string identity = familyIdentity(family, target, options);
    std::promise<FamilyTuneReport> promise;
    std::shared_future<FamilyTuneReport> shared;
    bool owner = false;
    bool registered = false;
    {
        MutexLock lock(mu_);
        auto it = familyInflight_.find(key);
        if (it != familyInflight_.end() && it->second.identity == identity) {
            coalescedJoins_.add();
            shared = it->second.future;
        } else {
            tuningRuns_.add();
            owner = true;
            shared = promise.get_future().share();
            if (it == familyInflight_.end()) {
                familyInflight_.emplace(
                    key, InflightFamilyRun{identity, shared});
                registered = true;
            }
        }
    }
    if (!owner)
        return shared.get();

    options.explore.evalPool = &evalPool_;
    if (options.explore.measureParallelism == 0)
        options.explore.measureParallelism = evalPool_.numThreads();
    if (!options.explore.obs.metrics)
        options.explore.obs.metrics = &metrics_;
    // One shared model across every bucket of the family: each bucket's
    // trials train it, later buckets warm-start from the earlier ones.
    if (costModel_ && !options.explore.costModel)
        options.explore.costModel = costModel_.get();
    FamilyTuneReport report = ft::tuneFamily(family, target, options);
    evaluations_.add(static_cast<uint64_t>(report.totalTrials));
    if (report.table.total())
        publishDispatchTable(family.name, report.table);
    {
        MutexLock lock(mu_);
        if (registered)
            familyInflight_.erase(key);
    }
    promise.set_value(report);
    return report;
}

uint64_t
TuningService::graphFingerprint(const graph::ComputeDag &dag,
                                const Target &target,
                                const TuneOptions &options)
{
    const ExploreOptions &e = options.explore;
    uint64_t h = kFnvOffset;
    // The DAG's own 64-bit fingerprint is the structural key; device and
    // the result-shaping options fold in on top.
    fnvU64(h, dag.fingerprint());
    fnvStr(h, target.deviceName());
    fnvU64(h, static_cast<uint64_t>(options.method));
    fnvU64(h, static_cast<uint64_t>(e.trials));
    fnvU64(h, static_cast<uint64_t>(e.startingPoints));
    fnvU64(h, static_cast<uint64_t>(e.warmupPoints));
    fnvU64(h, e.seed);
    fnvReal(h, e.targetGflops);
    fnvU64(h, options.templateRestricted ? 1 : 0);
    fnvReal(h, e.deadlineSimSeconds);
    fnvU64(h, e.costModel != nullptr ? 1 : 0);
    fnvReal(h, e.prunerKeep);
    return h;
}

std::string
TuningService::graphIdentity(const graph::ComputeDag &dag,
                             const Target &target,
                             const TuneOptions &options)
{
    std::ostringstream oss;
    const ExploreOptions &e = options.explore;
    oss << dag.spec() << "@" << target.deviceName() << "#"
        << methodName(options.method) << "|trials=" << e.trials
        << "|starts=" << e.startingPoints << "|warmup=" << e.warmupPoints
        << "|seed=" << e.seed << "|target=" << e.targetGflops
        << "|tmpl=" << options.templateRestricted
        << "|deadline=" << e.deadlineSimSeconds
        << "|cm=" << (e.costModel != nullptr)
        << "|prune=" << e.prunerKeep;
    return oss.str();
}

graph::DagTuneReport
TuningService::tuneDag(const graph::ComputeDag &dag, const Target &target,
                       TuneOptions options)
{
    graphRequests_.add();
    const uint64_t key = graphFingerprint(dag, target, options);
    const std::string identity = graphIdentity(dag, target, options);
    std::promise<graph::DagTuneReport> promise;
    std::shared_future<graph::DagTuneReport> shared;
    bool owner = false;
    bool registered = false;
    {
        MutexLock lock(mu_);
        auto cached = graphCache_.find(key);
        if (cached != graphCache_.end() &&
            cached->second.identity == identity) {
            graphCacheHits_.add();
            return cached->second.report;
        }
        auto it = graphInflight_.find(key);
        if (it != graphInflight_.end() &&
            it->second.identity == identity) {
            coalescedJoins_.add();
            shared = it->second.future;
        } else {
            tuningRuns_.add();
            owner = true;
            shared = promise.get_future().share();
            if (it == graphInflight_.end()) {
                graphInflight_.emplace(key,
                                       InflightGraphRun{identity, shared});
                registered = true;
            }
        }
    }
    if (!owner)
        return shared.get();

    if (!options.cache)
        options.cache = options_.persistentCache;
    options.explore.evalPool = &evalPool_;
    if (options.explore.measureParallelism == 0)
        options.explore.measureParallelism = evalPool_.numThreads();
    if (!options.explore.obs.metrics)
        options.explore.obs.metrics = &metrics_;
    if (costModel_ && !options.explore.costModel)
        options.explore.costModel = costModel_.get();
    graph::DagTuneReport report = graph::tuneDag(dag, target, options);
    for (const auto &sub : report.groups) {
        if (!sub.tuned)
            continue;
        evaluations_.add(static_cast<uint64_t>(sub.report.trials));
        if (sub.report.fromCache)
            persistentCacheHits_.add();
    }
    {
        MutexLock lock(mu_);
        graphCache_[key] = GraphSlot{identity, report};
        if (registered)
            graphInflight_.erase(key);
    }
    promise.set_value(report);
    return report;
}

namespace {

/** Filesystem-safe name for a (family, device) dispatch slot. */
std::string
dispatchFileName(const std::string &familyName, const std::string &device)
{
    std::string name = familyName + "@" + device;
    for (char &c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        c == '@' || c == '.';
        if (!ok)
            c = '_';
    }
    return name + ".dispatch";
}

} // namespace

void
TuningService::publishDispatchTable(const std::string &familyName,
                                    const DispatchTable &table)
{
    const std::string &device = table.device();
    {
        MutexLock lock(mu_);
        const uint64_t slot = dispatchFingerprint(familyName, device);
        dispatch_[slot] =
            DispatchSlot{dispatchIdentity(familyName, device), table};
    }
    if (options_.dispatchDir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(options_.dispatchDir, ec);
    const std::string path =
        (std::filesystem::path(options_.dispatchDir) /
         dispatchFileName(familyName, device))
            .string();
    if (!table.saveToFile(path))
        warn("could not persist dispatch table to ", path);
}

void
TuningService::reloadDispatchTables()
{
    std::error_code ec;
    std::filesystem::directory_iterator dir(options_.dispatchDir, ec);
    if (ec)
        return; // no directory yet: nothing published before
    size_t loaded = 0;
    for (const auto &entry : dir) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".dispatch")
            continue;
        auto table = DispatchTable::loadFromFile(entry.path().string());
        if (!table) {
            warn("skipping unreadable dispatch table ",
                 entry.path().string());
            continue;
        }
        MutexLock lock(mu_);
        const uint64_t slot =
            dispatchFingerprint(table->familyName(), table->device());
        dispatch_[slot] = DispatchSlot{
            dispatchIdentity(table->familyName(), table->device()),
            std::move(*table)};
        ++loaded;
    }
    if (loaded)
        metrics_.counter("service.dispatch_reloaded")
            .add(static_cast<uint64_t>(loaded));
}

FamilyTuneReport
TuningService::tuneFamily(const ShapeFamily &family, const Target &target,
                          FamilyTuneOptions options)
{
    familyRequests_.add();
    return runFamily(family, target, std::move(options));
}

FamilyServeResult
TuningService::serveShape(const ShapeFamily &family, int64_t shape,
                          const Target &target, FamilyTuneOptions options)
{
    FT_ASSERT(family.var.contains(shape), "shape ", shape,
              " outside the declared range of family ", family.name);
    familyRequests_.add();
    const uint64_t slot =
        dispatchFingerprint(family.name, target.deviceName());
    const std::string slotIdentity =
        dispatchIdentity(family.name, target.deviceName());
    {
        MutexLock lock(mu_);
        auto it = dispatch_.find(slot);
        if (it != dispatch_.end() && it->second.identity == slotIdentity) {
            const DispatchEntry &entry = it->second.table.lookup(shape);
            dispatchHits_.add();
            FamilyServeResult out;
            out.config = entry.config;
            adaptSplitToExtent(out.config, family.dynamicAxis, shape);
            out.gflops = entry.gflops;
            out.bucket = {entry.lo, entry.hi};
            out.fromDispatch = true;
            return out;
        }
    }
    // No table yet: tune the family (coalescing with concurrent
    // requests), then serve from the fresh table.
    FamilyTuneReport report = runFamily(family, target, std::move(options));
    const DispatchEntry &entry = report.table.lookup(shape);
    FamilyServeResult out;
    out.config = entry.config;
    adaptSplitToExtent(out.config, family.dynamicAxis, shape);
    out.gflops = entry.gflops;
    out.bucket = {entry.lo, entry.hi};
    out.fromDispatch = false;
    return out;
}

void
TuningService::propagateBudget(ExploreOptions &explore,
                               double budgetSeconds) const
{
    if (options_.simBudgetPerSecond <= 0.0 ||
        !std::isfinite(budgetSeconds))
        return;
    const double simBudget =
        std::max(0.0, budgetSeconds) * options_.simBudgetPerSecond;
    // The run-level simulated deadline: never extend one the caller
    // already set, only tighten.
    if (explore.deadlineSimSeconds <= 0.0 ||
        explore.deadlineSimSeconds > simBudget)
        explore.deadlineSimSeconds = simBudget;
    // No single trial may consume the whole remaining budget either.
    if (explore.resilience.trialDeadlineSeconds > simBudget)
        explore.resilience.trialDeadlineSeconds = simBudget;
}

AdmittedReport
TuningService::tuneAnchorAdmitted(const Operation &anchor,
                                  const Target &target, TuneOptions options,
                                  RequestOptions request)
{
    const std::string opKey = tuningKeyFor(anchor, target.deviceName());
    const double now = options_.clock();
    const double deadline = now + request.deadlineSeconds;
    const AdmissionDecision decision =
        admission_->admit(opKey, request.priority, now, deadline);

    AdmittedReport out;
    out.outcome = decision.outcome;
    out.reason = decision.reason;
    switch (decision.outcome) {
      case AdmissionOutcome::Shed:
      case AdmissionOutcome::BreakerOpen:
        return out;
      case AdmissionOutcome::Brownout: {
        // Degraded mode: only the LRU report cache may answer — never
        // start fresh tuning work while saturated.
        const uint64_t key = requestFingerprint(anchor, target, options);
        const std::string identity =
            requestIdentity(anchor, target, options);
        MutexLock lock(mu_);
        if (const TuneReport *hit = lruGet(key, identity)) {
            resultCacheHits_.add();
            brownoutServed_.add();
            out.report = *hit;
            out.report->fromCache = true;
            out.degradedAnswer = true;
            out.reason.clear();
        }
        return out;
      }
      case AdmissionOutcome::Admitted:
        break;
    }

    propagateBudget(options.explore, decision.budgetSeconds);
    bool success = false;
    try {
        out.report = tuneAnchor(anchor, target, std::move(options));
        success = out.report->gflops > 0.0;
    } catch (...) {
        admission_->onComplete(opKey, decision.ticket, options_.clock(),
                               false);
        throw;
    }
    admission_->onComplete(opKey, decision.ticket, options_.clock(),
                           success);
    if (!success) {
        out.outcome = AdmissionOutcome::Shed;
        out.reason = "code=FT-ADM-RUN-FAILED why=\"tuning run produced no "
                     "valid schedule\"";
        out.report.reset();
    }
    return out;
}

AdmittedReport
TuningService::tuneAdmitted(const Tensor &output, const Target &target,
                            TuneOptions options, RequestOptions request)
{
    MiniGraph graph(output);
    return tuneAnchorAdmitted(anchorOp(graph), target, std::move(options),
                              request);
}

std::future<AdmittedReport>
TuningService::submitAdmitted(const Tensor &output, const Target &target,
                              TuneOptions options, RequestOptions request)
{
    // The admission decision happens here, synchronously: a shed
    // request is refused before it ever occupies a request-pool slot.
    MiniGraph graph(output);
    const Operation anchor = anchorOp(graph);
    const std::string opKey = tuningKeyFor(anchor, target.deviceName());
    const double now = options_.clock();
    const double deadline = now + request.deadlineSeconds;
    const AdmissionDecision decision =
        admission_->admit(opKey, request.priority, now, deadline);

    if (decision.outcome != AdmissionOutcome::Admitted) {
        AdmittedReport out;
        out.outcome = decision.outcome;
        out.reason = decision.reason;
        if (decision.outcome == AdmissionOutcome::Brownout) {
            const uint64_t key =
                requestFingerprint(anchor, target, options);
            const std::string identity =
                requestIdentity(anchor, target, options);
            MutexLock lock(mu_);
            if (const TuneReport *hit = lruGet(key, identity)) {
                resultCacheHits_.add();
                brownoutServed_.add();
                out.report = *hit;
                out.report->fromCache = true;
                out.degradedAnswer = true;
                out.reason.clear();
            }
        }
        std::promise<AdmittedReport> ready;
        ready.set_value(std::move(out));
        return ready.get_future();
    }

    propagateBudget(options.explore, decision.budgetSeconds);
    auto task = std::make_shared<std::packaged_task<AdmittedReport()>>(
        [this, anchor, target, opKey, ticket = decision.ticket,
         options = std::move(options)]() mutable {
            AdmittedReport out;
            out.outcome = AdmissionOutcome::Admitted;
            bool success = false;
            try {
                out.report = tuneAnchor(anchor, target, std::move(options));
                success = out.report->gflops > 0.0;
            } catch (...) {
                admission_->onComplete(opKey, ticket, options_.clock(),
                                       false);
                throw;
            }
            admission_->onComplete(opKey, ticket, options_.clock(),
                                   success);
            if (!success) {
                out.outcome = AdmissionOutcome::Shed;
                out.reason = "code=FT-ADM-RUN-FAILED why=\"tuning run "
                             "produced no valid schedule\"";
                out.report.reset();
            }
            return out;
        });
    std::future<AdmittedReport> future = task->get_future();
    requestPool_.submit([task] { (*task)(); });
    return future;
}

AdmittedServeResult
TuningService::serveShapeAdmitted(const ShapeFamily &family, int64_t shape,
                                  const Target &target,
                                  FamilyTuneOptions options,
                                  RequestOptions request)
{
    const std::string opKey =
        dispatchIdentity(family.name, target.deviceName());
    const double now = options_.clock();
    const double deadline = now + request.deadlineSeconds;
    const AdmissionDecision decision =
        admission_->admit(opKey, request.priority, now, deadline);

    AdmittedServeResult out;
    out.outcome = decision.outcome;
    out.reason = decision.reason;

    // A published dispatch table answers a lookup without tuning — in
    // brownout it is the *only* permitted answer; on an admitted
    // request it is simply the fast path.
    auto fromTable = [&]() -> bool {
        const uint64_t slot =
            dispatchFingerprint(family.name, target.deviceName());
        MutexLock lock(mu_);
        auto it = dispatch_.find(slot);
        if (it == dispatch_.end() || it->second.identity != opKey ||
            !it->second.table.var().contains(shape))
            return false;
        const DispatchEntry &entry = it->second.table.lookup(shape);
        dispatchHits_.add();
        FamilyServeResult result;
        result.config = entry.config;
        adaptSplitToExtent(result.config, family.dynamicAxis, shape);
        result.gflops = entry.gflops;
        result.bucket = {entry.lo, entry.hi};
        result.fromDispatch = true;
        out.result = std::move(result);
        return true;
    };

    switch (decision.outcome) {
      case AdmissionOutcome::Shed:
      case AdmissionOutcome::BreakerOpen:
        return out;
      case AdmissionOutcome::Brownout:
        familyRequests_.add();
        if (fromTable()) {
            brownoutServed_.add();
            out.degradedAnswer = true;
            out.reason.clear();
        }
        return out;
      case AdmissionOutcome::Admitted:
        break;
    }

    familyRequests_.add();
    if (fromTable()) {
        admission_->onComplete(opKey, decision.ticket, options_.clock(),
                               true);
        out.reason.clear();
        return out;
    }
    propagateBudget(options.explore, decision.budgetSeconds);
    bool success = false;
    try {
        FamilyTuneReport report =
            runFamily(family, target, std::move(options));
        const DispatchEntry &entry = report.table.lookup(shape);
        FamilyServeResult result;
        result.config = entry.config;
        adaptSplitToExtent(result.config, family.dynamicAxis, shape);
        result.gflops = entry.gflops;
        result.bucket = {entry.lo, entry.hi};
        result.fromDispatch = false;
        out.result = std::move(result);
        success = true;
    } catch (...) {
        admission_->onComplete(opKey, decision.ticket, options_.clock(),
                               false);
        throw;
    }
    admission_->onComplete(opKey, decision.ticket, options_.clock(),
                           success);
    out.reason.clear();
    return out;
}

std::optional<DispatchTable>
TuningService::dispatchTableFor(const std::string &familyName,
                                const std::string &device) const
{
    const uint64_t slot = dispatchFingerprint(familyName, device);
    MutexLock lock(mu_);
    auto it = dispatch_.find(slot);
    if (it == dispatch_.end() ||
        it->second.identity != dispatchIdentity(familyName, device))
        return std::nullopt;
    return it->second.table;
}

ServiceStats
TuningService::stats() const
{
    ServiceStats out;
    out.evalQueueDepth = evalPool_.queueDepth();
    // One registry snapshot feeds every counter field: no torn reads,
    // no counter observed mid-update while runs complete concurrently.
    out.metrics = metrics_.snapshot();
    out.requests = out.metrics.counter("service.requests");
    out.resultCacheHits = out.metrics.counter("service.result_cache_hits");
    out.persistentCacheHits =
        out.metrics.counter("service.persistent_cache_hits");
    out.coalescedJoins = out.metrics.counter("service.coalesced_joins");
    out.tuningRuns = out.metrics.counter("service.tuning_runs");
    out.evaluations = out.metrics.counter("service.evaluations");
    out.failures = out.metrics.counter("service.failures");
    out.retries = out.metrics.counter("service.retries");
    out.timeouts = out.metrics.counter("service.timeouts");
    out.quarantined = out.metrics.counter("service.quarantined");
    out.degradedReports = out.metrics.counter("service.degraded_reports");
    out.familyRequests = out.metrics.counter("service.family_requests");
    out.dispatchHits = out.metrics.counter("service.dispatch_hits");
    out.brownoutServed = out.metrics.counter("service.brownout_served");
    out.graphRequests = out.metrics.counter("service.graph_requests");
    out.graphCacheHits = out.metrics.counter("service.graph_cache_hits");
    out.admission = admission_->stats();
    if (costModel_) {
        out.costModelTrials = costModel_->numTrials();
        out.costModelRefits = costModel_->refits();
        out.costModelReady = costModel_->ready();
    }
    MutexLock lock(mu_);
    out.inflight = inflight_.size() + familyInflight_.size() +
                   graphInflight_.size();
    out.resultCacheSize = lru_.size();
    out.dispatchTables = dispatch_.size();
    return out;
}

} // namespace ft
