#include "serve/service.h"

#include <sstream>

#include "analysis/static_analyzer.h"
#include "support/logging.h"

namespace ft {

TuningService::TuningService(const ServiceOptions &options)
    : options_(options),
      evalPool_(options.evalThreads),
      requestPool_(options.requestThreads)
{}

std::string
TuningService::requestKey(const Operation &anchor, const Target &target,
                          const TuneOptions &options)
{
    std::ostringstream oss;
    const ExploreOptions &e = options.explore;
    oss << tuningKeyFor(anchor, target.deviceName()) << "#"
        << methodName(options.method)
        << "|trials=" << e.trials
        << "|starts=" << e.startingPoints
        << "|warmup=" << e.warmupPoints
        << "|seed=" << e.seed
        << "|target=" << e.targetGflops
        << "|tmpl=" << options.templateRestricted
        << "|deadline=" << e.deadlineSimSeconds
        << "|ckpt=" << e.checkpointPath;
    // The fault profile and retry policy shape the result; they are part
    // of the request identity.
    const ResilienceOptions &r = e.resilience;
    if (r.injector && r.injector->profile().enabled()) {
        oss << "|faults=" << r.injector->profile().fingerprint()
            << "|retries=" << r.maxRetries
            << "|backoff=" << r.backoffBaseSeconds
            << "|tdl=" << r.trialDeadlineSeconds
            << "|rep=" << r.repeats;
    }
    return oss.str();
}

const TuneReport *
TuningService::lruGet(const std::string &key)
{
    auto it = lruIndex_.find(key);
    if (it == lruIndex_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &lru_.front().second;
}

void
TuningService::lruPut(const std::string &key, const TuneReport &report)
{
    auto it = lruIndex_.find(key);
    if (it != lruIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        lru_.front().second = report;
        return;
    }
    lru_.emplace_front(key, report);
    lruIndex_[key] = lru_.begin();
    while (lru_.size() > options_.resultCacheCapacity) {
        lruIndex_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

TuneReport
TuningService::tuneAnchor(const Operation &anchor, const Target &target,
                          TuneOptions options)
{
    const std::string key = requestKey(anchor, target, options);
    std::promise<TuneReport> promise;
    std::shared_future<TuneReport> shared;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
        if (const TuneReport *hit = lruGet(key)) {
            ++resultCacheHits_;
            TuneReport report = *hit;
            report.fromCache = true;
            return report;
        }
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            ++coalescedJoins_;
            shared = it->second;
        } else {
            ++tuningRuns_;
            owner = true;
            shared = promise.get_future().share();
            inflight_.emplace(key, shared);
        }
    }
    if (!owner) {
        // A joiner: the owner's in-flight run produces the report.
        return shared.get();
    }

    // This thread owns the run: route measurement through the shared
    // evaluation pool and the persistent cache through the tuner.
    if (options_.persistentCache && !options.cache)
        options.cache = options_.persistentCache;
    options.explore.evalPool = &evalPool_;
    if (options.explore.measureParallelism == 0)
        options.explore.measureParallelism = evalPool_.numThreads();
    TuneReport report = ft::tuneOp(anchor, target, options);
    {
        std::lock_guard<std::mutex> lock(mu_);
        evaluations_ += static_cast<uint64_t>(report.trials);
        failures_ += report.failures;
        retries_ += report.retries;
        timeouts_ += report.timeouts;
        quarantined_ += report.quarantined;
        if (report.degraded)
            ++degradedReports_;
        if (report.fromCache)
            ++persistentCacheHits_;
        lruPut(key, report);
        inflight_.erase(key);
    }
    promise.set_value(report);
    return report;
}

TuneReport
TuningService::tune(const Tensor &output, const Target &target,
                    TuneOptions options)
{
    MiniGraph graph(output);
    return tuneAnchor(anchorOp(graph), target, std::move(options));
}

std::future<TuneReport>
TuningService::submit(const Tensor &output, const Target &target,
                      TuneOptions options)
{
    auto task = std::make_shared<std::packaged_task<TuneReport()>>(
        [this, output, target, options = std::move(options)]() mutable {
            return tune(output, target, std::move(options));
        });
    std::future<TuneReport> future = task->get_future();
    requestPool_.submit([task] { (*task)(); });
    return future;
}

ServiceStats
TuningService::stats() const
{
    ServiceStats out;
    out.evalQueueDepth = evalPool_.queueDepth();
    std::lock_guard<std::mutex> lock(mu_);
    out.requests = requests_;
    out.resultCacheHits = resultCacheHits_;
    out.persistentCacheHits = persistentCacheHits_;
    out.coalescedJoins = coalescedJoins_;
    out.tuningRuns = tuningRuns_;
    out.evaluations = evaluations_;
    out.failures = failures_;
    out.retries = retries_;
    out.timeouts = timeouts_;
    out.quarantined = quarantined_;
    out.degradedReports = degradedReports_;
    out.inflight = inflight_.size();
    out.resultCacheSize = lru_.size();
    return out;
}

} // namespace ft
