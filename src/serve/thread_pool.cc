#include "serve/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "support/logging.h"

namespace ft {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : capacity_(std::max<size_t>(queue_capacity, 1))
{
    int count = std::max(num_threads, 1);
    threads_.reserve(count);
    for (int i = 0; i < count; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    jobReady_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    FT_ASSERT(job, "submitting an empty job");
    {
        std::unique_lock<std::mutex> lock(mu_);
        FT_ASSERT(!stopping_, "submit on a stopping thread pool");
        queueSpace_.wait(lock, [this] { return queue_.size() < capacity_; });
        queue_.push_back(std::move(job));
    }
    jobReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    parallelFor(n, [&body](size_t, size_t i) { body(i); });
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    const size_t workers = std::min<size_t>(threads_.size(), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(0, i);
        return;
    }
    // Per-call completion latch: the pool may be running unrelated jobs,
    // so wait() would over-wait. The latch is shared-owned by every job
    // because the caller may return (and unwind its frame) while the
    // last worker is still inside notify.
    struct Latch
    {
        std::atomic<size_t> next{0};
        std::mutex mu;
        std::condition_variable cv;
        size_t done = 0;
    };
    auto latch = std::make_shared<Latch>();
    for (size_t w = 0; w < workers; ++w) {
        submit([latch, &body, n, w] {
            for (size_t i = latch->next.fetch_add(1); i < n;
                 i = latch->next.fetch_add(1)) {
                body(w, i);
            }
            std::lock_guard<std::mutex> lock(latch->mu);
            ++latch->done;
            latch->cv.notify_one();
        });
    }
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->done == workers; });
}

size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

uint64_t
ThreadPool::completedJobs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobReady_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and fully drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        queueSpace_.notify_one();
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            ++completed_;
            if (queue_.empty() && active_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace ft
