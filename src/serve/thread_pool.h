/**
 * @file
 * A fixed-size worker pool with a bounded job queue.
 *
 * This is the concurrency primitive of the serving layer: simple FIFO
 * dispatch (no work stealing), a capacity-bounded queue so producers
 * back-pressure instead of growing memory without bound, and a
 * parallelFor helper used by the batch evaluator to score candidate
 * schedules concurrently (Section 5.2's parallel measurement).
 */
#ifndef FLEXTENSOR_SERVE_THREAD_POOL_H
#define FLEXTENSOR_SERVE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ft {

class ThreadPool
{
  public:
    /**
     * @param num_threads worker count (clamped to >= 1)
     * @param queue_capacity max queued-but-not-started jobs; submit()
     *        blocks while the queue is full (back-pressure)
     */
    explicit ThreadPool(int num_threads, size_t queue_capacity = 1024);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; blocks while the queue is at capacity. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /**
     * Run body(0..n-1) across the pool and block until all indices are
     * done. Indices are claimed dynamically, one at a time. Must not be
     * called from a task running on this same pool (no nesting — the
     * caller blocks without participating).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /**
     * parallelFor variant passing a dense worker id (0..workers-1, where
     * workers = min(numThreads, n)) as the first argument — callers use
     * it to index per-worker scratch state without locking. The
     * sequential fallback runs everything as worker 0.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &body);

    int numThreads() const { return static_cast<int>(threads_.size()); }

    /** Jobs queued but not yet picked up by a worker. */
    size_t queueDepth() const;

    /** Jobs retired since construction. */
    uint64_t completedJobs() const;

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable jobReady_;   ///< queue became non-empty
    std::condition_variable queueSpace_; ///< queue dropped below capacity
    std::condition_variable allDone_;    ///< queue empty and no job running
    std::deque<std::function<void()>> queue_;
    size_t capacity_;
    size_t active_ = 0;      ///< jobs currently executing
    uint64_t completed_ = 0; ///< jobs retired
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

} // namespace ft

#endif // FLEXTENSOR_SERVE_THREAD_POOL_H
