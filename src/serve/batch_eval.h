/**
 * @file
 * Deterministic batched schedule evaluation (Section 5.2's parallel
 * measurement).
 *
 * A batch of candidate points is scored concurrently on a thread pool —
 * scoring is a pure model query — and then committed to the evaluator's
 * history H strictly in submission order, so history(), best(), and
 * bestPoint() are identical to a sequential run of the same batch. The
 * simulated clock charges ceil(freshPoints / parallelism) * measureCost
 * for the whole batch, modeling `parallelism` measurement machines
 * running rounds of concurrent trials; with parallelism == 1 the clock
 * and curve reduce exactly to the sequential ones.
 */
#ifndef FLEXTENSOR_SERVE_BATCH_EVAL_H
#define FLEXTENSOR_SERVE_BATCH_EVAL_H

#include <unordered_set>
#include <vector>

#include "explore/evaluator.h"
#include "serve/thread_pool.h"

namespace ft {

class BatchEvaluator
{
  public:
    /**
     * @param eval the evaluator owning H and the simulated clock
     * @param pool optional worker pool; null means score sequentially
     * @param parallelism simulated measurement width (0 = pool size,
     *        or 1 without a pool)
     */
    explicit BatchEvaluator(Evaluator &eval, ThreadPool *pool = nullptr,
                            int parallelism = 0);

    /**
     * Evaluate a batch of points; returns one performance value per
     * input point (duplicates and already-known points are served from
     * the evaluator's cache and charge no simulated time).
     */
    std::vector<double> evaluate(const std::vector<Point> &points);

    /** Single-point convenience (equivalent to Evaluator::evaluate). */
    double evaluate(const Point &p);

    Evaluator &evaluator() { return eval_; }

    /** Effective measurement width used for the clock model. */
    int parallelism() const;

  private:
    Evaluator &eval_;
    ThreadPool *pool_;
    int parallelism_;

    /** Reused per-batch buffers (coalesced serving calls evaluate()
     *  many times; keeping these warm avoids per-batch allocation). */
    std::vector<size_t> fresh_;
    std::vector<PointKey> keys_;
    std::unordered_set<PointKey> batchKeys_;
    std::vector<double> scores_;
    /** One scoring scratch per pool worker (index = dense worker id). */
    std::vector<EvalScratch> scratch_;
};

} // namespace ft

#endif // FLEXTENSOR_SERVE_BATCH_EVAL_H
