/**
 * @file
 * TuningService: the concurrent serving front-end over the tuner.
 *
 * A service owns two worker pools — one running whole tuning requests
 * (submit()), one scoring measurement batches inside each request — and
 * layers three levels of result reuse over the tuner:
 *
 *   1. An in-memory LRU cache of complete TuneReports keyed by the full
 *      request identity (operator + shape + device + method + options).
 *   2. Request coalescing: concurrent identical requests share a single
 *      in-flight tuning run; joiners block on a shared future and all
 *      receive the same report.
 *   3. The persistent TuningCache (best schedule per operator/device),
 *      consulted and updated by the underlying tuner.
 *
 * Per-service counters expose the request mix for monitoring.
 */
#ifndef FLEXTENSOR_SERVE_SERVICE_H
#define FLEXTENSOR_SERVE_SERVICE_H

#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "explore/tuner.h"
#include "obs/metrics.h"
#include "serve/thread_pool.h"

namespace ft {

/** Construction-time service configuration. */
struct ServiceOptions
{
    /** Workers scoring measurement batches (Section 5.2 parallelism). */
    int evalThreads = 4;
    /** Tuning requests running concurrently via submit(). */
    int requestThreads = 2;
    /** Complete TuneReports kept in the in-memory LRU cache. */
    size_t resultCacheCapacity = 128;
    /** Optional persistent best-schedule store (not owned). */
    TuningCache *persistentCache = nullptr;
};

/**
 * Snapshot of the per-service counters. All counter fields are read from
 * one MetricsRegistry::snapshot(), so a stats() reader never observes a
 * torn or partially-updated set while runs complete concurrently; the
 * full registry (including the per-method request mix and the metrics
 * the exploration layers emit into the service registry) rides along in
 * `metrics`.
 */
struct ServiceStats
{
    uint64_t requests = 0;           ///< tune()/submit() calls accepted
    uint64_t resultCacheHits = 0;    ///< served from the LRU report cache
    uint64_t persistentCacheHits = 0;///< tuner short-circuited by TuningCache
    uint64_t coalescedJoins = 0;     ///< requests that joined an in-flight run
    uint64_t tuningRuns = 0;         ///< actual exploration runs started
    uint64_t evaluations = 0;        ///< schedule measurements performed
    uint64_t failures = 0;           ///< failed measurement attempts
    uint64_t retries = 0;            ///< measurement attempts retried
    uint64_t timeouts = 0;           ///< measurements killed at the deadline
    uint64_t quarantined = 0;        ///< points quarantined as unmeasurable
    uint64_t degradedReports = 0;    ///< runs cut short by their deadline
    size_t inflight = 0;             ///< runs currently executing
    size_t resultCacheSize = 0;      ///< reports currently in the LRU
    size_t evalQueueDepth = 0;       ///< jobs queued on the evaluation pool
    /** Full registry snapshot the fields above were read from. */
    MetricsSnapshot metrics;
};

class TuningService
{
  public:
    explicit TuningService(const ServiceOptions &options = {});

    TuningService(const TuningService &) = delete;
    TuningService &operator=(const TuningService &) = delete;

    /**
     * Tune the mini-graph rooted at `output`. Thread-safe; identical
     * concurrent requests coalesce into one run. Blocks until a report
     * is available (possibly produced by another caller's run).
     */
    TuneReport tune(const Tensor &output, const Target &target,
                    TuneOptions options = {});

    /** Tune one specific compute node (same reuse/coalescing path). */
    TuneReport tuneAnchor(const Operation &anchor, const Target &target,
                          TuneOptions options = {});

    /** Enqueue a request on the service's request pool. */
    std::future<TuneReport> submit(const Tensor &output,
                                   const Target &target,
                                   TuneOptions options = {});

    /** Counter snapshot (one consistent MetricsRegistry snapshot). */
    ServiceStats stats() const;

    /**
     * The service-wide metrics registry. Requests without their own
     * registry aggregate their exploration metrics here; external
     * instruments may be registered too.
     */
    MetricsRegistry &metrics() { return metrics_; }

    /** The measurement pool (shared by all requests). */
    ThreadPool &evalPool() { return evalPool_; }

    const ServiceOptions &options() const { return options_; }

  private:
    /** Full request identity: tuning key + the options that shape it. */
    static std::string requestKey(const Operation &anchor,
                                  const Target &target,
                                  const TuneOptions &options);

    /** LRU lookup; promotes the entry on hit. Caller holds mu_. */
    const TuneReport *lruGet(const std::string &key);

    /** LRU insert with eviction. Caller holds mu_. */
    void lruPut(const std::string &key, const TuneReport &report);

    ServiceOptions options_;
    ThreadPool evalPool_;
    ThreadPool requestPool_;

    /** All service counters live here (atomic; snapshot-consistent). */
    MetricsRegistry metrics_;
    Counter &requests_;
    Counter &resultCacheHits_;
    Counter &persistentCacheHits_;
    Counter &coalescedJoins_;
    Counter &tuningRuns_;
    Counter &evaluations_;
    Counter &failures_;
    Counter &retries_;
    Counter &timeouts_;
    Counter &quarantined_;
    Counter &degradedReports_;

    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<TuneReport>>
        inflight_;
    std::list<std::pair<std::string, TuneReport>> lru_; ///< front = newest
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, TuneReport>>::iterator>
        lruIndex_;
};

} // namespace ft

#endif // FLEXTENSOR_SERVE_SERVICE_H
